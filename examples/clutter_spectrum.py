#!/usr/bin/env python3
"""Visualise the interference environment: the angle-Doppler spectrum.

Renders the classic STAP picture from a synthetic CPI cube as an ASCII
heatmap: the clutter *ridge* runs diagonally (sidelooking geometry
couples Doppler to sin(angle)), the barrage jammer paints a horizontal
*line* at its angle across all Dopplers, and the injected targets sit as
isolated points off the ridge.  This is why the pipeline splits Doppler
bins into *easy* (ridge far from the look direction — spatial nulling
suffices) and *hard* (near the ridge — space-time adaptivity needed).

Also contrasts the conventional (Bartlett) estimate with Capon's MVDR
estimate, and demonstrates the GOCA-CFAR variant on a clutter edge.

Run:  python examples/clutter_spectrum.py
"""

import numpy as np

from repro.stap.cfar import ca_cfar
from repro.stap.params import STAPParams
from repro.stap.scenario import Scenario, Target, Jammer, make_cube
from repro.stap.spectrum import fourier_spectrum, mvdr_spectrum
from repro.trace.report import heatmap


def main() -> None:
    params = STAPParams(
        n_channels=8, n_pulses=32, n_ranges=256, n_beams=6, n_hard_bins=8,
        n_training=64, pulse_len=16, cfar_window=12, cfar_guard=3,
    )
    scenario = Scenario(
        targets=(Target(range_gate=80, doppler=0.30, angle=-0.4, snr_db=5.0),),
        jammers=(Jammer(angle=0.7, jnr_db=30.0),),
        cnr_db=30.0,
        seed=3,
    )
    cube = make_cube(params, scenario, 0)

    for name, fn in (("conventional (Bartlett)", fourier_spectrum),
                     ("Capon (MVDR)", mvdr_spectrum)):
        power, sin_angles, _ = fn(cube, n_angles=25, n_dopplers=49)
        print(
            heatmap(
                power,
                title=f"\n{name} angle-Doppler spectrum "
                "(rows: sin(angle) -1..1; cols: Doppler -0.5..0.5)",
                row_labels=[f"{v:+.2f}" for v in sin_angles],
                col_label="Doppler ->",
            )
        )
    print(
        "\nReading the picture: the diagonal band is the clutter ridge "
        "(Doppler = 0.5 sin(angle));\nthe horizontal line at "
        f"sin(angle)={np.sin(scenario.jammers[0].angle):+.2f} is the jammer; "
        f"the target hides near\nsin(angle)={np.sin(-0.4):+.2f}, "
        "Doppler +0.30 — off the ridge, which is what makes it detectable."
    )

    # -- CFAR variants on a clutter edge -----------------------------------
    print("\n" + "=" * 64)
    print("CFAR variants at a 30 dB clutter edge (gate 128):")
    rng = np.random.default_rng(1)
    rows = 200
    noise = (
        (rng.standard_normal((rows, 1, 256)) + 1j * rng.standard_normal((rows, 1, 256)))
        / np.sqrt(2)
    ).astype(np.complex64)
    noise[..., 128:] *= np.sqrt(1000)
    for method in ("ca", "goca", "soca"):
        dets = ca_cfar(noise, list(range(rows)), window=16, guard=2,
                       pfa=1e-4, method=method)
        edge = sum(1 for d in dets if 120 <= d.range_gate < 160)
        print(f"  {method.upper():5s}: {edge:5d} false alarms near the edge "
              f"({len(dets)} total)")
    print("  -> GOCA suppresses edge alarms; SOCA floods (its design trade).")


if __name__ == "__main__":
    main()
