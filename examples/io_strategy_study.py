#!/usr/bin/env python3
"""The paper's I/O strategy study, condensed — on the experiment engine.

Compares, at the 100-node case:

1. stripe factor 16 vs 64 (the paper's central knob) — the small stripe
   factor turns the read phase into the pipeline bottleneck;
2. embedded I/O vs a separate read task — equal throughput, worse
   latency (one extra additive term in Eq. 4);
3. a stripe-factor sweep locating the throughput knee.

Every cell is a declarative :class:`repro.ExperimentSpec` executed
through one :class:`repro.SweepRunner` batch — cells shared between the
comparisons (e.g. embedded sf=64) are simulated exactly once, and the
whole batch parallelizes with ``SweepRunner(jobs=N)``.

Each comparison prints the paper-style numbers.  Takes ~15 s.

Run:  python examples/io_strategy_study.py
"""

from repro import (
    ExecutionConfig,
    ExperimentSpec,
    FSConfig,
    NodeAssignment,
    STAPParams,
    SweepRunner,
)
from repro.trace.report import bar_chart, format_table

CFG = ExecutionConfig(n_cpis=8, warmup=2)
PARAMS = STAPParams()
ASSIGNMENT = NodeAssignment.case(3, PARAMS)  # 100 nodes
SWEEP_FACTORS = (4, 8, 16, 32, 64, 128)


def cell(pipeline: str, sf: int) -> ExperimentSpec:
    return ExperimentSpec(
        assignment=ASSIGNMENT,
        pipeline=pipeline,
        machine="paragon",
        fs=FSConfig("pfs", stripe_factor=sf),
        params=PARAMS,
        cfg=CFG,
    )


def main() -> None:
    # One declarative batch; the runner dedups repeated cells (embedded
    # sf=16/64 appear in both comparison 1 and the sweep) by spec hash.
    specs = {
        ("embedded", sf): cell("embedded", sf) for sf in SWEEP_FACTORS
    }
    specs[("separate", 64)] = cell("separate", 64)
    runner = SweepRunner(jobs=1)
    results = dict(zip(specs, runner.run(list(specs.values()))))
    print(
        f"[engine] {len(specs)} cells requested, "
        f"{runner.executed} simulated\n"
    )

    # -- 1: stripe factor 16 vs 64 -------------------------------------
    print("=" * 64)
    print("1. Stripe factor at 100 nodes (embedded I/O)")
    rows = []
    for sf in (16, 64):
        r = results[("embedded", sf)]
        d = r.measurement.task_stats["doppler"]
        rows.append([f"sf={sf}", r.throughput, r.latency, d.recv, d.compute])
    print(
        format_table(
            ["file system", "throughput", "latency (s)", "read phase (s)", "compute (s)"],
            rows,
        )
    )
    print(
        "-> with 16 stripe directories the read phase rivals the compute\n"
        "   phase and throttles the whole pipeline; 64 directories hide it.\n"
    )

    # -- 2: embedded vs separate I/O task --------------------------------
    print("=" * 64)
    print("2. Embedded I/O vs separate read task (sf=64)")
    rows = []
    for key, label in (
        (("embedded", 64), "embedded (7 tasks)"),
        (("separate", 64), "separate (8 tasks)"),
    ):
        r = results[key]
        rows.append([label, r.throughput, r.latency])
        formula = r.spec.graph.latency_terms()
        print(f"   {label}: latency = {formula}")
    print(format_table(["design", "throughput", "latency (s)"], rows))
    print(
        "-> same bottleneck task, so equal throughput; the extra pipeline\n"
        "   stage adds its service time to every CPI's journey.\n"
    )

    # -- 3: stripe sweep ---------------------------------------------------
    print("=" * 64)
    print("3. Where is the knee? (embedded I/O, 100 nodes)")
    series = {
        f"sf={sf:<3d}": results[("embedded", sf)].throughput
        for sf in SWEEP_FACTORS
    }
    print(bar_chart(series, title="throughput (CPIs/s) vs stripe factor"))
    print(
        "-> returns diminish once the aggregate disk service is faster\n"
        "   than the Doppler task's compute+send cycle."
    )


if __name__ == "__main__":
    main()
