#!/usr/bin/env python3
"""The paper's I/O strategy study, condensed.

Compares, at the 100-node case:

1. stripe factor 16 vs 64 (the paper's central knob) — the small stripe
   factor turns the read phase into the pipeline bottleneck;
2. embedded I/O vs a separate read task — equal throughput, worse
   latency (one extra additive term in Eq. 4);
3. a stripe-factor sweep locating the throughput knee.

Each comparison prints the paper-style numbers.  Takes ~15 s.

Run:  python examples/io_strategy_study.py
"""

from repro import (
    ExecutionConfig,
    FSConfig,
    NodeAssignment,
    PipelineExecutor,
    STAPParams,
    build_embedded_pipeline,
    build_separate_io_pipeline,
    paragon,
)
from repro.trace.report import bar_chart, format_table

CFG = ExecutionConfig(n_cpis=8, warmup=2)
PARAMS = STAPParams()


def run(spec, sf):
    return PipelineExecutor(
        spec, PARAMS, paragon(), FSConfig("pfs", stripe_factor=sf), CFG
    ).run()


def main() -> None:
    assignment = NodeAssignment.case(3, PARAMS)  # 100 nodes
    embedded = build_embedded_pipeline(assignment)

    # -- 1: stripe factor 16 vs 64 -------------------------------------
    print("=" * 64)
    print("1. Stripe factor at 100 nodes (embedded I/O)")
    rows = []
    for sf in (16, 64):
        r = run(embedded, sf)
        d = r.measurement.task_stats["doppler"]
        rows.append([f"sf={sf}", r.throughput, r.latency, d.recv, d.compute])
    print(
        format_table(
            ["file system", "throughput", "latency (s)", "read phase (s)", "compute (s)"],
            rows,
        )
    )
    print(
        "-> with 16 stripe directories the read phase rivals the compute\n"
        "   phase and throttles the whole pipeline; 64 directories hide it.\n"
    )

    # -- 2: embedded vs separate I/O task --------------------------------
    print("=" * 64)
    print("2. Embedded I/O vs separate read task (sf=64)")
    rows = []
    for spec, label in (
        (embedded, "embedded (7 tasks)"),
        (build_separate_io_pipeline(assignment), "separate (8 tasks)"),
    ):
        r = run(spec, 64)
        rows.append([label, r.throughput, r.latency])
        formula = spec.graph.latency_terms()
        print(f"   {label}: latency = {formula}")
    print(format_table(["design", "throughput", "latency (s)"], rows))
    print(
        "-> same bottleneck task, so equal throughput; the extra pipeline\n"
        "   stage adds its service time to every CPI's journey.\n"
    )

    # -- 3: stripe sweep ---------------------------------------------------
    print("=" * 64)
    print("3. Where is the knee? (embedded I/O, 100 nodes)")
    series = {}
    for sf in (4, 8, 16, 32, 64, 128):
        series[f"sf={sf:<3d}"] = run(embedded, sf).throughput
    print(bar_chart(series, title="throughput (CPIs/s) vs stripe factor"))
    print(
        "-> returns diminish once the aggregate disk service is faster\n"
        "   than the Doppler task's compute+send cycle."
    )


if __name__ == "__main__":
    main()
