#!/usr/bin/env python3
"""SMP phase-threading study (the authors' IPPS'99 companion design).

Runs key configurations in both execution models — single-threaded nodes
(this paper) and phase-threaded SMP nodes (receive/compute/send as
concurrent threads, the IPPS'99 follow-on) — and shows the three regimes:

1. compute-bound pipelines gain almost nothing (the compute phase
   already dominates the cycle);
2. on the SP with synchronous-only PIOFS, the receive thread recovers
   the missing asynchronous-I/O overlap *in software* — a large
   throughput gain from the same nodes;
3. once the stripe-directory disks saturate, no node-local overlap can
   help: the disks set the beat.

Latency never improves — each CPI still traverses every phase, plus the
intra-node queue handoffs — the exact opposite trade of §6's task
combination, which improves latency at constant throughput.

Run:  python examples/smp_threading_study.py   (~20 s)
"""

from repro import (
    ExecutionConfig,
    FSConfig,
    NodeAssignment,
    PipelineExecutor,
    STAPParams,
    build_embedded_pipeline,
    ibm_sp,
    paragon,
)
from repro.trace.report import format_table

PARAMS = STAPParams()

CONFIGS = [
    ("compute-bound: Paragon PFS sf=64, 25 nodes", paragon(), FSConfig("pfs", 64), 1),
    ("sync-I/O-bound: SP PIOFS sf=80, 25 nodes", ibm_sp(), FSConfig("piofs", 80), 1),
    ("disk-saturated: Paragon PFS sf=16, 100 nodes", paragon(), FSConfig("pfs", 16), 3),
]


def main() -> None:
    rows = []
    for label, preset, fs, case in CONFIGS:
        spec = build_embedded_pipeline(NodeAssignment.case(case, PARAMS))
        results = {}
        for threaded in (False, True):
            cfg = ExecutionConfig(n_cpis=8, warmup=2, threaded=threaded)
            results[threaded] = PipelineExecutor(spec, PARAMS, preset, fs, cfg).run()
        seq, thr = results[False], results[True]
        rows.append(
            [label, seq.throughput, thr.throughput,
             thr.throughput / seq.throughput, seq.latency, thr.latency]
        )
    print(
        format_table(
            ["regime", "thr 1-thread", "thr SMP", "gain",
             "lat 1-thread (s)", "lat SMP (s)"],
            rows,
            title="Single-threaded vs SMP phase-threaded nodes",
            float_fmt="{:.3f}",
        )
    )
    print(
        "\n-> threading substitutes for the missing async-I/O API (middle row),"
        "\n   is a wash when compute dominates (top), cannot beat saturated"
        "\n   disks (bottom), and always pays a latency cost for the"
        "\n   intra-node pipelining."
    )


if __name__ == "__main__":
    main()
