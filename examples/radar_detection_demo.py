#!/usr/bin/env python3
"""End-to-end radar detection through the parallel pipeline (compute mode).

Synthesises a phased-array scene — two point targets buried in clutter,
barrage jamming, and noise — writes it through the simulated parallel
file system, runs the *full numeric* STAP pipeline on the simulated
multicomputer, and checks the detection reports against ground truth and
against the serial golden chain.

Also demonstrates why the weights matter: the first CPI (non-adaptive
quiescent weights) misses the targets; every later CPI (weights trained
on the previous CPI, the pipeline's temporal dependency) finds them.

Run:  python examples/radar_detection_demo.py
"""

import numpy as np

from repro import (
    ExecutionConfig,
    FSConfig,
    NodeAssignment,
    PipelineExecutor,
    Scenario,
    STAPParams,
    build_embedded_pipeline,
    make_cube,
    paragon,
    run_cpi_stream,
)


def main() -> None:
    # Small-but-realistic dimensions so the numerics run in seconds.
    params = STAPParams(
        n_channels=8, n_pulses=32, n_ranges=256, n_beams=6, n_hard_bins=8,
        n_training=64, pulse_len=16, cfar_window=12, cfar_guard=3, pfa=1e-6,
    )
    scenario = Scenario.standard(params, seed=7)

    print("ground truth targets:")
    for t in scenario.targets:
        b = round(t.doppler * params.n_pulses) % params.n_pulses
        beam = int(np.argmin(np.abs(params.beam_angles - t.angle)))
        kind = "hard" if b in params.hard_bins else "easy"
        print(
            f"  range gate {t.range_gate:4d}, Doppler bin {b:3d} ({kind}), "
            f"beam {beam}, element SNR {t.snr_db:+.0f} dB"
        )
    print(f"interference: {scenario.cnr_db:.0f} dB clutter ridge, "
          f"{scenario.jammers[0].jnr_db:.0f} dB jammer\n")

    n_cpis = 4
    executor = PipelineExecutor(
        build_embedded_pipeline(NodeAssignment.balanced(params, 20)),
        params,
        paragon(),
        FSConfig(kind="pfs", stripe_factor=8),
        ExecutionConfig(n_cpis=n_cpis, warmup=1, compute=True),
        scenario=scenario,
    )
    result = executor.run()

    print("pipeline detection reports:")
    by_cpi = {}
    for d in result.detections:
        by_cpi.setdefault(d.cpi_index, []).append(d)
    for k in range(n_cpis):
        dets = by_cpi.get(k, [])
        note = "(quiescent weights)" if k == 0 else "(adaptive weights)"
        print(f"  CPI {k} {note}: {len(dets)} detections")
        for d in dets:
            print(
                f"      bin {d.doppler_bin:3d}  beam {d.beam}  "
                f"gate {d.range_gate:4d}  {d.snr_db:5.1f} dB"
            )

    # Cross-check against the serial golden chain.
    cubes = [make_cube(params, scenario, k) for k in range(n_cpis)]
    serial = sorted(d for r in run_cpi_stream(cubes, params) for d in r.detections)
    pipeline = sorted(result.detections)
    same = [
        (a.cpi_index, a.doppler_bin, a.beam, a.range_gate)
        for a in pipeline
    ] == [
        (b.cpi_index, b.doppler_bin, b.beam, b.range_gate)
        for b in serial
    ]
    # Cluster the raw exceedances into object-level reports.
    from repro.stap.cluster import cluster_detections

    print("\nclustered object reports (straddle cells merged):")
    for rep in cluster_detections(result.detections, params.n_doppler_bins):
        print(
            f"  CPI {rep.cpi_index}: bin {rep.doppler_bin:3d}  beam {rep.beam}  "
            f"gate {rep.range_gate:4d}  {rep.snr_db:5.1f} dB  "
            f"({rep.n_cells} cells, extent {rep.extent})"
        )

    print(f"\npipeline == serial golden chain: {same}")
    print(
        f"simulated run: {result.elapsed_sim_time:.3f} s of machine time, "
        f"throughput {result.throughput:.2f} CPIs/s"
    )


if __name__ == "__main__":
    main()
