#!/usr/bin/env python3
"""Quickstart: run the parallel pipelined STAP system once.

Builds the paper's case-1 configuration (25 compute nodes, embedded I/O,
Paragon-class machine, PFS with 64 stripe directories), pushes 8 CPIs
through the simulated pipeline, and prints the measured per-task phase
times, throughput, and latency — one cell of the paper's Table 1.

Run:  python examples/quickstart.py
"""

from repro import (
    ExecutionConfig,
    FSConfig,
    NodeAssignment,
    PipelineExecutor,
    STAPParams,
    build_embedded_pipeline,
    paragon,
)
from repro.trace.report import format_table


def main() -> None:
    params = STAPParams()  # 16 channels x 128 pulses x 1024 gates = 16 MiB/CPI
    assignment = NodeAssignment.case(1, params)  # 25 nodes, workload-balanced
    spec = build_embedded_pipeline(assignment)

    print(f"pipeline: {spec.task_names()}")
    print(f"latency formula (Eq. 2): {spec.graph.latency_terms()}")
    print(f"total compute nodes: {spec.total_nodes}\n")

    executor = PipelineExecutor(
        spec,
        params,
        paragon(),
        FSConfig(kind="pfs", stripe_factor=64),
        ExecutionConfig(n_cpis=8, warmup=2),
    )
    result = executor.run()

    m = result.measurement
    rows = [
        (name, s.recv, s.compute, s.send, s.total)
        for name, s in m.task_stats.items()
    ]
    print(
        format_table(
            ["task", "recv (s)", "compute (s)", "send (s)", "T_i (s)"],
            rows,
            title=f"{result.machine_name}, {result.fs_label} — steady-state task times",
        )
    )
    print(f"\nthroughput : {result.throughput:.3f} CPIs/s   (1/max T_i = {m.model_throughput:.3f})")
    print(f"latency    : {result.latency:.3f} s        (Eq. 2 on measured T_i = {m.model_latency:.3f})")
    print(f"bottleneck : {m.bottleneck_task}")


if __name__ == "__main__":
    main()
