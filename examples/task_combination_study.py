#!/usr/bin/env python3
"""The paper's §6: improving latency by combining pipeline tasks.

Part A reproduces the paper's experiment: merge pulse compression and
CFAR onto their combined node budget (same total nodes) and measure the
latency improvement across the three node-count cases — improvement in
every case, shrinking as the machine grows.

Part B constructs the case the paper only analyses (Eq. 15): when one of
the combined tasks *is* the pipeline bottleneck, combining improves
throughput AND latency simultaneously.

Every cell is a declarative :class:`repro.ExperimentSpec` (the 6-task
variants differ only in ``pipeline="combined"``) run through one
:class:`repro.SweepRunner` batch, so the whole grid can be parallelized
or served from a warm result store.

Run:  python examples/task_combination_study.py
"""

from dataclasses import replace

from repro import (
    CombinationAnalysis,
    ExecutionConfig,
    ExperimentSpec,
    FSConfig,
    NodeAssignment,
    STAPParams,
    SweepRunner,
    paragon,
)
from repro.stap.costs import STAPCosts
from repro.trace.report import format_table

CFG = ExecutionConfig(n_cpis=8, warmup=2)
PARAMS = STAPParams()
FS = FSConfig("pfs", stripe_factor=64)


def cell(assignment: NodeAssignment, pipeline: str) -> ExperimentSpec:
    return ExperimentSpec(
        assignment=assignment,
        pipeline=pipeline,
        machine="paragon",
        fs=FS,
        params=PARAMS,
        cfg=CFG,
    )


def main() -> None:
    # Declare the full grid up front: (case 1..3 + the starved layout)
    # x (7-task embedded, 6-task combined), then run it as one batch.
    starved = NodeAssignment(
        doppler=8, easy_weight=2, hard_weight=2, easy_bf=5, hard_bf=4,
        pulse_compr=1, cfar=1,
    )
    layouts = {1: NodeAssignment.case(1, PARAMS),
               2: NodeAssignment.case(2, PARAMS),
               3: NodeAssignment.case(3, PARAMS),
               "starved": starved}
    specs = {}
    for key, assignment in layouts.items():
        specs[(key, 7)] = cell(assignment, "embedded")
        specs[(key, 6)] = replace(specs[(key, 7)], pipeline="combined")
    runner = SweepRunner(jobs=1)
    results = dict(zip(specs, runner.run(list(specs.values()))))
    print(f"[engine] {runner.executed} cells simulated\n")

    print("=" * 68)
    print("A. Combining pulse compression + CFAR (the paper's Table 3/4)")
    rows = []
    for case in (1, 2, 3):
        r7, r6 = results[(case, 7)], results[(case, 6)]
        imp = (r7.latency - r6.latency) / r7.latency * 100
        rows.append(
            [f"case {case} ({r7.spec.total_nodes} nodes)",
             r7.throughput, r6.throughput, r7.latency, r6.latency, imp]
        )
    print(
        format_table(
            ["configuration", "thr 7-task", "thr 6-task",
             "lat 7-task (s)", "lat 6-task (s)", "improvement"],
            rows,
            float_fmt="{:.3f}",
        )
    )
    print(
        "-> latency improves everywhere without adding nodes; throughput is\n"
        "   untouched (the bottleneck task is unchanged); the percentage\n"
        "   shrinks as node counts grow, as the paper observes.\n"
    )

    print("=" * 68)
    print("B. Eq. 15: combining a *bottleneck* task helps both metrics")
    # Deliberately starve pulse compression: one node for ~22% of the work.
    r7, r6 = results[("starved", 7)], results[("starved", 6)]
    print(
        format_table(
            ["pipeline", "throughput", "latency (s)", "bottleneck"],
            [
                ["7 tasks, PC starved", r7.throughput, r7.latency,
                 r7.measurement.bottleneck_task],
                ["6 tasks, combined", r6.throughput, r6.latency,
                 r6.measurement.bottleneck_task],
            ],
            float_fmt="{:.3f}",
        )
    )

    # The analytic side of §6, with the measured communication terms.
    costs = STAPCosts(PARAMS)
    flops = paragon().node_spec.flops
    stats = r7.measurement.task_stats
    analysis = CombinationAnalysis(
        w_a=costs.pulse_compression_flops() / flops,
        w_b=costs.cfar_flops() / flops,
        p_a=starved.pulse_compr,
        p_b=starved.cfar,
        c_a=stats["pulse_compr"].send,
        c_b=stats["cfar"].send,
    )
    print(f"\nEq. 8 work-term delta  : {analysis.work_term_delta():+.3f} s (always < 0)")
    print(f"Eq. 7 predicted T_5+6  : {analysis.t_combined:.3f} s "
          f"(vs T_5 + T_6 = {analysis.t_a + analysis.t_b:.3f} s)")
    print(f"latency improves       : {analysis.latency_improves()}")
    print(f"measured gains         : throughput x{r6.throughput / r7.throughput:.2f}, "
          f"latency x{r7.latency / r6.latency:.2f}")


if __name__ == "__main__":
    main()
