"""Declarative experiment engine: spec'd runs, parallel sweeps, caching.

The paper's evaluation is an experiment *grid* — pipeline structures x
file systems x node-assignment cases plus ablations.  This module makes
each grid cell a first-class, serializable value:

* :class:`ExperimentSpec` fully describes one cell — pipeline builder,
  node assignment, machine preset, :class:`~repro.core.executor.FSConfig`,
  :class:`~repro.stap.params.STAPParams`,
  :class:`~repro.core.context.ExecutionConfig`, a seed, and optional
  fault injections (straggler disk/node, concurrent radar writer).  A
  spec is deterministically hashable (:meth:`ExperimentSpec.spec_hash`),
  so any result can be content-addressed by the spec that produced it.
* :func:`run_spec` executes one cell and returns the
  :class:`~repro.core.executor.PipelineResult`.
* :class:`SweepRunner` executes a list of specs — in-process at
  ``jobs=1`` (debuggable), or over a persistent worker pool at
  ``jobs>1`` (the DES is single-threaded pure Python, so cells are
  embarrassingly parallel) — consulting an optional
  :class:`~repro.bench.store.ResultStore` so previously-computed cells
  are never re-simulated.  Execution is delegated to the service tier
  (:mod:`repro.service`): the runner is a thin client of a private
  :class:`~repro.service.scheduler.ExperimentScheduler`.

The simulation is deterministic, so ``run_spec(spec)`` is a pure
function of the spec: equal specs yield bit-identical results, which is
what makes the content-addressed cache sound.
"""

from __future__ import annotations

import hashlib
import json
import warnings
from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.context import ExecutionConfig
from repro.core.executor import FSConfig, PipelineExecutor, PipelineResult
from repro.core.pipeline import (
    NodeAssignment,
    PipelineSpec,
    build_embedded_pipeline,
    build_separate_io_pipeline,
    combine_pulse_cfar,
)
from repro.errors import ConfigurationError
from repro.machine.presets import MachinePreset, generic_cluster, ibm_sp, paragon
from repro.stap.params import STAPParams
from repro.strategies import get_strategy, strategy_names

__all__ = [
    "SPEC_SCHEMA",
    "PIPELINES",
    "LEGACY_STRATEGY",
    "MACHINES",
    "machine_key",
    "DiskFault",
    "NodeFault",
    "WriterLoad",
    "ServerCrash",
    "FlakyDisk",
    "ExperimentSpec",
    "build_executor",
    "run_spec",
    "SweepRunner",
]

#: Bump when the spec's serialized shape changes; part of the hash, so
#: old cache entries are invalidated rather than silently misread.
SPEC_SCHEMA = 1

#: The three pipeline keys that predate the strategy registry.  They are
#: kept addressable so every published spec hash (the serialized
#: ``pipeline`` field) is unchanged, but user-facing lookups through
#: :data:`PIPELINES` now warn and point at the registry names.
_LEGACY_BUILDERS: Dict[str, Callable[[NodeAssignment], PipelineSpec]] = {
    "embedded": build_embedded_pipeline,
    "separate": build_separate_io_pipeline,
    "combined": lambda a: combine_pulse_cfar(build_embedded_pipeline(a)),
}

#: Legacy pipeline keys -> the strategy each has always denoted.
LEGACY_STRATEGY: Dict[str, str] = {
    "embedded": "embedded-io",
    "separate": "separate-io",
    "combined": "embedded-io+combined",
}


class _PipelineRegistryView(Mapping):
    """Read-only name -> pipeline-builder mapping over the strategy
    registry plus the legacy aliases.

    Subscripting a **legacy** key (``embedded`` / ``separate`` /
    ``combined``) emits a :class:`DeprecationWarning` steering callers
    to the registry names from
    :func:`repro.strategies.strategy_names`; :meth:`resolve` is the
    warning-free accessor the engine itself (and serialized specs,
    whose hashes must not change) uses.  Membership tests and iteration
    never warn.
    """

    def _table(self) -> Dict[str, Callable[[NodeAssignment], PipelineSpec]]:
        table = dict(_LEGACY_BUILDERS)
        for name in strategy_names():
            table.setdefault(name, get_strategy(name).build_spec)
        return table

    def resolve(self, key: str) -> Callable[[NodeAssignment], PipelineSpec]:
        """Builder for ``key``; accepts legacy keys without warning."""
        return self._table()[key]

    def __getitem__(self, key: str) -> Callable[[NodeAssignment], PipelineSpec]:
        if key in _LEGACY_BUILDERS:
            warnings.warn(
                f"PIPELINES[{key!r}] is a legacy alias for the "
                f"{LEGACY_STRATEGY[key]!r} strategy; address pipelines by "
                "the registry names from repro.strategies.strategy_names()",
                DeprecationWarning,
                stacklevel=2,
            )
        return self._table()[key]

    def __iter__(self):
        return iter(self._table())

    def __len__(self) -> int:
        return len(self._table())

    def __contains__(self, key: object) -> bool:
        return key in self._table()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<PIPELINES view: {sorted(self._table())}>"


#: Pipeline builders addressable from a spec, by name — a live view over
#: the strategy registry (plus deprecated legacy aliases).
PIPELINES = _PipelineRegistryView()

#: Machine presets addressable from a spec, by name.
MACHINES: Dict[str, Callable[[], MachinePreset]] = {
    "paragon": paragon,
    "sp": ibm_sp,
    "generic": generic_cluster,
}

_PRESET_KEYS = {
    "Intel Paragon": "paragon",
    "IBM SP": "sp",
    "generic cluster": "generic",
}


def machine_key(preset: MachinePreset) -> str:
    """Engine key of a named preset (inverse of :data:`MACHINES`)."""
    try:
        return _PRESET_KEYS[preset.name]
    except KeyError:
        raise ConfigurationError(
            f"preset {preset.name!r} is not addressable by the engine; "
            f"known presets: {sorted(_PRESET_KEYS.values())}"
        ) from None


@dataclass(frozen=True)
class DiskFault:
    """Degrade one stripe directory's disk by ``slow_factor``."""

    server: int = 0
    slow_factor: float = 1.0

    def to_dict(self) -> dict:
        return {"server": self.server, "slow_factor": self.slow_factor}

    @staticmethod
    def from_dict(d: dict) -> "DiskFault":
        return DiskFault(**d)


@dataclass(frozen=True)
class NodeFault:
    """Degrade one compute node's flop rate by ``slow_factor``."""

    node: int = 0
    slow_factor: float = 1.0

    def to_dict(self) -> dict:
        return {"node": self.node, "slow_factor": self.slow_factor}

    @staticmethod
    def from_dict(d: dict) -> "NodeFault":
        return NodeFault(**d)


@dataclass(frozen=True)
class ServerCrash:
    """Take one stripe server down at ``at_time`` (simulated seconds).

    ``down_for=None`` is a permanent crash; a float brings the server
    back after that long.  Injected through
    :meth:`IOServer.schedule_outage`; clients must be fault-tolerant to
    survive it, so injecting this enables the FS retry/failover path.
    """

    server: int = 0
    at_time: float = 0.0
    down_for: Optional[float] = None

    def __post_init__(self) -> None:
        if self.server < 0:
            raise ConfigurationError(f"server must be >= 0, got {self.server}")
        if self.at_time < 0:
            raise ConfigurationError(f"at_time must be >= 0, got {self.at_time}")
        if self.down_for is not None and self.down_for <= 0:
            raise ConfigurationError(
                f"down_for must be > 0 or None (permanent), got {self.down_for}"
            )

    def to_dict(self) -> dict:
        return {
            "server": self.server,
            "at_time": self.at_time,
            "down_for": self.down_for,
        }

    @staticmethod
    def from_dict(d: dict) -> "ServerCrash":
        return ServerCrash(**d)


@dataclass(frozen=True)
class FlakyDisk:
    """Fail a deterministic ``error_rate`` fraction of one server's requests.

    Error positions come from ``random.Random(seed)`` drawn in the
    server's FIFO service order, so the same spec always fails the same
    requests.  Enables the FS retry/failover client path.
    """

    server: int = 0
    error_rate: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.server < 0:
            raise ConfigurationError(f"server must be >= 0, got {self.server}")
        if not (0.0 <= self.error_rate <= 1.0):
            raise ConfigurationError(
                f"error_rate must be in [0, 1], got {self.error_rate}"
            )

    def to_dict(self) -> dict:
        return {
            "server": self.server,
            "error_rate": self.error_rate,
            "seed": self.seed,
        }

    @staticmethod
    def from_dict(d: dict) -> "FlakyDisk":
        return FlakyDisk(**d)


@dataclass(frozen=True)
class WriterLoad:
    """A concurrent radar writer streaming future CPIs into the files."""

    period: float
    n_cpis: int
    start_cpi: int = 0
    initial_delay: float = 0.0

    def to_dict(self) -> dict:
        return {
            "period": self.period,
            "n_cpis": self.n_cpis,
            "start_cpi": self.start_cpi,
            "initial_delay": self.initial_delay,
        }

    @staticmethod
    def from_dict(d: dict) -> "WriterLoad":
        return WriterLoad(**d)


@dataclass(frozen=True)
class ExperimentSpec:
    """Everything needed to (re)run one experiment cell.

    The spec is a pure value: hashable, serializable, and sufficient to
    reproduce the cell bit-for-bit.  ``pipeline`` and ``machine`` name
    entries of :data:`PIPELINES` / :data:`MACHINES` so that a spec never
    holds live callables or machine objects.
    """

    assignment: NodeAssignment
    pipeline: str = "embedded"
    machine: str = "paragon"
    fs: FSConfig = field(default_factory=FSConfig)
    params: STAPParams = field(default_factory=STAPParams)
    cfg: ExecutionConfig = field(default_factory=ExecutionConfig)
    seed: int = 0
    disk_fault: Optional[DiskFault] = None
    node_fault: Optional[NodeFault] = None
    writer: Optional[WriterLoad] = None
    server_crash: Optional[ServerCrash] = None
    flaky_disk: Optional[FlakyDisk] = None
    #: Surrogate-screening mode (see :mod:`repro.bench.surrogate`):
    #: ``"off"`` simulates every cell (the default), ``"screen"``
    #: predicts cells far from decision boundaries, ``"predict-all"``
    #: predicts every model-predictable cell.  Execution policy, not
    #: experiment identity: excluded from comparison, serialization and
    #: the spec hash, so a screened sweep shares cache entries with an
    #: unscreened one.
    screening: str = field(default="off", compare=False)

    def __post_init__(self) -> None:
        if self.pipeline not in PIPELINES:
            raise ConfigurationError(
                f"unknown pipeline {self.pipeline!r}; "
                f"choose from {sorted(PIPELINES)}"
            )
        if self.machine not in MACHINES:
            raise ConfigurationError(
                f"unknown machine {self.machine!r}; choose from {sorted(MACHINES)}"
            )
        if self.screening not in ("off", "screen", "predict-all"):
            raise ConfigurationError(
                f"unknown screening mode {self.screening!r}; "
                "choose from ('off', 'screen', 'predict-all')"
            )

    @property
    def strategy(self) -> str:
        """Registry name of the cell's I/O strategy.

        The legacy pipeline keys (``embedded``/``separate``/``combined``)
        resolve to the strategies they have always denoted; every other
        key *is* a registry name.
        """
        return LEGACY_STRATEGY.get(self.pipeline, self.pipeline)

    # -- construction sugar -------------------------------------------------
    @staticmethod
    def for_case(
        pipeline: str,
        case,
        params: Optional[STAPParams] = None,
        cfg: Optional[ExecutionConfig] = None,
        seed: int = 0,
    ) -> "ExperimentSpec":
        """Spec for one :class:`~repro.bench.cases.BenchCase` grid cell."""
        return ExperimentSpec(
            assignment=case.assignment,
            pipeline=pipeline,
            machine=machine_key(case.preset),
            fs=case.fs,
            params=params or STAPParams(),
            cfg=cfg or ExecutionConfig(),
            seed=seed,
        )

    def label(self) -> str:
        """Human-readable one-liner for listings."""
        n = self.assignment.total_without_io
        extras = []
        if self.disk_fault:
            extras.append(f"disk[{self.disk_fault.server}] x{self.disk_fault.slow_factor:g}")
        if self.node_fault:
            extras.append(f"node[{self.node_fault.node}] x{self.node_fault.slow_factor:g}")
        if self.writer:
            extras.append("writer on")
        if self.server_crash:
            down = (
                "forever"
                if self.server_crash.down_for is None
                else f"{self.server_crash.down_for:g}s"
            )
            extras.append(
                f"crash[{self.server_crash.server}] "
                f"@{self.server_crash.at_time:g}s for {down}"
            )
        if self.flaky_disk:
            extras.append(
                f"flaky[{self.flaky_disk.server}] p={self.flaky_disk.error_rate:g}"
            )
        suffix = f" ({', '.join(extras)})" if extras else ""
        return (
            f"{self.pipeline} | {self.machine} | {self.fs.label()} | "
            f"{n} nodes | {self.cfg.n_cpis} CPIs{suffix}"
        )

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        """Lossless JSON-able form.

        The fault-tolerance fields (``server_crash``, ``flaky_disk``)
        are emitted only when set: specs predating them keep their exact
        canonical JSON, so every previously-published spec hash — and
        the result cache keyed on them — is untouched.
        """
        d = {
            "pipeline": self.pipeline,
            "assignment": self.assignment.to_dict(),
            "machine": self.machine,
            "fs": self.fs.to_dict(),
            "params": self.params.to_dict(),
            "cfg": self.cfg.to_dict(),
            "seed": self.seed,
            "disk_fault": self.disk_fault.to_dict() if self.disk_fault else None,
            "node_fault": self.node_fault.to_dict() if self.node_fault else None,
            "writer": self.writer.to_dict() if self.writer else None,
        }
        if self.server_crash is not None:
            d["server_crash"] = self.server_crash.to_dict()
        if self.flaky_disk is not None:
            d["flaky_disk"] = self.flaky_disk.to_dict()
        return d

    @staticmethod
    def from_dict(d: dict) -> "ExperimentSpec":
        """Inverse of :meth:`to_dict`."""
        return ExperimentSpec(
            assignment=NodeAssignment.from_dict(d["assignment"]),
            pipeline=d["pipeline"],
            machine=d["machine"],
            fs=FSConfig.from_dict(d["fs"]),
            params=STAPParams.from_dict(d["params"]),
            cfg=ExecutionConfig.from_dict(d["cfg"]),
            seed=d["seed"],
            disk_fault=DiskFault.from_dict(d["disk_fault"]) if d["disk_fault"] else None,
            node_fault=NodeFault.from_dict(d["node_fault"]) if d["node_fault"] else None,
            writer=WriterLoad.from_dict(d["writer"]) if d["writer"] else None,
            server_crash=(
                ServerCrash.from_dict(d["server_crash"])
                if d.get("server_crash")
                else None
            ),
            flaky_disk=(
                FlakyDisk.from_dict(d["flaky_disk"]) if d.get("flaky_disk") else None
            ),
        )

    def canonical_json(self) -> str:
        """Canonical serialized form the hash is computed over."""
        return json.dumps(
            {"schema": SPEC_SCHEMA, **self.to_dict()},
            sort_keys=True,
            separators=(",", ":"),
        )

    def spec_hash(self) -> str:
        """Content address: SHA-256 of the canonical JSON form."""
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()

    def short_hash(self) -> str:
        """First 12 hex digits of :meth:`spec_hash`, for display."""
        return self.spec_hash()[:12]

    def build_pipeline(self) -> PipelineSpec:
        """Instantiate the named pipeline on this spec's assignment."""
        return PIPELINES.resolve(self.pipeline)(self.assignment)


def _check_server_index(ex: PipelineExecutor, server: int, what: str) -> None:
    n = len(ex.fs.servers)
    if not (0 <= server < n):
        raise ConfigurationError(
            f"{what} targets server {server}, but the file system has "
            f"{n} stripe servers (valid: 0..{n - 1})"
        )


def build_executor(spec: ExperimentSpec) -> PipelineExecutor:
    """Instantiate the cell's executor, with fault injections applied."""
    ex = PipelineExecutor(
        spec.build_pipeline(),
        spec.params,
        MACHINES[spec.machine](),
        spec.fs,
        spec.cfg,
        seed=spec.seed,
    )
    if spec.disk_fault is not None and spec.disk_fault.slow_factor != 1.0:
        from repro.pfs.blockdev import DiskSpec

        _check_server_index(ex, spec.disk_fault.server, "disk_fault")
        f = spec.disk_fault.slow_factor
        healthy = ex.fs.servers[spec.disk_fault.server].disk
        ex.fs.servers[spec.disk_fault.server].disk = DiskSpec(
            bandwidth=healthy.bandwidth / f,
            overhead=healthy.overhead * f,
            extra_unit_overhead_frac=healthy.extra_unit_overhead_frac,
        )
    if spec.node_fault is not None and spec.node_fault.slow_factor != 1.0:
        from repro.machine.node import Node, NodeSpec

        if not (0 <= spec.node_fault.node < len(ex.machine.nodes)):
            raise ConfigurationError(
                f"node_fault targets node {spec.node_fault.node}, but the "
                f"machine has {len(ex.machine.nodes)} nodes"
            )
        f = spec.node_fault.slow_factor
        healthy = ex.machine.node(spec.node_fault.node).spec
        ex.machine.nodes[spec.node_fault.node] = Node(
            spec.node_fault.node,
            NodeSpec(
                flops=healthy.flops / f,
                mem_bw=healthy.mem_bw,
                name=f"{healthy.name}-slow{f:g}x",
            ),
        )
    if spec.server_crash is not None:
        _check_server_index(ex, spec.server_crash.server, "server_crash")
        ex.fs.enable_fault_tolerance()
        ex.fs.servers[spec.server_crash.server].schedule_outage(
            spec.server_crash.at_time, spec.server_crash.down_for
        )
    if spec.flaky_disk is not None and spec.flaky_disk.error_rate > 0.0:
        _check_server_index(ex, spec.flaky_disk.server, "flaky_disk")
        ex.fs.enable_fault_tolerance()
        ex.fs.servers[spec.flaky_disk.server].set_flaky(
            spec.flaky_disk.error_rate, spec.flaky_disk.seed
        )
    return ex


def run_spec(spec: ExperimentSpec) -> PipelineResult:
    """Execute one cell.  Pure function of the spec (the DES is
    deterministic), which is what makes result caching sound."""
    ex = build_executor(spec)
    if spec.writer is not None:
        from repro.io.writer import RadarWriter

        writer = RadarWriter(
            ex.fileset,
            node_id=ex.machine.io_node_id(0),
            period=spec.writer.period,
            n_cpis=spec.writer.n_cpis,
            start_cpi=spec.writer.start_cpi,
            initial_delay=spec.writer.initial_delay,
        )
        ex.kernel.process(writer.run(ex.kernel), name="radar-writer")
    return ex.run()


class SweepRunner:
    """Execute experiment specs with caching and process parallelism.

    A thin client of the experiment service tier: the runner owns a
    private :class:`~repro.service.scheduler.ExperimentScheduler` whose
    worker pool persists for the runner's lifetime, so successive
    ``run()`` calls reuse warm workers instead of respawning a pool per
    sweep.  Cells are submitted as one job and stream back as they
    complete; a ``Ctrl-C`` mid-sweep cancels the job (workers shut
    down, already-finished cells stay cached).

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` (default) runs in-process — same
        results, synchronous and debuggable.  ``>1`` fans uncached cells
        out over persistent worker processes; results return via the
        lossless JSON layer, so they are identical to in-process runs.
    store:
        Optional :class:`~repro.bench.store.ResultStore`.  When set,
        cells already present are returned from disk (counted in
        :attr:`cache_hits`) and newly computed cells are written back
        as they complete.

    Attributes
    ----------
    cache_hits / cache_misses:
        Store lookups that did / did not avoid a simulation.
    executed:
        Cells actually simulated by this runner (including duplicates
        resolved in-memory: a spec appearing twice in one ``run()`` call
        is simulated once).
    predicted:
        Cells answered by the analytic surrogate instead of simulation
        (specs with ``screening != "off"``; see
        :mod:`repro.bench.surrogate`).
    """

    def __init__(self, jobs: int = 1, store=None) -> None:
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.store = store
        self.cache_hits = 0
        self.cache_misses = 0
        self.executed = 0
        self.predicted = 0
        self._scheduler = None

    def _get_scheduler(self):
        """The runner's private scheduler, created on first use."""
        if self._scheduler is None:
            from repro.service.scheduler import ExperimentScheduler

            self._scheduler = ExperimentScheduler(
                workers=self.jobs if self.jobs > 1 else 0,
                store=self.store,
            )
        return self._scheduler

    def close(self) -> None:
        """Shut down the worker pool (idempotent)."""
        if self._scheduler is not None:
            self._scheduler.shutdown()
            self._scheduler = None

    def __enter__(self) -> "SweepRunner":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing varies
        try:
            self.close()
        except Exception:
            pass

    def run_one(self, spec: ExperimentSpec) -> PipelineResult:
        """Execute (or fetch) a single cell."""
        return self.run([spec])[0]

    def run(self, specs: Sequence[ExperimentSpec]) -> List[PipelineResult]:
        """Execute (or fetch) every cell, preserving input order.

        An interrupt (``Ctrl-C``) mid-sweep cancels the in-flight job
        and stops the workers before re-raising; cells that finished
        before the interrupt are already in the store.
        """
        specs = list(specs)
        if not specs:
            return []
        scheduler = self._get_scheduler()
        handle = scheduler.submit(specs, client="sweep")
        try:
            payloads = handle.wait()
        except (KeyboardInterrupt, SystemExit):
            # Interrupt: stop dispatching, kill in-flight workers, keep
            # whatever already landed in the store.
            handle.cancel()
            self.close()
            raise
        except BaseException:
            # Task failure: the job is already terminal; the pool stays
            # warm for the next run() call.
            handle.cancel()
            raise
        counters = handle.counters
        self.cache_hits += counters["cache_hits"]
        self.cache_misses += counters["cache_misses"]
        self.executed += counters["executed"]
        self.predicted += counters.get("predicted", 0)
        # Rehydrate each payload with its spec type's own hook when it
        # has one (ScenarioSpec.result_from_dict); experiment cells keep
        # the classic PipelineResult path.
        results = [
            getattr(type(spec), "result_from_dict", PipelineResult.from_dict)(p)
            for spec, p in zip(specs, payloads)
        ]
        # Duplicate specs alias one result object, as before.
        seen: Dict[int, PipelineResult] = {}
        out: List[PipelineResult] = []
        for spec, result in zip(specs, results):
            first = handle.job.first_index_by_key[spec.spec_hash()]
            out.append(seen.setdefault(first, result))
        return out
