"""The paper's evaluation grid: node-count cases x parallel file systems.

Three node-assignment cases (25 / 50 / 100 nodes, each doubling the
previous — paper §5) crossed with three file-system configurations
(Paragon PFS with stripe factors 16 and 64; SP PIOFS with stripe factor
80 — DESIGN.md §4 reconstruction).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.executor import FSConfig
from repro.core.pipeline import NodeAssignment
from repro.machine.presets import MachinePreset, ibm_sp, paragon
from repro.stap.params import STAPParams

__all__ = ["BenchCase", "PAPER_CASES", "paper_cases", "paper_filesystems"]

#: The paper's total node counts for cases 1..3.
PAPER_CASES: Tuple[int, ...] = (25, 50, 100)


@dataclass(frozen=True)
class BenchCase:
    """One cell of the evaluation grid."""

    case_number: int           # 1..3
    total_nodes: int
    assignment: NodeAssignment
    preset: MachinePreset
    fs: FSConfig

    @property
    def label(self) -> str:
        return f"case {self.case_number} ({self.total_nodes} nodes), {self.fs.label()}"


def paper_filesystems() -> List[Tuple[MachinePreset, FSConfig]]:
    """The three (machine, file system) pairs of Tables 1-3."""
    return [
        (paragon(), FSConfig(kind="pfs", stripe_factor=16)),
        (paragon(), FSConfig(kind="pfs", stripe_factor=64)),
        (ibm_sp(), FSConfig(kind="piofs", stripe_factor=80)),
    ]


def paper_cases(params: STAPParams | None = None) -> List[BenchCase]:
    """The full 3 x 3 grid, in table order (per-FS columns, cases down)."""
    params = params or STAPParams()
    out: List[BenchCase] = []
    for preset, fs in paper_filesystems():
        for case_number in (1, 2, 3):
            assignment = NodeAssignment.case(case_number, params)
            out.append(
                BenchCase(
                    case_number=case_number,
                    total_nodes={1: 25, 2: 50, 3: 100}[case_number],
                    assignment=assignment,
                    preset=preset,
                    fs=fs,
                )
            )
    return out
