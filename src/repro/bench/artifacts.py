"""Discovery and parsing of committed benchmark artifacts.

The harness writes every table/figure/ablation as plain text through
:mod:`repro.trace.report` (``format_table`` / ``bar_chart`` /
``grouped_bar_chart``), and metered runs additionally emit
``*.metrics.json`` / ``*.trace.json`` / structured-result JSON.  This
module is the *read-back* side of those formats: point
:func:`discover_artifacts` at a directory (``results/`` in this repo)
and it classifies everything it finds; :func:`parse_text_artifact`
recovers the numbers from the rendered text — bar values grouped by
their ``-- group`` headings and table rows keyed by column — so the
sweep analyzer (:mod:`repro.analysis`) can re-derive strategy winners
and bottleneck crossovers from committed artifacts with **zero new
simulations**.

Parsing is forgiving by design: lines that match neither a bar nor a
table row are ignored (sparklines, prose, Gantt lanes), and a file that
yields no bars and no tables simply contributes nothing.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Union

__all__ = [
    "ParsedTable",
    "ParsedTextArtifact",
    "DiscoveredArtifacts",
    "parse_text_artifact",
    "discover_artifacts",
]

#: ``label | #### 1.234unit`` — one bar of bar_chart/grouped_bar_chart.
#: The bar may be empty (zero-valued bars render no ``#``).
_BAR_LINE = re.compile(
    r"^\s*(?P<label>\S.*?)\s*\|\s*#*\s*"
    r"(?P<value>[-+]?[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?)"
    r"(?P<unit>[A-Za-z/%][\w/%]*)?\s*$"
)

#: ``-- group heading`` of grouped_bar_chart.
_GROUP_LINE = re.compile(r"^--\s+(?P<group>\S.*?)\s*$")

#: The ``----+----`` rule format_table draws under its header row.
_TABLE_RULE = re.compile(r"^\s*-+(?:\+-+)+\s*$")

#: ``sf=16`` / ``rep=2`` style axis tokens inside labels and headings.
_AXIS_TOKEN = re.compile(r"([A-Za-z_][\w-]*)=([^\s,|]+)")


@dataclass
class ParsedTable:
    """One ``format_table`` block: column names plus row dicts.

    Numeric-looking cells are converted to float; everything else stays
    a stripped string.
    """

    columns: List[str]
    rows: List[Dict[str, object]]


@dataclass
class ParsedTextArtifact:
    """Everything recovered from one rendered text artifact."""

    path: Optional[str]
    title: str = ""
    #: bar-chart data: group heading -> {bar label -> value}.  A plain
    #: (ungrouped) bar chart lands under the ``""`` group.
    groups: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: unit suffix seen on bar values (e.g. ``"CPIs/s"``), if any.
    unit: str = ""
    tables: List[ParsedTable] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        return not self.groups and not self.tables

    def name(self) -> str:
        """Short display name (file stem, else the title line)."""
        if self.path:
            return Path(self.path).stem
        return self.title or "<text artifact>"


def _coerce(cell: str) -> object:
    cell = cell.strip()
    try:
        return float(cell)
    except ValueError:
        return cell


def axis_tokens(text: str) -> Dict[str, object]:
    """``"pfs sf=16 rep=2"`` -> ``{"fs": "pfs", "sf": 16.0, "rep": 2.0}``.

    Bare words that are not ``k=v`` pairs are collected under ``"fs"``
    when they look like a file-system kind, so the analyzer can join
    text-artifact groups onto spec axes.
    """
    out: Dict[str, object] = {}
    for key, value in _AXIS_TOKEN.findall(text):
        out[key] = _coerce(value)
    for word in re.sub(_AXIS_TOKEN, " ", text).split():
        if word.lower() in ("pfs", "piofs"):
            out.setdefault("fs", word.lower())
    return out


def parse_text_artifact(
    text: str, path: Optional[str] = None
) -> ParsedTextArtifact:
    """Recover bars and tables from one rendered text artifact."""
    lines = text.splitlines()
    art = ParsedTextArtifact(path=path)
    group = ""
    i = 0
    while i < len(lines):
        line = lines[i]
        # A format_table block: header row, rule, data rows.
        if (
            i + 1 < len(lines)
            and "|" in line
            and _TABLE_RULE.match(lines[i + 1])
        ):
            columns = [c.strip() for c in line.split("|")]
            rows: List[Dict[str, object]] = []
            i += 2
            while i < len(lines) and "|" in lines[i] \
                    and not _TABLE_RULE.match(lines[i]):
                cells = [c for c in lines[i].split("|")]
                if len(cells) == len(columns):
                    rows.append(
                        {col: _coerce(c) for col, c in zip(columns, cells)}
                    )
                i += 1
            art.tables.append(ParsedTable(columns=columns, rows=rows))
            continue
        m = _GROUP_LINE.match(line)
        if m:
            group = m.group("group")
            i += 1
            continue
        m = _BAR_LINE.match(line)
        if m and not _TABLE_RULE.match(line):
            art.groups.setdefault(group, {})[m.group("label")] = float(
                m.group("value")
            )
            if m.group("unit"):
                art.unit = m.group("unit")
            i += 1
            continue
        if not art.title and line.strip() and "|" not in line:
            art.title = line.strip()
        i += 1
    return art


@dataclass
class DiscoveredArtifacts:
    """What :func:`discover_artifacts` found under one directory."""

    root: str
    #: ``*.metrics.json`` / ``*.trace.json`` / other ``*.json`` files.
    json_paths: List[str] = field(default_factory=list)
    #: Parsed text artifacts that yielded bars or tables.
    text_artifacts: List[ParsedTextArtifact] = field(default_factory=list)
    #: Text files that parsed to nothing (prose, Gantt output, ...).
    skipped: List[str] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        return not self.json_paths and not self.text_artifacts


def discover_artifacts(root: Union[str, Path]) -> DiscoveredArtifacts:
    """Classify every artifact under ``root`` (non-recursive JSON scan,
    plus one directory level for ``results/metrics/``-style subdirs)."""
    root = Path(root)
    found = DiscoveredArtifacts(root=str(root))
    if not root.is_dir():
        return found
    json_files: List[Path] = sorted(root.glob("*.json"))
    for sub in sorted(p for p in root.iterdir() if p.is_dir()):
        json_files.extend(sorted(sub.glob("*.json")))
    found.json_paths = [str(p) for p in json_files]
    for path in sorted(root.glob("*.txt")):
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            found.skipped.append(str(path))
            continue
        art = parse_text_artifact(text, path=str(path))
        if art.empty:
            found.skipped.append(str(path))
        else:
            found.text_artifacts.append(art)
    return found
