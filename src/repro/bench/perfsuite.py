"""Microbenchmark suite for the DES kernel and pipeline hot paths.

Measures the following and records them in a JSON baseline file
(``BENCH_pr7.json`` at the repository root; ``BENCH_pr2.json`` is the
committed pre-calendar-kernel baseline, kept for the cumulative
speedup story):

* ``kernel_ops`` — raw kernel throughput on a synthetic workload of
  timeouts, resource handoffs, and store transfers (events/second);
* ``kernel_ops_calendar`` — calendar-ring stress: timers spread over
  four decades of delay, so entries file into the calendar rather than
  the now-lane and the width/occupancy feedback loops run (also records
  the kernel's cumulative ``queue_stats()`` counters);
* ``cell_embedded_case3`` / ``cell_separate_case3`` — one full pipeline
  simulation each (the paper's 100-node case), recording wall time,
  total function calls under cProfile, and the result hash;
* ``cell_smoke`` — a small, fast cell used by CI and the perf-smoke
  test, same metrics;
* ``cell_two_tenant_smoke`` — a two-tenant mixed-strategy scenario on
  one shared PFS (the scenario layer's end-to-end hot path), gating the
  full ``ScenarioResult`` hash;
* ``metrics_overhead`` — the canonical embedded cell run plain and with
  live metrics sampling, recording the wall overhead fraction and
  gating on the *stripped* result hash (metrics must change nothing);
* ``reproduce_cold`` — wall time of the full table/figure reproduction
  with a cold cache (the end-to-end number a user experiences).

Function-call counts and result hashes are deterministic for a given
source tree, which makes them machine-independent regression metrics:
``check_against()`` flags a run whose call count exceeds the committed
baseline by more than the tolerance, or whose result hash differs at
all (a determinism break).  Wall times are recorded for human eyes but
never gated on — CI machines are too noisy for that.

Usage::

    python -m repro.bench.perfsuite --write BENCH_pr7.json
    python -m repro.bench.perfsuite --check BENCH_pr7.json --only cell_smoke
"""

from __future__ import annotations

import argparse
import cProfile
import gc
import hashlib
import json
import pstats
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "run_suite",
    "measure_cell",
    "measure_scenario_cell",
    "measure_kernel_ops",
    "measure_kernel_ops_calendar",
    "measure_metrics_overhead",
    "measure_reproduce_cold",
    "check_against",
    "main",
]

#: Tolerated relative growth in function calls before check_against fails.
DEFAULT_TOLERANCE = 0.20

#: Baselines from the pre-overhaul kernel (same cells, same settings),
#: kept so the report can show the cumulative speedup.
PRE_OVERHAUL = {
    "cell_embedded_case3_calls": 9_901_666,
    "reproduce_cold_wall_s": 19.7,
}


def _profiled(fn: Callable[[], Any]) -> Tuple[float, int, Any]:
    """Run ``fn`` twice: once plain for wall time, once under cProfile
    for the deterministic call count.  GC is disabled while measuring so
    collector-triggered finalizers cannot perturb either number."""
    gc.collect()
    gc.disable()
    try:
        t0 = time.perf_counter()
        out = fn()
        wall = time.perf_counter() - t0
        profiler = cProfile.Profile()
        profiler.enable()
        fn()
        profiler.disable()
    finally:
        gc.enable()
    calls = pstats.Stats(profiler).total_calls
    return wall, calls, out


# -- workloads -----------------------------------------------------------
def _kernel_workload(n_workers: int = 50, n_iters: int = 400) -> int:
    """Synthetic kernel stress: timeouts, contended + uncontended resource
    handoffs, and store producer/consumer pairs.  Returns the number of
    scheduled entries processed (the kernel's seq counter)."""
    from repro.sim.kernel import Kernel
    from repro.sim.resources import Resource, Store

    k = Kernel()
    shared = Resource(k, capacity=2, name="shared")
    private = [Resource(k, capacity=1, name=f"p{i}") for i in range(n_workers)]
    box = Store(k, name="box")

    def worker(i: int):
        mine = private[i]
        for j in range(n_iters):
            yield k.timeout(0.001 * (i + 1))
            yield mine.request()          # always uncontended
            yield k.timeout(0.0)
            mine.release()
            yield shared.request()        # contended across workers
            yield k.timeout(0.0005)
            shared.release()
            box.put((i, j))

    def drainer(total: int):
        for _ in range(total):
            yield box.get()

    for i in range(n_workers):
        k.process(worker(i), name=f"w{i}")
    k.process(drainer(n_workers * n_iters), name="drain")
    k.run()
    return k._seq


def _calendar_workload(n_timers: int = 1000, rounds: int = 16):
    """Calendar-ring stress: pure timer traffic spread over four decades
    of delay (0.01–10 s), so almost every entry files into the calendar
    rather than the now-lane.  Each timer re-arms at a drifting decade,
    forcing the width estimator to track a moving gap distribution and
    the occupancy loop to resize as the ring drains.  Returns the kernel
    (for ``queue_stats()``)."""
    from repro.sim.kernel import Kernel

    k = Kernel()

    def timer(i: int):
        for r in range(rounds):
            scale = 10.0 ** ((i + r) % 4 - 2)
            yield k.timeout(scale * (1 + (i * 7919) % 97) / 97.0)

    for i in range(n_timers):
        k.process(timer(i), name=f"t{i}")
    k.run()
    return k


def _cell_spec(pipeline: str, case: int, n_cpis: int, warmup: int,
               stripe_factor: int, metrics_interval: Optional[float] = None):
    from repro.bench.engine import ExperimentSpec
    from repro.core.context import ExecutionConfig
    from repro.core.executor import FSConfig
    from repro.core.pipeline import NodeAssignment
    from repro.stap.params import STAPParams

    params = STAPParams()
    return ExperimentSpec(
        assignment=NodeAssignment.case(case, params),
        pipeline=pipeline,
        machine="paragon",
        fs=FSConfig(kind="pfs", stripe_factor=stripe_factor),
        params=params,
        cfg=ExecutionConfig(
            n_cpis=n_cpis, warmup=warmup, metrics_interval=metrics_interval
        ),
        seed=0,
    )


def measure_cell(pipeline: str, case: int, n_cpis: int = 8, warmup: int = 2,
                 stripe_factor: int = 64) -> Dict[str, Any]:
    """Wall time, call count, and result hash of one pipeline cell."""
    from repro.bench.engine import run_spec

    spec = _cell_spec(pipeline, case, n_cpis, warmup, stripe_factor)
    wall, calls, result = _profiled(lambda: run_spec(spec))
    digest = hashlib.sha256(
        json.dumps(result.to_dict(), sort_keys=True).encode("utf-8")
    ).hexdigest()
    return {
        "pipeline": pipeline,
        "case": case,
        "n_cpis": n_cpis,
        "warmup": warmup,
        "stripe_factor": stripe_factor,
        "wall_s": round(wall, 4),
        "calls": calls,
        "result_hash": digest,
    }


def measure_scenario_cell(pipelines: Tuple[str, ...] = ("embedded-io",
                                                        "separate-io"),
                          case: int = 1, n_cpis: int = 4, warmup: int = 1,
                          stripe_factor: int = 8,
                          fs_kind: str = "pfs") -> Dict[str, Any]:
    """Wall time, call count, and result hash of one multi-tenant cell.

    One tenant per entry of ``pipelines``, all on the given case's node
    assignment, sharing a single substrate — exercising the scenario
    layer's rank-offset communicators, tenant-namespaced files, and
    shared-FS accounting end to end.
    """
    from repro.core.context import ExecutionConfig
    from repro.core.executor import FSConfig
    from repro.core.pipeline import NodeAssignment
    from repro.scenario import ScenarioSpec, TenantSpec, run_scenario
    from repro.stap.params import STAPParams

    params = STAPParams()
    cfg = ExecutionConfig(n_cpis=n_cpis, warmup=warmup)
    spec = ScenarioSpec(
        tenants=tuple(
            TenantSpec(
                assignment=NodeAssignment.case(case, params),
                pipeline=pipeline,
                cfg=cfg,
            )
            for pipeline in pipelines
        ),
        machine="paragon",
        fs=FSConfig(kind=fs_kind, stripe_factor=stripe_factor),
        params=params,
        seed=0,
    )
    wall, calls, result = _profiled(lambda: run_scenario(spec))
    digest = hashlib.sha256(
        json.dumps(result.to_dict(), sort_keys=True).encode("utf-8")
    ).hexdigest()
    return {
        "pipelines": list(pipelines),
        "case": case,
        "n_cpis": n_cpis,
        "warmup": warmup,
        "stripe_factor": stripe_factor,
        "fs_kind": fs_kind,
        "wall_s": round(wall, 4),
        "calls": calls,
        "result_hash": digest,
    }


def _stripped_hash(result) -> str:
    """Result hash with the observability fields removed.

    A metrics run must be bit-identical to a plain run everywhere except
    the artifact itself and the config field that asked for it; hashing
    the dict with those two stripped makes "metrics changed nothing"
    a checkable invariant.
    """
    d = result.to_dict()
    d.pop("metrics", None)
    d.get("cfg", {}).pop("metrics_interval", None)
    return hashlib.sha256(
        json.dumps(d, sort_keys=True).encode("utf-8")
    ).hexdigest()


def measure_metrics_overhead(case: int = 3, n_cpis: int = 8, warmup: int = 2,
                             stripe_factor: int = 64,
                             interval: float = 0.25) -> Dict[str, Any]:
    """Cost and correctness of the observability layer on one cell.

    Runs the canonical embedded cell plain and with metrics sampling.
    ``result_hash`` is the metrics run's *stripped* hash (see
    :func:`_stripped_hash`), gated against the plain cell's baseline
    hash — so any event-ordering perturbation from the sampler fails
    the check.  The wall overhead fraction is recorded for human eyes.
    """
    from repro.bench.engine import run_spec

    plain_spec = _cell_spec("embedded", case, n_cpis, warmup, stripe_factor)
    metrics_spec = _cell_spec("embedded", case, n_cpis, warmup, stripe_factor,
                              metrics_interval=interval)

    def _best_wall(spec) -> Tuple[float, Any]:
        # Best-of-3: single runs swing ~±5% on shared machines, far more
        # than the overhead being measured.
        best, out = float("inf"), None
        for _ in range(3):
            gc.collect()
            t0 = time.perf_counter()
            out = run_spec(spec)
            best = min(best, time.perf_counter() - t0)
        return best, out

    wall_plain, plain = _best_wall(plain_spec)
    wall_metrics, metered = _best_wall(metrics_spec)
    _, calls, _ = _profiled(lambda: run_spec(metrics_spec))
    assert _stripped_hash(metered) == _stripped_hash(plain), (
        "metrics run diverged from plain run — the sampler perturbed "
        "event ordering"
    )
    overhead = (wall_metrics - wall_plain) / wall_plain if wall_plain else 0.0
    return {
        "case": case,
        "n_cpis": n_cpis,
        "warmup": warmup,
        "stripe_factor": stripe_factor,
        "interval": interval,
        "wall_plain_s": round(wall_plain, 4),
        "wall_metrics_s": round(wall_metrics, 4),
        "overhead_frac": round(overhead, 4),
        "samples": metered.metrics["samples"],
        "calls": calls,
        "result_hash": _stripped_hash(metered),
    }


def measure_kernel_ops() -> Dict[str, Any]:
    """Kernel scheduling throughput on the synthetic workload."""
    wall, calls, entries = _profiled(_kernel_workload)
    return {
        "entries": entries,
        "wall_s": round(wall, 4),
        "entries_per_s": round(entries / wall) if wall > 0 else None,
        "calls": calls,
    }


def measure_kernel_ops_calendar() -> Dict[str, Any]:
    """Calendar-queue throughput plus the ring's cumulative counters."""
    wall, calls, k = _profiled(_calendar_workload)
    qs = k.queue_stats()
    return {
        "entries": qs["total_entries"],
        "calendar_entries": qs["calendar_entries"],
        "lane_ratio": round(qs["lane_ratio"], 4),
        "advances": qs["advances"],
        "fallback_scans": qs["fallback_scans"],
        "resizes": qs["resizes"],
        "wall_s": round(wall, 4),
        "entries_per_s": (
            round(qs["total_entries"] / wall) if wall > 0 else None
        ),
        "calls": calls,
    }


def measure_reproduce_cold() -> Dict[str, Any]:
    """Wall time of the full paper reproduction with a cold cache."""
    from repro.bench.engine import SweepRunner
    from repro.bench.experiments import (
        run_fig8,
        run_table1,
        run_table2,
        run_table3,
        run_table4,
    )
    from repro.core.context import ExecutionConfig

    cfg = ExecutionConfig(n_cpis=8, warmup=2)

    def _reproduce():
        runner = SweepRunner(jobs=1, store=None)  # cold: no result cache
        t1 = run_table1(cfg=cfg, runner=runner)
        run_table2(cfg=cfg, runner=runner)
        t3 = run_table3(cfg=cfg, runner=runner)
        run_table4(table1=t1, table3=t3, runner=runner)
        run_fig8(table1=t1, table3=t3, runner=runner)
        return runner.executed

    gc.collect()
    t0 = time.perf_counter()
    executed = _reproduce()
    wall = time.perf_counter() - t0
    return {"wall_s": round(wall, 2), "cells_executed": executed}


#: name -> zero-argument producer of that section's measurement.
_SECTIONS: Dict[str, Callable[[], Dict[str, Any]]] = {
    "kernel_ops": measure_kernel_ops,
    "kernel_ops_calendar": measure_kernel_ops_calendar,
    "cell_smoke": lambda: measure_cell(
        "embedded", 1, n_cpis=4, warmup=1, stripe_factor=16
    ),
    "cell_two_phase_smoke": lambda: measure_cell(
        "collective-two-phase", 1, n_cpis=4, warmup=1, stripe_factor=16
    ),
    "cell_list_io_smoke": lambda: measure_cell(
        "list-io", 1, n_cpis=4, warmup=1, stripe_factor=16
    ),
    "cell_two_tenant_smoke": lambda: measure_scenario_cell(
        ("embedded-io", "separate-io"), 1, n_cpis=4, warmup=1,
        stripe_factor=8
    ),
    "cell_embedded_case3": lambda: measure_cell("embedded", 3),
    "cell_separate_case3": lambda: measure_cell("separate", 3),
    "metrics_overhead": measure_metrics_overhead,
    "reproduce_cold": measure_reproduce_cold,
}


def run_suite(only: Optional[List[str]] = None) -> Dict[str, Any]:
    """Run the selected benchmark sections (all by default)."""
    names = list(_SECTIONS) if not only else list(only)
    out: Dict[str, Any] = {"schema": 1, "pre_overhaul": PRE_OVERHAUL}
    for name in names:
        if name not in _SECTIONS:
            raise KeyError(
                f"unknown benchmark section {name!r}; "
                f"choose from {', '.join(_SECTIONS)}"
            )
        print(f"[perfsuite] running {name} ...", file=sys.stderr)
        out[name] = _SECTIONS[name]()
    return out


def check_against(
    baseline: Dict[str, Any],
    current: Dict[str, Any],
    tolerance: float = DEFAULT_TOLERANCE,
) -> List[str]:
    """Compare ``current`` measurements against a committed ``baseline``.

    Returns a list of human-readable failures (empty = pass).  Gated
    metrics: function-call counts (must not grow more than ``tolerance``
    relative) and result hashes (must match exactly).  Sections missing
    from either side are skipped, so a quick run checking only
    ``cell_smoke`` works against a full baseline file.
    """
    failures: List[str] = []
    for name, cur in current.items():
        base = baseline.get(name)
        if not isinstance(cur, dict) or not isinstance(base, dict):
            continue
        if "calls" in cur and "calls" in base:
            limit = base["calls"] * (1.0 + tolerance)
            if cur["calls"] > limit:
                failures.append(
                    f"{name}: {cur['calls']} calls exceeds baseline "
                    f"{base['calls']} by more than {tolerance:.0%}"
                )
        if "result_hash" in cur and "result_hash" in base:
            if cur["result_hash"] != base["result_hash"]:
                failures.append(
                    f"{name}: result hash {cur['result_hash'][:12]} != "
                    f"baseline {base['result_hash'][:12]} "
                    "(simulation results changed)"
                )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.perfsuite",
        description="kernel/pipeline microbenchmarks with a JSON baseline",
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--write", metavar="FILE",
                      help="run the suite and write the baseline JSON")
    mode.add_argument("--check", metavar="FILE",
                      help="run the suite and compare against a baseline")
    parser.add_argument("--only", action="append", metavar="SECTION",
                        help=f"run a subset (choices: {', '.join(_SECTIONS)}); "
                        "repeatable")
    parser.add_argument("--tolerance", type=float, default=DEFAULT_TOLERANCE,
                        help="allowed relative call-count growth for --check "
                        f"(default {DEFAULT_TOLERANCE})")
    args = parser.parse_args(argv)

    results = run_suite(only=args.only)
    if args.write:
        with open(args.write, "w") as f:
            json.dump(results, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"baseline written to {args.write}")
        return 0

    with open(args.check) as f:
        baseline = json.load(f)
    failures = check_against(baseline, results, tolerance=args.tolerance)
    for name, section in results.items():
        if isinstance(section, dict) and "calls" in section:
            base = baseline.get(name, {})
            print(f"{name}: {section['calls']} calls "
                  f"(baseline {base.get('calls', '?')}), "
                  f"{section.get('wall_s', '?')} s")
    if failures:
        for failure in failures:
            print(f"PERF REGRESSION: {failure}", file=sys.stderr)
        return 1
    print("perf check passed")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
