"""Experiment harness: one driver per paper table/figure.

Each ``run_*`` function sweeps the paper's configurations, returns a
structured result, and can render itself in the paper's table/figure
format.  The pytest-benchmark files under ``benchmarks/`` are thin
wrappers over these drivers, so every artifact can also be regenerated
from a plain Python session::

    from repro.bench import run_table1
    print(run_table1().render())
"""

from repro.bench.artifacts import (
    DiscoveredArtifacts,
    ParsedTextArtifact,
    discover_artifacts,
    parse_text_artifact,
)
from repro.bench.cases import PAPER_CASES, BenchCase, paper_cases, paper_filesystems
from repro.bench.engine import (
    PIPELINES,
    DiskFault,
    ExperimentSpec,
    NodeFault,
    SweepRunner,
    WriterLoad,
    run_spec,
)
from repro.bench.experiments import (
    CellResult,
    ExperimentResult,
    InterferenceAblation,
    run_ablation_async,
    run_ablation_bottleneck_migration,
    run_ablation_combination_analysis,
    run_ablation_interference,
    run_ablation_straggler_disk,
    run_ablation_straggler_node,
    run_ablation_stripe_sweep,
    run_ablation_writer_interference,
    run_fig8,
    run_single,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
)
from repro.bench.store import ResultStore

__all__ = [
    "DiscoveredArtifacts",
    "ParsedTextArtifact",
    "discover_artifacts",
    "parse_text_artifact",
    "BenchCase",
    "PAPER_CASES",
    "paper_cases",
    "paper_filesystems",
    "ExperimentSpec",
    "SweepRunner",
    "ResultStore",
    "run_spec",
    "DiskFault",
    "NodeFault",
    "WriterLoad",
    "CellResult",
    "ExperimentResult",
    "run_single",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_fig8",
    "PIPELINES",
    "run_ablation_stripe_sweep",
    "run_ablation_bottleneck_migration",
    "run_ablation_straggler_disk",
    "run_ablation_straggler_node",
    "run_ablation_async",
    "run_ablation_combination_analysis",
    "run_ablation_writer_interference",
    "run_ablation_interference",
    "InterferenceAblation",
]
