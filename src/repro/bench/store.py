"""Content-addressed on-disk store for experiment results.

Each cached cell lives at ``<root>/<spec-hash>.json`` — the SHA-256 of
the spec's canonical JSON (see
:meth:`~repro.bench.engine.ExperimentSpec.spec_hash`) names the file, so
a result can only ever be found by the exact spec that produced it.
Entries embed the full spec alongside the result, making every cached
cell a self-describing, diffable reproduction artifact; lookups verify
the embedded spec to rule out hash collisions and schema drift.

Writes are atomic (temp file + ``os.replace``), so concurrent sweep
workers and interrupted runs never leave a truncated entry behind.

Entries additionally embed a **substrate fingerprint** — a hash over the
spec schema and the source of the simulation substrate packages
(``repro.sim``, ``repro.pfs``, ``repro.machine``).  A cached result is
only a hit while the simulator that produced it is byte-identical to the
one running now; editing any substrate file turns every old entry into a
miss instead of silently serving stale physics.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import List, Optional, Union

from repro.core.executor import PipelineResult

__all__ = ["ResultStore", "DEFAULT_CACHE_DIR", "substrate_fingerprint"]

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_DIR = Path(".cache") / "experiments"

#: On-disk entry schema; bump on incompatible layout changes.
#: 2: entries carry a substrate fingerprint (stale-simulator detection).
STORE_SCHEMA = 2

#: Packages whose source defines the simulation's physics; any change to
#: them invalidates cached results.
_SUBSTRATE_PACKAGES = ("sim", "pfs", "machine")

_fingerprint_cache: Optional[str] = None


def _compute_fingerprint(files: List[Path], spec_schema: int) -> str:
    """Hash name + content of ``files`` (sorted by name) with the schema."""
    h = hashlib.sha256()
    h.update(f"spec_schema={spec_schema}".encode("utf-8"))
    for path in sorted(files, key=lambda p: p.name):
        h.update(path.name.encode("utf-8"))
        h.update(b"\0")
        try:
            h.update(path.read_bytes())
        except OSError:
            h.update(b"<unreadable>")
        h.update(b"\0")
    return h.hexdigest()


def substrate_fingerprint() -> str:
    """Fingerprint of the currently-imported simulation substrate.

    Covers every ``*.py`` of :mod:`repro.sim`, :mod:`repro.pfs`, and
    :mod:`repro.machine` plus ``SPEC_SCHEMA``.  Memoized per process —
    the substrate cannot change under a running interpreter.
    """
    global _fingerprint_cache
    if _fingerprint_cache is None:
        from repro.bench.engine import SPEC_SCHEMA
        import repro

        pkg_root = Path(repro.__file__).parent
        files: List[Path] = []
        for pkg in _SUBSTRATE_PACKAGES:
            files.extend((pkg_root / pkg).glob("*.py"))
        _fingerprint_cache = _compute_fingerprint(files, SPEC_SCHEMA)
    return _fingerprint_cache


class ResultStore:
    """A directory of ``<spec-hash>.json`` experiment results."""

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)

    def path_for(self, spec_hash: str) -> Path:
        """File that does / would hold the given spec hash's result."""
        return self.root / f"{spec_hash}.json"

    def __contains__(self, spec) -> bool:
        return self.load(spec.spec_hash()) is not None

    def __len__(self) -> int:
        return len(self.hashes())

    def hashes(self) -> List[str]:
        """Spec hashes present, sorted."""
        if not self.root.is_dir():
            return []
        return sorted(p.stem for p in self.root.glob("*.json"))

    def load(self, spec_hash: str) -> Optional[dict]:
        """Raw entry payload for a hash, or None if absent/corrupt."""
        path = self.path_for(spec_hash)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(payload, dict) or payload.get("schema") != STORE_SCHEMA:
            return None
        return payload

    def get(self, spec) -> Optional[PipelineResult]:
        """The stored result of ``spec``, or None on a miss.

        The embedded spec must match exactly — a hash collision or a
        serialization-schema drift reads as a miss, never as a wrong
        result.  Likewise the entry's substrate fingerprint: a result
        simulated by a since-modified simulator reads as a miss.
        """
        payload = self.load(spec.spec_hash())
        if payload is None or payload.get("spec") != spec.to_dict():
            return None
        if payload.get("substrate") != substrate_fingerprint():
            return None
        try:
            return PipelineResult.from_dict(payload["result"])
        except (KeyError, TypeError, ValueError):
            return None

    def put(self, spec, result: PipelineResult) -> Path:
        """Store ``result`` under ``spec``'s hash (atomically)."""
        self.root.mkdir(parents=True, exist_ok=True)
        spec_hash = spec.spec_hash()
        target = self.path_for(spec_hash)
        payload = {
            "schema": STORE_SCHEMA,
            "substrate": substrate_fingerprint(),
            "spec_hash": spec_hash,
            "spec": spec.to_dict(),
            "result": result.to_dict(),
        }
        tmp = target.with_name(f".{target.name}.{os.getpid()}.tmp")
        tmp.write_text(json.dumps(payload), encoding="utf-8")
        tmp.replace(target)
        return target

    def entries(self) -> List[dict]:
        """One summary dict per stored cell (for listings)."""
        out = []
        for spec_hash in self.hashes():
            payload = self.load(spec_hash)
            if payload is None:
                continue
            spec = payload.get("spec", {})
            result = payload.get("result", {})
            meas = result.get("measurement", {})
            out.append(
                {
                    "hash": spec_hash,
                    "pipeline": spec.get("pipeline"),
                    "machine": spec.get("machine"),
                    "fs": result.get("fs_label"),
                    "nodes": result.get("spec", {}).get("tasks") and sum(
                        t["n_nodes"] for t in result["spec"]["tasks"]
                    ),
                    "n_cpis": spec.get("cfg", {}).get("n_cpis"),
                    "seed": spec.get("seed"),
                    "throughput": meas.get("throughput"),
                    "latency": meas.get("latency"),
                }
            )
        return out

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for spec_hash in self.hashes():
            try:
                self.path_for(spec_hash).unlink()
                removed += 1
            except OSError:
                pass
        return removed
