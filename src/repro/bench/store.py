"""Content-addressed on-disk store for experiment results.

Each cached cell lives at ``<root>/<spec-hash>.json`` — the SHA-256 of
the spec's canonical JSON (see
:meth:`~repro.bench.engine.ExperimentSpec.spec_hash`) names the file, so
a result can only ever be found by the exact spec that produced it.
Entries embed the full spec alongside the result, making every cached
cell a self-describing, diffable reproduction artifact; lookups verify
the embedded spec to rule out hash collisions and schema drift.

Writes are atomic (temp file + ``os.replace``) and **first-write-wins**:
because entries are content-addressed, any two valid writers of the same
hash are writing identical bytes, so a writer that finds a valid entry
already in place simply skips its own write.  Concurrent sweep workers,
scheduler threads, and interrupted runs never leave a truncated entry
behind; temp files orphaned by a killed writer are swept on store open.

Entries additionally embed a **substrate fingerprint** — a hash over the
spec schema and the source of the simulation substrate packages
(``repro.sim``, ``repro.pfs``, ``repro.machine``).  A cached result is
only a hit while the simulator that produced it is byte-identical to the
one running now; editing any substrate file turns every old entry into a
miss instead of silently serving stale physics.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import time
from pathlib import Path
from typing import List, Optional, Union

from repro.core.executor import PipelineResult

__all__ = ["ResultStore", "DEFAULT_CACHE_DIR", "substrate_fingerprint"]

#: Default cache location, relative to the working directory.
DEFAULT_CACHE_DIR = Path(".cache") / "experiments"

#: On-disk entry schema; bump on incompatible layout changes.
#: 2: entries carry a substrate fingerprint (stale-simulator detection).
STORE_SCHEMA = 2

#: Packages whose source defines the simulation's physics; any change to
#: them invalidates cached results.
_SUBSTRATE_PACKAGES = ("sim", "pfs", "machine")

_fingerprint_cache: Optional[str] = None


def _compute_fingerprint(files: List[Path], spec_schema: int) -> str:
    """Hash name + content of ``files`` (sorted by name) with the schema."""
    h = hashlib.sha256()
    h.update(f"spec_schema={spec_schema}".encode("utf-8"))
    for path in sorted(files, key=lambda p: p.name):
        h.update(path.name.encode("utf-8"))
        h.update(b"\0")
        try:
            h.update(path.read_bytes())
        except OSError:
            h.update(b"<unreadable>")
        h.update(b"\0")
    return h.hexdigest()


def substrate_fingerprint() -> str:
    """Fingerprint of the currently-imported simulation substrate.

    Covers every ``*.py`` of :mod:`repro.sim`, :mod:`repro.pfs`, and
    :mod:`repro.machine` plus ``SPEC_SCHEMA``.  Memoized per process —
    the substrate cannot change under a running interpreter.
    """
    global _fingerprint_cache
    if _fingerprint_cache is None:
        from repro.bench.engine import SPEC_SCHEMA
        import repro

        pkg_root = Path(repro.__file__).parent
        files: List[Path] = []
        for pkg in _SUBSTRATE_PACKAGES:
            files.extend((pkg_root / pkg).glob("*.py"))
        _fingerprint_cache = _compute_fingerprint(files, SPEC_SCHEMA)
    return _fingerprint_cache


#: A ``*.tmp`` older than this on store open belongs to a dead writer.
_ORPHAN_TMP_AGE = 60.0

#: Distinguishes temp files of concurrent writers in one process (the
#: scheduler's dispatcher and a client thread may both write).
_tmp_seq = itertools.count(1)


class ResultStore:
    """A directory of ``<spec-hash>.json`` experiment results."""

    def __init__(self, root: Union[str, Path] = DEFAULT_CACHE_DIR) -> None:
        self.root = Path(root)
        self.sweep_orphans()

    def sweep_orphans(self, max_age: float = _ORPHAN_TMP_AGE) -> int:
        """Remove temp files abandoned by killed writers.

        Only temp files older than ``max_age`` seconds go — a younger
        one may belong to a live writer about to rename it into place.
        Returns the number removed.
        """
        if not self.root.is_dir():
            return 0
        removed = 0
        cutoff = time.time() - max_age
        for tmp in self.root.glob(".*.tmp"):
            try:
                if tmp.stat().st_mtime <= cutoff:
                    tmp.unlink()
                    removed += 1
            except OSError:
                pass
        return removed

    def path_for(self, spec_hash: str) -> Path:
        """File that does / would hold the given spec hash's result."""
        return self.root / f"{spec_hash}.json"

    def __contains__(self, spec) -> bool:
        return self.load(spec.spec_hash()) is not None

    def __len__(self) -> int:
        return len(self.hashes())

    def hashes(self) -> List[str]:
        """Spec hashes present, sorted."""
        if not self.root.is_dir():
            return []
        return sorted(p.stem for p in self.root.glob("*.json"))

    def load(self, spec_hash: str) -> Optional[dict]:
        """Raw entry payload for a hash, or None if absent/corrupt."""
        path = self.path_for(spec_hash)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if not isinstance(payload, dict) or payload.get("schema") != STORE_SCHEMA:
            return None
        return payload

    def get_dict(self, spec) -> Optional[dict]:
        """The stored *raw result dict* of ``spec``, or None on a miss.

        The embedded spec must match exactly — a hash collision or a
        serialization-schema drift reads as a miss, never as a wrong
        result.  Likewise the entry's substrate fingerprint: a result
        simulated by a since-modified simulator reads as a miss.

        This is the service-tier lookup: the scheduler streams raw
        payload dicts and only the final consumer rehydrates them.
        """
        payload = self.load(spec.spec_hash())
        if payload is None or payload.get("spec") != spec.to_dict():
            return None
        if payload.get("substrate") != substrate_fingerprint():
            return None
        result = payload.get("result")
        return result if isinstance(result, dict) else None

    def get(self, spec) -> Optional[PipelineResult]:
        """The stored result of ``spec``, or None on a miss."""
        result = self.get_dict(spec)
        if result is None:
            return None
        try:
            return PipelineResult.from_dict(result)
        except (KeyError, TypeError, ValueError):
            return None

    def put_dict(self, spec, result: dict) -> Path:
        """Store a raw result dict under ``spec``'s hash (atomically).

        First write wins: the store is content-addressed, so any two
        valid writers of one hash carry identical results, and a writer
        that finds a valid current entry in place skips rewriting it —
        the only cross-writer race left is ``os.replace`` against
        identical bytes, which is safe in either order.  A present but
        stale entry (old substrate, corrupt JSON) *is* overwritten.

        The one asymmetric exception is surrogate predictions
        (``result["source"] == "predicted"``, see
        :mod:`repro.bench.surrogate`): a simulated result always
        *upgrades* a stored prediction for the same spec, while a
        prediction never overwrites any existing valid entry — the store
        can only ever get more authoritative.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        spec_hash = spec.spec_hash()
        target = self.path_for(spec_hash)
        existing = self.get_dict(spec)
        if existing is not None and (
            result.get("source") == "predicted"
            or existing.get("source") != "predicted"
        ):
            return target
        payload = {
            "schema": STORE_SCHEMA,
            "substrate": substrate_fingerprint(),
            "spec_hash": spec_hash,
            "spec": spec.to_dict(),
            "result": result,
        }
        tmp = target.with_name(
            f".{target.name}.{os.getpid()}.{next(_tmp_seq)}.tmp"
        )
        tmp.write_text(json.dumps(payload), encoding="utf-8")
        tmp.replace(target)
        return target

    def put(self, spec, result: PipelineResult) -> Path:
        """Store ``result`` under ``spec``'s hash (atomically)."""
        return self.put_dict(spec, result.to_dict())

    def entries(self) -> List[dict]:
        """One summary dict per stored cell (for listings)."""
        out = []
        for spec_hash in self.hashes():
            payload = self.load(spec_hash)
            if payload is None:
                continue
            spec = payload.get("spec", {})
            result = payload.get("result", {})
            meas = result.get("measurement", {})
            try:
                st = self.path_for(spec_hash).stat()
                size_bytes, mtime = st.st_size, st.st_mtime
            except OSError:
                size_bytes, mtime = 0, 0.0
            out.append(
                {
                    "hash": spec_hash,
                    "size_bytes": size_bytes,
                    "mtime": mtime,
                    "pipeline": spec.get("pipeline"),
                    "machine": spec.get("machine"),
                    "fs": result.get("fs_label"),
                    "nodes": result.get("spec", {}).get("tasks") and sum(
                        t["n_nodes"] for t in result["spec"]["tasks"]
                    ),
                    "n_cpis": spec.get("cfg", {}).get("n_cpis"),
                    "seed": spec.get("seed"),
                    "throughput": meas.get("throughput"),
                    "latency": meas.get("latency"),
                    "source": result.get("source", "simulated"),
                }
            )
        return out

    def summary(self) -> dict:
        """Store-level totals for listing footers: entry count, total
        bytes on disk, and the on-disk schema version."""
        total = 0
        count = 0
        for spec_hash in self.hashes():
            count += 1
            try:
                total += self.path_for(spec_hash).stat().st_size
            except OSError:
                pass
        return {"entries": count, "total_bytes": total, "schema": STORE_SCHEMA}

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for spec_hash in self.hashes():
            try:
                self.path_for(spec_hash).unlink()
                removed += 1
            except OSError:
                pass
        return removed
