"""Analytic surrogate screening for experiment sweeps.

The paper's own performance model (Eqs. 1-14, :mod:`repro.core.model`)
predicts most sweep cells well away from any *decision boundary* — the
places where a conclusion could flip: which I/O strategy wins, which
task is the bottleneck.  Simulating those far-from-boundary cells buys
no information the model doesn't already give, so this module lets the
engine skip them:

* :func:`model_for_spec` builds the :class:`~repro.core.model.PipelineModel`
  for one :class:`~repro.bench.engine.ExperimentSpec` (including the
  first-order :class:`~repro.core.model.IOModel` with the same disk
  parameters the executor would use).
* :class:`SurrogateScreen` calibrates the model against cells already
  simulated into a :class:`~repro.bench.store.ResultStore`, then
  :meth:`~SurrogateScreen.plan` partitions a batch of specs into
  *simulate* and *predict* decisions.
* :func:`predicted_result` materialises a prediction as a
  :class:`~repro.core.executor.PipelineResult` tagged
  ``source="predicted"`` with its error bound attached, so predictions
  flow through the exact plumbing (store, wire format, sweep results)
  as simulations — and are never mistaken for them.

Calibration: bias first, then bounds
------------------------------------
The first-order model's *absolute* error is large (tens of percent: it
omits queueing and pipeline-fill effects) but highly *systematic*: the
sim/model ratio is nearly constant within a (machine, pipeline, node
count) group across file-system configurations.  So the screen
calibrates a multiplicative **scale** per group (geometric mean of the
observed sim/model ratios, separately for throughput and latency) and a
**residual bound** (worst ratio spread around the scale, times a safety
factor, plus a floor).  Predictions are bias-corrected model values;
the bound covers what bias correction cannot.

Comparisons between two strategies on the *same scenario* are tighter
still: the model's bias is shared by both sides and cancels, so the
**pairwise bound** — calibrated from scenarios simulated under both
strategies — is typically a few percent even where absolute bounds are
15%+.  Strategy-crossover decisions use the pairwise bound.

A cell is simulated when the model cannot vouch for the conclusion: it
carries a fault injection the model doesn't capture
(``"unpredictable"``), its group or strategy pair lacks calibration
evidence (``"calibration"``), its predicted bottleneck margin is inside
the structural band — a bottleneck flip could hide there
(``"bottleneck"``) — or its strategy comparison is *contested*: the
predicted gap to a sibling strategy is inside the pairwise band yet too
large to certify an ε-equivalence (``"crossover"``).  Everything else
is ``"clear"`` and answered from the model.

Screening is opt-in per spec (``ExperimentSpec.screening``):

* ``"off"``    — today's behaviour, every cell simulated;
* ``"screen"`` — simulate boundary/uncalibrated/faulty cells, predict
  the rest;
* ``"predict-all"`` — predict every model-predictable cell (faulty
  cells are still simulated); a pure model sweep with bounds attached.

See ``docs/surrogate.md`` for the full soundness argument.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.executor import PipelineResult
from repro.core.metrics import PipelineMeasurement, TaskPhaseStats
from repro.core.model import IOModel, PipelineModel
from repro.core.task import TaskKind
from repro.errors import ConfigurationError
from repro.trace.collector import TraceCollector

__all__ = [
    "SCREENING_MODES",
    "DEFAULT_BOUND",
    "GroupCalibration",
    "Prediction",
    "ScreenDecision",
    "ScreenPlan",
    "SurrogateScreen",
    "model_for_spec",
    "predictable",
    "predicted_result",
]

#: Legal values of ``ExperimentSpec.screening``.
SCREENING_MODES = ("off", "screen", "predict-all")

#: Relative error bound assumed for a group with no (or too little)
#: calibration evidence.  Deliberately wide: with it, essentially every
#: contested comparison lands inside the band and gets simulated, so an
#: uncalibrated screen degrades toward full simulation, never toward
#: silent wrong answers.
DEFAULT_BOUND = 0.5

#: Calibrated bounds are ``safety * worst-residual + floor``: model
#: error on unseen cells can exceed the seen worst case, and a handful
#: of lucky calibration cells must not produce a near-zero band.
SAFETY_FACTOR = 1.5
BOUND_FLOOR = 0.05

#: Floor on the pairwise (same-scenario, cross-strategy) bound.
PAIR_FLOOR = 0.02

#: Two strategies whose true throughputs differ by less than this are
#: one conclusion: "equivalent".  The screen may certify a predicted
#: near-tie as equivalence when prediction gap + pairwise bound stays
#: under this tolerance.
TIE_TOLERANCE = 0.05

#: Bottleneck flips hide where the predicted I/O cycle time and the top
#: compute-task time are within this relative margin of each other (the
#: knee of the stripe-factor curves).
MIN_BOTTLENECK_MARGIN = 0.10

#: Groups with fewer calibrated cells than this keep :data:`DEFAULT_BOUND`.
MIN_CALIBRATION = 2


def predictable(spec) -> bool:
    """True if the analytic model covers everything the cell simulates.

    Fault injections (slow/flaky/crashing disks and nodes, concurrent
    writers) are outside Eqs. 1-14, so any cell carrying one must be
    simulated regardless of screening mode.
    """
    return (
        spec.disk_fault is None
        and spec.node_fault is None
        and spec.writer is None
        and spec.server_crash is None
        and spec.flaky_disk is None
    )


def model_for_spec(spec) -> PipelineModel:
    """The paper's analytic model for one experiment cell.

    Uses the same resolved disk parameters the executor would build its
    stripe servers with (spec overrides, else machine preset defaults).
    """
    from repro.bench.engine import MACHINES

    preset = MACHINES[spec.machine]()
    fs = spec.fs
    io_model = IOModel(
        stripe_factor=fs.stripe_factor,
        stripe_unit=fs.stripe_unit,
        disk_bw=fs.disk_bw or preset.disk_bw,
        disk_overhead=(
            fs.disk_overhead if fs.disk_overhead is not None else preset.disk_overhead
        ),
        asynchronous=fs.kind == "pfs",
    )
    return PipelineModel(spec.build_pipeline(), spec.params, preset, io_model)


def group_key(spec) -> Tuple[str, str, int]:
    """Calibration group of a cell: (machine, pipeline, compute nodes).

    Model error is dominated by what the model leaves out — queueing on
    a given machine's links and disks, a given pipeline's traffic shape
    at a given scale — so the sim/model bias transfers within these
    groups and not across them.
    """
    return (spec.machine, spec.pipeline, spec.assignment.total_without_io)


def pair_key(spec_a, spec_b) -> Tuple[str, str, str, int]:
    """Calibration group of a cross-strategy comparison."""
    lo, hi = sorted((spec_a.pipeline, spec_b.pipeline))
    return (spec_a.machine, lo, hi, spec_a.assignment.total_without_io)


def scenario_key(spec) -> str:
    """Everything about a cell *except* its pipeline/strategy.

    Two specs with equal scenario keys are the same experiment run under
    different I/O strategies — exactly the pairs a strategy-crossover
    conclusion compares.
    """
    d = spec.to_dict()
    d.pop("pipeline")
    return json.dumps(d, sort_keys=True, separators=(",", ":"))


def _geomean(values: List[float]) -> float:
    return math.exp(sum(math.log(v) for v in values) / len(values))


@dataclass(frozen=True)
class GroupCalibration:
    """Bias scales and residual bounds for one calibration group."""

    scale_tp: float = 1.0
    scale_lat: float = 1.0
    bound_tp: float = DEFAULT_BOUND
    bound_lat: float = DEFAULT_BOUND
    n: int = 0

    @property
    def bound(self) -> float:
        """Headline bound: covers both calibrated metrics."""
        return max(self.bound_tp, self.bound_lat)


#: Calibration applied when a group has no usable evidence.
UNCALIBRATED = GroupCalibration()


def io_boundary_margin(model: PipelineModel) -> float:
    """Relative distance of a cell from the I/O-vs-compute boundary.

    The bottleneck flip the file-system sweeps care about is between the
    predicted I/O cycle time and the largest non-I/O task time (the
    knee of the stripe-factor curves).  Model bias cancels in the ratio.
    Returns ``inf`` for pipelines that do no I/O — there, the task
    ranking does not depend on the file system at all, so the
    calibration cells already witnessed it.
    """
    io_kinds = (TaskKind.PARALLEL_READ, TaskKind.DOPPLER_EMBEDDED_IO)
    io_tasks = [t for t in model.spec.tasks if t.kind in io_kinds]
    if not io_tasks or model.io_model is None:
        return float("inf")
    io = max(
        model.io_model.cycle_time(t.n_nodes, model.costs.cube_bytes())
        for t in io_tasks
    )
    io_names = {t.name for t in io_tasks}
    times = model.predicted_times()
    rest = max((v for n, v in times.items() if n not in io_names), default=0.0)
    top = max(io, rest)
    if top <= 0.0:
        return float("inf")
    return abs(io - rest) / top


@dataclass(frozen=True)
class Prediction:
    """Bias-corrected model outputs for one cell plus error bands."""

    throughput: float
    latency: float
    model_throughput: float      #: raw (uncorrected) model value
    model_latency: float
    task_times: Dict[str, float]
    bound_tp: float
    bound_lat: float
    calibrated: int              #: store cells that calibrated the group
    group: Tuple[str, str, int] = ("", "", 0)
    #: Distance from the I/O-vs-compute boundary (see
    #: :func:`io_boundary_margin`); ``inf`` for I/O-free pipelines.
    io_margin: float = float("inf")

    @property
    def bound(self) -> float:
        """Headline relative error bound (worst of the two metrics)."""
        return max(self.bound_tp, self.bound_lat)

    @property
    def bottleneck_task(self) -> str:
        return max(self.task_times, key=self.task_times.__getitem__)


@dataclass(frozen=True)
class ScreenDecision:
    """One cell's screening outcome."""

    index: int
    action: str                      #: ``"simulate"`` or ``"predict"``
    reason: str                      #: why (see module docstring)
    prediction: Optional[Prediction] = None


@dataclass
class ScreenPlan:
    """A batch's screening decisions, in submission order."""

    decisions: List[ScreenDecision] = field(default_factory=list)

    @property
    def n_simulated(self) -> int:
        return sum(1 for d in self.decisions if d.action == "simulate")

    @property
    def n_predicted(self) -> int:
        return sum(1 for d in self.decisions if d.action == "predict")

    def summary(self) -> Dict[str, int]:
        """Reason histogram, for logging and tests."""
        out: Dict[str, int] = {}
        for d in self.decisions:
            out[d.reason] = out.get(d.reason, 0) + 1
        return out


class SurrogateScreen:
    """Calibrated model-vs-boundary screen over experiment batches.

    Parameters
    ----------
    store:
        Optional :class:`~repro.bench.store.ResultStore` holding
        previously *simulated* cells; their model-vs-measured ratios
        calibrate the per-group scales and bounds.  Entries tagged
        ``source="predicted"`` are never used for calibration (that
        would let the model vouch for itself).
    safety / default_bound / min_calibration / tie_tolerance:
        See the module-level constants they default to.
    """

    def __init__(
        self,
        store=None,
        *,
        safety: float = SAFETY_FACTOR,
        default_bound: float = DEFAULT_BOUND,
        min_calibration: int = MIN_CALIBRATION,
        tie_tolerance: float = TIE_TOLERANCE,
    ) -> None:
        self.store = store
        self.safety = safety
        self.default_bound = default_bound
        self.min_calibration = min_calibration
        self.tie_tolerance = tie_tolerance
        self._groups: Optional[Dict[Tuple[str, str, int], GroupCalibration]] = None
        self._pairs: Dict[Tuple[str, str, str, int], Tuple[float, int]] = {}

    # -- calibration -------------------------------------------------------
    def _calibration_rows(self) -> List[Tuple[object, float, float, float, float]]:
        """(spec, sim_tp, sim_lat, model_tp, model_lat) per usable
        simulated store cell."""
        from repro.bench.engine import ExperimentSpec

        rows: List[Tuple[object, float, float, float, float]] = []
        if self.store is None:
            return rows
        for spec_hash in self.store.hashes():
            payload = self.store.load(spec_hash)
            if payload is None:
                continue
            result = payload.get("result", {})
            if result.get("source") == "predicted":
                continue
            try:
                spec = ExperimentSpec.from_dict(payload["spec"])
            except Exception:
                continue
            if not predictable(spec):
                continue
            meas = result.get("measurement", {})
            sim_tp = meas.get("throughput")
            sim_lat = meas.get("latency")
            if not sim_tp or not sim_lat or sim_tp <= 0 or sim_lat <= 0:
                continue
            try:
                model = model_for_spec(spec)
                tp = model.predicted_throughput()
                lat = model.predicted_latency()
            except Exception:
                continue
            if tp <= 0 or lat <= 0:
                continue
            rows.append((spec, sim_tp, sim_lat, tp, lat))
        return rows

    def _calibrate(self) -> None:
        rows = self._calibration_rows()

        # Per-group bias scale (geometric mean of sim/model) + residual
        # bound around it, separately for throughput and latency.
        by_group: Dict[Tuple[str, str, int], List[Tuple[float, float]]] = {}
        for spec, sim_tp, sim_lat, tp, lat in rows:
            by_group.setdefault(group_key(spec), []).append(
                (sim_tp / tp, sim_lat / lat)
            )
        groups: Dict[Tuple[str, str, int], GroupCalibration] = {}
        for g, ratios in by_group.items():
            scale_tp = _geomean([r for r, _ in ratios])
            scale_lat = _geomean([r for _, r in ratios])
            res_tp = max(abs(r / scale_tp - 1.0) for r, _ in ratios)
            res_lat = max(abs(r / scale_lat - 1.0) for _, r in ratios)
            groups[g] = GroupCalibration(
                scale_tp=scale_tp,
                scale_lat=scale_lat,
                bound_tp=self.safety * res_tp + BOUND_FLOOR,
                bound_lat=self.safety * res_lat + BOUND_FLOOR,
                n=len(ratios),
            )
        self._groups = groups

        # Pairwise bound: scenarios simulated under >= 2 strategies
        # calibrate how well the model predicts the *ratio* between
        # strategies (shared bias cancels, so this is much tighter).
        by_scenario: Dict[str, List[Tuple[object, float, float]]] = {}
        for spec, sim_tp, _sim_lat, tp, _lat in rows:
            by_scenario.setdefault(scenario_key(spec), []).append(
                (spec, sim_tp, tp)
            )
        pair_res: Dict[Tuple[str, str, str, int], List[float]] = {}
        for members in by_scenario.values():
            for i in range(len(members)):
                for j in range(i + 1, len(members)):
                    sa, sim_a, mod_a = members[i]
                    sb, sim_b, mod_b = members[j]
                    if sa.pipeline == sb.pipeline:
                        continue
                    d = (mod_a / mod_b) / (sim_a / sim_b)
                    pair_res.setdefault(pair_key(sa, sb), []).append(
                        abs(d - 1.0)
                    )
        self._pairs = {
            k: (self.safety * max(res) + PAIR_FLOOR, len(res))
            for k, res in pair_res.items()
        }

    def _group_calibration(self, spec) -> GroupCalibration:
        if self._groups is None:
            self._calibrate()
        cal = self._groups.get(group_key(spec), UNCALIBRATED)
        if cal.n < self.min_calibration:
            # Too little evidence: keep the observed scales (a biased
            # centre beats none) but refuse to tighten the bounds.
            return GroupCalibration(
                scale_tp=cal.scale_tp,
                scale_lat=cal.scale_lat,
                bound_tp=self.default_bound,
                bound_lat=self.default_bound,
                n=cal.n,
            )
        return cal

    def pair_bound(self, spec_a, spec_b) -> Optional[float]:
        """Calibrated cross-strategy ratio bound, or None if the pair
        has no calibration scenarios."""
        if self._groups is None:
            self._calibrate()
        entry = self._pairs.get(pair_key(spec_a, spec_b))
        return entry[0] if entry is not None else None

    # -- prediction --------------------------------------------------------
    def predict(self, spec) -> Optional[Prediction]:
        """Bias-corrected prediction for a cell, or None if the cell is
        not model-predictable."""
        if not predictable(spec):
            return None
        model = model_for_spec(spec)
        cal = self._group_calibration(spec)
        tp = model.predicted_throughput()
        lat = model.predicted_latency()
        return Prediction(
            throughput=tp * cal.scale_tp,
            latency=lat * cal.scale_lat,
            model_throughput=tp,
            model_latency=lat,
            task_times=model.predicted_times(),
            bound_tp=cal.bound_tp,
            bound_lat=cal.bound_lat,
            calibrated=cal.n,
            group=group_key(spec),
            io_margin=io_boundary_margin(model),
        )

    # -- screening ---------------------------------------------------------
    def plan(self, specs: Sequence, mode: str = "screen") -> ScreenPlan:
        """Partition ``specs`` into simulate/predict decisions.

        ``mode`` is a screening mode from :data:`SCREENING_MODES`
        (``"off"`` is accepted and simulates everything, so callers can
        pass a spec's mode straight through).
        """
        if mode not in SCREENING_MODES:
            raise ConfigurationError(
                f"unknown screening mode {mode!r}; choose from {SCREENING_MODES}"
            )
        plan = ScreenPlan()
        if mode == "off":
            plan.decisions = [
                ScreenDecision(i, "simulate", "screening-off")
                for i in range(len(specs))
            ]
            return plan

        predictions: List[Optional[Prediction]] = [self.predict(s) for s in specs]
        # Sibling strategies on the same scenario, for crossover checks.
        scenarios: Dict[str, List[int]] = {}
        for i, (spec, pred) in enumerate(zip(specs, predictions)):
            if pred is not None:
                scenarios.setdefault(scenario_key(spec), []).append(i)

        for i, (spec, pred) in enumerate(zip(specs, predictions)):
            if pred is None:
                plan.decisions.append(ScreenDecision(i, "simulate", "unpredictable"))
                continue
            if mode == "predict-all":
                plan.decisions.append(ScreenDecision(i, "predict", "forced", pred))
                continue
            if pred.calibrated < self.min_calibration:
                plan.decisions.append(
                    ScreenDecision(i, "simulate", "calibration", pred)
                )
                continue
            if pred.io_margin <= MIN_BOTTLENECK_MARGIN:
                # Near the I/O-vs-compute knee: the bottleneck flip
                # could hide inside the band.
                plan.decisions.append(ScreenDecision(i, "simulate", "bottleneck", pred))
                continue
            reason = "clear"
            for j in scenarios.get(scenario_key(spec), ()):
                if j == i:
                    continue
                other_spec, other = specs[j], predictions[j]
                if other_spec.pipeline == spec.pipeline:
                    continue
                pb = self.pair_bound(spec, other_spec)
                if pb is None:
                    # No cross-strategy calibration for this pair.
                    reason = "calibration"
                    break
                gap = abs(
                    math.log(pred.throughput) - math.log(other.throughput)
                )
                if gap > pb:
                    continue   # winner certain despite the band
                if gap + pb <= self.tie_tolerance:
                    continue   # certified equivalent within tolerance
                # Sign uncertain and the difference could exceed the
                # tie tolerance: only simulation can call this one.
                reason = "crossover"
                break
            if reason == "clear":
                plan.decisions.append(ScreenDecision(i, "predict", "clear", pred))
            else:
                plan.decisions.append(ScreenDecision(i, "simulate", reason, pred))
        return plan


def predicted_result(spec, prediction: Prediction) -> PipelineResult:
    """Materialise a prediction as a ``source="predicted"`` result.

    The result reuses the standard :class:`PipelineResult` shape so it
    flows through the store/wire/sweep plumbing unchanged: the measured
    fields carry the bias-corrected model values, the ``model_*``
    fields the raw model values, the per-task breakdown books the whole
    predicted time as compute (the model doesn't decompose phases), and
    the trace/detections are empty.  The ``source`` tag and
    ``prediction_bound`` keep it distinguishable everywhere.
    """
    pipeline = spec.build_pipeline()
    task_stats = {
        name: TaskPhaseStats(task=name, recv=0.0, compute=t, send=0.0)
        for name, t in prediction.task_times.items()
    }
    measurement = PipelineMeasurement(
        task_stats=task_stats,
        throughput=prediction.throughput,
        latency=prediction.latency,
        model_throughput=prediction.model_throughput,
        model_latency=prediction.model_latency,
    )
    return PipelineResult(
        spec=pipeline,
        cfg=spec.cfg,
        fs_label=spec.fs.label(),
        machine_name=spec.machine,
        trace=TraceCollector(),
        measurement=measurement,
        detections=[],
        elapsed_sim_time=0.0,
        source="predicted",
        prediction_bound=prediction.bound,
    )
