"""Experiment drivers — one per paper table/figure, plus ablations.

Every driver returns an :class:`ExperimentResult` holding per-cell
measurements and knows how to ``render()`` itself in the paper's format
(per-task time tables like Tables 1-3, the improvement table of Table 4,
and grouped bar charts standing in for Figures 5-8).

All drivers run on the declarative engine
(:mod:`repro.bench.engine`): each cell is an
:class:`~repro.bench.engine.ExperimentSpec` executed through a
:class:`~repro.bench.engine.SweepRunner`.  Pass a shared runner (with a
:class:`~repro.bench.store.ResultStore` and/or ``jobs > 1``) to cache
cells across drivers and to parallelize sweeps; by default each driver
uses a private serial, uncached runner — the seed behavior.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from repro.bench.cases import BenchCase, paper_cases
from repro.bench.engine import (
    DiskFault,
    ExperimentSpec,
    FlakyDisk,
    NodeFault,
    ServerCrash,
    SweepRunner,
    WriterLoad,
    machine_key,
)
from repro.core.context import ExecutionConfig
from repro.core.executor import FSConfig, PipelineExecutor, PipelineResult
from repro.core.model import CombinationAnalysis
from repro.core.pipeline import NodeAssignment, PipelineSpec
from repro.machine.presets import MachinePreset, ibm_sp
from repro.stap.params import STAPParams
from repro.trace.report import format_table, grouped_bar_chart

__all__ = [
    "ExperimentResult",
    "run_single",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_fig8",
    "run_ablation_stripe_sweep",
    "run_ablation_bottleneck_migration",
    "run_ablation_io_strategy",
    "run_ablation_straggler_disk",
    "run_ablation_straggler_node",
    "run_ablation_async",
    "run_ablation_combination_analysis",
    "run_ablation_writer_interference",
    "run_ablation_server_outage",
    "run_ablation_flaky_disk",
    "run_ablation_interference",
    "InterferenceAblation",
]

#: Default simulation depth for the sweeps: enough CPIs for a clean
#: steady state while keeping each cell's wall time around a second.
DEFAULT_CFG = ExecutionConfig(n_cpis=8, warmup=2)


def _runner(runner: Optional[SweepRunner]) -> SweepRunner:
    """The driver's runner: caller-provided, or private serial/uncached."""
    return runner if runner is not None else SweepRunner(jobs=1)


@dataclass
class CellResult:
    """One (case, file system) cell's outcome."""

    case: BenchCase
    result: PipelineResult

    @property
    def throughput(self) -> float:
        return self.result.throughput

    @property
    def latency(self) -> float:
        return self.result.latency

    def to_dict(self) -> dict:
        """Lossless JSON-able form (machine preset stored by key)."""
        return {
            "case": {
                "case_number": self.case.case_number,
                "total_nodes": self.case.total_nodes,
                "assignment": self.case.assignment.to_dict(),
                "machine": machine_key(self.case.preset),
                "fs": self.case.fs.to_dict(),
            },
            "result": self.result.to_dict(),
        }

    @staticmethod
    def from_dict(d: dict) -> "CellResult":
        """Inverse of :meth:`to_dict`."""
        from repro.bench.engine import MACHINES

        c = d["case"]
        case = BenchCase(
            case_number=c["case_number"],
            total_nodes=c["total_nodes"],
            assignment=NodeAssignment.from_dict(c["assignment"]),
            preset=MACHINES[c["machine"]](),
            fs=FSConfig.from_dict(c["fs"]),
        )
        return CellResult(case, PipelineResult.from_dict(d["result"]))


@dataclass
class ExperimentResult:
    """A full experiment: labelled cells plus a renderer."""

    name: str
    cells: List[CellResult] = field(default_factory=list)
    extra: Dict[str, object] = field(default_factory=dict)

    def cell(self, fs_label: str, case_number: int) -> CellResult:
        for c in self.cells:
            if c.case.fs.label() == fs_label and c.case.case_number == case_number:
                return c
        available = sorted(
            {(c.case.fs.label(), c.case.case_number) for c in self.cells}
        )
        raise KeyError(
            f"no cell ({fs_label!r}, case {case_number}) in experiment "
            f"{self.name!r}; available (fs, case) cells: {available}"
        )

    def fs_labels(self) -> List[str]:
        seen: List[str] = []
        for c in self.cells:
            lab = c.case.fs.label()
            if lab not in seen:
                seen.append(lab)
        return seen

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        """Lossless JSON-able form (``extra`` must be JSON-able)."""
        return {
            "name": self.name,
            "cells": [c.to_dict() for c in self.cells],
            "extra": dict(self.extra),
        }

    @staticmethod
    def from_dict(d: dict) -> "ExperimentResult":
        """Inverse of :meth:`to_dict`."""
        return ExperimentResult(
            name=d["name"],
            cells=[CellResult.from_dict(c) for c in d["cells"]],
            extra=dict(d.get("extra", {})),
        )

    # -- rendering ------------------------------------------------------
    def render(self) -> str:
        """Paper-style per-task tables, one block per file system/case."""
        blocks = [f"==== {self.name} ===="]
        for fs_label in self.fs_labels():
            for case_no in sorted({c.case.case_number for c in self.cells}):
                cell = self.cell(fs_label, case_no)
                m = cell.result.measurement
                rows = [
                    (name, s.recv, s.compute, s.send, s.total)
                    for name, s in m.task_stats.items()
                ]
                blocks.append(
                    format_table(
                        ["task", "recv (s)", "compute (s)", "send (s)", "total (s)"],
                        rows,
                        title=(
                            f"\n{fs_label} — case {case_no}: total nodes = "
                            f"{cell.case.total_nodes}"
                        ),
                    )
                )
                blocks.append(
                    f"throughput {cell.throughput:.4f} CPIs/s    "
                    f"latency {cell.latency:.4f} s    "
                    f"(model: 1/max T = {m.model_throughput:.4f}, "
                    f"sum-path = {m.model_latency:.4f})"
                )
        return "\n".join(blocks)

    def render_charts(self) -> str:
        """Figure 5/6/7-style grouped bar charts (throughput, latency)."""
        thr = {
            fs: {
                f"{self.cell(fs, c).case.total_nodes} nodes": self.cell(fs, c).throughput
                for c in sorted({x.case.case_number for x in self.cells})
            }
            for fs in self.fs_labels()
        }
        lat = {
            fs: {
                f"{self.cell(fs, c).case.total_nodes} nodes": self.cell(fs, c).latency
                for c in sorted({x.case.case_number for x in self.cells})
            }
            for fs in self.fs_labels()
        }
        return (
            grouped_bar_chart(thr, title=f"{self.name}: throughput (CPIs/s)")
            + "\n\n"
            + grouped_bar_chart(lat, title=f"{self.name}: latency (s)", unit="s")
        )


def run_single(
    spec: PipelineSpec,
    preset: MachinePreset,
    fs: FSConfig,
    params: Optional[STAPParams] = None,
    cfg: ExecutionConfig = DEFAULT_CFG,
) -> PipelineResult:
    """Run one already-built pipeline configuration (timing mode).

    This is the non-declarative escape hatch for ad-hoc pipeline
    objects; grid sweeps go through :class:`ExperimentSpec` and a
    :class:`SweepRunner` instead.
    """
    params = params or STAPParams()
    return PipelineExecutor(spec, params, preset, fs, cfg).run()


def _sweep(
    name: str,
    pipeline: str,
    params: Optional[STAPParams] = None,
    cfg: ExecutionConfig = DEFAULT_CFG,
    runner: Optional[SweepRunner] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Run the paper's 3x3 grid for one pipeline structure."""
    params = params or STAPParams()
    cases = paper_cases(params)
    specs = [
        ExperimentSpec.for_case(pipeline, case, params, cfg, seed=seed)
        for case in cases
    ]
    results = _runner(runner).run(specs)
    out = ExperimentResult(name=name)
    for case, res in zip(cases, results):
        out.cells.append(CellResult(case, res))
    return out


def run_table1(
    params: Optional[STAPParams] = None,
    cfg: ExecutionConfig = DEFAULT_CFG,
    runner: Optional[SweepRunner] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Table 1 / Figure 5: I/O embedded in the Doppler task."""
    return _sweep("Table 1: embedded I/O", "embedded", params, cfg, runner, seed)


def run_table2(
    params: Optional[STAPParams] = None,
    cfg: ExecutionConfig = DEFAULT_CFG,
    runner: Optional[SweepRunner] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Table 2 / Figure 6: separate parallel-read task."""
    return _sweep("Table 2: separate I/O task", "separate", params, cfg, runner, seed)


def run_table3(
    params: Optional[STAPParams] = None,
    cfg: ExecutionConfig = DEFAULT_CFG,
    runner: Optional[SweepRunner] = None,
    seed: int = 0,
) -> ExperimentResult:
    """Table 3 / Figure 7: pulse compression + CFAR combined."""
    return _sweep("Table 3: PC+CFAR combined", "combined", params, cfg, runner, seed)


@dataclass
class Table4Result:
    """Latency-improvement percentages per file system x case."""

    improvements: Dict[str, Dict[int, float]]  # fs label -> case -> %
    table1: ExperimentResult
    table3: ExperimentResult

    def render(self) -> str:
        fs_labels = list(self.improvements)
        cases = sorted(next(iter(self.improvements.values())))
        rows = [
            [fs] + [self.improvements[fs][c] for c in cases] for fs in fs_labels
        ]
        headers = ["file system"] + [f"case {c}" for c in cases]
        return format_table(
            headers,
            rows,
            title="Table 4: % latency improvement from combining PC + CFAR",
            float_fmt="{:.1f}%",
        )


def run_table4(
    params: Optional[STAPParams] = None,
    cfg: ExecutionConfig = DEFAULT_CFG,
    table1: Optional[ExperimentResult] = None,
    table3: Optional[ExperimentResult] = None,
    runner: Optional[SweepRunner] = None,
    seed: int = 0,
) -> Table4Result:
    """Table 4: latency improvement of combining, per FS x case.

    Derived from Tables 1 and 3.  Pass those results directly, or pass a
    store-backed ``runner`` — a warm store serves their cells without
    re-simulating anything.
    """
    runner = _runner(runner)
    t1 = table1 or run_table1(params, cfg, runner, seed)
    t3 = table3 or run_table3(params, cfg, runner, seed)
    improvements: Dict[str, Dict[int, float]] = {}
    for fs in t1.fs_labels():
        improvements[fs] = {}
        for case_no in sorted({c.case.case_number for c in t1.cells}):
            lat7 = t1.cell(fs, case_no).latency
            lat6 = t3.cell(fs, case_no).latency
            improvements[fs][case_no] = (lat7 - lat6) / lat7 * 100.0
    return Table4Result(improvements, t1, t3)


@dataclass
class Fig8Result:
    """Figure 8: 7-task vs 6-task pipeline, throughput and latency."""

    series: Dict[str, Dict[str, Dict[int, float]]]  # metric -> variant -> case -> value
    fs_labels: List[str]

    def render(self) -> str:
        out = ["Figure 8: pipeline with vs without task combining"]
        for fs in self.fs_labels:
            thr = {
                variant: {
                    f"case {c}": v
                    for c, v in self.series["throughput"][f"{fs}|{variant}"].items()
                }
                for variant in ("7 tasks", "6 tasks")
            }
            lat = {
                variant: {
                    f"case {c}": v
                    for c, v in self.series["latency"][f"{fs}|{variant}"].items()
                }
                for variant in ("7 tasks", "6 tasks")
            }
            out.append(grouped_bar_chart(thr, title=f"{fs} — throughput (CPIs/s)"))
            out.append(grouped_bar_chart(lat, title=f"{fs} — latency (s)", unit="s"))
        return "\n\n".join(out)


def run_fig8(
    params: Optional[STAPParams] = None,
    cfg: ExecutionConfig = DEFAULT_CFG,
    table1: Optional[ExperimentResult] = None,
    table3: Optional[ExperimentResult] = None,
    runner: Optional[SweepRunner] = None,
    seed: int = 0,
) -> Fig8Result:
    """Figure 8's comparison series, derived from Tables 1 and 3.

    As with :func:`run_table4`, a store-backed ``runner`` reuses the
    tables' cells instead of recomputing them.
    """
    runner = _runner(runner)
    t1 = table1 or run_table1(params, cfg, runner, seed)
    t3 = table3 or run_table3(params, cfg, runner, seed)
    series: Dict[str, Dict[str, Dict[int, float]]] = {"throughput": {}, "latency": {}}
    for fs in t1.fs_labels():
        for variant, exp in (("7 tasks", t1), ("6 tasks", t3)):
            key = f"{fs}|{variant}"
            series["throughput"][key] = {
                c: exp.cell(fs, c).throughput
                for c in sorted({x.case.case_number for x in exp.cells})
            }
            series["latency"][key] = {
                c: exp.cell(fs, c).latency
                for c in sorted({x.case.case_number for x in exp.cells})
            }
    return Fig8Result(series, t1.fs_labels())


# ---------------------------------------------------------------------------
# ablations beyond the paper's grid


def run_ablation_stripe_sweep(
    stripe_factors: Tuple[int, ...] = (4, 8, 16, 32, 64, 128),
    case_number: int = 3,
    params: Optional[STAPParams] = None,
    cfg: ExecutionConfig = DEFAULT_CFG,
    runner: Optional[SweepRunner] = None,
    seed: int = 0,
    screening: str = "off",
) -> Dict[int, PipelineResult]:
    """Locate the stripe-factor knee: case-3 throughput vs stripe factor.

    ``screening`` forwards to :class:`ExperimentSpec` — under
    ``"screen"`` the engine answers cells far from the knee with the
    calibrated surrogate (:mod:`repro.bench.surrogate`) and only
    simulates the contested ones.
    """
    params = params or STAPParams()
    a = NodeAssignment.case(case_number, params)
    specs = [
        ExperimentSpec(
            assignment=a,
            pipeline="embedded",
            machine="paragon",
            fs=FSConfig(kind="pfs", stripe_factor=sf),
            params=params,
            cfg=cfg,
            seed=seed,
            screening=screening,
        )
        for sf in stripe_factors
    ]
    results = _runner(runner).run(specs)
    return dict(zip(stripe_factors, results))


def run_ablation_bottleneck_migration(
    stripe_factors: Tuple[int, ...] = (4, 8, 16, 32, 64),
    case_number: int = 3,
    params: Optional[STAPParams] = None,
    cfg: ExecutionConfig = DEFAULT_CFG,
    interval: float = 0.25,
    runner: Optional[SweepRunner] = None,
    seed: int = 0,
) -> Dict[int, PipelineResult]:
    """Watch the bottleneck *move* as stripe servers are added.

    Same sweep as :func:`run_ablation_stripe_sweep`, but with live
    metrics sampled every ``interval`` simulated seconds: at small
    stripe factors the disk-queue series dominates (the pipeline is
    I/O-bound, servers saturated, deep queues); as the stripe factor
    grows the queues drain and per-node compute utilization takes over
    as the binding resource.  Feed each cell to
    :func:`repro.obs.report.bottleneck_profile` to get the handoff as
    numbers.
    """
    params = params or STAPParams()
    a = NodeAssignment.case(case_number, params)
    specs = [
        ExperimentSpec(
            assignment=a,
            pipeline="embedded",
            machine="paragon",
            fs=FSConfig(kind="pfs", stripe_factor=sf),
            params=params,
            cfg=replace(cfg, metrics_interval=interval),
            seed=seed,
        )
        for sf in stripe_factors
    ]
    results = _runner(runner).run(specs)
    return dict(zip(stripe_factors, results))


def run_ablation_io_strategy(
    strategies: Tuple[str, ...] = (
        "embedded-io", "data-sieving", "collective-two-phase",
    ),
    stripe_factors: Tuple[int, ...] = (4, 16, 64),
    case_number: int = 3,
    params: Optional[STAPParams] = None,
    cfg: ExecutionConfig = DEFAULT_CFG,
    runner: Optional[SweepRunner] = None,
    seed: int = 0,
) -> Dict[Tuple[str, int], PipelineResult]:
    """Cross I/O strategy with stripe factor: independent slab reads vs
    data sieving vs collective two-phase.

    In this reproduction the CPI file layout is range-major, so each
    node's slab is already one contiguous extent and the per-directory
    request coalescing leaves little for sieving or two-phase to win
    back — sieving adds alignment padding, two-phase trades balanced
    unit-aligned disk chunks for an extra redistribution exchange.  The
    ablation quantifies those modeled costs (and where two-phase's
    balanced chunks still help) rather than the classic noncontiguous-
    access wins; see docs/io_strategies.md.
    """
    params = params or STAPParams()
    a = NodeAssignment.case(case_number, params)
    grid = [(s, sf) for s in strategies for sf in stripe_factors]
    specs = [
        ExperimentSpec(
            assignment=a,
            pipeline=strategy,
            machine="paragon",
            fs=FSConfig(kind="pfs", stripe_factor=sf),
            params=params,
            cfg=cfg,
            seed=seed,
        )
        for strategy, sf in grid
    ]
    results = _runner(runner).run(specs)
    return dict(zip(grid, results))


def run_ablation_noncontiguous(
    strategies: Tuple[str, ...] = (
        "embedded-io", "data-sieving", "collective-two-phase",
        "list-io", "server-directed",
    ),
    fs_kinds: Tuple[str, ...] = ("pfs", "piofs"),
    stripe_factors: Tuple[int, ...] = (4, 16, 64),
    case_number: int = 3,
    params: Optional[STAPParams] = None,
    cfg: ExecutionConfig = DEFAULT_CFG,
    runner: Optional[SweepRunner] = None,
    seed: int = 0,
) -> Dict[Tuple[str, str, int], PipelineResult]:
    """The noncontiguous-access family against the PR-4 matrix.

    Crosses the two new strategies — list I/O (whole file-window access
    lists batched into one request per stripe directory) and
    server-directed placement (declared pattern remapped to contiguous
    directory blocks) — with the established independent/sieving/two-
    phase trio, on both file systems and across stripe factors.

    Cells a strategy cannot run on are *omitted*, not failed: list I/O
    needs the ``read_list`` call PIOFS lacks, and the async-only
    strategies fall back to synchronous reads on PIOFS via their
    adaptive readers.  Key: ``(strategy, fs_kind, stripe_factor)``.
    """
    from repro.strategies import get_strategy

    params = params or STAPParams()
    a = NodeAssignment.case(case_number, params)
    grid = []
    for strategy, kind, sf in (
        (s, k, f) for s in strategies for k in fs_kinds for f in stripe_factors
    ):
        strat = get_strategy(strategy)
        if kind == "piofs" and (strat.requires_async or strat.requires_list_io):
            continue
        grid.append((strategy, kind, sf))
    specs = [
        ExperimentSpec(
            assignment=a,
            pipeline=strategy,
            machine="paragon",
            fs=FSConfig(kind=kind, stripe_factor=sf),
            params=params,
            cfg=cfg,
            seed=seed,
        )
        for strategy, kind, sf in grid
    ]
    results = _runner(runner).run(specs)
    return dict(zip(grid, results))


def run_ablation_async(
    case_number: int = 3,
    stripe_factor: int = 80,
    params: Optional[STAPParams] = None,
    cfg: ExecutionConfig = DEFAULT_CFG,
    preset: Optional[MachinePreset] = None,
    runner: Optional[SweepRunner] = None,
    seed: int = 0,
) -> Dict[str, PipelineResult]:
    """Isolate the async-I/O effect: identical hardware, PFS vs PIOFS.

    The paper attributes the SP's poor scaling to PIOFS' missing async
    reads, but its SP and Paragon runs differ in *everything*.  This
    ablation holds the machine fixed (SP preset by default — fast CPUs
    make the in-cycle read visible, the regime where overlap matters)
    and flips only the file-system API.  Note the converse regime is
    also physical: once the stripe directories' disks are saturated, the
    pipeline beat is the disk cycle and overlap cannot help — reads of
    different nodes already overlap other nodes' computation.
    """
    params = params or STAPParams()
    a = NodeAssignment.case(case_number, params)
    machine = machine_key(preset or ibm_sp())
    kinds = ("pfs", "piofs")
    specs = [
        ExperimentSpec(
            assignment=a,
            pipeline="embedded",
            machine=machine,
            fs=FSConfig(kind=kind, stripe_factor=stripe_factor),
            params=params,
            cfg=cfg,
            seed=seed,
        )
        for kind in kinds
    ]
    results = _runner(runner).run(specs)
    return dict(zip(kinds, results))


def run_ablation_combination_analysis(
    params: Optional[STAPParams] = None,
    runner: Optional[SweepRunner] = None,
    seed: int = 0,
) -> Dict[str, object]:
    """§6 algebra checks, including the both-improve case (Eq. 15).

    The paper only *analyses* the case where a combined task is the
    bottleneck; this driver constructs it concretely: an assignment that
    deliberately starves pulse compression so T5 is the pipeline max,
    then verifies combining improves throughput *and* latency.
    """
    from repro.machine.presets import paragon
    from repro.stap.costs import STAPCosts

    params = params or STAPParams()
    costs = STAPCosts(params)
    # Deliberately unbalanced: starve PC so it is the bottleneck.
    a = NodeAssignment(
        doppler=8, easy_weight=2, hard_weight=2, easy_bf=5, hard_bf=4,
        pulse_compr=1, cfar=1,
    )
    fs = FSConfig(kind="pfs", stripe_factor=64)
    base = ExperimentSpec(
        assignment=a, pipeline="embedded", machine="paragon",
        fs=fs, params=params, seed=seed,
    )
    r7, r6 = _runner(runner).run([base, replace(base, pipeline="combined")])
    flops = paragon().node_spec.flops
    stats7 = r7.measurement.task_stats
    analysis = CombinationAnalysis(
        w_a=costs.pulse_compression_flops() / flops,
        w_b=costs.cfar_flops() / flops,
        p_a=a.pulse_compr,
        p_b=a.cfar,
        c_a=stats7["pulse_compr"].send,
        c_b=stats7["cfar"].send,
    )
    return {
        "bottlenecked": r7,
        "combined": r6,
        "analysis": analysis,
        "throughput_gain": r6.throughput / r7.throughput,
        "latency_gain": r7.latency / r6.latency,
    }


def run_ablation_straggler_disk(
    slow_factors: Tuple[float, ...] = (1.0, 2.0, 4.0, 8.0),
    case_number: int = 3,
    stripe_factor: int = 64,
    params: Optional[STAPParams] = None,
    cfg: ExecutionConfig = DEFAULT_CFG,
    runner: Optional[SweepRunner] = None,
    seed: int = 0,
) -> Dict[float, PipelineResult]:
    """Fault injection: one degraded stripe directory among many.

    Every node's read touches many stripe directories and completes only
    when the slowest run does, so a single straggler disk throttles the
    whole read phase — striping's classic tail-latency weakness.  This
    sweep degrades directory 0's media rate and request overhead by
    ``slow_factor`` and measures the pipeline at an otherwise healthy
    configuration (case 3, stripe factor 64).
    """
    params = params or STAPParams()
    a = NodeAssignment.case(case_number, params)
    specs = [
        ExperimentSpec(
            assignment=a,
            pipeline="embedded",
            machine="paragon",
            fs=FSConfig(kind="pfs", stripe_factor=stripe_factor),
            params=params,
            cfg=cfg,
            seed=seed,
            disk_fault=DiskFault(server=0, slow_factor=slow),
        )
        for slow in slow_factors
    ]
    results = _runner(runner).run(specs)
    return dict(zip(slow_factors, results))


def run_ablation_straggler_node(
    slow_factors: Tuple[float, ...] = (1.0, 2.0, 4.0),
    case_number: int = 1,
    params: Optional[STAPParams] = None,
    cfg: ExecutionConfig = DEFAULT_CFG,
    runner: Optional[SweepRunner] = None,
    seed: int = 0,
) -> Dict[float, PipelineResult]:
    """Fault injection: one degraded *compute* node in the Doppler task.

    A data-parallel task finishes when its slowest node does, so one
    slow node drags its whole task's time — and, through Eq. 1, the
    whole pipeline's throughput, no matter how many healthy nodes the
    task has.  The dual of the disk straggler: tail latency in compute
    instead of I/O.
    """
    params = params or STAPParams()
    a = NodeAssignment.case(case_number, params)
    specs = [
        ExperimentSpec(
            assignment=a,
            pipeline="embedded",
            machine="paragon",
            fs=FSConfig(kind="pfs", stripe_factor=64),
            params=params,
            cfg=cfg,
            seed=seed,
            # Node 0 belongs to the Doppler task.
            node_fault=NodeFault(node=0, slow_factor=slow),
        )
        for slow in slow_factors
    ]
    results = _runner(runner).run(specs)
    return dict(zip(slow_factors, results))


def run_ablation_writer_interference(
    case_number: int = 3,
    stripe_factor: int = 16,
    params: Optional[STAPParams] = None,
    cfg: ExecutionConfig = DEFAULT_CFG,
    runner: Optional[SweepRunner] = None,
    seed: int = 0,
) -> Dict[str, PipelineResult]:
    """Read/write interference: pipeline alone vs with a live radar writer.

    The paper stages reads and writes "at different times" to minimise
    interference; this ablation quantifies what happens when the radar
    writes future CPIs into the same stripe directories while the
    pipeline reads.  The writer's period is locked to the quiet run's
    measured throughput, so the noisy spec is fully declarative (and
    cacheable) once the quiet cell is known.
    """
    params = params or STAPParams()
    runner = _runner(runner)
    a = NodeAssignment.case(case_number, params)
    quiet_spec = ExperimentSpec(
        assignment=a,
        pipeline="embedded",
        machine="paragon",
        fs=FSConfig(kind="pfs", stripe_factor=stripe_factor),
        params=params,
        cfg=cfg,
        seed=seed,
    )
    quiet = runner.run_one(quiet_spec)
    period = 1.0 / max(quiet.throughput, 1e-9)
    noisy = runner.run_one(
        replace(
            quiet_spec,
            writer=WriterLoad(
                period=period,
                n_cpis=cfg.n_cpis,
                start_cpi=cfg.n_cpis,        # writes future CPIs
                initial_delay=period / 2.0,  # staggered from the reads
            ),
        )
    )
    return {"quiet": quiet, "with_writer": noisy}


def run_ablation_server_outage(
    outage_durations: Tuple[float, ...] = (0.5, 2.0),
    replications: Tuple[int, ...] = (1, 2),
    case_number: int = 1,
    stripe_factor: int = 4,
    read_deadline="auto",
    params: Optional[STAPParams] = None,
    cfg: ExecutionConfig = DEFAULT_CFG,
    runner: Optional[SweepRunner] = None,
    seed: int = 0,
) -> Dict[Tuple[int, float], PipelineResult]:
    """Fault tolerance: a stripe server drops out mid-run.

    With few stripe directories, every slab read touches every server,
    so losing one takes the whole read phase hostage: without
    replication the clients can only back off and retry until the
    server returns (or drop CPIs at the read deadline), collapsing
    throughput.  With ``replication=2`` (chained-declustered mirrors)
    reads fail over to the neighbour directory and the outage merely
    dents throughput — the paper's I/O-bound pipeline becomes
    survivable.

    Directory 0 crashes at 30% of the healthy run's span.  Durations are
    simulated seconds; ``float("inf")`` means a permanent crash.  Each
    ``(replication, duration)`` cell is returned keyed by that pair;
    duration ``0.0`` cells are fault-free baselines.  ``read_deadline``
    is the per-CPI degradation deadline: ``"auto"`` picks four healthy
    pipeline beats, ``None`` disables dropping (reads stall through the
    outage), a float is used as-is.
    """
    params = params or STAPParams()
    runner = _runner(runner)
    a = NodeAssignment.case(case_number, params)

    def spec_for(replication, crash, run_cfg):
        return ExperimentSpec(
            assignment=a,
            pipeline="embedded",
            machine="paragon",
            fs=FSConfig(
                kind="pfs", stripe_factor=stripe_factor, replication=replication
            ),
            params=params,
            cfg=run_cfg,
            seed=seed,
            server_crash=crash,
        )

    # Calibrate crash time and deadline off the healthy run.
    quiet = runner.run_one(spec_for(1, None, cfg))
    beat = 1.0 / max(quiet.throughput, 1e-9)
    deadline = 4.0 * beat if read_deadline == "auto" else read_deadline
    run_cfg = replace(cfg, read_deadline=deadline)
    at_time = 0.3 * quiet.elapsed_sim_time

    keys: List[Tuple[int, float]] = []
    specs: List[ExperimentSpec] = []
    for rep in replications:
        for dur in (0.0,) + tuple(outage_durations):
            crash = None
            if dur > 0:
                crash = ServerCrash(
                    server=0,
                    at_time=at_time,
                    down_for=None if dur == float("inf") else dur,
                )
            keys.append((rep, dur))
            specs.append(spec_for(rep, crash, run_cfg))
    results = runner.run(specs)
    return dict(zip(keys, results))


def run_ablation_flaky_disk(
    error_rates: Tuple[float, ...] = (0.0, 0.05, 0.2),
    replications: Tuple[int, ...] = (1, 2),
    case_number: int = 1,
    stripe_factor: int = 4,
    flaky_seed: int = 0,
    params: Optional[STAPParams] = None,
    cfg: ExecutionConfig = DEFAULT_CFG,
    runner: Optional[SweepRunner] = None,
    seed: int = 0,
) -> Dict[Tuple[int, float], PipelineResult]:
    """Fault tolerance: one stripe server fails requests at random.

    Directory 0 fails a deterministic pseudo-random ``error_rate``
    fraction of its requests (transient errors).  Unreplicated clients
    must re-queue the request on the same flaky disk after a backoff;
    with ``replication=2`` the first retry goes to the mirror instead,
    absorbing errors at roughly the cost of one extra hop.  Returns one
    cell per ``(replication, error_rate)`` pair; rate ``0.0`` cells are
    fault-free baselines.
    """
    params = params or STAPParams()
    runner = _runner(runner)
    a = NodeAssignment.case(case_number, params)

    keys: List[Tuple[int, float]] = []
    specs: List[ExperimentSpec] = []
    for rep in replications:
        for rate in error_rates:
            flaky = (
                FlakyDisk(server=0, error_rate=rate, seed=flaky_seed)
                if rate > 0
                else None
            )
            keys.append((rep, rate))
            specs.append(
                ExperimentSpec(
                    assignment=a,
                    pipeline="embedded",
                    machine="paragon",
                    fs=FSConfig(
                        kind="pfs", stripe_factor=stripe_factor, replication=rep
                    ),
                    params=params,
                    cfg=cfg,
                    seed=seed,
                    flaky_disk=flaky,
                )
            )
    results = runner.run(specs)
    return dict(zip(keys, results))


@dataclass
class InterferenceAblation:
    """Result of :func:`run_ablation_interference`.

    ``solos`` holds the single-tenant baselines keyed by
    ``(stripe_factor, strategy)``; ``scaling`` the 1..N mixed-tenant
    scenarios keyed by ``(stripe_factor, n_tenants)``; ``pairs`` the
    two-tenant strategy-pair cells keyed by ``(strategy_a, strategy_b)``
    (run at ``pair_stripe_factor``).  Degradation is a tenant's
    throughput divided by its strategy's solo throughput at the same
    stripe factor — 1.0 means unaffected, 0.5 means the neighbour cost
    it half its throughput.
    """

    strategies: Tuple[str, ...]
    solos: Dict[Tuple[int, str], object]
    scaling: Dict[Tuple[int, int], object]
    pairs: Dict[Tuple[str, str], object]
    pair_stripe_factor: int
    read_deadline: Optional[float]

    def degradation(self, sf: int, strategy: str, throughput: float) -> float:
        """Throughput as a fraction of the strategy's solo baseline."""
        solo = self.solos[(sf, strategy)]
        base = next(iter(solo.tenants.values())).throughput
        return throughput / base if base > 0 else 0.0

    def pair_score(self, key: Tuple[str, str]) -> float:
        """Mean degradation of a pair's two tenants (lower = worse)."""
        scenario = self.pairs[key]
        sf = self.pair_stripe_factor
        fracs = [
            self.degradation(sf, t.pipeline, scenario.tenants[name].throughput)
            for name, t in zip(scenario.spec.tenant_names(),
                               scenario.spec.tenants)
        ]
        return sum(fracs) / len(fracs)

    def render(self) -> str:
        """The ablation's artifact: scaling table + ranked pair matrix."""
        out = []
        if self.read_deadline is not None:
            out.append(
                f"per-CPI read deadline in contended cells: "
                f"{self.read_deadline:.4f} s (drops, not stalls)"
            )
        rows = []
        for (sf, n), scenario in sorted(self.scaling.items()):
            for name, t in zip(scenario.spec.tenant_names(),
                               scenario.spec.tenants):
                r = scenario.tenants[name]
                rows.append([
                    sf, n, name, t.pipeline,
                    r.throughput,
                    self.degradation(sf, t.pipeline, r.throughput),
                    len(r.dropped_cpis or ()),
                ])
        out.append(format_table(
            ["sf", "tenants", "tenant", "strategy", "CPIs/s", "x solo",
             "dropped"],
            rows,
            title="Tenant scaling on one shared PFS (case-1 tenants, "
                  "mixed strategies)",
            float_fmt="{:.4f}",
        ))
        ranked = sorted(self.pairs, key=self.pair_score)
        rows = []
        for key in ranked:
            scenario = self.pairs[key]
            names = scenario.spec.tenant_names()
            fracs = [
                self.degradation(
                    self.pair_stripe_factor, t.pipeline,
                    scenario.tenants[name].throughput,
                )
                for name, t in zip(names, scenario.spec.tenants)
            ]
            drops = sum(len(scenario.tenants[n].dropped_cpis or ())
                        for n in names)
            rows.append([
                f"{key[0]} + {key[1]}",
                fracs[0], fracs[1],
                self.pair_score(key), drops,
            ])
        out.append(format_table(
            ["pair", "t0 x solo", "t1 x solo", "mean x solo", "dropped"],
            rows,
            title=f"\nStrategy-pair interference (2 tenants, PFS "
                  f"sf={self.pair_stripe_factor}; worst pairs first)",
            float_fmt="{:.4f}",
        ))
        return "\n".join(out)


def run_ablation_interference(
    tenant_counts: Tuple[int, ...] = (1, 2, 3, 4),
    strategies: Tuple[str, ...] = ("embedded-io", "separate-io"),
    stripe_factors: Tuple[int, ...] = (4, 16),
    case_number: int = 1,
    read_deadline="auto",
    params: Optional[STAPParams] = None,
    cfg: ExecutionConfig = DEFAULT_CFG,
    runner: Optional[SweepRunner] = None,
    seed: int = 0,
) -> InterferenceAblation:
    """Multi-tenant interference: N pipelines contending for one PFS.

    The paper evaluates each I/O strategy with the machine to itself;
    this ablation shares the stripe directories (and the mesh) between
    1..N tenant pipelines and measures what each tenant keeps of its
    solo throughput.  Two sweeps:

    * **scaling** — for each stripe factor, grow the tenant count;
      tenant *i* runs ``strategies[i % len(strategies)]`` so the mix
      stays fixed while contention grows;
    * **pairs** — every unordered strategy pair as a two-tenant
      scenario at the smallest stripe factor, ranking which strategy
      pairs interfere worst.

    ``read_deadline="auto"`` derives a per-CPI deadline from the slowest
    solo baseline (two pipeline beats), so contended tenants *drop*
    late CPIs — surfacing degradation as both lost throughput and a
    drop count.  Solo baselines run without a deadline.  Pass ``None``
    to let contended reads stall instead, or a float to use as-is.
    """
    from repro.scenario import ScenarioSpec, TenantSpec

    params = params or STAPParams()
    runner = _runner(runner)
    a = NodeAssignment.case(case_number, params)

    def scenario(sf: int, names: Tuple[str, ...],
                 tenant_cfg: ExecutionConfig) -> ScenarioSpec:
        return ScenarioSpec(
            tenants=tuple(
                TenantSpec(assignment=a, pipeline=strategy, cfg=tenant_cfg)
                for strategy in names
            ),
            machine="paragon",
            fs=FSConfig(kind="pfs", stripe_factor=sf),
            params=params,
            seed=seed,
        )

    # Solo baselines: every (stripe factor, strategy), deadline-free.
    pair_sf = min(stripe_factors)
    solo_keys = [(sf, s) for sf in stripe_factors for s in strategies]
    solo_specs = [scenario(sf, (s,), cfg) for sf, s in solo_keys]
    solos = dict(zip(solo_keys, runner.run(solo_specs)))

    deadline: Optional[float]
    if read_deadline == "auto":
        slowest = min(
            next(iter(r.tenants.values())).throughput for r in solos.values()
        )
        deadline = 2.0 / max(slowest, 1e-9)
    else:
        deadline = read_deadline
    contended_cfg = replace(cfg, read_deadline=deadline)

    # Tenant scaling: same strategy mix, growing contention.
    scaling_keys = [(sf, n) for sf in stripe_factors for n in tenant_counts]
    scaling_specs = [
        scenario(sf, tuple(strategies[i % len(strategies)] for i in range(n)),
                 contended_cfg)
        for sf, n in scaling_keys
    ]
    scaling = dict(zip(scaling_keys, runner.run(scaling_specs)))

    # Pair matrix: every unordered strategy pair at the tightest sf.
    pair_keys = [
        (strategies[i], strategies[j])
        for i in range(len(strategies))
        for j in range(i, len(strategies))
    ]
    pair_specs = [scenario(pair_sf, key, contended_cfg) for key in pair_keys]
    pairs = dict(zip(pair_keys, runner.run(pair_specs)))

    return InterferenceAblation(
        strategies=strategies,
        solos=solos,
        scaling=scaling,
        pairs=pairs,
        pair_stripe_factor=pair_sf,
        read_deadline=deadline,
    )
