"""The pipeline dependency graph (paper Figure 2).

Edges are typed: **spatial** (SD — data of the *current* CPI flows along
the edge) or **temporal** (TD — the consumer uses the producer's output
from the *previous* CPI).  The two performance equations read off the
graph:

* throughput is ``1 / max_i T_i`` over *all* tasks (Eq. 1/3);
* latency is the longest service-time path over **spatial** edges among
  tasks **without temporal inputs** (Eq. 2/4): weight tasks never delay
  a CPI because their inputs are already a CPI old.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

from repro.errors import DependencyError
from repro.core.task import TaskSpec

__all__ = ["DependencyKind", "Edge", "TaskGraph"]


class DependencyKind(enum.Enum):
    """Edge types of Figure 2."""

    SPATIAL = "SD"
    TEMPORAL = "TD"


@dataclass(frozen=True)
class Edge:
    """A directed dependency between two tasks (by name)."""

    src: str
    dst: str
    kind: DependencyKind


class TaskGraph:
    """Typed task DAG with the paper's latency-path semantics."""

    def __init__(self, tasks: Sequence[TaskSpec], edges: Sequence[Edge]) -> None:
        names = [t.name for t in tasks]
        if len(set(names)) != len(names):
            raise DependencyError("duplicate task names")
        self.tasks: Dict[str, TaskSpec] = {t.name: t for t in tasks}
        self.order: List[str] = names
        for e in edges:
            if e.src not in self.tasks or e.dst not in self.tasks:
                raise DependencyError(f"edge {e} references unknown task")
            if e.src == e.dst:
                raise DependencyError(f"self-edge on {e.src!r}")
        self.edges: List[Edge] = list(edges)
        self._check_acyclic()

    # -- structure -----------------------------------------------------------
    def successors(self, name: str, kind: DependencyKind | None = None) -> List[str]:
        """Downstream task names (optionally filtered by edge kind)."""
        return [
            e.dst for e in self.edges if e.src == name and (kind is None or e.kind == kind)
        ]

    def predecessors(self, name: str, kind: DependencyKind | None = None) -> List[str]:
        """Upstream task names (optionally filtered by edge kind)."""
        return [
            e.src for e in self.edges if e.dst == name and (kind is None or e.kind == kind)
        ]

    def has_temporal_input(self, name: str) -> bool:
        """True if the task consumes previous-CPI data."""
        return bool(self.predecessors(name, DependencyKind.TEMPORAL))

    def _check_acyclic(self) -> None:
        """All edges (SD and TD) must form a DAG in task order.

        The pipeline is a feed-forward structure; temporal edges point
        forward too (the *data* is old, the flow direction is not).
        """
        indeg = {n: 0 for n in self.order}
        adj: Dict[str, List[str]] = {n: [] for n in self.order}
        for e in self.edges:
            adj[e.src].append(e.dst)
            indeg[e.dst] += 1
        ready = [n for n in self.order if indeg[n] == 0]
        seen = 0
        while ready:
            n = ready.pop()
            seen += 1
            for m in adj[n]:
                indeg[m] -= 1
                if indeg[m] == 0:
                    ready.append(m)
        if seen != len(self.order):
            raise DependencyError("task graph contains a cycle")

    # -- the paper's equations over the graph ---------------------------------
    def latency_path_tasks(self) -> List[List[str]]:
        """Stages of the latency path, source to sink.

        Each stage is the set of tasks whose times combine by ``max``
        (parallel branches); stages combine by ``+``.  Tasks with
        temporal inputs are excluded (Eq. 2), as are their pure-temporal
        upstream edges.

        The pipelines in this package are series-parallel (a chain of
        fan-out/fan-in stages), which this computes by levelising the
        spatial subgraph restricted to non-temporal tasks.
        """
        keep = [n for n in self.order if not self.has_temporal_input(n)]
        keepset = set(keep)
        level: Dict[str, int] = {}
        for n in keep:  # self.order is topological for our builders
            preds = [
                p
                for p in self.predecessors(n, DependencyKind.SPATIAL)
                if p in keepset
            ]
            level[n] = 0 if not preds else 1 + max(level[p] for p in preds)
        n_levels = 1 + max(level.values()) if level else 0
        stages: List[List[str]] = [[] for _ in range(n_levels)]
        for n in keep:
            stages[level[n]].append(n)
        return stages

    def latency(self, times: Mapping[str, float]) -> float:
        """Eq. 2/4: sum over stages of the max task time in each stage."""
        total = 0.0
        for stage in self.latency_path_tasks():
            total += max(times[n] for n in stage)
        return total

    def throughput(self, times: Mapping[str, float]) -> float:
        """Eq. 1/3: inverse of the slowest task."""
        worst = max(times[n] for n in self.order)
        if worst <= 0:
            raise DependencyError("task times must be positive")
        return 1.0 / worst

    def latency_terms(self) -> str:
        """Human-readable latency formula, e.g.
        ``T[read] + T[doppler] + max(T[ebf], T[hbf]) + T[pc] + T[cfar]``."""
        parts = []
        for stage in self.latency_path_tasks():
            if len(stage) == 1:
                parts.append(f"T[{stage[0]}]")
            else:
                parts.append("max(" + ", ".join(f"T[{n}]" for n in stage) + ")")
        return " + ".join(parts)
