"""Stage-structured task execution: sequential and multithreaded runners.

Every task body decomposes into the paper's three phases —
**receive**, **compute**, **send** — expressed as a :class:`TaskStages`
object.  Two runners execute them:

* :func:`run_sequential` — the execution model of *this* paper: one
  thread of control per node cycles recv -> compute -> send, so the
  task's per-CPI service time is the **sum** of its phases (plus
  credit-window stalls).
* :func:`run_threaded` — the execution model of the authors' companion
  paper (Liao et al., IPPS 1999, *Multi-Threaded Design and
  Implementation of Parallel Pipelined STAP on Parallel Computers with
  SMP Nodes*): each node runs its three phases as concurrent threads
  connected by depth-1 queues, so while CPI *k* computes, CPI *k+1* is
  already being received and CPI *k-1* is being sent.  The task's cycle
  time drops toward the **max** of its phases — higher throughput from
  the same nodes; per-CPI latency is essentially unchanged (each datum
  still passes through all three phases).

Both runners drive the *same* stage code, so compute-mode numerics are
identical in all modes.
"""

from __future__ import annotations

from typing import Any

from repro.core.context import TaskContext
from repro.sim.resources import Resource, Store
from repro.trace.record import Phase

__all__ = ["TaskStages", "BoundedQueue", "run_sequential", "run_threaded", "run_stages"]


class TaskStages:
    """One task node's body, split into the canonical phases.

    Subclasses implement the phase generators; ``setup`` returns False
    to opt the node out entirely (empty partition).  ``sends_last_cpi``
    lets a stage skip its send on the final CPI (the weight tasks, whose
    last output has no consumer).
    """

    #: Whether the final CPI's outputs are sent (weight tasks: no).
    sends_last_cpi: bool = True

    def __init__(self, ctx: TaskContext) -> None:
        self.ctx = ctx

    # -- lifecycle hooks --------------------------------------------------
    def setup(self) -> bool:
        """Prepare routing/partition state; False = node has no work."""
        return True

    def recv_prologue(self):
        """Run once in the receive thread before the loop (e.g. posting
        the first asynchronous file read)."""
        return
        yield  # pragma: no cover - generator marker

    def send_prologue(self):
        """Run once in the send thread before the loop (e.g. shipping
        the bootstrap weights)."""
        return
        yield  # pragma: no cover - generator marker

    def teardown(self) -> None:
        """Run once after the last CPI completes (e.g. closing file
        handles).  Plain call, not a generator: teardown must cost no
        simulated time."""

    # -- the three phases ----------------------------------------------------
    def recv(self, k: int):
        """Generator: obtain CPI ``k``'s inputs; returns them."""
        raise NotImplementedError

    def compute(self, k: int, inputs: Any):
        """Generator: transform inputs; returns outputs.  Must charge
        the node's cost-model time."""
        raise NotImplementedError

    def send(self, k: int, outputs: Any):
        """Generator: deliver CPI ``k``'s outputs downstream (including
        credit-window waits and acks)."""
        raise NotImplementedError


class BoundedQueue:
    """A depth-bounded FIFO between two node threads.

    ``put`` blocks while the queue is full (that is what couples the
    threads into a pipeline rather than letting the receive thread run
    arbitrarily far ahead).
    """

    def __init__(self, ctx: TaskContext, depth: int = 1, name: str = "") -> None:
        self.kernel = ctx.kernel
        self._slots = Resource(self.kernel, capacity=depth, name=f"{name}.slots")
        self._items = Store(self.kernel, name=f"{name}.items")
        metrics = getattr(ctx, "metrics", None)
        if metrics is not None:
            # Occupancy is backpressure made visible: a persistently full
            # input queue means the compute thread is the bottleneck.
            metrics.gauge(
                "bounded_queue_depth",
                help="items buffered between node threads (depth-bounded)",
                fn=self._items.__len__,
                **ctx.tenant_labels(queue=name or f"{ctx.name}[{ctx.local}]"),
            )

    def put(self, item: Any):
        """Generator: enqueue, blocking while full."""
        yield self._slots.request()
        self._items.put(item)

    def get(self):
        """Generator: dequeue, blocking while empty."""
        item = yield self._items.get()
        self._slots.release()
        return item


def run_sequential(stages: TaskStages):
    """Single-threaded node: recv, compute, send, per CPI, in order."""
    ctx = stages.ctx
    if not stages.setup():
        return
    yield from stages.recv_prologue()
    yield from stages.send_prologue()
    for k in range(ctx.cfg.n_cpis):
        t0 = ctx.now
        inputs = yield from stages.recv(k)
        ctx.record(k, Phase.RECV, t0)

        t0 = ctx.now
        outputs = yield from stages.compute(k, inputs)
        ctx.record(k, Phase.COMPUTE, t0)

        if stages.sends_last_cpi or k + 1 < ctx.cfg.n_cpis:
            yield from stages.send(k, outputs)
    stages.teardown()


def run_threaded(stages: TaskStages):
    """SMP node: the three phases as concurrent threads, depth-1 queues.

    The spawning generator waits for all three threads, so the node's
    process completes when its last send does.
    """
    ctx = stages.ctx
    if not stages.setup():
        return
    kernel = ctx.kernel
    q_in = BoundedQueue(ctx, depth=1, name=f"{ctx.name}[{ctx.local}].in")
    q_out = BoundedQueue(ctx, depth=1, name=f"{ctx.name}[{ctx.local}].out")
    n_cpis = ctx.cfg.n_cpis

    def recv_thread():
        yield from stages.recv_prologue()
        for k in range(n_cpis):
            t0 = ctx.now
            inputs = yield from stages.recv(k)
            ctx.record(k, Phase.RECV, t0)
            yield from q_in.put((k, inputs))

    def compute_thread():
        for _ in range(n_cpis):
            k, inputs = yield from q_in.get()
            t0 = ctx.now
            outputs = yield from stages.compute(k, inputs)
            ctx.record(k, Phase.COMPUTE, t0)
            yield from q_out.put((k, outputs))

    def send_thread():
        yield from stages.send_prologue()
        for _ in range(n_cpis):
            k, outputs = yield from q_out.get()
            if stages.sends_last_cpi or k + 1 < n_cpis:
                yield from stages.send(k, outputs)

    threads = [
        kernel.process(recv_thread(), name=f"{ctx.name}[{ctx.local}].recv"),
        kernel.process(compute_thread(), name=f"{ctx.name}[{ctx.local}].comp"),
        kernel.process(send_thread(), name=f"{ctx.name}[{ctx.local}].send"),
    ]
    yield kernel.all_of(threads)
    stages.teardown()


def run_stages(stages: TaskStages):
    """Dispatch on the execution config's threading flag."""
    if stages.ctx.cfg.threaded:
        return run_threaded(stages)
    return run_sequential(stages)
