"""Scalability analysis: speedup, efficiency, and scaling sweeps.

The paper reports raw throughput/latency; these helpers turn a sweep
over node counts into the classic derived metrics — speedup relative to
the smallest configuration, parallel efficiency, and the serial-fraction
estimate of the Karp–Flatt metric — and locate where pipeline scaling
saturates (I/O floors, per-message latency floors, integer-partition
granularity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.core.context import ExecutionConfig
from repro.core.executor import FSConfig, PipelineExecutor, PipelineResult
from repro.core.pipeline import NodeAssignment, build_embedded_pipeline
from repro.machine.presets import MachinePreset, paragon
from repro.stap.params import STAPParams

__all__ = ["ScalingPoint", "ScalingStudy", "run_scaling_study"]


@dataclass(frozen=True)
class ScalingPoint:
    """One node-count sample of a scaling sweep."""

    nodes: int
    throughput: float
    latency: float
    bottleneck: str


@dataclass
class ScalingStudy:
    """A throughput/latency scaling curve with derived metrics."""

    points: List[ScalingPoint]

    def __post_init__(self) -> None:
        if len(self.points) < 2:
            raise ConfigurationError("a scaling study needs >= 2 points")
        if any(
            self.points[i].nodes >= self.points[i + 1].nodes
            for i in range(len(self.points) - 1)
        ):
            raise ConfigurationError("points must be sorted by node count")

    @property
    def base(self) -> ScalingPoint:
        """The smallest configuration (speedup reference)."""
        return self.points[0]

    def speedups(self) -> Dict[int, float]:
        """Throughput speedup over the base configuration."""
        return {p.nodes: p.throughput / self.base.throughput for p in self.points}

    def efficiencies(self) -> Dict[int, float]:
        """Speedup per relative node count (1.0 = perfect scaling)."""
        return {
            p.nodes: (p.throughput / self.base.throughput)
            / (p.nodes / self.base.nodes)
            for p in self.points
        }

    def serial_fraction(self, nodes: int) -> float:
        """Karp–Flatt experimentally determined serial fraction at ``nodes``.

        ``f = (1/S - 1/p) / (1 - 1/p)`` with speedup S over the base and
        relative node ratio p.  Near-zero = clean scaling; growth with p
        reveals a fixed overhead (here: I/O floors and message latency).
        """
        s = self.speedups()[nodes]
        p = nodes / self.base.nodes
        if p <= 1:
            raise ConfigurationError("serial fraction needs nodes > base")
        return (1.0 / s - 1.0 / p) / (1.0 - 1.0 / p)

    def saturation_nodes(self, threshold: float = 0.05) -> Optional[int]:
        """First node count whose marginal throughput gain over the
        previous point falls below ``threshold`` (relative); None if the
        curve never flattens within the sweep."""
        for prev, cur in zip(self.points, self.points[1:]):
            gain = (cur.throughput - prev.throughput) / prev.throughput
            if gain < threshold:
                return cur.nodes
        return None


def run_scaling_study(
    node_counts: Sequence[int] = (25, 50, 100, 150, 200),
    stripe_factor: int = 64,
    params: Optional[STAPParams] = None,
    preset: Optional[MachinePreset] = None,
    fs_kind: str = "pfs",
    cfg: Optional[ExecutionConfig] = None,
    build: Callable[[NodeAssignment], object] = build_embedded_pipeline,
) -> ScalingStudy:
    """Sweep total node counts (beyond the paper's 100) and measure.

    Assignments are workload-balanced at every point, so the curve shows
    the *system's* scaling limits rather than partitioning artefacts.
    """
    params = params or STAPParams()
    preset = preset or paragon()
    cfg = cfg or ExecutionConfig(n_cpis=8, warmup=2)
    points: List[ScalingPoint] = []
    for total in node_counts:
        assignment = NodeAssignment.balanced(params, total)
        spec = build(assignment)
        result: PipelineResult = PipelineExecutor(
            spec, params, preset, FSConfig(kind=fs_kind, stripe_factor=stripe_factor), cfg
        ).run()
        points.append(
            ScalingPoint(
                nodes=total,
                throughput=result.throughput,
                latency=result.latency,
                bottleneck=result.measurement.bottleneck_task,
            )
        )
    return ScalingStudy(points)
