"""Steady-state measurements from execution traces.

Reproduces the paper's reported quantities:

* per-task time :math:`T_i` — mean over steady-state CPIs of the task's
  per-CPI service time (receive + compute + send on the slowest node,
  flow-control stall excluded), with the phase breakdown the paper's
  Table 1 discusses;
* **throughput** — CPIs per second at the sink over the steady-state
  window (this is the operational form of Eq. 1);
* **latency** — mean time from the first task starting a CPI to the
  sink finishing it (operational form of Eq. 2);
* model cross-checks: ``1 / max T_i`` and the graph's latency formula
  evaluated on the measured :math:`T_i`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import PipelineError
from repro.core.pipeline import PipelineSpec
from repro.core.serialize import compat_get
from repro.trace.collector import TraceCollector
from repro.trace.record import Phase

__all__ = ["TaskPhaseStats", "DroppedCpi", "PipelineMeasurement", "measure"]


@dataclass(frozen=True, order=True)
class DroppedCpi:
    """One CPI a reading node skipped at its graceful-degradation deadline.

    Recorded when :attr:`ExecutionConfig.read_deadline` expires before
    the node's slab read completes (typically during a stripe-server
    outage).  The node forwards a placeholder slab so the pipeline keeps
    its beat; this record is the accounting for the sacrificed data.
    """

    task: str
    node: int
    cpi: int
    waited: float  # simulated seconds spent waiting before giving up

    def to_dict(self) -> Dict[str, object]:
        """Lossless JSON-able form."""
        return {
            "task": self.task,
            "node": self.node,
            "cpi": self.cpi,
            "waited": self.waited,
        }

    @staticmethod
    def from_dict(d: Dict[str, object]) -> "DroppedCpi":
        """Inverse of :meth:`to_dict`."""
        return DroppedCpi(**d)


@dataclass(frozen=True)
class TaskPhaseStats:
    """Steady-state phase breakdown of one task (seconds per CPI)."""

    task: str
    recv: float
    compute: float
    send: float

    @property
    def total(self) -> float:
        """The task's service time T_i."""
        return self.recv + self.compute + self.send

    def to_dict(self) -> Dict[str, object]:
        """Lossless JSON-able form."""
        return {
            "task": self.task,
            "recv": self.recv,
            "compute": self.compute,
            "send": self.send,
        }

    @staticmethod
    def from_dict(d: Dict[str, object]) -> "TaskPhaseStats":
        """Inverse of :meth:`to_dict`."""
        return TaskPhaseStats(**d)


@dataclass
class PipelineMeasurement:
    """All steady-state measurements of one pipeline run."""

    task_stats: Dict[str, TaskPhaseStats]
    throughput: float           # CPIs/s at the sink
    latency: float              # s, first-task start -> sink done (mean)
    model_throughput: float     # 1 / max measured T_i  (Eq. 1/3)
    model_latency: float        # graph latency formula on measured T_i
    steady_cpis: List[int] = field(default_factory=list)
    latencies: List[float] = field(default_factory=list)  # per steady CPI

    def latency_percentile(self, q: float) -> float:
        """Per-CPI latency percentile over the steady-state window
        (``q`` in [0, 100]); useful for jitter, which the mean hides."""
        if not self.latencies:
            return self.latency
        if not (0.0 <= q <= 100.0):
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        ordered = sorted(self.latencies)
        idx = min(len(ordered) - 1, int(round(q / 100.0 * (len(ordered) - 1))))
        return ordered[idx]

    @property
    def bottleneck_task(self) -> str:
        """Task with the largest measured service time."""
        return max(self.task_stats.values(), key=lambda s: s.total).task

    def times(self) -> Dict[str, float]:
        """Measured T_i by task name."""
        return {name: s.total for name, s in self.task_stats.items()}

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Lossless JSON-able form (task order preserved)."""
        return {
            "task_stats": [s.to_dict() for s in self.task_stats.values()],
            "throughput": self.throughput,
            "latency": self.latency,
            "model_throughput": self.model_throughput,
            "model_latency": self.model_latency,
            "steady_cpis": list(self.steady_cpis),
            "latencies": list(self.latencies),
        }

    @staticmethod
    def from_dict(d: Dict[str, object]) -> "PipelineMeasurement":
        """Inverse of :meth:`to_dict`.

        Accepts legacy camelCase spellings (``taskStats``,
        ``modelThroughput``, ...) on the read side; emitted keys are
        always snake_case.
        """
        stats = [TaskPhaseStats.from_dict(s) for s in compat_get(d, "task_stats")]
        return PipelineMeasurement(
            task_stats={s.task: s for s in stats},
            throughput=d["throughput"],
            latency=d["latency"],
            model_throughput=compat_get(d, "model_throughput"),
            model_latency=compat_get(d, "model_latency"),
            steady_cpis=list(compat_get(d, "steady_cpis")),
            latencies=list(d["latencies"]),
        )

    def utilization(self) -> Dict[str, float]:
        """Fraction of the pipeline beat each task spends in service.

        ``T_i * throughput``: 1.0 for the bottleneck task in steady
        state, lower for everyone waiting on it.  (Can exceed 1.0 when
        phases overlap, e.g. SMP-threaded nodes, where per-CPI service
        exceeds the cycle time.)
        """
        return {
            name: s.total * self.throughput for name, s in self.task_stats.items()
        }


def measure(
    trace: TraceCollector,
    spec: PipelineSpec,
    n_cpis: int,
    warmup: int,
    sink_task: str,
    first_task: str,
) -> PipelineMeasurement:
    """Compute steady-state metrics from a finished run's trace."""
    steady = [k for k in range(warmup, n_cpis)]
    if not steady:
        raise PipelineError("no steady-state CPIs (warmup >= n_cpis)")

    task_stats: Dict[str, TaskPhaseStats] = {}
    for t in spec.tasks:
        recs = trace.cpis(t.name)
        use = [k for k in steady if k in set(recs)]
        if not use:
            raise PipelineError(f"no steady-state records for task {t.name!r}")
        recv = sum(trace.phase_time(t.name, k, Phase.RECV) for k in use) / len(use)
        comp = sum(trace.phase_time(t.name, k, Phase.COMPUTE) for k in use) / len(use)
        send = sum(trace.phase_time(t.name, k, Phase.SEND) for k in use) / len(use)
        task_stats[t.name] = TaskPhaseStats(t.name, recv, comp, send)

    # Operational throughput: sink completion rate over the window.
    t_first = trace.completion_time(sink_task, steady[0])
    t_last = trace.completion_time(sink_task, steady[-1])
    if len(steady) > 1 and t_last > t_first:
        throughput = (len(steady) - 1) / (t_last - t_first)
    else:
        # Single steady CPI: fall back to the model form.
        throughput = 1.0 / max(s.total for s in task_stats.values())

    # Operational latency: per-CPI journey time.
    lats = [
        trace.completion_time(sink_task, k) - trace.start_time(first_task, k)
        for k in steady
    ]
    latency = sum(lats) / len(lats)

    times = {name: s.total for name, s in task_stats.items()}
    return PipelineMeasurement(
        task_stats=task_stats,
        throughput=throughput,
        latency=latency,
        model_throughput=spec.graph.throughput(times),
        model_latency=spec.graph.latency(times),
        steady_cpis=steady,
        latencies=lats,
    )
