"""Block-partition arithmetic.

Every pipeline task partitions its workload (range gates, Doppler-bin
rows, or global Doppler bins) into contiguous blocks over its nodes.
Redistribution between two tasks partitioned along the same unit axis is
planned from block overlaps; redistribution between *different* axes
(Doppler's range partition feeding beamforming's bin partition) is an
all-to-all where each producer sends its range slab of each consumer's
bin rows.

All functions are pure arithmetic and property-tested: blocks tile the
index space, sizes differ by at most one, and overlap plans conserve
element counts.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import PartitionError

__all__ = ["BlockPartition", "label_block_rows"]


@dataclass(frozen=True)
class BlockPartition:
    """Contiguous block partition of ``total`` units over ``parts`` nodes.

    The first ``total % parts`` blocks get one extra unit, so sizes
    differ by at most one (balanced load, the paper's "evenly
    partitioning its work load").
    """

    total: int
    parts: int

    def __post_init__(self) -> None:
        if self.total < 0:
            raise PartitionError(f"total must be >= 0, got {self.total}")
        if self.parts < 1:
            raise PartitionError(f"parts must be >= 1, got {self.parts}")

    def bounds(self, i: int) -> Tuple[int, int]:
        """Half-open unit interval ``[lo, hi)`` owned by block ``i``."""
        if not (0 <= i < self.parts):
            raise PartitionError(f"block {i} outside partition of {self.parts}")
        base, rem = divmod(self.total, self.parts)
        lo = i * base + min(i, rem)
        hi = lo + base + (1 if i < rem else 0)
        return lo, hi

    def size(self, i: int) -> int:
        """Units owned by block ``i``."""
        lo, hi = self.bounds(i)
        return hi - lo

    def owner(self, unit: int) -> int:
        """Block owning ``unit``."""
        if not (0 <= unit < self.total):
            raise PartitionError(f"unit {unit} outside [0, {self.total})")
        base, rem = divmod(self.total, self.parts)
        boundary = rem * (base + 1)
        if unit < boundary:
            return unit // (base + 1)
        if base == 0:
            raise PartitionError(f"unit {unit} beyond populated blocks")
        return rem + (unit - boundary) // base

    def all_bounds(self) -> List[Tuple[int, int]]:
        """Bounds of every block, in order."""
        return [self.bounds(i) for i in range(self.parts)]

    def overlap(self, i: int, other: "BlockPartition", j: int) -> Tuple[int, int]:
        """Intersection of my block ``i`` with ``other``'s block ``j``.

        Both partitions must cover the same unit space.  Returns a
        (possibly empty) half-open interval.
        """
        if self.total != other.total:
            raise PartitionError(
                f"partitions cover different spaces: {self.total} vs {other.total}"
            )
        a_lo, a_hi = self.bounds(i)
        b_lo, b_hi = other.bounds(j)
        lo, hi = max(a_lo, b_lo), min(a_hi, b_hi)
        return (lo, hi) if lo < hi else (lo, lo)

    def peers_overlapping(self, i: int, other: "BlockPartition") -> List[int]:
        """Blocks of ``other`` whose interval intersects my block ``i``."""
        if self.total != other.total:
            raise PartitionError(
                f"partitions cover different spaces: {self.total} vs {other.total}"
            )
        lo, hi = self.bounds(i)
        if lo >= hi:
            return []
        first = other.owner(lo)
        last = other.owner(hi - 1)
        return [j for j in range(first, last + 1) if other.size(j) > 0]


def label_block_rows(
    labels: Sequence[int], lo: int, hi: int, *, assume_sorted: bool = False
) -> Tuple[int, int]:
    """Rows of a sorted label list whose labels fall in ``[lo, hi)``.

    Used to map a *global* Doppler-bin interval (a pulse-compression
    node's ownership) onto the *row* space of the easy or hard stream,
    whose rows carry sorted global bin labels.

    ``assume_sorted`` skips the sortedness validation scan; pass it when
    the caller constructed (and therefore already validated) the label
    list, e.g. a plan re-querying its own streams per consumer node.

    Returns a half-open row interval (possibly empty).
    """
    if hi < lo:
        raise PartitionError(f"bad interval [{lo}, {hi})")
    if not assume_sorted and any(
        labels[k] > labels[k + 1] for k in range(len(labels) - 1)
    ):
        raise PartitionError("labels must be sorted ascending")
    row_lo = bisect.bisect_left(labels, lo)
    row_hi = bisect.bisect_left(labels, hi)
    return row_lo, row_hi
