"""Pipeline/plan consistency validation.

:func:`validate_plan` proves, by pure arithmetic, that a
:class:`~repro.core.plan.PipelinePlan`'s routing tables are coherent —
before a single simulated second is spent.  The invariants:

1. task ranks are disjoint and tile ``[0, total_nodes)``;
2. every unit of every stream (range gates, bin rows, global bins) is
   routed to exactly one consumer by each producer, and total routed
   bytes match the cost model;
3. producer routes and consumer expectations are mirror images — no
   node ever waits for a message that is never sent, and no message is
   sent to a node that is not expecting it (the two ways a
   message-passing pipeline deadlocks or leaks).

The executor calls this automatically; it is also part of the public
API so users composing custom assignments can check them cheaply.
"""

from __future__ import annotations

from typing import List

from repro.errors import PipelineError
from repro.core.plan import PipelinePlan

__all__ = ["validate_plan"]


def _check(cond: bool, message: str, problems: List[str]) -> None:
    if not cond:
        problems.append(message)


def validate_plan(plan: PipelinePlan) -> None:
    """Raise :class:`~repro.errors.PipelineError` on any inconsistency."""
    problems: List[str] = []
    p = plan.params

    # 1 -- rank layout.
    all_ranks: List[int] = []
    for name in plan.spec.task_names():
        all_ranks.extend(plan.ranks(name))
    _check(
        sorted(all_ranks) == list(range(plan.spec.total_nodes)),
        "task ranks do not tile [0, total_nodes)",
        problems,
    )

    # 2 -- Doppler -> beamforming row conservation.
    for easy, total_rows in ((True, p.n_easy_bins), (False, p.n_hard_bins)):
        for dop in range(plan.ranges_doppler.parts):
            if plan.ranges_doppler.size(dop) == 0:
                continue
            covered = sum(hi - lo for _, (lo, hi), _ in plan.doppler_to_bf(dop, easy))
            _check(
                covered == total_rows,
                f"doppler[{dop}] routes {covered}/{total_rows} "
                f"{'easy' if easy else 'hard'} rows to beamforming",
                problems,
            )

    # 2b -- training gates conservation.
    cols_seen: List[int] = []
    for dop in range(plan.ranges_doppler.parts):
        routes = plan.doppler_to_weights(dop, easy=True)
        if routes:
            cols_seen.extend(int(c) for c in routes[0][2])
    _check(
        sorted(cols_seen) == list(range(len(plan.train_gates))),
        "training-gate columns are not routed exactly once",
        problems,
    )

    # 2c -- weights -> beamforming row conservation.
    for easy, rows_w, total in (
        (True, plan.rows_easy_w, p.n_easy_bins),
        (False, plan.rows_hard_w, p.n_hard_bins),
    ):
        covered = sum(
            hi - lo
            for w in range(rows_w.parts)
            for _, (lo, hi), _ in plan.weights_to_bf(w, easy)
        )
        _check(
            covered == total,
            f"weight rows cover {covered}/{total} ({'easy' if easy else 'hard'})",
            problems,
        )

    # 2d -- beamforming -> pulse compression bin conservation.
    routed: List[int] = []
    for easy, rows_bf, labels in (
        (True, plan.rows_easy_bf, plan.easy_labels),
        (False, plan.rows_hard_bf, plan.hard_labels),
    ):
        for bf in range(rows_bf.parts):
            for _, (lo, hi), _ in plan.bf_to_pc(bf, easy):
                routed.extend(labels[lo:hi])
    _check(
        sorted(routed) == list(range(p.n_doppler_bins)),
        "global Doppler bins are not routed exactly once into pulse compression",
        problems,
    )

    # 3 -- mirror-image expectations.
    for easy, rows_bf, rows_w in (
        (True, plan.rows_easy_bf, plan.rows_easy_w),
        (False, plan.rows_hard_bf, plan.rows_hard_w),
    ):
        incoming = {c: set() for c in range(rows_bf.parts)}
        for w in range(rows_w.parts):
            for c, _, _ in plan.weights_to_bf(w, easy):
                incoming[c].add(w)
        for c in range(rows_bf.parts):
            _check(
                set(plan.bf_expected_weight_producers(c, easy)) == incoming[c],
                f"{'easy' if easy else 'hard'}_bf[{c}] weight expectations "
                "do not mirror weight routes",
                problems,
            )

    incoming_pc = {c: set() for c in range(plan.bins_pc.parts)}
    for easy, rows_bf, task in (
        (True, plan.rows_easy_bf, "easy_bf"),
        (False, plan.rows_hard_bf, "hard_bf"),
    ):
        for bf in range(rows_bf.parts):
            for c, _, _ in plan.bf_to_pc(bf, easy):
                incoming_pc[c].add((task, bf))
    for c in range(plan.bins_pc.parts):
        _check(
            set(plan.pc_expected_bf_producers(c)) == incoming_pc[c],
            f"{plan.pc_task}[{c}] expectations do not mirror beamforming routes",
            problems,
        )

    if not plan.combined:
        covered = sum(
            hi - lo
            for pc in range(plan.bins_pc.parts)
            for _, (lo, hi), _ in plan.pc_to_cfar(pc)
        )
        _check(
            covered == p.n_doppler_bins,
            f"pc->cfar covers {covered}/{p.n_doppler_bins} bins",
            problems,
        )
        incoming_cf = {c: set() for c in range(plan.bins_cfar.parts)}
        for pc in range(plan.bins_pc.parts):
            for c, _, _ in plan.pc_to_cfar(pc):
                incoming_cf[c].add(pc)
        for c in range(plan.bins_cfar.parts):
            _check(
                set(plan.cfar_expected_pc_producers(c)) == incoming_cf[c],
                f"cfar[{c}] expectations do not mirror pc routes",
                problems,
            )

    if plan.ranges_read is not None:
        covered = sum(
            hi - lo
            for rd in range(plan.ranges_read.parts)
            for _, (lo, hi), _ in plan.read_to_doppler(rd)
        )
        _check(
            covered == p.n_ranges,
            f"read->doppler covers {covered}/{p.n_ranges} range gates",
            problems,
        )
        incoming_d = {c: set() for c in range(plan.ranges_doppler.parts)}
        for rd in range(plan.ranges_read.parts):
            for c, _, _ in plan.read_to_doppler(rd):
                incoming_d[c].add(rd)
        for c in range(plan.ranges_doppler.parts):
            _check(
                set(plan.doppler_expected_read_producers(c)) == incoming_d[c],
                f"doppler[{c}] expectations do not mirror read routes",
                problems,
            )

    if problems:
        raise PipelineError(
            "plan validation failed:\n  - " + "\n  - ".join(problems)
        )
