"""Per-node runtime context for task bodies.

A :class:`TaskContext` is everything one task node's process generator
needs: its rank handle, the plan, the file set, the trace collector, the
execution config, and helpers for timed phases, cost-model compute, and
credit-window flow control.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.core.arrivals import ArrivalSpec
from repro.core.plan import PipelinePlan
from repro.core.task import TaskInstance
from repro.io.fileset import CubeFileSet
from repro.mpi.communicator import RankComm
from repro.mpi.datatypes import Phantom
from repro.sim.kernel import Kernel
from repro.stap.costs import STAPCosts
from repro.stap.params import STAPParams
from repro.trace.collector import TraceCollector
from repro.trace.record import Phase

__all__ = ["ExecutionConfig", "TaskContext", "data_tag", "ACK_NBYTES"]

#: Bytes charged for a flow-control acknowledgement message.
ACK_NBYTES = 64


def data_tag(cpi: int) -> int:
    """Message tag for CPI ``cpi`` (offset so the bootstrap CPI -1 is
    representable as a valid non-negative tag)."""
    return cpi + 1


@dataclass(frozen=True)
class ExecutionConfig:
    """How to run a pipeline.

    Attributes
    ----------
    n_cpis:
        CPIs pushed through the pipeline.
    warmup:
        Leading CPIs excluded from steady-state metrics.
    window:
        Credit window W: a producer may be at most W CPIs ahead of each
        of its consumers (bounds buffering, like the real system's
        finite message buffers).
    compute:
        True = real numerics flow (compute mode); False = phantom
        payloads and cost-model times only (timing mode).
    threaded:
        False = the paper's single-threaded nodes (phases in sequence);
        True = the IPPS'99 companion design: receive/compute/send run as
        concurrent threads per node (SMP nodes), overlapping phases of
        successive CPIs.
    write_reports:
        When True, the sink task writes each CPI's detection reports
        back into the parallel file system (one file per sink node) —
        the output-side I/O the authors' journal version studies.  The
        writes queue on the same stripe-directory disks as the reads.
    read_deadline:
        Graceful-degradation deadline (simulated seconds) for the
        per-CPI slab read.  When set, a reading task that cannot obtain
        its CPI slab within the deadline *skips* the CPI — recording a
        :class:`~repro.core.metrics.DroppedCpi` instead of stalling the
        whole pipeline behind a failed stripe server.  ``None`` (the
        default) keeps the classic stall-forever behaviour.
    metrics_interval:
        Simulated-time gauge-sampling interval for the observability
        layer (:mod:`repro.obs`).  When set, the executor builds a
        :class:`~repro.obs.MetricsRegistry`, samples it every this many
        simulated seconds, and attaches the time-series artifact to
        ``PipelineResult.metrics``.  Sampling rides the kernel's
        clock-advance hook, so event order — and every simulated
        quantity — is bit-identical with metrics on or off.  ``None``
        (the default) disables metrics entirely.
    arrival:
        CPI arrival process (:class:`~repro.core.arrivals.ArrivalSpec`).
        When set, the reading task gates each CPI's read on its arrival
        time — modelling a radar front end that delivers CPIs on a
        cadence instead of a pre-populated file system.  ``None`` (the
        default) keeps the classic all-data-ready behaviour and is
        bit-identical to it.
    """

    n_cpis: int = 8
    warmup: int = 2
    window: int = 2
    compute: bool = False
    threaded: bool = False
    write_reports: bool = False
    read_deadline: Optional[float] = None
    metrics_interval: Optional[float] = None
    arrival: Optional[ArrivalSpec] = None

    def __post_init__(self) -> None:
        if self.n_cpis < 1:
            raise ValueError("n_cpis must be >= 1")
        if not (0 <= self.warmup < self.n_cpis):
            raise ValueError("warmup must be in [0, n_cpis)")
        if self.window < 1:
            raise ValueError("window must be >= 1")
        if self.read_deadline is not None and self.read_deadline <= 0:
            raise ValueError("read_deadline must be > 0 (or None)")
        if self.metrics_interval is not None and self.metrics_interval <= 0:
            raise ValueError("metrics_interval must be > 0 (or None)")
        if self.arrival is not None and not isinstance(self.arrival, ArrivalSpec):
            raise ValueError("arrival must be an ArrivalSpec (or None)")

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Lossless JSON-able form.

        ``read_deadline``, ``metrics_interval``, and ``arrival`` are
        emitted only when set so configs predating those features keep
        their exact hashes.
        """
        d: Dict[str, Any] = {
            "n_cpis": self.n_cpis,
            "warmup": self.warmup,
            "window": self.window,
            "compute": self.compute,
            "threaded": self.threaded,
            "write_reports": self.write_reports,
        }
        if self.read_deadline is not None:
            d["read_deadline"] = self.read_deadline
        if self.metrics_interval is not None:
            d["metrics_interval"] = self.metrics_interval
        if self.arrival is not None:
            d["arrival"] = self.arrival.to_dict()
        return d

    @staticmethod
    def from_dict(d: Dict[str, Any]) -> "ExecutionConfig":
        """Inverse of :meth:`to_dict`."""
        if d.get("arrival") is not None and not isinstance(d["arrival"], ArrivalSpec):
            d = dict(d)
            d["arrival"] = ArrivalSpec.from_dict(d["arrival"])
        return ExecutionConfig(**d)


class TaskContext:
    """Everything one task node needs at run time."""

    def __init__(
        self,
        kernel: Kernel,
        rc: RankComm,
        task: TaskInstance,
        local: int,
        plan: PipelinePlan,
        cfg: ExecutionConfig,
        trace: TraceCollector,
        fileset: Optional[CubeFileSet],
        node_spec,
        results: Dict[str, Any],
        strategy=None,
        metrics=None,
        tenant: str = "",
        arrival_times: Optional[Sequence[float]] = None,
    ) -> None:
        self.kernel = kernel
        self.rc = rc
        self.task = task
        self.local = local
        self.plan = plan
        self.cfg = cfg
        self.trace = trace
        self.fileset = fileset
        self.node_spec = node_spec
        self.results = results
        #: The run's :class:`~repro.strategies.IOStrategy` (None for
        #: hand-built specs outside the registry: legacy reader behaviour).
        self.strategy = strategy
        #: The run's :class:`~repro.obs.MetricsRegistry`, or None when
        #: observability is off (``cfg.metrics_interval`` unset).
        self.metrics = metrics
        #: Tenant name when this context belongs to a pipeline hosted by
        #: a :class:`~repro.scenario.ScenarioExecutor`; "" standalone.
        #: Non-empty tenants add a ``tenant`` label to every instrument
        #: registered from task code (standalone labels are unchanged).
        self.tenant = tenant
        #: Absolute arrival time of each CPI (``cfg.arrival``-derived),
        #: or None when the classic all-data-ready behaviour applies.
        self.arrival_times = tuple(arrival_times) if arrival_times is not None else None
        self.params: STAPParams = plan.params
        self.costs = STAPCosts(plan.params)
        # Per-consumer-set credit bookkeeping: edge key -> consumer ranks.
        self._credit_consumers: Dict[str, Tuple[int, ...]] = {}

    # -- sugar ------------------------------------------------------------
    @property
    def now(self) -> float:
        return self.kernel.now

    @property
    def name(self) -> str:
        return self.task.name

    def tenant_labels(self, **labels) -> Dict[str, Any]:
        """Instrument labels with a ``tenant`` key added when this
        context runs inside a scenario (standalone: unchanged)."""
        if self.tenant:
            labels["tenant"] = self.tenant
        return labels

    def record(self, cpi: int, phase: Phase, t_start: float, t_end: Optional[float] = None) -> None:
        """Add a trace record ending now (or at ``t_end``)."""
        end = self.now if t_end is None else t_end
        self.trace.add(self.name, self.local, cpi, phase, t_start, end)
        if self.metrics is not None:
            # Cumulative phase seconds per (task, phase): the compute-
            # utilization side of the bottleneck-migration picture.  A
            # plain counter increment — no kernel interaction.
            self.metrics.counter(
                "task_phase_seconds_total",
                help="cumulative simulated seconds spent per task phase",
                **self.tenant_labels(task=self.name, phase=phase.value),
            ).inc(end - t_start)

    # -- arrival gating ---------------------------------------------------
    def await_arrival(self, cpi: int):
        """Process generator: wait until CPI ``cpi`` has arrived.

        No-op (zero kernel events — bit-identical control flow) when no
        arrival process is configured or the CPI already arrived.  A
        real wait is recorded as an ARRIVAL phase: idle time, excluded
        from service metrics like CREDIT.
        """
        times = self.arrival_times
        if times is None or cpi >= len(times):
            return
        t = times[cpi]
        t0 = self.now
        if t <= t0:
            return
        yield self.kernel.timeout(t - t0)
        self.record(cpi, Phase.ARRIVAL, t0)

    def ranks(self, task_name: str) -> Tuple[int, ...]:
        return self.plan.ranks(task_name)

    # -- compute phase -------------------------------------------------------
    def compute_for(self, seconds: float):
        """Process generator: occupy the node for ``seconds`` of compute."""
        if seconds > 0:
            yield self.kernel.timeout(seconds)

    def model_time(self, full_cpi_flops: float, share: float, bytes_touched: float = 0.0) -> float:
        """Cost-model seconds for this node's ``share`` of a task's work."""
        return self.node_spec.compute_time(full_cpi_flops * share, bytes_touched * share)

    # -- flow control ----------------------------------------------------------
    def register_consumers(self, edge: str, consumer_ranks) -> None:
        """Declare the consumer set of an outgoing edge (once, at start)."""
        self._credit_consumers[edge] = tuple(sorted(set(consumer_ranks)))

    def await_credit(self, edge: str, cpi: int):
        """Process generator: wait for acks of CPI ``cpi - window``.

        Call before *sending* CPI ``cpi`` on ``edge``.  Records the stall
        as a CREDIT phase (idle, excluded from service times).
        """
        need = cpi - self.cfg.window
        if need < 0:
            return
        consumers = self._credit_consumers[edge]
        t0 = self.now
        for c in consumers:
            yield from self.rc.recv(source=c, tag=data_tag(need))
        if self.now > t0:
            self.record(cpi, Phase.CREDIT, t0)

    def send_ack(self, producer_rank: int, cpi: int) -> None:
        """Acknowledge consumption of CPI ``cpi`` to one producer."""
        self.rc.isend(Phantom(ACK_NBYTES, {"ack": cpi}), producer_rank, data_tag(cpi))

    # -- payload helpers ----------------------------------------------------------
    def payload(self, array_or_none, nbytes: int, **meta) -> Any:
        """Compute mode: the array; timing mode: a Phantom of ``nbytes``."""
        if self.cfg.compute:
            return array_or_none
        return Phantom(nbytes, meta)
