"""The execution plan: who owns what, who talks to whom.

A :class:`PipelinePlan` binds a :class:`~repro.core.pipeline.PipelineSpec`
to concrete partitions:

* the read and Doppler tasks partition **range gates**;
* the weight and beamforming tasks partition **rows** of the easy/hard
  Doppler streams (rows carry sorted global bin labels);
* pulse compression, CFAR, and the combined task partition **global
  Doppler bins**.

All inter-task message routing (who sends which slice to whom, and how
many messages each node must expect) is derived here from pure partition
arithmetic, so the compute-mode and timing-mode executors follow exactly
the same communication pattern.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import PipelineError
from repro.core.partition import BlockPartition, label_block_rows
from repro.core.pipeline import PipelineSpec
from repro.core.task import TaskInstance
from repro.stap.params import STAPParams
from repro.stap.weights import training_gates

__all__ = ["PipelinePlan"]


@dataclass
class PipelinePlan:
    """Partitions and routing for one pipeline on one parameter set."""

    spec: PipelineSpec
    params: STAPParams

    def __post_init__(self) -> None:
        p, spec = self.params, self.spec
        self.instances: Dict[str, TaskInstance] = spec.instances()
        inst = self.instances
        self.ranges_doppler = BlockPartition(p.n_ranges, inst["doppler"].n_nodes)
        self.ranges_read: Optional[BlockPartition] = (
            BlockPartition(p.n_ranges, inst["read"].n_nodes)
            if "read" in inst
            else None
        )
        self.rows_easy_w = BlockPartition(p.n_easy_bins, inst["easy_weight"].n_nodes)
        self.rows_hard_w = BlockPartition(p.n_hard_bins, inst["hard_weight"].n_nodes)
        self.rows_easy_bf = BlockPartition(p.n_easy_bins, inst["easy_bf"].n_nodes)
        self.rows_hard_bf = BlockPartition(p.n_hard_bins, inst["hard_bf"].n_nodes)
        self.combined = "pc_cfar" in inst
        if self.combined:
            self.bins_pc = BlockPartition(p.n_doppler_bins, inst["pc_cfar"].n_nodes)
            self.bins_cfar: Optional[BlockPartition] = None
        else:
            self.bins_pc = BlockPartition(p.n_doppler_bins, inst["pulse_compr"].n_nodes)
            self.bins_cfar = BlockPartition(p.n_doppler_bins, inst["cfar"].n_nodes)
        self.easy_labels: Tuple[int, ...] = p.easy_bins
        self.hard_labels: Tuple[int, ...] = p.hard_bins
        self.train_gates: np.ndarray = training_gates(p.n_ranges, p.n_training)
        self.itemsize = int(np.dtype(p.dtype).itemsize)

    # -- names of key tasks (combination-aware) ------------------------------
    @property
    def pc_task(self) -> str:
        """Name of the task performing pulse compression."""
        return "pc_cfar" if self.combined else "pulse_compr"

    @property
    def sink_task(self) -> str:
        """Name of the final (detection-producing) task."""
        return "pc_cfar" if self.combined else "cfar"

    @property
    def first_task(self) -> str:
        """Name of the pipeline's entry task."""
        return "read" if "read" in self.instances else "doppler"

    def ranks(self, task: str) -> Tuple[int, ...]:
        """Global ranks of a task's nodes."""
        return self.instances[task].ranks

    # -- training-gate routing ------------------------------------------------
    def train_gate_cols(self, rlo: int, rhi: int) -> np.ndarray:
        """Which training-gate *columns* (indices into the gate list)
        fall inside range slab ``[rlo, rhi)``."""
        return np.nonzero((self.train_gates >= rlo) & (self.train_gates < rhi))[0]

    # -- routing tables ----------------------------------------------------------
    # Each entry: (consumer_local_index, slice description, nbytes).

    def doppler_to_bf(
        self, dop_local: int, easy: bool
    ) -> List[Tuple[int, Tuple[int, int], int]]:
        """What Doppler node ``dop_local`` sends each easy/hard BF node.

        Returns (bf_local, (row_lo, row_hi), nbytes); the range extent is
        the Doppler node's own slab, the rows are the consumer's.
        """
        p = self.params
        rlo, rhi = self.ranges_doppler.bounds(dop_local)
        rows_bf = self.rows_easy_bf if easy else self.rows_hard_bf
        dof = p.easy_dof if easy else p.hard_dof
        out = []
        for c in range(rows_bf.parts):
            blo, bhi = rows_bf.bounds(c)
            if bhi <= blo:
                continue
            nbytes = (bhi - blo) * dof * (rhi - rlo) * self.itemsize
            out.append((c, (blo, bhi), nbytes))
        return out

    def doppler_to_weights(
        self, dop_local: int, easy: bool
    ) -> List[Tuple[int, Tuple[int, int], np.ndarray, int]]:
        """What Doppler node ``dop_local`` sends each weight node.

        Only training-gate columns travel (weight training never needs
        the full range extent).  Returns
        (w_local, (row_lo, row_hi), gate_cols, nbytes); empty-gate
        entries are skipped — the consumer knows which producers to
        expect via :meth:`weight_expected_producers`.
        """
        p = self.params
        rlo, rhi = self.ranges_doppler.bounds(dop_local)
        cols = self.train_gate_cols(rlo, rhi)
        rows_w = self.rows_easy_w if easy else self.rows_hard_w
        dof = p.easy_dof if easy else p.hard_dof
        out = []
        if len(cols) == 0:
            return out
        for c in range(rows_w.parts):
            blo, bhi = rows_w.bounds(c)
            if bhi <= blo:
                continue
            nbytes = (bhi - blo) * dof * len(cols) * self.itemsize
            out.append((c, (blo, bhi), cols, nbytes))
        return out

    def weight_expected_producers(self) -> List[int]:
        """Doppler-local indices that hold at least one training gate."""
        out = []
        for i in range(self.ranges_doppler.parts):
            rlo, rhi = self.ranges_doppler.bounds(i)
            if len(self.train_gate_cols(rlo, rhi)) > 0:
                out.append(i)
        return out

    def weights_to_bf(
        self, w_local: int, easy: bool
    ) -> List[Tuple[int, Tuple[int, int], int]]:
        """Weight rows each weight node sends each BF node (overlaps)."""
        p = self.params
        rows_w = self.rows_easy_w if easy else self.rows_hard_w
        rows_bf = self.rows_easy_bf if easy else self.rows_hard_bf
        dof = p.easy_dof if easy else p.hard_dof
        out = []
        for c in rows_w.peers_overlapping(w_local, rows_bf):
            lo, hi = rows_w.overlap(w_local, rows_bf, c)
            if hi <= lo:
                continue
            nbytes = (hi - lo) * dof * p.n_beams * self.itemsize
            out.append((c, (lo, hi), nbytes))
        return out

    def bf_expected_weight_producers(self, bf_local: int, easy: bool) -> List[int]:
        """Weight-task locals a BF node receives weights from."""
        rows_w = self.rows_easy_w if easy else self.rows_hard_w
        rows_bf = self.rows_easy_bf if easy else self.rows_hard_bf
        return [
            j
            for j in rows_bf.peers_overlapping(bf_local, rows_w)
            if rows_bf.overlap(bf_local, rows_w, j)[1]
            > rows_bf.overlap(bf_local, rows_w, j)[0]
        ]

    def bf_to_pc(
        self, bf_local: int, easy: bool
    ) -> List[Tuple[int, Tuple[int, int], int]]:
        """Beam rows each BF node sends each pulse-compression node.

        Rows are in the easy/hard *row* space; the PC node re-labels
        them to global bins via the stream's label list.
        """
        p = self.params
        rows_bf = self.rows_easy_bf if easy else self.rows_hard_bf
        labels = self.easy_labels if easy else self.hard_labels
        mylo, myhi = rows_bf.bounds(bf_local)
        out = []
        for c in range(self.bins_pc.parts):
            glo, ghi = self.bins_pc.bounds(c)
            # The plan built these label lists sorted; skip the re-scan.
            row_lo, row_hi = label_block_rows(labels, glo, ghi, assume_sorted=True)
            lo, hi = max(row_lo, mylo), min(row_hi, myhi)
            if hi <= lo:
                continue
            nbytes = (hi - lo) * p.n_beams * p.n_ranges * self.itemsize
            out.append((c, (lo, hi), nbytes))
        return out

    def pc_expected_bf_producers(self, pc_local: int) -> List[Tuple[str, int]]:
        """(bf task name, bf local) pairs a PC node receives from."""
        out: List[Tuple[str, int]] = []
        glo, ghi = self.bins_pc.bounds(pc_local)
        for easy, task, rows_bf, labels in (
            (True, "easy_bf", self.rows_easy_bf, self.easy_labels),
            (False, "hard_bf", self.rows_hard_bf, self.hard_labels),
        ):
            row_lo, row_hi = label_block_rows(labels, glo, ghi, assume_sorted=True)
            if row_hi <= row_lo:
                continue
            for j in range(rows_bf.parts):
                blo, bhi = rows_bf.bounds(j)
                if max(blo, row_lo) < min(bhi, row_hi):
                    out.append((task, j))
        return out

    def pc_to_cfar(self, pc_local: int) -> List[Tuple[int, Tuple[int, int], int]]:
        """Global-bin rows each PC node sends each CFAR node."""
        if self.bins_cfar is None:
            raise PipelineError("combined pipeline has no pc->cfar edge")
        p = self.params
        out = []
        for c in self.bins_pc.peers_overlapping(pc_local, self.bins_cfar):
            lo, hi = self.bins_pc.overlap(pc_local, self.bins_cfar, c)
            if hi <= lo:
                continue
            nbytes = (hi - lo) * p.n_beams * p.n_ranges * self.itemsize
            out.append((c, (lo, hi), nbytes))
        return out

    def cfar_expected_pc_producers(self, cfar_local: int) -> List[int]:
        """PC locals a CFAR node receives from."""
        if self.bins_cfar is None:
            raise PipelineError("combined pipeline has no pc->cfar edge")
        return [
            j
            for j in self.bins_cfar.peers_overlapping(cfar_local, self.bins_pc)
            if self.bins_cfar.overlap(cfar_local, self.bins_pc, j)[1]
            > self.bins_cfar.overlap(cfar_local, self.bins_pc, j)[0]
        ]

    def read_to_doppler(self, read_local: int) -> List[Tuple[int, Tuple[int, int], int]]:
        """Range sub-slabs a read node sends each Doppler node."""
        if self.ranges_read is None:
            raise PipelineError("embedded pipeline has no read task")
        p = self.params
        row = p.n_channels * p.n_pulses * self.itemsize
        out = []
        for c in self.ranges_read.peers_overlapping(read_local, self.ranges_doppler):
            lo, hi = self.ranges_read.overlap(read_local, self.ranges_doppler, c)
            if hi <= lo:
                continue
            out.append((c, (lo, hi), (hi - lo) * row))
        return out

    def doppler_expected_read_producers(self, dop_local: int) -> List[int]:
        """Read locals a Doppler node receives its slab from."""
        if self.ranges_read is None:
            raise PipelineError("embedded pipeline has no read task")
        return [
            j
            for j in self.ranges_doppler.peers_overlapping(dop_local, self.ranges_read)
            if self.ranges_doppler.overlap(dop_local, self.ranges_read, j)[1]
            > self.ranges_doppler.overlap(dop_local, self.ranges_read, j)[0]
        ]
