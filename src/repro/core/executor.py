"""The pipeline executor: run a pipeline spec on a simulated machine.

:class:`PipelineExecutor` wires everything together:

1. build the machine from a preset (compute nodes = the pipeline's total,
   I/O nodes = the file system's stripe directories);
2. build the file system (PFS or PIOFS) and the round-robin cube files;
3. bind the pipeline's tasks to communicator ranks and spawn one DES
   process per task node running its body;
4. run the kernel to completion and measure.

``FSConfig`` carries the file-system choice — ``kind`` selects paper
semantics (``"pfs"`` async-capable, ``"piofs"`` synchronous-only) and
``stripe_factor`` is the paper's central knob.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.core.bodies import body_for
from repro.core.context import ExecutionConfig, TaskContext
from repro.core.metrics import DroppedCpi, PipelineMeasurement, measure
from repro.core.serialize import compat_get
from repro.core.pipeline import PipelineSpec
from repro.core.plan import PipelinePlan
from repro.core.validate import validate_plan
from repro.io.fileset import CubeFileSet, CubeSource
from repro.machine.presets import MachinePreset
from repro.mpi.communicator import Communicator
from repro.obs import MetricsRegistry, Sampler, instrument_pipeline
from repro.obs.instruments import DEFAULT_BUCKETS
from repro.pfs.blockdev import DiskSpec
from repro.pfs.pfs import PFS
from repro.pfs.piofs import PIOFS
from repro.sim.kernel import Kernel
from repro.stap.cfar import Detection
from repro.stap.params import STAPParams
from repro.stap.scenario import Scenario
from repro.strategies import strategy_for_spec
from repro.trace.collector import TraceCollector

__all__ = ["FSConfig", "ExecutionConfig", "PipelineExecutor", "PipelineResult"]


@dataclass(frozen=True)
class FSConfig:
    """Which parallel file system to build, and its geometry.

    ``replication > 1`` mirrors each stripe unit over that many
    directories (chained declustering) and switches clients to the
    fault-tolerant retry/failover path — see ``docs/fault_model.md``.

    The three optional ROMIO-style hints tune the noncontiguous-access
    strategies (``docs/io_strategies.md``): ``sieve_buffer_size``
    replaces the data-sieving readers' whole-stripe-unit widening with an
    arbitrary alignment granularity, ``cb_nodes`` caps how many of the
    reading task's nodes act as phase-one aggregators in collective
    two-phase I/O, and ``list_io_max_runs`` caps the contiguous pieces
    one batched list-I/O request may carry.  Unset hints are omitted
    from serialization, so hint-free configs keep their exact
    pre-existing hashes.
    """

    kind: str = "pfs"            # "pfs" (async) or "piofs" (sync-only)
    stripe_factor: int = 64
    stripe_unit: int = 64 * 1024
    disk_bw: Optional[float] = None        # default: preset's disk
    disk_overhead: Optional[float] = None
    name: str = ""
    replication: int = 1
    sieve_buffer_size: Optional[int] = None
    cb_nodes: Optional[int] = None
    list_io_max_runs: Optional[int] = None

    #: The ROMIO-style hint field names, in serialization order.
    HINT_FIELDS = ("sieve_buffer_size", "cb_nodes", "list_io_max_runs")

    def hint_dict(self) -> Dict[str, int]:
        """The hints that are actually set, as a plain dict."""
        return {
            k: getattr(self, k)
            for k in self.HINT_FIELDS
            if getattr(self, k) is not None
        }

    def label(self) -> str:
        """Display label, e.g. ``"PFS sf=64"`` or ``"PFS sf=4 rep=2"``."""
        if self.name:
            return self.name
        base = f"{self.kind.upper()} sf={self.stripe_factor}"
        if self.replication > 1:
            base += f" rep={self.replication}"
        return base

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Lossless JSON-able form.

        ``replication`` is emitted only when mirroring is on, and each
        ROMIO-style hint only when set, so unreplicated hint-free
        configs keep their exact pre-existing hashes.
        """
        d = {
            "kind": self.kind,
            "stripe_factor": self.stripe_factor,
            "stripe_unit": self.stripe_unit,
            "disk_bw": self.disk_bw,
            "disk_overhead": self.disk_overhead,
            "name": self.name,
        }
        if self.replication != 1:
            d["replication"] = self.replication
        d.update(self.hint_dict())
        return d

    @staticmethod
    def from_dict(d: Dict[str, Any]) -> "FSConfig":
        """Inverse of :meth:`to_dict`."""
        return FSConfig(**d)


@dataclass
class PipelineResult:
    """Everything a pipeline run produced."""

    spec: PipelineSpec
    cfg: ExecutionConfig
    fs_label: str
    machine_name: str
    trace: TraceCollector
    measurement: PipelineMeasurement
    detections: List[Detection]
    elapsed_sim_time: float

    @property
    def throughput(self) -> float:
        return self.measurement.throughput

    @property
    def latency(self) -> float:
        return self.measurement.latency

    #: Filled in by the executor after the run.
    disk_stats: "Optional[dict]" = None
    #: (src_rank, dst_rank) -> [messages, bytes]; rank -> task name.
    rank_traffic: "Optional[dict]" = None
    rank_task: "Optional[dict]" = None
    #: CPIs skipped at the read deadline; None unless a deadline was set.
    dropped_cpis: "Optional[List[DroppedCpi]]" = None
    #: JSON time-series metrics artifact (see :mod:`repro.obs`); None
    #: unless ``cfg.metrics_interval`` was set.
    metrics: "Optional[dict]" = None
    #: ``"simulated"`` for real runs; ``"predicted"`` when the result was
    #: synthesised from the analytic model by surrogate screening
    #: (:mod:`repro.bench.surrogate`).
    source: str = "simulated"
    #: Relative error bound on predicted throughput/latency; None for
    #: simulated results.
    prediction_bound: "Optional[float]" = None

    def disk_utilization(self) -> float:
        """Mean busy fraction of the stripe directories' disks."""
        if not self.disk_stats or self.elapsed_sim_time <= 0:
            return 0.0
        busy = self.disk_stats["busy_time_per_server"]
        return sum(busy) / (len(busy) * self.elapsed_sim_time)

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Lossless JSON-able form of the whole run.

        Tuple-keyed maps (``rank_traffic``) are encoded with
        ``"src->dst"`` string keys; integer-keyed maps (``rank_task``)
        with stringified keys, both reversed by :meth:`from_dict`.
        ``dropped_cpis`` appears only when a read deadline was
        configured, and ``metrics`` only when observability was on,
        keeping pre-existing result hashes unchanged.
        """
        d = {
            "spec": self.spec.to_dict(),
            "cfg": self.cfg.to_dict(),
            "fs_label": self.fs_label,
            "machine_name": self.machine_name,
            "trace": self.trace.to_dict(),
            "measurement": self.measurement.to_dict(),
            "detections": [d.to_dict() for d in self.detections],
            "elapsed_sim_time": self.elapsed_sim_time,
            "disk_stats": self.disk_stats,
            "rank_traffic": (
                None
                if self.rank_traffic is None
                else {
                    f"{src}->{dst}": list(counts)
                    for (src, dst), counts in self.rank_traffic.items()
                }
            ),
            "rank_task": (
                None
                if self.rank_task is None
                else {str(rank): task for rank, task in self.rank_task.items()}
            ),
        }
        if self.dropped_cpis is not None:
            d["dropped_cpis"] = [x.to_dict() for x in self.dropped_cpis]
        if self.metrics is not None:
            d["metrics"] = self.metrics
        # Emitted only for predicted results, keeping simulated-result
        # dicts (and hence all pre-existing result hashes) unchanged.
        if self.source != "simulated":
            d["source"] = self.source
        if self.prediction_bound is not None:
            d["prediction_bound"] = self.prediction_bound
        return d

    @staticmethod
    def from_dict(d: Dict[str, Any]) -> "PipelineResult":
        """Inverse of :meth:`to_dict`.

        Reads accept legacy camelCase key spellings (``fsLabel``,
        ``rankTraffic``, ...) via :func:`~repro.core.serialize
        .compat_get`; writes are always snake_case.
        """
        result = PipelineResult(
            spec=PipelineSpec.from_dict(d["spec"]),
            cfg=ExecutionConfig.from_dict(d["cfg"]),
            fs_label=compat_get(d, "fs_label"),
            machine_name=compat_get(d, "machine_name"),
            trace=TraceCollector.from_dict(d["trace"]),
            measurement=PipelineMeasurement.from_dict(d["measurement"]),
            detections=[Detection.from_dict(x) for x in d["detections"]],
            elapsed_sim_time=compat_get(d, "elapsed_sim_time"),
        )
        result.disk_stats = compat_get(d, "disk_stats")
        rank_traffic = compat_get(d, "rank_traffic")
        if rank_traffic is not None:
            result.rank_traffic = {
                tuple(int(r) for r in key.split("->")): tuple(counts)
                for key, counts in rank_traffic.items()
            }
        rank_task = compat_get(d, "rank_task")
        if rank_task is not None:
            result.rank_task = {
                int(rank): task for rank, task in rank_task.items()
            }
        dropped = compat_get(d, "dropped_cpis", None)
        if dropped is not None:
            result.dropped_cpis = [DroppedCpi.from_dict(x) for x in dropped]
        result.metrics = d.get("metrics")
        result.source = d.get("source", "simulated")
        result.prediction_bound = d.get("prediction_bound")
        return result

    def task_traffic(self) -> "dict":
        """Aggregate network traffic between tasks.

        Returns ``{(src_task, dst_task): (messages, bytes)}`` summed over
        all rank pairs and CPIs — the measurable form of the paper's
        per-task communication terms :math:`C_i` (flow-control
        acknowledgements included; they ride the same network).
        """
        out: dict = {}
        if not self.rank_traffic or not self.rank_task:
            return out
        for (src, dst), (msgs, nbytes) in self.rank_traffic.items():
            key = (self.rank_task[src], self.rank_task[dst])
            acc = out.setdefault(key, [0, 0])
            acc[0] += msgs
            acc[1] += nbytes
        return {k: tuple(v) for k, v in out.items()}


class PipelineExecutor:
    """Build and run one pipeline configuration."""

    def __init__(
        self,
        spec: PipelineSpec,
        params: STAPParams,
        preset: MachinePreset,
        fs_config: FSConfig,
        cfg: Optional[ExecutionConfig] = None,
        scenario: Optional[Scenario] = None,
        seed: Optional[int] = None,
    ) -> None:
        self.spec = spec
        self.params = params
        self.preset = preset
        self.fs_config = fs_config
        self.cfg = cfg or ExecutionConfig()
        if self.cfg.compute and scenario is None:
            if seed is None:
                raise ConfigurationError(
                    "compute mode needs a scenario (or a seed) for cube content"
                )
            scenario = Scenario.standard(params, seed=seed)
        self.seed = seed
        self.scenario = scenario

        self.kernel = Kernel()
        self.machine = preset.build(
            self.kernel,
            n_compute=spec.total_nodes,
            n_io=fs_config.stripe_factor,
        )
        disk = DiskSpec(
            bandwidth=fs_config.disk_bw or preset.disk_bw,
            overhead=(
                fs_config.disk_overhead
                if fs_config.disk_overhead is not None
                else preset.disk_overhead
            ),
        )
        fs_cls = {"pfs": PFS, "piofs": PIOFS}.get(fs_config.kind)
        if fs_cls is None:
            raise ConfigurationError(f"unknown file system kind {fs_config.kind!r}")
        self.fs = fs_cls(
            self.machine,
            stripe_unit=fs_config.stripe_unit,
            stripe_factor=fs_config.stripe_factor,
            disk=disk,
            name=fs_config.label(),
            replication=fs_config.replication,
        )
        # ROMIO-style hints ride on the FS instance: readers and the
        # list-I/O request path consult fs.hints at run time.  Validate
        # them against FS capabilities first — a hint for a call the FS
        # doesn't have fails here, not mid-run.
        for hint in fs_config.HINT_FIELDS:
            value = getattr(fs_config, hint)
            if value is not None and value < 1:
                raise ConfigurationError(
                    f"FS hint {hint} must be >= 1, got {value}"
                )
        if (
            fs_config.list_io_max_runs is not None
            and not self.fs.supports_list_io
        ):
            raise ConfigurationError(
                f"hint list_io_max_runs set on {fs_config.kind!r}, which has "
                "no list-I/O call — the hint only applies to list-I/O-capable "
                "file systems (kind='pfs')"
            )
        self.fs.hints.update(fs_config.hint_dict())
        # Resolve the spec's I/O strategy (None for hand-built specs with
        # non-registry names) and reject FS/config mismatches before any
        # process is spawned — async-on-PIOFS fails here, not mid-run.
        self.strategy = strategy_for_spec(spec.name)
        if self.strategy is not None:
            self.strategy.validate(
                self.fs.supports_async,
                self.cfg,
                supports_list_io=self.fs.supports_list_io,
            )
        source = (
            CubeSource(params, scenario) if (self.cfg.compute and scenario) else None
        )
        self.fileset = CubeFileSet(self.fs, params, source=source)
        self.plan = PipelinePlan(spec, params)
        validate_plan(self.plan)
        self.comm = Communicator.world(self.machine)
        self.trace = TraceCollector()
        self.results: Dict[str, Any] = {}
        # Observability (repro.obs): registry + kernel-hook sampler over
        # the standard gauge set.  Pure observers — event order and every
        # simulated quantity are identical whether this is on or off.
        self.metrics: Optional[MetricsRegistry] = None
        self._sampler: Optional[Sampler] = None
        if self.cfg.metrics_interval is not None:
            self.metrics = MetricsRegistry()
            self._sampler = Sampler(
                self.kernel, self.metrics, self.cfg.metrics_interval
            )
            instrument_pipeline(self.metrics, self)

    def run(self) -> PipelineResult:
        """Execute the configured number of CPIs and measure."""
        self.fileset.initialize()
        for name, inst in self.plan.instances.items():
            for local, rank in enumerate(inst.ranks):
                ctx = TaskContext(
                    kernel=self.kernel,
                    rc=self.comm.view(rank),
                    task=inst,
                    local=local,
                    plan=self.plan,
                    cfg=self.cfg,
                    trace=self.trace,
                    fileset=self.fileset,
                    node_spec=self.machine.node(rank).spec,
                    results=self.results,
                    strategy=self.strategy,
                    metrics=self.metrics,
                )
                self.kernel.process(
                    body_for(inst.spec.kind, ctx), name=f"{name}[{local}]"
                )
        if self._sampler is not None:
            self._sampler.attach()
        self.kernel.run()
        if self._sampler is not None:
            self._sampler.finalize(self.kernel.now)
        meas = measure(
            self.trace,
            self.spec,
            n_cpis=self.cfg.n_cpis,
            warmup=self.cfg.warmup,
            sink_task=self.plan.sink_task,
            first_task=self.plan.first_task,
        )
        detections = sorted(self.results.get("detections", []))
        result = PipelineResult(
            spec=self.spec,
            cfg=self.cfg,
            fs_label=self.fs_config.label(),
            machine_name=self.machine.name,
            trace=self.trace,
            measurement=meas,
            detections=detections,
            elapsed_sim_time=self.kernel.now,
        )
        result.disk_stats = {
            "busy_time_per_server": [s.busy_time for s in self.fs.servers],
            "requests_per_server": [s.requests_served for s in self.fs.servers],
            "bytes_served": self.fs.total_bytes_served(),
        }
        if self.fs.fault_tolerant:
            # Only surfaced on fault-tolerant runs so that pre-existing
            # no-fault result hashes stay bit-identical.
            result.disk_stats["requests_failed_per_server"] = [
                s.requests_failed for s in self.fs.servers
            ]
            result.disk_stats["bytes_shipped_per_server"] = [
                s.bytes_shipped for s in self.fs.servers
            ]
            result.disk_stats["outages_per_server"] = [
                s.outages for s in self.fs.servers
            ]
            result.disk_stats["duplicate_ships_per_server"] = [
                s.duplicate_ships for s in self.fs.servers
            ]
        if self.cfg.read_deadline is not None:
            result.dropped_cpis = sorted(self.results.get("dropped_cpis", []))
        result.rank_traffic = {
            pair: tuple(counts) for pair, counts in self.comm.traffic.items()
        }
        result.rank_task = {
            rank: name
            for name, inst in self.plan.instances.items()
            for rank in inst.ranks
        }
        if self.metrics is not None:
            hist = self.metrics.histogram(
                "cpi_latency_seconds",
                buckets=DEFAULT_BUCKETS,
                help="per-CPI pipeline latency over the steady-state window",
            )
            for v in meas.latencies:
                hist.observe(v)
            result.metrics = self.metrics.to_dict(
                interval=self.cfg.metrics_interval,
                t_end=self.kernel.now,
                samples=self._sampler.samples,
            )
        return result
