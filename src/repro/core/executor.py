"""The pipeline executor: run a pipeline spec on a simulated machine.

:class:`PipelineExecutor` wires everything together:

1. build the machine from a preset (compute nodes = the pipeline's total,
   I/O nodes = the file system's stripe directories);
2. build the file system (PFS or PIOFS) and the round-robin cube files;
3. bind the pipeline's tasks to communicator ranks and spawn one DES
   process per task node running its body;
4. run the kernel to completion and measure.

``FSConfig`` carries the file-system choice — ``kind`` selects paper
semantics (``"pfs"`` async-capable, ``"piofs"`` synchronous-only) and
``stripe_factor`` is the paper's central knob.

Since the scenario layer, the executor is two-tier: a :class:`Substrate`
bundles the shared execution fabric (kernel, machine/mesh, file system)
and :class:`PipelineExecutor` either *builds* a private substrate (the
classic standalone path — bit-identical to the pre-refactor executor)
or *receives* one from a :class:`~repro.scenario.ScenarioExecutor`
hosting several tenant pipelines on the same disks and links.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.core.bodies import body_for
from repro.core.context import ExecutionConfig, TaskContext
from repro.core.metrics import DroppedCpi, PipelineMeasurement, measure
from repro.core.serialize import compat_get
from repro.core.pipeline import PipelineSpec
from repro.core.plan import PipelinePlan
from repro.core.validate import validate_plan
from repro.io.fileset import CubeFileSet, CubeSource
from repro.machine.presets import MachinePreset
from repro.mpi.communicator import Communicator
from repro.obs import MetricsRegistry, Sampler, instrument_pipeline
from repro.obs.instruments import DEFAULT_BUCKETS
from repro.pfs.blockdev import DiskSpec
from repro.pfs.pfs import PFS
from repro.pfs.piofs import PIOFS
from repro.sim.kernel import Kernel
from repro.stap.cfar import Detection
from repro.stap.params import STAPParams
from repro.stap.scenario import Scenario
from repro.strategies import strategy_for_spec
from repro.trace.collector import TraceCollector

__all__ = [
    "FSConfig",
    "ExecutionConfig",
    "PipelineExecutor",
    "PipelineResult",
    "Substrate",
    "HINT_CAPABILITIES",
    "validate_fs_hints",
]

#: hint name -> (required FS capability attribute or None, human summary).
#: ``None`` means the hint is valid on every file system kind.
HINT_CAPABILITIES = {
    "sieve_buffer_size": (None, "data-sieving alignment granularity (any FS)"),
    "cb_nodes": (None, "collective two-phase aggregator cap (any FS)"),
    "list_io_max_runs": (
        "supports_list_io",
        "list-I/O batch split (needs list I/O: kind='pfs')",
    ),
}


def _hint_catalogue() -> str:
    """One-line enumeration of every valid hint and its requirement."""
    return "; ".join(
        f"{name} — {summary}" for name, (_, summary) in HINT_CAPABILITIES.items()
    )


def validate_fs_hints(fs_config: "FSConfig", fs) -> None:
    """Validate ``fs_config``'s ROMIO-style hints against ``fs``.

    A hint for a call the file system doesn't have fails here, before
    any process is spawned — not mid-run.  Error messages enumerate the
    valid hint names and which FS capability each requires.
    """
    for hint in fs_config.HINT_FIELDS:
        value = getattr(fs_config, hint)
        if value is not None and value < 1:
            raise ConfigurationError(
                f"FS hint {hint} must be >= 1, got {value}. "
                f"Valid hints: {_hint_catalogue()}"
            )
        capability = HINT_CAPABILITIES[hint][0]
        if value is not None and capability is not None and not getattr(fs, capability):
            raise ConfigurationError(
                f"hint {hint} set on {fs_config.kind!r}, which lacks the "
                f"{capability} capability the hint needs. "
                f"Valid hints: {_hint_catalogue()}"
            )


@dataclass(frozen=True)
class FSConfig:
    """Which parallel file system to build, and its geometry.

    ``replication > 1`` mirrors each stripe unit over that many
    directories (chained declustering) and switches clients to the
    fault-tolerant retry/failover path — see ``docs/fault_model.md``.

    The three optional ROMIO-style hints tune the noncontiguous-access
    strategies (``docs/io_strategies.md``): ``sieve_buffer_size``
    replaces the data-sieving readers' whole-stripe-unit widening with an
    arbitrary alignment granularity, ``cb_nodes`` caps how many of the
    reading task's nodes act as phase-one aggregators in collective
    two-phase I/O, and ``list_io_max_runs`` caps the contiguous pieces
    one batched list-I/O request may carry.  Unset hints are omitted
    from serialization, so hint-free configs keep their exact
    pre-existing hashes.
    """

    kind: str = "pfs"            # "pfs" (async) or "piofs" (sync-only)
    stripe_factor: int = 64
    stripe_unit: int = 64 * 1024
    disk_bw: Optional[float] = None        # default: preset's disk
    disk_overhead: Optional[float] = None
    name: str = ""
    replication: int = 1
    sieve_buffer_size: Optional[int] = None
    cb_nodes: Optional[int] = None
    list_io_max_runs: Optional[int] = None

    #: The ROMIO-style hint field names, in serialization order.
    HINT_FIELDS = ("sieve_buffer_size", "cb_nodes", "list_io_max_runs")

    def hint_dict(self) -> Dict[str, int]:
        """The hints that are actually set, as a plain dict."""
        return {
            k: getattr(self, k)
            for k in self.HINT_FIELDS
            if getattr(self, k) is not None
        }

    def label(self) -> str:
        """Display label, e.g. ``"PFS sf=64"`` or ``"PFS sf=4 rep=2"``."""
        if self.name:
            return self.name
        base = f"{self.kind.upper()} sf={self.stripe_factor}"
        if self.replication > 1:
            base += f" rep={self.replication}"
        return base

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Lossless JSON-able form.

        ``replication`` is emitted only when mirroring is on, and each
        ROMIO-style hint only when set, so unreplicated hint-free
        configs keep their exact pre-existing hashes.
        """
        d = {
            "kind": self.kind,
            "stripe_factor": self.stripe_factor,
            "stripe_unit": self.stripe_unit,
            "disk_bw": self.disk_bw,
            "disk_overhead": self.disk_overhead,
            "name": self.name,
        }
        if self.replication != 1:
            d["replication"] = self.replication
        d.update(self.hint_dict())
        return d

    @staticmethod
    def from_dict(d: Dict[str, Any]) -> "FSConfig":
        """Inverse of :meth:`to_dict`."""
        return FSConfig(**d)


@dataclass
class Substrate:
    """The shared execution fabric a pipeline runs on.

    Standalone runs build a private one (:meth:`build` — the classic
    construction, bit-identically); a
    :class:`~repro.scenario.ScenarioExecutor` builds ONE and hands it to
    every tenant's :class:`PipelineExecutor`, so N pipelines contend for
    the same kernel clock, mesh links, and stripe-directory disks.

    Attributes
    ----------
    kernel / machine / fs:
        The simulation kernel, the machine (compute + I/O nodes with
        their network), and the parallel file system built over it.
    rank_base:
        First machine node index this pipeline's rank 0 maps to
        (tenants occupy contiguous compute-node blocks).
    tenant:
        Tenant name ("" for standalone runs).  Non-empty names prefix
        process names, namespace the cube files, and label instruments.
    file_prefix:
        Cube-file prefix inside the shared FS namespace.
    metrics:
        Shared :class:`~repro.obs.MetricsRegistry` (scenario-owned), or
        None.  Standalone executors build their own per
        ``cfg.metrics_interval`` instead.
    """

    kernel: Kernel
    machine: Any
    fs: Any
    rank_base: int = 0
    tenant: str = ""
    file_prefix: str = "cpi"
    metrics: Optional[MetricsRegistry] = None

    @classmethod
    def build(
        cls,
        preset: MachinePreset,
        fs_config: FSConfig,
        n_compute: int,
    ) -> "Substrate":
        """Construct a private substrate — the classic executor path.

        The construction order (kernel, machine, disk, FS, hint
        validation, hint install) is exactly the pre-refactor
        ``PipelineExecutor.__init__`` sequence: every pre-existing
        result hash depends on it.
        """
        kernel = Kernel()
        machine = preset.build(
            kernel,
            n_compute=n_compute,
            n_io=fs_config.stripe_factor,
        )
        disk = DiskSpec(
            bandwidth=fs_config.disk_bw or preset.disk_bw,
            overhead=(
                fs_config.disk_overhead
                if fs_config.disk_overhead is not None
                else preset.disk_overhead
            ),
        )
        fs_cls = {"pfs": PFS, "piofs": PIOFS}.get(fs_config.kind)
        if fs_cls is None:
            raise ConfigurationError(f"unknown file system kind {fs_config.kind!r}")
        fs = fs_cls(
            machine,
            stripe_unit=fs_config.stripe_unit,
            stripe_factor=fs_config.stripe_factor,
            disk=disk,
            name=fs_config.label(),
            replication=fs_config.replication,
        )
        # ROMIO-style hints ride on the FS instance: readers and the
        # list-I/O request path consult fs.hints at run time.
        validate_fs_hints(fs_config, fs)
        fs.hints.update(fs_config.hint_dict())
        return cls(kernel=kernel, machine=machine, fs=fs)


@dataclass
class PipelineResult:
    """Everything a pipeline run produced."""

    spec: PipelineSpec
    cfg: ExecutionConfig
    fs_label: str
    machine_name: str
    trace: TraceCollector
    measurement: PipelineMeasurement
    detections: List[Detection]
    elapsed_sim_time: float

    @property
    def throughput(self) -> float:
        return self.measurement.throughput

    @property
    def latency(self) -> float:
        return self.measurement.latency

    #: Filled in by the executor after the run.
    disk_stats: "Optional[dict]" = None
    #: (src_rank, dst_rank) -> [messages, bytes]; rank -> task name.
    rank_traffic: "Optional[dict]" = None
    rank_task: "Optional[dict]" = None
    #: CPIs skipped at the read deadline; None unless a deadline was set.
    dropped_cpis: "Optional[List[DroppedCpi]]" = None
    #: JSON time-series metrics artifact (see :mod:`repro.obs`); None
    #: unless ``cfg.metrics_interval`` was set.
    metrics: "Optional[dict]" = None
    #: ``"simulated"`` for real runs; ``"predicted"`` when the result was
    #: synthesised from the analytic model by surrogate screening
    #: (:mod:`repro.bench.surrogate`).
    source: str = "simulated"
    #: Relative error bound on predicted throughput/latency; None for
    #: simulated results.
    prediction_bound: "Optional[float]" = None

    def disk_utilization(self) -> float:
        """Mean busy fraction of the stripe directories' disks."""
        if not self.disk_stats or self.elapsed_sim_time <= 0:
            return 0.0
        busy = self.disk_stats["busy_time_per_server"]
        return sum(busy) / (len(busy) * self.elapsed_sim_time)

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Lossless JSON-able form of the whole run.

        Tuple-keyed maps (``rank_traffic``) are encoded with
        ``"src->dst"`` string keys; integer-keyed maps (``rank_task``)
        with stringified keys, both reversed by :meth:`from_dict`.
        ``dropped_cpis`` appears only when a read deadline was
        configured, and ``metrics`` only when observability was on,
        keeping pre-existing result hashes unchanged.
        """
        d = {
            "spec": self.spec.to_dict(),
            "cfg": self.cfg.to_dict(),
            "fs_label": self.fs_label,
            "machine_name": self.machine_name,
            "trace": self.trace.to_dict(),
            "measurement": self.measurement.to_dict(),
            "detections": [d.to_dict() for d in self.detections],
            "elapsed_sim_time": self.elapsed_sim_time,
            "disk_stats": self.disk_stats,
            "rank_traffic": (
                None
                if self.rank_traffic is None
                else {
                    f"{src}->{dst}": list(counts)
                    for (src, dst), counts in self.rank_traffic.items()
                }
            ),
            "rank_task": (
                None
                if self.rank_task is None
                else {str(rank): task for rank, task in self.rank_task.items()}
            ),
        }
        if self.dropped_cpis is not None:
            d["dropped_cpis"] = [x.to_dict() for x in self.dropped_cpis]
        if self.metrics is not None:
            d["metrics"] = self.metrics
        # Emitted only for predicted results, keeping simulated-result
        # dicts (and hence all pre-existing result hashes) unchanged.
        if self.source != "simulated":
            d["source"] = self.source
        if self.prediction_bound is not None:
            d["prediction_bound"] = self.prediction_bound
        return d

    @staticmethod
    def from_dict(d: Dict[str, Any]) -> "PipelineResult":
        """Inverse of :meth:`to_dict`.

        Reads accept legacy camelCase key spellings (``fsLabel``,
        ``rankTraffic``, ...) via :func:`~repro.core.serialize
        .compat_get`; writes are always snake_case.
        """
        result = PipelineResult(
            spec=PipelineSpec.from_dict(d["spec"]),
            cfg=ExecutionConfig.from_dict(d["cfg"]),
            fs_label=compat_get(d, "fs_label"),
            machine_name=compat_get(d, "machine_name"),
            trace=TraceCollector.from_dict(d["trace"]),
            measurement=PipelineMeasurement.from_dict(d["measurement"]),
            detections=[Detection.from_dict(x) for x in d["detections"]],
            elapsed_sim_time=compat_get(d, "elapsed_sim_time"),
        )
        result.disk_stats = compat_get(d, "disk_stats")
        rank_traffic = compat_get(d, "rank_traffic")
        if rank_traffic is not None:
            result.rank_traffic = {
                tuple(int(r) for r in key.split("->")): tuple(counts)
                for key, counts in rank_traffic.items()
            }
        rank_task = compat_get(d, "rank_task")
        if rank_task is not None:
            result.rank_task = {
                int(rank): task for rank, task in rank_task.items()
            }
        dropped = compat_get(d, "dropped_cpis", None)
        if dropped is not None:
            result.dropped_cpis = [DroppedCpi.from_dict(x) for x in dropped]
        result.metrics = d.get("metrics")
        result.source = d.get("source", "simulated")
        result.prediction_bound = d.get("prediction_bound")
        return result

    def task_traffic(self) -> "dict":
        """Aggregate network traffic between tasks.

        Returns ``{(src_task, dst_task): (messages, bytes)}`` summed over
        all rank pairs and CPIs — the measurable form of the paper's
        per-task communication terms :math:`C_i` (flow-control
        acknowledgements included; they ride the same network).
        """
        out: dict = {}
        if not self.rank_traffic or not self.rank_task:
            return out
        for (src, dst), (msgs, nbytes) in self.rank_traffic.items():
            key = (self.rank_task[src], self.rank_task[dst])
            acc = out.setdefault(key, [0, 0])
            acc[0] += msgs
            acc[1] += nbytes
        return {k: tuple(v) for k, v in out.items()}


class PipelineExecutor:
    """Build and run one pipeline configuration.

    Standalone (``substrate=None``): builds a private
    :class:`Substrate` exactly as the pre-refactor executor did and
    ``run()`` drives the whole simulation — bit-identical results.

    Hosted (``substrate=`` a scenario-owned one): the executor *receives*
    its kernel/machine/FS, binds its ranks at ``substrate.rank_base``,
    namespaces its cube files with ``substrate.file_prefix``, and leaves
    driving the kernel — and harvesting shared-FS statistics — to the
    :class:`~repro.scenario.ScenarioExecutor` via the
    :meth:`setup_processes` / :meth:`collect` halves of :meth:`run`.
    """

    def __init__(
        self,
        spec: PipelineSpec,
        params: STAPParams,
        preset: MachinePreset,
        fs_config: FSConfig,
        cfg: Optional[ExecutionConfig] = None,
        scenario: Optional[Scenario] = None,
        seed: Optional[int] = None,
        substrate: Optional[Substrate] = None,
    ) -> None:
        self.spec = spec
        self.params = params
        self.preset = preset
        self.fs_config = fs_config
        self.cfg = cfg or ExecutionConfig()
        if self.cfg.compute and scenario is None:
            if seed is None:
                raise ConfigurationError(
                    "compute mode needs a scenario (or a seed) for cube content"
                )
            scenario = Scenario.standard(params, seed=seed)
        self.seed = seed
        self.scenario = scenario

        self._owns_substrate = substrate is None
        if substrate is None:
            substrate = Substrate.build(
                preset, fs_config, n_compute=spec.total_nodes
            )
        self.substrate = substrate
        self.kernel = substrate.kernel
        self.machine = substrate.machine
        self.fs = substrate.fs
        self.tenant = substrate.tenant
        # Resolve the spec's I/O strategy (None for hand-built specs with
        # non-registry names) and reject FS/config mismatches before any
        # process is spawned — async-on-PIOFS fails here, not mid-run.
        self.strategy = strategy_for_spec(spec.name)
        if self.strategy is not None:
            self.strategy.validate(
                self.fs.supports_async,
                self.cfg,
                supports_list_io=self.fs.supports_list_io,
            )
        source = (
            CubeSource(params, scenario) if (self.cfg.compute and scenario) else None
        )
        self.fileset = CubeFileSet(
            self.fs, params, source=source, prefix=substrate.file_prefix
        )
        self.plan = PipelinePlan(spec, params)
        validate_plan(self.plan)
        if self._owns_substrate:
            self.comm = Communicator.world(self.machine)
        else:
            self.comm = Communicator(
                self.machine,
                [substrate.rank_base + r for r in range(spec.total_nodes)],
                name=substrate.tenant or "comm",
            )
        self.trace = TraceCollector()
        self.results: Dict[str, Any] = {}
        # Per-CPI arrival gate (None = classic all-data-ready behaviour).
        self._arrival_times = (
            self.cfg.arrival.times(self.cfg.n_cpis)
            if self.cfg.arrival is not None
            else None
        )
        # Observability (repro.obs): registry + kernel-hook sampler over
        # the standard gauge set.  Pure observers — event order and every
        # simulated quantity are identical whether this is on or off.
        # Hosted executors share the scenario's registry (tenant-labeled
        # instruments, substrate gauges registered once by the scenario);
        # the scenario also owns the one sampler.
        self.metrics: Optional[MetricsRegistry] = None
        self._sampler: Optional[Sampler] = None
        if self._owns_substrate:
            if self.cfg.metrics_interval is not None:
                self.metrics = MetricsRegistry()
                self._sampler = Sampler(
                    self.kernel, self.metrics, self.cfg.metrics_interval
                )
                instrument_pipeline(self.metrics, self)
        elif substrate.metrics is not None:
            self.metrics = substrate.metrics
            instrument_pipeline(
                self.metrics, self,
                tenant=substrate.tenant,
                include_substrate=False,
            )

    def setup_processes(self) -> None:
        """Initialise the file set and spawn one process per task node.

        First half of :meth:`run`; the scenario executor calls it for
        every tenant before driving the shared kernel once.
        """
        self.fileset.initialize()
        stem = f"{self.tenant}." if self.tenant else ""
        for name, inst in self.plan.instances.items():
            for local, rank in enumerate(inst.ranks):
                ctx = TaskContext(
                    kernel=self.kernel,
                    rc=self.comm.view(rank),
                    task=inst,
                    local=local,
                    plan=self.plan,
                    cfg=self.cfg,
                    trace=self.trace,
                    fileset=self.fileset,
                    node_spec=self.machine.node(self.comm.node_of(rank)).spec,
                    results=self.results,
                    strategy=self.strategy,
                    metrics=self.metrics,
                    tenant=self.tenant,
                    arrival_times=self._arrival_times,
                )
                self.kernel.process(
                    body_for(inst.spec.kind, ctx), name=f"{stem}{name}[{local}]"
                )
        if self._sampler is not None:
            self._sampler.attach()

    def run(self) -> PipelineResult:
        """Execute the configured number of CPIs and measure."""
        self.setup_processes()
        self.kernel.run()
        if self._sampler is not None:
            self._sampler.finalize(self.kernel.now)
        return self.collect()

    def collect(self) -> PipelineResult:
        """Measure and assemble the result after the kernel has run.

        Second half of :meth:`run`.  Hosted executors leave the
        shared-FS statistics and the metrics artifact to the scenario
        (a tenant's result would otherwise claim the whole machine's
        disk traffic as its own).
        """
        meas = measure(
            self.trace,
            self.spec,
            n_cpis=self.cfg.n_cpis,
            warmup=self.cfg.warmup,
            sink_task=self.plan.sink_task,
            first_task=self.plan.first_task,
        )
        detections = sorted(self.results.get("detections", []))
        result = PipelineResult(
            spec=self.spec,
            cfg=self.cfg,
            fs_label=self.fs_config.label(),
            machine_name=self.machine.name,
            trace=self.trace,
            measurement=meas,
            detections=detections,
            elapsed_sim_time=self.kernel.now,
        )
        if self._owns_substrate:
            result.disk_stats = {
                "busy_time_per_server": [s.busy_time for s in self.fs.servers],
                "requests_per_server": [s.requests_served for s in self.fs.servers],
                "bytes_served": self.fs.total_bytes_served(),
            }
        if self._owns_substrate and self.fs.fault_tolerant:
            # Only surfaced on fault-tolerant runs so that pre-existing
            # no-fault result hashes stay bit-identical.
            result.disk_stats["requests_failed_per_server"] = [
                s.requests_failed for s in self.fs.servers
            ]
            result.disk_stats["bytes_shipped_per_server"] = [
                s.bytes_shipped for s in self.fs.servers
            ]
            result.disk_stats["outages_per_server"] = [
                s.outages for s in self.fs.servers
            ]
            result.disk_stats["duplicate_ships_per_server"] = [
                s.duplicate_ships for s in self.fs.servers
            ]
        if self.cfg.read_deadline is not None:
            result.dropped_cpis = sorted(self.results.get("dropped_cpis", []))
        result.rank_traffic = {
            pair: tuple(counts) for pair, counts in self.comm.traffic.items()
        }
        result.rank_task = {
            rank: name
            for name, inst in self.plan.instances.items()
            for rank in inst.ranks
        }
        if self.metrics is not None:
            labels = {"tenant": self.tenant} if self.tenant else {}
            hist = self.metrics.histogram(
                "cpi_latency_seconds",
                buckets=DEFAULT_BUCKETS,
                help="per-CPI pipeline latency over the steady-state window",
                **labels,
            )
            for v in meas.latencies:
                hist.observe(v)
            if self._sampler is not None:
                # Hosted executors share the scenario's registry; the
                # scenario emits the one combined artifact instead.
                result.metrics = self.metrics.to_dict(
                    interval=self.cfg.metrics_interval,
                    t_end=self.kernel.now,
                    samples=self._sampler.samples,
                )
        return result
