"""Task specifications for the pipeline graph."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

from repro.errors import ConfigurationError

__all__ = ["TaskKind", "TaskSpec", "TaskInstance"]


class TaskKind(enum.Enum):
    """The task bodies the pipeline knows how to run.

    Values track the paper's task names; the two ``*_COMBINED`` kinds
    are the transformations studied in the paper (embedded I/O = read
    merged into Doppler; §6's pulse compression + CFAR merge).
    """

    PARALLEL_READ = "parallel_read"
    DOPPLER = "doppler"                 # receives cube from a read task
    DOPPLER_EMBEDDED_IO = "doppler_io"  # reads the cube itself (Figure 3)
    EASY_WEIGHT = "easy_weight"
    HARD_WEIGHT = "hard_weight"
    EASY_BEAMFORM = "easy_beamform"
    HARD_BEAMFORM = "hard_beamform"
    PULSE_COMPRESSION = "pulse_compression"
    CFAR = "cfar"
    PULSE_CFAR_COMBINED = "pulse_cfar"  # §6 task combination


#: Kinds whose *inputs* come from the previous CPI (temporal dependency).
TEMPORAL_KINDS = frozenset({TaskKind.EASY_WEIGHT, TaskKind.HARD_WEIGHT})


@dataclass(frozen=True)
class TaskSpec:
    """A pipeline task: a body kind plus a node budget.

    Attributes
    ----------
    name:
        Unique display name (e.g. ``"Doppler filter"``).
    kind:
        Which body this task runs.
    n_nodes:
        Compute nodes assigned (the paper's :math:`P_i`).
    """

    name: str
    kind: TaskKind
    n_nodes: int

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ConfigurationError(
                f"task {self.name!r} needs >= 1 node, got {self.n_nodes}"
            )

    @property
    def is_temporal(self) -> bool:
        """True if this task consumes previous-CPI data (off the latency
        path, paper Eq. 2)."""
        return self.kind in TEMPORAL_KINDS


@dataclass(frozen=True)
class TaskInstance:
    """A task bound to concrete communicator ranks.

    Attributes
    ----------
    spec:
        The task spec.
    ranks:
        Global communicator ranks of this task's nodes, in local-index
        order (``ranks[i]`` is the task-local node ``i``).
    """

    spec: TaskSpec
    ranks: Tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.ranks) != self.spec.n_nodes:
            raise ConfigurationError(
                f"task {self.spec.name!r}: {len(self.ranks)} ranks for "
                f"{self.spec.n_nodes} nodes"
            )
        if len(set(self.ranks)) != len(self.ranks):
            raise ConfigurationError(f"task {self.spec.name!r}: duplicate ranks")

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def n_nodes(self) -> int:
        return self.spec.n_nodes

    def local_index(self, rank: int) -> int:
        """Task-local index of a global rank."""
        try:
            return self.ranks.index(rank)
        except ValueError:
            raise ConfigurationError(
                f"rank {rank} not in task {self.spec.name!r}"
            ) from None
