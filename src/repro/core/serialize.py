"""Serialization-key conventions and back-compat reads.

Every ``to_dict()`` in this package emits **snake_case** keys — that is
the pinned convention (see ``tests/test_serialization_golden.py``).
Earlier external tooling and hand-written fixtures sometimes produced
camelCase spellings (``taskStats``, ``fsLabel``), so the ``from_dict``
readers accept both: :func:`compat_get` looks a snake_case key up under
its camelCase alias before giving up.  Writing camelCase is never
supported — the alias path is read-only compatibility.
"""

from __future__ import annotations

from typing import Any, Mapping

__all__ = ["camel", "compat_get"]

_MISSING = object()


def camel(key: str) -> str:
    """snake_case -> camelCase (``task_stats`` -> ``taskStats``)."""
    head, *rest = key.split("_")
    return head + "".join(part.title() for part in rest)


def compat_get(d: Mapping[str, Any], key: str, default: Any = _MISSING) -> Any:
    """``d[key]``, falling back to the camelCase alias of ``key``.

    With no ``default``, a key present under neither spelling raises
    ``KeyError`` on the canonical snake_case name.
    """
    if key in d:
        return d[key]
    alias = camel(key)
    if alias != key and alias in d:
        return d[alias]
    if default is _MISSING:
        raise KeyError(key)
    return default
