"""Task bodies, expressed as receive/compute/send stages.

One :class:`~repro.core.stages.TaskStages` subclass per
:class:`~repro.core.task.TaskKind`; each implements the canonical
per-CPI cycle the paper describes — **receive (or read) / compute /
send** — with credit-window flow control on the send side and
acknowledgements on the receive side.  The stage structure lets the same
body run single-threaded (this paper's model) or with overlapped phase
threads (the IPPS'99 SMP design) — see :mod:`repro.core.stages`.

Compute mode and timing mode share every line of control flow: the only
differences are whether payloads carry numpy arrays or
:class:`~repro.mpi.datatypes.Phantom` placeholders, and whether the
numerics actually run.  Simulated time is charged identically (from the
cost models) in both, so performance results agree by construction.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.core.context import TaskContext, data_tag
from repro.core.stages import TaskStages, run_stages
from repro.core.task import TaskKind
from repro.errors import PipelineError
from repro.mpi.request import Request
from repro.pfs.base import OpenMode
from repro.stap.cfar import ca_cfar
from repro.stap.doppler import doppler_filter_arrays
from repro.stap.pulse import pulse_compress
from repro.stap.weights import (
    CovarianceTracker,
    initial_weights,
    mvdr_from_covariance,
    sample_covariance,
    steering_matrix_easy,
    steering_matrix_hard,
)
from repro.strategies.builtin import make_adaptive_reader
from repro.strategies.readers import DROPPED  # noqa: F401  (re-exported)
from repro.trace.record import Phase

__all__ = ["body_for", "DROPPED"]


def body_for(kind: TaskKind, ctx: TaskContext):
    """The process generator implementing ``kind`` on ``ctx``'s node."""
    table = {
        TaskKind.PARALLEL_READ: lambda: ReaderStages(ctx),
        TaskKind.DOPPLER: lambda: DopplerStages(ctx, embedded=False),
        TaskKind.DOPPLER_EMBEDDED_IO: lambda: DopplerStages(ctx, embedded=True),
        TaskKind.EASY_WEIGHT: lambda: WeightStages(ctx, easy=True),
        TaskKind.HARD_WEIGHT: lambda: WeightStages(ctx, easy=False),
        TaskKind.EASY_BEAMFORM: lambda: BeamformStages(ctx, easy=True),
        TaskKind.HARD_BEAMFORM: lambda: BeamformStages(ctx, easy=False),
        TaskKind.PULSE_COMPRESSION: lambda: PulseStages(ctx),
        TaskKind.CFAR: lambda: CfarStages(ctx),
        TaskKind.PULSE_CFAR_COMBINED: lambda: PulseCfarStages(ctx),
    }
    try:
        stages = table[kind]()
    except KeyError:  # pragma: no cover - exhaustive by construction
        raise PipelineError(f"no body for task kind {kind}")
    return run_stages(stages)


# ---------------------------------------------------------------------------
# shared I/O helper: the strategy's slab reader (see repro.strategies)


def _make_reader(ctx: TaskContext, rlo: int, rhi: int):
    """The slab reader the run's I/O strategy prescribes.

    Hand-built specs whose names are not in the strategy registry get
    the classic adaptive reader (async 1-deep prefetch on PFS, blocking
    reads on PIOFS) — the pre-registry behaviour, bit-identically.
    """
    if ctx.strategy is not None:
        return ctx.strategy.make_reader(ctx, rlo, rhi)
    return make_adaptive_reader(ctx, rlo, rhi)


def _send_routed(ctx: TaskContext, k: int, requests: List[Request]):
    """Wait out a batch of routed isends, recording the SEND phase."""
    t0 = ctx.now
    if requests:
        yield from Request.wait_all(ctx.kernel, requests)
    ctx.record(k, Phase.SEND, t0)


# ---------------------------------------------------------------------------
# task 0': the separate parallel-read task (Figure 4)


class ReaderStages(TaskStages):
    """Read the CPI slab from the files, forward it to the Doppler task."""

    def setup(self) -> bool:
        ctx = self.ctx
        self.rlo, self.rhi = ctx.plan.ranges_read.bounds(ctx.local)
        if self.rhi <= self.rlo:
            return False
        self.reader = _make_reader(ctx, self.rlo, self.rhi)
        self.dop_ranks = ctx.ranks("doppler")
        self.route = ctx.plan.read_to_doppler(ctx.local)
        ctx.register_consumers("data", [self.dop_ranks[c] for c, _, _ in self.route])
        return True

    def recv_prologue(self):
        self.reader.prefetch(0)
        return
        yield

    def recv(self, k: int):
        # Gate on the CPI's arrival (no-op without an arrival process).
        # Prefetch is deliberately not gated: files exist up front; the
        # arrival process models when the *consumer* may start reading.
        yield from self.ctx.await_arrival(k)
        raw = yield from self.reader.read(k)
        self.reader.prefetch(k + 1)
        return raw

    def teardown(self) -> None:
        self.reader.close()

    def compute(self, k: int, raw):
        # The read task performs no computation: it only distributes.
        if self.ctx.cfg.compute:
            return self.reader.slab_array(raw)
        return None
        yield  # pragma: no cover - generator marker

    def send(self, k: int, slab):
        ctx = self.ctx
        yield from ctx.await_credit("data", k)
        reqs = []
        for c, (lo, hi), nb in self.route:
            sub = slab[:, :, lo - self.rlo : hi - self.rlo] if slab is not None else None
            reqs.append(
                ctx.rc.isend(ctx.payload(sub, nb), self.dop_ranks[c], data_tag(k))
            )
        yield from _send_routed(ctx, k, reqs)


# ---------------------------------------------------------------------------
# task 0: Doppler filter processing (embedded I/O or fed by the read task)


class DopplerStages(TaskStages):
    """Staggered Doppler filter bank over this node's range slab."""

    def __init__(self, ctx: TaskContext, embedded: bool) -> None:
        super().__init__(ctx)
        self.embedded = embedded

    def setup(self) -> bool:
        ctx, plan, p = self.ctx, self.ctx.plan, self.ctx.params
        self.rlo, self.rhi = plan.ranges_doppler.bounds(ctx.local)
        if self.rhi <= self.rlo:
            return False
        share = (self.rhi - self.rlo) / p.n_ranges
        self.t_compute = ctx.model_time(ctx.costs.doppler_flops(), share)

        self.route_ebf = plan.doppler_to_bf(ctx.local, easy=True)
        self.route_hbf = plan.doppler_to_bf(ctx.local, easy=False)
        self.route_ew = plan.doppler_to_weights(ctx.local, easy=True)
        self.route_hw = plan.doppler_to_weights(ctx.local, easy=False)
        self.ebf_ranks, self.hbf_ranks = ctx.ranks("easy_bf"), ctx.ranks("hard_bf")
        self.ew_ranks = ctx.ranks("easy_weight")
        self.hw_ranks = ctx.ranks("hard_weight")
        consumers = (
            [self.ebf_ranks[c] for c, _, _ in self.route_ebf]
            + [self.hbf_ranks[c] for c, _, _ in self.route_hbf]
            + [self.ew_ranks[c] for c, _, _, _ in self.route_ew]
            + [self.hw_ranks[c] for c, _, _, _ in self.route_hw]
        )
        ctx.register_consumers("data", consumers)

        if self.embedded:
            self.reader = _make_reader(ctx, self.rlo, self.rhi)
            self.read_producers: List[int] = []
            self.read_ranks = ()
        else:
            self.reader = None
            self.read_producers = plan.doppler_expected_read_producers(ctx.local)
            self.read_ranks = ctx.ranks("read")
        return True

    def recv_prologue(self):
        if self.embedded:
            self.reader.prefetch(0)
        return
        yield

    def recv(self, k: int):
        ctx, plan, p = self.ctx, self.ctx.plan, self.ctx.params
        if self.embedded:
            yield from ctx.await_arrival(k)
            raw = yield from self.reader.read(k)
            self.reader.prefetch(k + 1)
            return self.reader.slab_array(raw) if ctx.cfg.compute else None
        slab = (
            np.empty((p.n_channels, p.n_pulses, self.rhi - self.rlo), dtype=p.dtype)
            if ctx.cfg.compute
            else None
        )
        for rp in self.read_producers:
            arr = yield from ctx.rc.recv(self.read_ranks[rp], data_tag(k))
            if slab is not None:
                lo, hi = plan.ranges_doppler.overlap(ctx.local, plan.ranges_read, rp)
                slab[:, :, lo - self.rlo : hi - self.rlo] = arr
            ctx.send_ack(self.read_ranks[rp], k)
        return slab

    def teardown(self) -> None:
        if self.reader is not None:
            self.reader.close()

    def compute(self, k: int, slab):
        ctx = self.ctx
        easy = hard = None
        if ctx.cfg.compute:
            easy, hard = doppler_filter_arrays(slab, ctx.params)
        yield from ctx.compute_for(self.t_compute)
        return easy, hard

    def send(self, k: int, outputs):
        ctx = self.ctx
        easy, hard = outputs
        yield from ctx.await_credit("data", k)
        reqs: List[Request] = []
        for c, (blo, bhi), nb in self.route_ebf:
            sub = easy[blo:bhi] if easy is not None else None
            reqs.append(ctx.rc.isend(ctx.payload(sub, nb), self.ebf_ranks[c], data_tag(k)))
        for c, (blo, bhi), nb in self.route_hbf:
            sub = hard[blo:bhi] if hard is not None else None
            reqs.append(ctx.rc.isend(ctx.payload(sub, nb), self.hbf_ranks[c], data_tag(k)))
        gates = ctx.plan.train_gates
        for c, (blo, bhi), cols, nb in self.route_ew:
            sub = (
                np.ascontiguousarray(easy[blo:bhi][:, :, gates[cols] - self.rlo])
                if easy is not None
                else None
            )
            reqs.append(ctx.rc.isend(ctx.payload(sub, nb), self.ew_ranks[c], data_tag(k)))
        for c, (blo, bhi), cols, nb in self.route_hw:
            sub = (
                np.ascontiguousarray(hard[blo:bhi][:, :, gates[cols] - self.rlo])
                if hard is not None
                else None
            )
            reqs.append(ctx.rc.isend(ctx.payload(sub, nb), self.hw_ranks[c], data_tag(k)))
        yield from _send_routed(ctx, k, reqs)


# ---------------------------------------------------------------------------
# tasks 1 and 2: adaptive weight computation (temporal dependency)


class WeightStages(TaskStages):
    """MVDR weights for this node's bin rows, shipped for the NEXT CPI."""

    sends_last_cpi = False  # the final CPI's weights have no consumer

    def __init__(self, ctx: TaskContext, easy: bool) -> None:
        super().__init__(ctx)
        self.easy = easy

    def setup(self) -> bool:
        ctx, plan, p = self.ctx, self.ctx.plan, self.ctx.params
        rows = plan.rows_easy_w if self.easy else plan.rows_hard_w
        self.blo, self.bhi = rows.bounds(ctx.local)
        self.nrows = self.bhi - self.blo
        if self.nrows <= 0:
            return False
        labels = plan.easy_labels if self.easy else plan.hard_labels
        self.my_bins = [labels[r] for r in range(self.blo, self.bhi)]
        self.dof = p.easy_dof if self.easy else p.hard_dof
        group_total = p.n_easy_bins if self.easy else p.n_hard_bins
        flops = (
            ctx.costs.easy_weight_flops() if self.easy else ctx.costs.hard_weight_flops()
        )
        self.t_compute = ctx.model_time(flops, self.nrows / group_total)

        self.dop_ranks = ctx.ranks("doppler")
        self.producers = plan.weight_expected_producers()
        self.bf_ranks = ctx.ranks("easy_bf" if self.easy else "hard_bf")
        self.route_bf = plan.weights_to_bf(ctx.local, self.easy)
        ctx.register_consumers("w", [self.bf_ranks[c] for c, _, _ in self.route_bf])
        self.n_train = len(plan.train_gates)
        self._v_easy = steering_matrix_easy(p)
        self._tracker = (
            CovarianceTracker(p.covariance_memory)
            if p.covariance_memory > 0.0
            else None
        )
        return True

    def _solve(self, X: np.ndarray) -> np.ndarray:
        p = self.ctx.params
        out = np.empty((self.nrows, self.dof, p.n_beams), dtype=np.complex64)
        for r in range(self.nrows):
            v = (
                self._v_easy
                if self.easy
                else steering_matrix_hard(p, self.my_bins[r])
            )
            r_hat = sample_covariance(X[r])
            if self._tracker is not None:
                r_hat = self._tracker.smooth(self.my_bins[r], r_hat)
            out[r] = mvdr_from_covariance(r_hat, v, p.diagonal_load)
        return out

    def _ship(self, weights: Optional[np.ndarray], use_cpi: int) -> List[Request]:
        ctx = self.ctx
        reqs: List[Request] = []
        for c, (lo, hi), nb in self.route_bf:
            sub = weights[lo - self.blo : hi - self.blo] if weights is not None else None
            reqs.append(
                ctx.rc.isend(ctx.payload(sub, nb), self.bf_ranks[c], data_tag(use_cpi))
            )
        return reqs

    def send_prologue(self):
        """Bootstrap: quiescent weights for CPI 0 (no training data yet)."""
        ctx = self.ctx
        w0 = (
            initial_weights(ctx.params, hard=not self.easy, bins=self.my_bins)
            if ctx.cfg.compute
            else None
        )
        t0 = ctx.now
        reqs = self._ship(w0, use_cpi=0)
        if reqs:
            yield from Request.wait_all(ctx.kernel, reqs)
        ctx.record(-1, Phase.SEND, t0)

    def recv(self, k: int):
        ctx, plan = self.ctx, self.ctx.plan
        X = (
            np.empty((self.nrows, self.dof, self.n_train), dtype=ctx.params.dtype)
            if ctx.cfg.compute
            else None
        )
        for dp in self.producers:
            arr = yield from ctx.rc.recv(self.dop_ranks[dp], data_tag(k))
            if X is not None:
                cols = plan.train_gate_cols(*plan.ranges_doppler.bounds(dp))
                X[:, :, cols] = arr
            ctx.send_ack(self.dop_ranks[dp], k)
        return X

    def compute(self, k: int, X):
        ctx = self.ctx
        weights = self._solve(X) if ctx.cfg.compute else None
        yield from ctx.compute_for(self.t_compute)
        return weights

    def send(self, k: int, weights):
        """Ship weights trained on CPI k for use at CPI k+1."""
        ctx = self.ctx
        yield from ctx.await_credit("w", k + 1)
        t0 = ctx.now
        reqs = self._ship(weights, use_cpi=k + 1)
        if reqs:
            yield from Request.wait_all(ctx.kernel, reqs)
        ctx.record(k, Phase.SEND, t0)


# ---------------------------------------------------------------------------
# tasks 3 and 4: beamforming


class BeamformStages(TaskStages):
    """Apply this node's bin rows' weights to the current CPI's data."""

    def __init__(self, ctx: TaskContext, easy: bool) -> None:
        super().__init__(ctx)
        self.easy = easy

    def setup(self) -> bool:
        ctx, plan, p = self.ctx, self.ctx.plan, self.ctx.params
        self.rows = plan.rows_easy_bf if self.easy else plan.rows_hard_bf
        self.blo, self.bhi = self.rows.bounds(ctx.local)
        self.nrows = self.bhi - self.blo
        if self.nrows <= 0:
            return False
        self.dof = p.easy_dof if self.easy else p.hard_dof
        group_total = p.n_easy_bins if self.easy else p.n_hard_bins
        flops = (
            ctx.costs.easy_beamform_flops()
            if self.easy
            else ctx.costs.hard_beamform_flops()
        )
        self.t_compute = ctx.model_time(flops, self.nrows / group_total)

        self.dop_ranks = ctx.ranks("doppler")
        self.data_producers = [
            i
            for i in range(plan.ranges_doppler.parts)
            if plan.ranges_doppler.size(i) > 0
        ]
        self.w_ranks = ctx.ranks("easy_weight" if self.easy else "hard_weight")
        self.rows_w = plan.rows_easy_w if self.easy else plan.rows_hard_w
        self.w_producers = plan.bf_expected_weight_producers(ctx.local, self.easy)
        self.pc_ranks = ctx.ranks(plan.pc_task)
        self.route_pc = plan.bf_to_pc(ctx.local, self.easy)
        ctx.register_consumers("data", [self.pc_ranks[c] for c, _, _ in self.route_pc])
        return True

    def recv(self, k: int):
        ctx, plan, p = self.ctx, self.ctx.plan, self.ctx.params
        W = (
            np.empty((self.nrows, self.dof, p.n_beams), dtype=np.complex64)
            if ctx.cfg.compute
            else None
        )
        for wp in self.w_producers:
            arr = yield from ctx.rc.recv(self.w_ranks[wp], data_tag(k))
            if W is not None:
                lo, hi = self.rows.overlap(ctx.local, self.rows_w, wp)
                W[lo - self.blo : hi - self.blo] = arr
            ctx.send_ack(self.w_ranks[wp], k)
        X = (
            np.empty((self.nrows, self.dof, p.n_ranges), dtype=p.dtype)
            if ctx.cfg.compute
            else None
        )
        for dp in self.data_producers:
            arr = yield from ctx.rc.recv(self.dop_ranks[dp], data_tag(k))
            if X is not None:
                rlo, rhi = plan.ranges_doppler.bounds(dp)
                X[:, :, rlo:rhi] = arr
            ctx.send_ack(self.dop_ranks[dp], k)
        return W, X

    def compute(self, k: int, inputs):
        ctx = self.ctx
        W, X = inputs
        Y = None
        if ctx.cfg.compute:
            Y = np.einsum("bjk,bjr->bkr", W.conj(), X).astype(np.complex64)
        yield from ctx.compute_for(self.t_compute)
        return Y

    def send(self, k: int, Y):
        ctx = self.ctx
        yield from ctx.await_credit("data", k)
        reqs: List[Request] = []
        for c, (lo, hi), nb in self.route_pc:
            sub = Y[lo - self.blo : hi - self.blo] if Y is not None else None
            reqs.append(ctx.rc.isend(ctx.payload(sub, nb), self.pc_ranks[c], data_tag(k)))
        yield from _send_routed(ctx, k, reqs)


# ---------------------------------------------------------------------------
# shared receive for the bin-partitioned tail tasks


class _ReportWriterMixin(TaskStages):
    """Optional detection-report write-back for sink tasks."""

    def _setup_report_writer(self) -> None:
        ctx = self.ctx
        self._report_handle = None
        self._report_bytes = ctx.costs.detections_bytes()
        if not ctx.cfg.write_reports:
            return
        fs = ctx.fileset.fs
        stem = f"{ctx.tenant}_" if ctx.tenant else ""
        path = f"reports_{stem}{ctx.name}_{ctx.local}.dat"
        fs.create(path, exist_ok=True)
        node_id = ctx.rc.comm.node_of(ctx.rc.rank)
        self._report_handle = fs.open(path, node_id, OpenMode.M_ASYNC)

    def teardown(self) -> None:
        if self._report_handle is not None:
            self._report_handle.close()

    def _write_reports(self, k: int, n_detections: int):
        """Generator: append CPI ``k``'s report block to the output file.

        Timing mode writes a phantom block of the nominal report size;
        compute mode writes that many bytes of real (zero) payload —
        content is irrelevant to the I/O study, size is not.
        """
        if self._report_handle is None:
            return
        ctx = self.ctx
        nbytes = max(self._report_bytes, 32 * max(n_detections, 1))
        payload = ctx.payload(b"\0" * nbytes, nbytes, kind="reports")
        yield from ctx.fileset.fs.write(
            self._report_handle, k * nbytes, payload
        )


class _BinRowsMixin(TaskStages):
    """Receive machinery shared by pulse compression / CFAR / combined."""

    def _setup_bin_rows(self) -> bool:
        ctx, plan = self.ctx, self.ctx.plan
        self.glo, self.ghi = plan.bins_pc.bounds(ctx.local)
        if self.ghi <= self.glo:
            return False
        self.share = (self.ghi - self.glo) / ctx.params.n_doppler_bins
        self.producers = []
        for task, j in plan.pc_expected_bf_producers(ctx.local):
            easy = task == "easy_bf"
            rows_bf = plan.rows_easy_bf if easy else plan.rows_hard_bf
            labels = np.asarray(plan.easy_labels if easy else plan.hard_labels)
            plo, phi = rows_bf.bounds(j)
            sel = labels[plo:phi]
            sel = sel[(sel >= self.glo) & (sel < self.ghi)]
            self.producers.append((ctx.ranks(task)[j], sel))
        return True

    def _recv_bin_rows(self, k: int):
        ctx, p = self.ctx, self.ctx.params
        buf = (
            np.empty((self.ghi - self.glo, p.n_beams, p.n_ranges), dtype=p.dtype)
            if ctx.cfg.compute
            else None
        )
        for src_rank, global_rows in self.producers:
            arr = yield from ctx.rc.recv(src_rank, data_tag(k))
            if buf is not None:
                buf[global_rows - self.glo] = arr
            ctx.send_ack(src_rank, k)
        return buf

    def _run_cfar(self, data: Optional[np.ndarray], k: int) -> None:
        """Detect and deposit results (compute mode only)."""
        if data is None:
            return
        p = self.ctx.params
        dets = ca_cfar(
            data,
            bins=list(range(self.glo, self.ghi)),
            window=p.cfar_window,
            guard=p.cfar_guard,
            pfa=p.pfa,
            cpi_index=k,
            method=p.cfar_method,
        )
        self.ctx.results.setdefault("detections", []).extend(dets)


# ---------------------------------------------------------------------------
# task 5: pulse compression


class PulseStages(_BinRowsMixin):
    """Overlap-save matched filtering of this node's global bins."""

    def setup(self) -> bool:
        if not self._setup_bin_rows():
            return False
        ctx, plan = self.ctx, self.ctx.plan
        self.t_compute = ctx.model_time(ctx.costs.pulse_compression_flops(), self.share)
        self.cfar_ranks = ctx.ranks("cfar")
        self.route = plan.pc_to_cfar(ctx.local)
        ctx.register_consumers("data", [self.cfar_ranks[c] for c, _, _ in self.route])
        return True

    def recv(self, k: int):
        buf = yield from self._recv_bin_rows(k)
        return buf

    def compute(self, k: int, buf):
        ctx = self.ctx
        Y = pulse_compress(buf, ctx.params.pulse_len) if ctx.cfg.compute else None
        yield from ctx.compute_for(self.t_compute)
        return Y

    def send(self, k: int, Y):
        ctx = self.ctx
        yield from ctx.await_credit("data", k)
        reqs: List[Request] = []
        for c, (lo, hi), nb in self.route:
            sub = Y[lo - self.glo : hi - self.glo] if Y is not None else None
            reqs.append(
                ctx.rc.isend(ctx.payload(sub, nb), self.cfar_ranks[c], data_tag(k))
            )
        yield from _send_routed(ctx, k, reqs)


# ---------------------------------------------------------------------------
# task 6: CFAR detection (sink)


class CfarStages(_ReportWriterMixin):
    """CA-CFAR over this node's global bins; produces detection reports."""

    def setup(self) -> bool:
        ctx, plan, p = self.ctx, self.ctx.plan, self.ctx.params
        self.glo, self.ghi = plan.bins_cfar.bounds(ctx.local)
        if self.ghi <= self.glo:
            return False
        share = (self.ghi - self.glo) / p.n_doppler_bins
        self.t_compute = ctx.model_time(ctx.costs.cfar_flops(), share)
        self.pc_ranks = ctx.ranks("pulse_compr")
        self.producers = plan.cfar_expected_pc_producers(ctx.local)
        self._setup_report_writer()
        self._n_dets = 0
        return True

    def recv(self, k: int):
        ctx, plan, p = self.ctx, self.ctx.plan, self.ctx.params
        buf = (
            np.empty((self.ghi - self.glo, p.n_beams, p.n_ranges), dtype=p.dtype)
            if ctx.cfg.compute
            else None
        )
        for j in self.producers:
            arr = yield from ctx.rc.recv(self.pc_ranks[j], data_tag(k))
            if buf is not None:
                lo, hi = plan.bins_cfar.overlap(ctx.local, plan.bins_pc, j)
                buf[lo - self.glo : hi - self.glo] = arr
            ctx.send_ack(self.pc_ranks[j], k)
        return buf

    def compute(self, k: int, buf):
        ctx = self.ctx
        if ctx.cfg.compute:
            p = ctx.params
            dets = ca_cfar(
                buf,
                bins=list(range(self.glo, self.ghi)),
                window=p.cfar_window,
                guard=p.cfar_guard,
                pfa=p.pfa,
                cpi_index=k,
                method=p.cfar_method,
            )
            ctx.results.setdefault("detections", []).extend(dets)
            self._n_dets = len(dets)
        yield from ctx.compute_for(self.t_compute)
        ctx.record(k, Phase.DONE, ctx.now)
        return None

    def send(self, k: int, outputs):
        """Reports go to the display (negligible) and — optionally — to
        the parallel file system (`write_reports`)."""
        if self._report_handle is None:
            return
        ctx = self.ctx
        t0 = ctx.now
        yield from self._write_reports(k, self._n_dets)
        ctx.record(k, Phase.SEND, t0)


# ---------------------------------------------------------------------------
# the combined task of §6: pulse compression + CFAR on P5 + P6 nodes


class PulseCfarStages(_BinRowsMixin, _ReportWriterMixin):
    """Pulse compression and CFAR back-to-back, no intermediate transfer."""

    def setup(self) -> bool:
        if not self._setup_bin_rows():
            return False
        ctx = self.ctx
        self.t_compute = ctx.model_time(
            ctx.costs.pulse_compression_flops() + ctx.costs.cfar_flops(), self.share
        )
        self._setup_report_writer()
        self._n_dets = 0
        return True

    def recv(self, k: int):
        buf = yield from self._recv_bin_rows(k)
        return buf

    def compute(self, k: int, buf):
        ctx = self.ctx
        if ctx.cfg.compute:
            compressed = pulse_compress(buf, ctx.params.pulse_len)
            self._run_cfar(compressed, k)
        yield from ctx.compute_for(self.t_compute)
        ctx.record(k, Phase.DONE, ctx.now)
        return None

    def send(self, k: int, outputs):
        if self._report_handle is None:
            return
        ctx = self.ctx
        t0 = ctx.now
        yield from self._write_reports(k, self._n_dets)
        ctx.record(k, Phase.SEND, t0)
