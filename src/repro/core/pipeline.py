"""Pipeline construction: the paper's three task structures.

* :func:`build_embedded_pipeline` — Figure 3: 7 tasks, the Doppler task
  reads the data files itself (read / compute / send phases).
* :func:`build_separate_io_pipeline` — Figure 4: 8 tasks, a dedicated
  "parallel read" task prepended.
* :func:`combine_pulse_cfar` — §6: merge pulse compression and CFAR into
  one task running on the union of their nodes (same total node count, a
  pure re-organisation).

Canonical task names used across the package::

    read, doppler, easy_weight, hard_weight, easy_bf, hard_bf,
    pulse_compr, cfar, pc_cfar
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import ConfigurationError, PipelineError
from repro.core.graph import DependencyKind, Edge, TaskGraph
from repro.core.task import TaskInstance, TaskKind, TaskSpec

__all__ = [
    "NodeAssignment",
    "PipelineSpec",
    "build_embedded_pipeline",
    "build_separate_io_pipeline",
    "combine_pulse_cfar",
]

SD = DependencyKind.SPATIAL
TD = DependencyKind.TEMPORAL


@dataclass(frozen=True)
class NodeAssignment:
    """Node counts per canonical task (the paper's :math:`P_i`).

    ``io_nodes`` is only used by the separate-I/O pipeline; the paper
    keeps the other assignments identical between its Tables 1 and 2
    ("all tasks have the same numbers of nodes assigned, except for the
    I/O task").
    """

    doppler: int
    easy_weight: int
    hard_weight: int
    easy_bf: int
    hard_bf: int
    pulse_compr: int
    cfar: int
    io_nodes: Optional[int] = None

    def __post_init__(self) -> None:
        for name in (
            "doppler",
            "easy_weight",
            "hard_weight",
            "easy_bf",
            "hard_bf",
            "pulse_compr",
            "cfar",
        ):
            if getattr(self, name) < 1:
                raise ConfigurationError(f"{name} needs >= 1 node")
        if self.io_nodes is not None and self.io_nodes < 1:
            raise ConfigurationError("io_nodes must be >= 1 when set")

    @property
    def total_without_io(self) -> int:
        """Nodes of the 7 processing tasks."""
        return (
            self.doppler
            + self.easy_weight
            + self.hard_weight
            + self.easy_bf
            + self.hard_bf
            + self.pulse_compr
            + self.cfar
        )

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> Dict[str, Optional[int]]:
        """Lossless JSON-able form."""
        return {
            "doppler": self.doppler,
            "easy_weight": self.easy_weight,
            "hard_weight": self.hard_weight,
            "easy_bf": self.easy_bf,
            "hard_bf": self.hard_bf,
            "pulse_compr": self.pulse_compr,
            "cfar": self.cfar,
            "io_nodes": self.io_nodes,
        }

    @staticmethod
    def from_dict(d: Mapping[str, Optional[int]]) -> "NodeAssignment":
        """Inverse of :meth:`to_dict`."""
        return NodeAssignment(**dict(d))

    @staticmethod
    def balanced(params, total: int, io_nodes: Optional[int] = None) -> "NodeAssignment":
        """Workload-proportional assignment of ``total`` nodes.

        This is the method behind the paper's node-assignment cases: each
        task gets nodes in proportion to its per-CPI work (largest-
        remainder rounding, minimum one node each), so steady-state task
        times are as equal as integer node counts allow.  Exact counts
        from the paper's tables are unrecoverable (digits stripped from
        the source text — DESIGN.md), so we reconstruct them the way the
        authors produced them.

        When ``io_nodes`` is None, the separate-I/O read task defaults to
        the Doppler task's count (§5.2 keeps all processing assignments
        equal to Table 1's and adds the I/O task on top).
        """
        from repro.stap.costs import STAPCosts

        names = (
            "doppler",
            "easy_weight",
            "hard_weight",
            "easy_bf",
            "hard_bf",
            "pulse_compr",
            "cfar",
        )
        if total < len(names):
            raise ConfigurationError(
                f"need >= {len(names)} nodes for 7 tasks, got {total}"
            )
        costs = STAPCosts(params)
        work = [costs.task_flops(i) for i in range(7)]
        # Greedy makespan minimisation: start at one node each, give every
        # further node to the task with the worst current time.
        counts = [1] * 7
        for _ in range(total - 7):
            i = max(range(7), key=lambda j: work[j] / counts[j])
            counts[i] += 1
        # §6 precondition: the paper's runs have T_max on neither pulse
        # compression nor CFAR ("the task with the maximum execution time
        # is neither task 5 nor task 6").  If rounding left one of them
        # as the bottleneck, shift a node from the most lightly loaded
        # task as long as that task does not become the new bottleneck.
        pc_i, cfar_i = 5, 6
        while max(range(7), key=lambda j: work[j] / counts[j]) in (pc_i, cfar_i):
            bott = max(range(7), key=lambda j: work[j] / counts[j])
            donors = [j for j in range(7) if j not in (pc_i, cfar_i) and counts[j] > 1]
            if not donors:
                break
            donor = min(donors, key=lambda j: work[j] / (counts[j] - 1))
            new_bott_time = work[bott] / (counts[bott] + 1)
            donor_time = work[donor] / (counts[donor] - 1)
            old_max = work[bott] / counts[bott]
            if max(new_bott_time, donor_time) >= old_max:
                break  # the shift would not help; accept the rounding
            counts[donor] -= 1
            counts[bott] += 1
        kwargs = dict(zip(names, counts))
        return NodeAssignment(io_nodes=io_nodes, **kwargs)

    @staticmethod
    def case(case_number: int, params=None) -> "NodeAssignment":
        """The paper's three evaluation cases: 25, 50, and 100 nodes.

        Each case doubles the previous one's total (the paper: "each
        doubles the number of nodes of another").  Assignments are
        workload-balanced via :meth:`balanced`; ``params`` defaults to
        the standard cube dimensions.
        """
        if case_number not in (1, 2, 3):
            raise ConfigurationError(f"case must be 1, 2, or 3, got {case_number}")
        if params is None:
            from repro.stap.params import STAPParams

            params = STAPParams()
        total = {1: 25, 2: 50, 3: 100}[case_number]
        a = NodeAssignment.balanced(params, total)
        # Separate-I/O read task mirrors the Doppler task's node count.
        return replace(a, io_nodes=a.doppler)

    def scaled(self, factor: int) -> "NodeAssignment":
        """Multiply every count by ``factor``."""
        if factor < 1:
            raise ConfigurationError(f"factor must be >= 1, got {factor}")
        return NodeAssignment(
            doppler=self.doppler * factor,
            easy_weight=self.easy_weight * factor,
            hard_weight=self.hard_weight * factor,
            easy_bf=self.easy_bf * factor,
            hard_bf=self.hard_bf * factor,
            pulse_compr=self.pulse_compr * factor,
            cfar=self.cfar * factor,
            io_nodes=None if self.io_nodes is None else self.io_nodes * factor,
        )


@dataclass
class PipelineSpec:
    """A concrete pipeline: ordered tasks + typed dependency graph.

    ``instances()`` lays ranks out contiguously in task order — adjacent
    pipeline stages land in adjacent mesh regions, matching how the
    paper's runs allocated node blocks.
    """

    tasks: List[TaskSpec]
    edges: List[Edge]
    name: str = "pipeline"

    def __post_init__(self) -> None:
        self.graph = TaskGraph(self.tasks, self.edges)

    @property
    def total_nodes(self) -> int:
        """Compute nodes the pipeline occupies."""
        return sum(t.n_nodes for t in self.tasks)

    def task(self, name: str) -> TaskSpec:
        """Spec by canonical name."""
        for t in self.tasks:
            if t.name == name:
                return t
        raise PipelineError(f"no task named {name!r} in {self.name}")

    def has_task(self, name: str) -> bool:
        return any(t.name == name for t in self.tasks)

    def instances(self) -> Dict[str, TaskInstance]:
        """Bind tasks to contiguous global communicator ranks."""
        out: Dict[str, TaskInstance] = {}
        next_rank = 0
        for t in self.tasks:
            ranks = tuple(range(next_rank, next_rank + t.n_nodes))
            out[t.name] = TaskInstance(t, ranks)
            next_rank += t.n_nodes
        return out

    def task_names(self) -> List[str]:
        return [t.name for t in self.tasks]

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """Lossless JSON-able form (task kinds and edge kinds by value)."""
        return {
            "name": self.name,
            "tasks": [
                {"name": t.name, "kind": t.kind.value, "n_nodes": t.n_nodes}
                for t in self.tasks
            ],
            "edges": [
                {"src": e.src, "dst": e.dst, "kind": e.kind.value}
                for e in self.edges
            ],
        }

    @staticmethod
    def from_dict(d: Mapping[str, object]) -> "PipelineSpec":
        """Inverse of :meth:`to_dict`."""
        tasks = [
            TaskSpec(t["name"], TaskKind(t["kind"]), t["n_nodes"])
            for t in d["tasks"]
        ]
        edges = [
            Edge(e["src"], e["dst"], DependencyKind(e["kind"])) for e in d["edges"]
        ]
        return PipelineSpec(tasks, edges, name=d["name"])


def _processing_tasks(a: NodeAssignment, doppler_kind: TaskKind) -> List[TaskSpec]:
    return [
        TaskSpec("doppler", doppler_kind, a.doppler),
        TaskSpec("easy_weight", TaskKind.EASY_WEIGHT, a.easy_weight),
        TaskSpec("hard_weight", TaskKind.HARD_WEIGHT, a.hard_weight),
        TaskSpec("easy_bf", TaskKind.EASY_BEAMFORM, a.easy_bf),
        TaskSpec("hard_bf", TaskKind.HARD_BEAMFORM, a.hard_bf),
        TaskSpec("pulse_compr", TaskKind.PULSE_COMPRESSION, a.pulse_compr),
        TaskSpec("cfar", TaskKind.CFAR, a.cfar),
    ]


_CORE_EDGES: Tuple[Edge, ...] = (
    Edge("doppler", "easy_weight", TD),
    Edge("doppler", "hard_weight", TD),
    Edge("easy_weight", "easy_bf", SD),
    Edge("hard_weight", "hard_bf", SD),
    Edge("doppler", "easy_bf", SD),
    Edge("doppler", "hard_bf", SD),
    Edge("easy_bf", "pulse_compr", SD),
    Edge("hard_bf", "pulse_compr", SD),
    Edge("pulse_compr", "cfar", SD),
)


def build_embedded_pipeline(assignment: NodeAssignment) -> PipelineSpec:
    """Figure 3: I/O embedded in the Doppler filter processing task."""
    tasks = _processing_tasks(assignment, TaskKind.DOPPLER_EMBEDDED_IO)
    return PipelineSpec(tasks, list(_CORE_EDGES), name="embedded-io")


def build_separate_io_pipeline(assignment: NodeAssignment) -> PipelineSpec:
    """Figure 4: a dedicated parallel-read task prepended."""
    io_nodes = assignment.io_nodes if assignment.io_nodes is not None else assignment.doppler
    tasks = [TaskSpec("read", TaskKind.PARALLEL_READ, io_nodes)]
    tasks += _processing_tasks(assignment, TaskKind.DOPPLER)
    edges = [Edge("read", "doppler", SD)] + list(_CORE_EDGES)
    return PipelineSpec(tasks, edges, name="separate-io")


def combine_pulse_cfar(spec: PipelineSpec) -> PipelineSpec:
    """§6: merge pulse compression + CFAR onto their combined nodes.

    The merged task runs on ``P5 + P6`` nodes; the total node count is
    unchanged — the paper's "fair comparison" rule.
    """
    if not (spec.has_task("pulse_compr") and spec.has_task("cfar")):
        raise PipelineError("pipeline has no pulse_compr/cfar pair to combine")
    pc, cf = spec.task("pulse_compr"), spec.task("cfar")
    combined = TaskSpec("pc_cfar", TaskKind.PULSE_CFAR_COMBINED, pc.n_nodes + cf.n_nodes)
    tasks = [t for t in spec.tasks if t.name not in ("pulse_compr", "cfar")]
    tasks.append(combined)
    edges: List[Edge] = []
    seen = set()
    for e in spec.edges:
        if e.src == "pulse_compr" and e.dst == "cfar":
            continue  # the merged-away internal edge
        src = "pc_cfar" if e.src in ("pulse_compr", "cfar") else e.src
        dst = "pc_cfar" if e.dst in ("pulse_compr", "cfar") else e.dst
        # Remapping can collapse two edges onto one (a task feeding both
        # pulse_compr and cfar): keep the first, preserving edge order.
        key = (src, dst, e.kind)
        if key in seen:
            continue
        seen.add(key)
        edges.append(Edge(src, dst, e.kind))
    return PipelineSpec(tasks, edges, name=spec.name + "+combined")
