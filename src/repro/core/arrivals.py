"""CPI arrival processes.

The classic runs assume every CPI is sitting in the file system before
the pipeline starts — the reader consumes them back to back as fast as
the disks allow.  Real radar front ends are not that polite: CPIs land
on a cadence (one per coherent processing interval), with jitter from
the antenna scheduler, or in bursts when the radar revisits a sector.
An :class:`ArrivalSpec` describes *when* CPI ``k`` becomes available to
the reading task; the reader gates on it via
:meth:`~repro.core.context.TaskContext.await_arrival`.

Determinism: every stochastic kind draws from a private
``random.Random(seed)``, so the same spec always produces the same
arrival times — across processes, across the TCP service path, and
across repeated runs.  ``times(n)`` is a pure function of the spec.

Kinds
-----
``fixed``
    CPI ``k`` arrives at ``offset + k * period`` — today's implicit
    cadence generalised.  ``period=0`` (the default) means "all data
    ready at t=0", which gates nothing and is bit-identical to a run
    with no arrival process at all.
``poisson``
    Exponential inter-arrival gaps with mean ``period`` (a Poisson
    arrival stream) — the bursty open-loop consumer.
``jittered``
    Gaps of ``period`` perturbed by ``uniform(-jitter, +jitter)``;
    ``jitter <= period`` keeps gaps non-negative and times monotone.
``burst``
    Burst trains: groups of ``burst_size`` CPIs spaced ``burst_gap``
    apart inside the burst, with burst *starts* ``period`` apart — the
    sector-revisit pattern.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Dict, Tuple

from repro.core.serialize import compat_get

__all__ = ["ArrivalSpec", "ARRIVAL_KINDS"]

#: Recognised arrival-process kinds.
ARRIVAL_KINDS = ("fixed", "poisson", "jittered", "burst")


@dataclass(frozen=True)
class ArrivalSpec:
    """When each CPI becomes available to the pipeline's reader.

    Attributes
    ----------
    kind:
        One of :data:`ARRIVAL_KINDS`.
    period:
        Base cadence in simulated seconds: the fixed gap (``fixed``),
        the mean gap (``poisson``, ``jittered``), or the gap between
        burst starts (``burst``).
    offset:
        Absolute time of the first arrival.
    jitter:
        Half-width of the uniform perturbation on each gap
        (``jittered`` only; must not exceed ``period``).
    burst_size:
        CPIs per burst (``burst`` only).
    burst_gap:
        Intra-burst spacing (``burst`` only; the whole burst must fit
        inside ``period``).
    seed:
        Seed for the private RNG of the stochastic kinds.
    """

    kind: str = "fixed"
    period: float = 0.0
    offset: float = 0.0
    jitter: float = 0.0
    burst_size: int = 1
    burst_gap: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.kind not in ARRIVAL_KINDS:
            raise ValueError(
                f"unknown arrival kind {self.kind!r}; expected one of {ARRIVAL_KINDS}"
            )
        if self.period < 0:
            raise ValueError("period must be >= 0")
        if self.offset < 0:
            raise ValueError("offset must be >= 0")
        if self.kind == "poisson" and self.period <= 0:
            raise ValueError("poisson arrivals need period > 0 (the mean gap)")
        if self.kind == "jittered":
            if self.jitter < 0:
                raise ValueError("jitter must be >= 0")
            if self.jitter > self.period:
                raise ValueError(
                    "jitter must not exceed period (keeps gaps non-negative)"
                )
        if self.kind == "burst":
            if self.burst_size < 1:
                raise ValueError("burst_size must be >= 1")
            if self.burst_gap < 0:
                raise ValueError("burst_gap must be >= 0")
            if self.burst_size > 1 and (self.burst_size - 1) * self.burst_gap > self.period:
                raise ValueError(
                    "a burst must fit inside its period: "
                    "(burst_size - 1) * burst_gap <= period"
                )

    # -- generation --------------------------------------------------------
    def times(self, n_cpis: int) -> Tuple[float, ...]:
        """Absolute arrival times for CPIs ``0 .. n_cpis - 1``.

        Pure: the same spec always returns the same tuple.  Times are
        monotone non-decreasing for every kind.
        """
        if n_cpis < 0:
            raise ValueError("n_cpis must be >= 0")
        if self.kind == "fixed":
            return tuple(self.offset + k * self.period for k in range(n_cpis))
        if self.kind == "burst":
            return tuple(
                self.offset
                + (k // self.burst_size) * self.period
                + (k % self.burst_size) * self.burst_gap
                for k in range(n_cpis)
            )
        rng = random.Random(self.seed)
        out = []
        t = self.offset
        for _ in range(n_cpis):
            out.append(t)
            if self.kind == "poisson":
                t += rng.expovariate(1.0 / self.period)
            else:  # jittered
                t += self.period + rng.uniform(-self.jitter, self.jitter)
        return tuple(out)

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Lossless JSON-able form; default fields are omitted so specs
        stay minimal (and future defaults can ride along hash-free)."""
        d: Dict[str, Any] = {"kind": self.kind, "period": self.period}
        if self.offset:
            d["offset"] = self.offset
        if self.jitter:
            d["jitter"] = self.jitter
        if self.burst_size != 1:
            d["burst_size"] = self.burst_size
        if self.burst_gap:
            d["burst_gap"] = self.burst_gap
        if self.seed:
            d["seed"] = self.seed
        return d

    @staticmethod
    def from_dict(d: Dict[str, Any]) -> "ArrivalSpec":
        """Inverse of :meth:`to_dict`."""
        return ArrivalSpec(
            kind=compat_get(d, "kind", "fixed"),
            period=compat_get(d, "period", 0.0),
            offset=compat_get(d, "offset", 0.0),
            jitter=compat_get(d, "jitter", 0.0),
            burst_size=compat_get(d, "burst_size", 1),
            burst_gap=compat_get(d, "burst_gap", 0.0),
            seed=compat_get(d, "seed", 0),
        )
