"""The parallel pipeline STAP model — the paper's primary contribution.

Subpackage map:

* :mod:`~repro.core.partition` — block-partition arithmetic used to split
  every task's workload over its nodes and to plan redistributions
  between differently partitioned tasks;
* :mod:`~repro.core.task` / :mod:`~repro.core.graph` — task specs and the
  SD/TD dependency graph (paper Figure 2), with the latency-path rule
  (temporal-dependency tasks are off the path);
* :mod:`~repro.core.pipeline` — pipeline builders: 7-task embedded-I/O
  (Figure 3), 8-task separate-I/O (Figure 4), and the task-combination
  transform of §6 (pulse compression + CFAR merged);
* :mod:`~repro.core.model` — the analytic equations (1)–(14):
  throughput/latency predictions and the combination analysis;
* :mod:`~repro.core.executor` — runs a pipeline on the simulated machine
  (compute mode: real numerics; timing mode: cost-model phantoms) and
  measures throughput, latency, and per-task phase times;
* :mod:`~repro.core.metrics` — steady-state measurement from traces.
"""

from repro.core.partition import BlockPartition, label_block_rows
from repro.core.task import TaskKind, TaskSpec, TaskInstance
from repro.core.graph import DependencyKind, Edge, TaskGraph
from repro.core.pipeline import (
    NodeAssignment,
    PipelineSpec,
    build_embedded_pipeline,
    build_separate_io_pipeline,
    combine_pulse_cfar,
)
from repro.core.arrivals import ArrivalSpec
from repro.core.model import CombinationAnalysis, IOModel, PipelineModel
from repro.core.executor import (
    ExecutionConfig,
    PipelineExecutor,
    PipelineResult,
    Substrate,
    validate_fs_hints,
)
from repro.core.metrics import PipelineMeasurement, TaskPhaseStats, measure
from repro.core.plan import PipelinePlan
from repro.core.scaling import ScalingStudy, run_scaling_study
from repro.core.stages import BoundedQueue, TaskStages, run_sequential, run_threaded
from repro.core.validate import validate_plan

__all__ = [
    "BlockPartition",
    "label_block_rows",
    "TaskKind",
    "TaskSpec",
    "TaskInstance",
    "DependencyKind",
    "Edge",
    "TaskGraph",
    "NodeAssignment",
    "PipelineSpec",
    "build_embedded_pipeline",
    "build_separate_io_pipeline",
    "combine_pulse_cfar",
    "PipelineModel",
    "IOModel",
    "CombinationAnalysis",
    "ExecutionConfig",
    "PipelineExecutor",
    "PipelineResult",
    "ArrivalSpec",
    "Substrate",
    "validate_fs_hints",
    "PipelinePlan",
    "TaskPhaseStats",
    "PipelineMeasurement",
    "measure",
    "TaskStages",
    "BoundedQueue",
    "run_sequential",
    "run_threaded",
    "ScalingStudy",
    "run_scaling_study",
    "validate_plan",
]
