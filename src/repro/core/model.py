"""Analytic performance model — the paper's equations (1)–(14).

Two layers:

* :class:`PipelineModel` predicts per-task service times
  :math:`T_i = W_i/P_i + C_i + V_i` from the cost models, the machine
  preset, and the file-system characteristics, then evaluates Eq. 1–4
  through the task graph.  It is deliberately first-order (no queueing)
  — the executor's measurements are the ground truth; the model is used
  for sanity bounds and for the §6 analysis.
* :class:`CombinationAnalysis` reproduces §6's algebra for merging two
  pipeline tasks: Eq. 8's decomposition of
  :math:`T_{5+6} - (T_5 + T_6)`, the sign argument of Eq. 9, the
  throughput non-decrease of Eqs. 13–14, and the both-improve condition
  of Eq. 15.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.errors import ConfigurationError, PipelineError
from repro.core.pipeline import PipelineSpec
from repro.core.task import TaskKind
from repro.machine.presets import MachinePreset
from repro.stap.costs import STAPCosts
from repro.stap.params import STAPParams

__all__ = ["IOModel", "PipelineModel", "CombinationAnalysis"]


@dataclass(frozen=True)
class IOModel:
    """First-order read-time model for one CPI through the striped FS.

    ``cycle_time(p_readers, nbytes)`` estimates the elapsed time for
    ``p_readers`` nodes to collectively read ``nbytes`` striped over
    ``stripe_factor`` directories: media time is parallel across
    directories; every reader pays one (coalesced) request overhead per
    directory it touches.
    """

    stripe_factor: int
    stripe_unit: int
    disk_bw: float
    disk_overhead: float
    asynchronous: bool

    def cycle_time(self, p_readers: int, nbytes: int) -> float:
        if p_readers < 1 or nbytes < 0:
            raise ConfigurationError("bad IO model arguments")
        per_dir_bytes = nbytes / self.stripe_factor
        units_total = max(1, math.ceil(nbytes / self.stripe_unit))
        dirs_touched_per_reader = min(
            self.stripe_factor, max(1, units_total // p_readers)
        )
        # Each directory serves ~p_readers coalesced requests per CPI.
        reqs_per_dir = p_readers * dirs_touched_per_reader / self.stripe_factor
        return per_dir_bytes / self.disk_bw + reqs_per_dir * self.disk_overhead


class PipelineModel:
    """Predicted task times and Eq. 1–4 evaluation for one pipeline."""

    #: Fixed per-CPI parallelisation overhead V_i charged to every task
    #: (loop bookkeeping, tag matching...).  Small by construction — the
    #: paper argues V_i is negligible for these task structures.
    V_OVERHEAD = 1e-4

    def __init__(
        self,
        spec: PipelineSpec,
        params: STAPParams,
        preset: MachinePreset,
        io_model: Optional[IOModel] = None,
    ) -> None:
        self.spec = spec
        self.params = params
        self.preset = preset
        self.costs = STAPCosts(params)
        self.io_model = io_model
        needs_io = any(
            t.kind in (TaskKind.PARALLEL_READ, TaskKind.DOPPLER_EMBEDDED_IO)
            for t in spec.tasks
        )
        if needs_io and io_model is None:
            raise PipelineError("pipeline performs I/O but no IOModel given")

    # -- per-task building blocks ---------------------------------------------
    def _comm_time(self, nbytes: float, n_msgs: float) -> float:
        """Alpha-beta estimate for a node moving ``nbytes`` in ``n_msgs``."""
        return n_msgs * self.preset.latency + nbytes / self.preset.bandwidth

    def _flops_of(self, kind: TaskKind) -> float:
        c = self.costs
        table = {
            TaskKind.PARALLEL_READ: 0.0,
            TaskKind.DOPPLER: c.doppler_flops(),
            TaskKind.DOPPLER_EMBEDDED_IO: c.doppler_flops(),
            TaskKind.EASY_WEIGHT: c.easy_weight_flops(),
            TaskKind.HARD_WEIGHT: c.hard_weight_flops(),
            TaskKind.EASY_BEAMFORM: c.easy_beamform_flops(),
            TaskKind.HARD_BEAMFORM: c.hard_beamform_flops(),
            TaskKind.PULSE_COMPRESSION: c.pulse_compression_flops(),
            TaskKind.CFAR: c.cfar_flops(),
            TaskKind.PULSE_CFAR_COMBINED: c.pulse_compression_flops() + c.cfar_flops(),
        }
        return table[kind]

    def _bytes_in_out(self, kind: TaskKind) -> tuple:
        """(bytes received, bytes sent) for the whole CPI, per task kind."""
        c = self.costs
        dop_out = c.doppler_easy_bytes() + c.doppler_hard_bytes()
        w_bytes = c.weights_easy_bytes() + c.weights_hard_bytes()
        table = {
            TaskKind.PARALLEL_READ: (0.0, c.cube_bytes()),
            TaskKind.DOPPLER: (c.cube_bytes(), 2.0 * dop_out),
            TaskKind.DOPPLER_EMBEDDED_IO: (0.0, 2.0 * dop_out),
            TaskKind.EASY_WEIGHT: (c.doppler_easy_bytes(), c.weights_easy_bytes()),
            TaskKind.HARD_WEIGHT: (c.doppler_hard_bytes(), c.weights_hard_bytes()),
            TaskKind.EASY_BEAMFORM: (
                c.doppler_easy_bytes() + c.weights_easy_bytes(),
                c.beams_easy_bytes(),
            ),
            TaskKind.HARD_BEAMFORM: (
                c.doppler_hard_bytes() + c.weights_hard_bytes(),
                c.beams_hard_bytes(),
            ),
            TaskKind.PULSE_COMPRESSION: (c.beams_all_bytes(), c.beams_all_bytes()),
            TaskKind.CFAR: (c.beams_all_bytes(), c.detections_bytes()),
            TaskKind.PULSE_CFAR_COMBINED: (c.beams_all_bytes(), c.detections_bytes()),
        }
        # Doppler's output is sent both to beamforming (current CPI) and
        # to the weight tasks (for the next CPI) — hence the 2x above.
        return table[kind]

    def task_time(self, name: str) -> float:
        """Predicted :math:`T_i = W_i/P_i + C_i + V_i` (+ I/O term)."""
        t = self.spec.task(name)
        node = self.preset.node_spec
        p = t.n_nodes
        compute = self._flops_of(t.kind) / p / node.flops
        bin_, bout = self._bytes_in_out(t.kind)
        # Message count per node: one per peer per logical stream; use a
        # small constant times pipeline fan-in/out as a first-order guess.
        comm = self._comm_time((bin_ + bout) / p, n_msgs=8.0)
        total = compute + comm + self.V_OVERHEAD
        if t.kind in (TaskKind.PARALLEL_READ, TaskKind.DOPPLER_EMBEDDED_IO):
            assert self.io_model is not None
            io = self.io_model.cycle_time(p, self.costs.cube_bytes())
            if self.io_model.asynchronous and t.kind is TaskKind.DOPPLER_EMBEDDED_IO:
                # Async reads overlap compute+send: the cycle is whichever
                # is longer, not the sum.
                total = max(total, io)
            else:
                total = total + io
        return total

    def predicted_times(self) -> Dict[str, float]:
        """Predicted T_i for every task."""
        return {t.name: self.task_time(t.name) for t in self.spec.tasks}

    def predicted_throughput(self) -> float:
        """Eq. 1/3 on predicted times."""
        return self.spec.graph.throughput(self.predicted_times())

    def predicted_latency(self) -> float:
        """Eq. 2/4 on predicted times."""
        return self.spec.graph.latency(self.predicted_times())


@dataclass(frozen=True)
class CombinationAnalysis:
    """§6 algebra for merging tasks a and b onto ``p_a + p_b`` nodes.

    Inputs are the measured (or modelled) decompositions of the two
    tasks' times: work terms :math:`W/P`, communication :math:`C`, and
    overhead :math:`V`.
    """

    w_a: float  # total work of task a (node-seconds: W_a such that T=W/P)
    w_b: float
    p_a: int
    p_b: int
    c_a: float
    c_b: float
    v_a: float = 0.0
    v_b: float = 0.0
    #: Communication of the combined task; §6 argues C_{a+b} < C_a
    #: (receives are split over more nodes; the internal send vanishes).
    c_combined: Optional[float] = None
    v_combined: Optional[float] = None

    def __post_init__(self) -> None:
        if self.p_a < 1 or self.p_b < 1:
            raise ConfigurationError("node counts must be >= 1")
        if min(self.w_a, self.w_b, self.c_a, self.c_b) < 0:
            raise ConfigurationError("times must be >= 0")

    # -- separate tasks ------------------------------------------------------
    @property
    def t_a(self) -> float:
        """Eq. 6: T_a = W_a/P_a + C_a + V_a."""
        return self.w_a / self.p_a + self.c_a + self.v_a

    @property
    def t_b(self) -> float:
        return self.w_b / self.p_b + self.c_b + self.v_b

    # -- combined task --------------------------------------------------------
    @property
    def _c_comb(self) -> float:
        # Default per §6: the combined task only receives (over more
        # nodes, so smaller per-node messages) — bounded by C_a.
        if self.c_combined is not None:
            return self.c_combined
        return self.c_a * self.p_a / (self.p_a + self.p_b)

    @property
    def t_combined(self) -> float:
        """Eq. 7: T_{a+b} = (W_a + W_b)/(P_a + P_b) + C_{a+b} + V_{a+b}."""
        v = self.v_combined if self.v_combined is not None else max(self.v_a, self.v_b)
        return (self.w_a + self.w_b) / (self.p_a + self.p_b) + self._c_comb + v

    # -- the paper's claims -----------------------------------------------------
    def work_term_delta(self) -> float:
        """Eq. 9's quantity: (W_a+W_b)/(P_a+P_b) - W_a/P_a - W_b/P_b.

        Algebraically ``-(W_a P_b^2 + W_b P_a^2) / (P_a P_b (P_a+P_b))``
        — strictly negative whenever any work exists.
        """
        return (
            (self.w_a + self.w_b) / (self.p_a + self.p_b)
            - self.w_a / self.p_a
            - self.w_b / self.p_b
        )

    def latency_delta(self) -> float:
        """Eq. 8: T_{a+b} - (T_a + T_b); negative = combining helps."""
        return self.t_combined - (self.t_a + self.t_b)

    def latency_improves(self) -> bool:
        """Eq. 12's conclusion: the combined task is faster than the sum."""
        return self.latency_delta() < 0

    def combined_time_bound(self) -> float:
        """Eq. 13's bound: T_{a+b} <= max(T_a, T_b) when C,V shrink.

        Returns the weighted-average bound
        ``(P_a T_a + P_b T_b) / (P_a + P_b)`` (work terms only).
        """
        return (self.p_a * self.t_a + self.p_b * self.t_b) / (self.p_a + self.p_b)

    def throughput_non_decreasing(self, other_task_times: Mapping[str, float]) -> bool:
        """Eq. 14: new max task time <= old max task time.

        ``other_task_times`` are the times of the tasks *not* being
        combined; they are unchanged by the transform.
        """
        old_max = max(list(other_task_times.values()) + [self.t_a, self.t_b])
        new_max = max(list(other_task_times.values()) + [self.t_combined])
        return new_max <= old_max + 1e-12

    def both_improve(self, other_task_times: Mapping[str, float]) -> bool:
        """§6.2's special case: if a combined task *was* the bottleneck
        (Eq. 15), combining improves throughput and latency together."""
        others = max(other_task_times.values()) if other_task_times else 0.0
        was_bottleneck = max(self.t_a, self.t_b) > others
        return was_bottleneck and self.latency_improves() and self.t_combined < max(self.t_a, self.t_b)
