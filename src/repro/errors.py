"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the repro package."""


class SimulationError(ReproError):
    """Generic failure inside the discrete-event simulation kernel."""


class DeadlockError(SimulationError):
    """The event queue drained while processes were still blocked."""


class ConfigurationError(ReproError):
    """An invalid machine, pipeline, or file-system configuration."""


class PartitionError(ConfigurationError):
    """A workload cannot be partitioned over the requested node count."""


class MPIError(ReproError):
    """Misuse of the message-passing layer (bad rank, tag, truncation...)."""


class TruncationError(MPIError):
    """A receive buffer was smaller than the matched incoming message."""


class FileSystemError(ReproError):
    """Base class for simulated parallel file system failures."""


class FileNotOpenError(FileSystemError):
    """Operation attempted on a closed or never-opened file handle."""


class FileExistsInFSError(FileSystemError):
    """Exclusive create of a path that already exists."""


class NoSuchFileError(FileSystemError):
    """Open of a path that does not exist (without create mode)."""


class IOFaultError(FileSystemError):
    """Base class for *retryable* I/O faults (server outages, transient
    disk errors, request timeouts).  Fault-tolerant clients catch this to
    drive failover and backoff; anything else propagates."""


class ServerDownError(IOFaultError):
    """Request rejected or dropped because the I/O server is down."""


class FlakyDiskError(IOFaultError):
    """A per-request transient disk error (injected by ``FlakyDisk``)."""


class IORequestTimeoutError(IOFaultError):
    """A client-side per-attempt simulated-time timeout expired."""


class RetriesExhaustedError(IOFaultError):
    """A fault-tolerant client gave up after its retry budget."""


class ListIOUnsupportedError(FileSystemError):
    """List I/O requested from a file system without a list-I/O call.

    The PIOFS case for noncontiguous access: the IBM parallel file
    system exposes only plain ``read``/``write``, so batching an access
    list into one request per stripe directory (``read_list``) raises
    this error and callers must issue one request per piece instead.
    """


class AsyncUnsupportedError(FileSystemError):
    """Asynchronous I/O requested from a file system without async support.

    This is the PIOFS case from the paper: the IBM parallel file system
    exposes only synchronous ``read``/``write``, so requesting ``iread``
    raises this error and callers must fall back to blocking reads.
    """


class ServiceError(ReproError):
    """Failure in the experiment service tier (scheduler, worker pool,
    or the serve/submit wire protocol)."""


class JobCancelledError(ServiceError):
    """A job was cancelled before (or while) producing its results."""


class AnalysisError(ReproError):
    """The read-side analysis facade could not resolve or interpret an
    artifact (unknown source kind, ambiguous store hash, stale schema,
    unparseable file)."""


class PipelineError(ReproError):
    """Invalid pipeline structure or execution failure."""


class DependencyError(PipelineError):
    """Task dependency graph violates pipeline model rules."""
