"""Slab readers: the per-node access methods behind the I/O strategies.

Each reading node (the Doppler task under embedded I/O, the dedicated
read task under separate I/O) owns one reader for its fixed range block.
The offset/length are set at construction — the paper's "read length and
file offset ... set only during initialisation" — and CPI ``k`` is read
from round-robin file ``k % n_files``.

The hierarchy replaces the old ``_SlabReader`` monolith:

* :class:`SyncReader` — one blocking striped read per CPI (the PIOFS
  behaviour);
* :class:`AsyncPrefetchReader` — a configurable-depth pipeline of posted
  ``iread`` requests (depth 1 reproduces the paper's overlap of reading
  CPI *k+1* with computing CPI *k* bit-identically);
* :class:`SievingSyncReader` / :class:`SievingAsyncReader` — data
  sieving: widen the request to whole stripe units and discard the pad;
* :class:`TwoPhaseReader` — collective two-phase I/O: phase one reads
  stripe-aligned contiguous chunks, phase two redistributes slab pieces
  over the mesh.

Deadline/drop handling (graceful degradation under server faults) is
shared via :class:`SlabReader`, as is in-flight request cleanup:
``close()`` observes and interrupts any read still outstanding — a
prefetch orphaned by a deadline drop or an early teardown no longer
leaks as an unobserved background process.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Tuple

import numpy as np

from repro.core.metrics import DroppedCpi
from repro.errors import ConfigurationError, IOFaultError
from repro.mpi.datatypes import Phantom
from repro.mpi.request import Request
from repro.pfs.base import OpenMode
from repro.sim.events import Event
from repro.sim.process import Process
from repro.stap.datacube import DataCube
from repro.trace.record import Phase

__all__ = [
    "DROPPED",
    "EXCHANGE_TAG_BASE",
    "open_round_robin",
    "declare_access_pattern",
    "SlabReader",
    "SyncReader",
    "AsyncPrefetchReader",
    "SievingSyncReader",
    "SievingAsyncReader",
    "ListIOReader",
    "TwoPhaseReader",
]

#: Sentinel returned by a reader for a CPI abandoned at the
#: graceful-degradation read deadline (timing mode carries no payload, so
#: ``None`` is ambiguous).
DROPPED = object()

#: Tag space of the two-phase redistribution, disjoint from the per-CPI
#: ``data_tag`` range so exchange messages can never match pipeline data.
EXCHANGE_TAG_BASE = 1 << 20


def open_round_robin(ctx):
    """Open every round-robin data file with gopen/M_ASYNC semantics."""
    fs = ctx.fileset.fs
    node_id = ctx.rc.comm.node_of(ctx.rc.rank)
    return [
        fs.open(f"{ctx.fileset.prefix}{f}.dat", node_id, OpenMode.M_ASYNC)
        for f in range(ctx.fileset.n_files)
    ]


def _discard(_event) -> None:
    """No-op event observer: swallows a cancelled read's late outcome."""


class SlabReader:
    """Shared state and deadline/drop/cleanup machinery of all readers."""

    def __init__(self, ctx, rlo: int, rhi: int) -> None:
        self.ctx = ctx
        self.rlo, self.rhi = rlo, rhi
        self.offset, self.nbytes = ctx.fileset.slab_extent(rlo, rhi)
        # The extent actually issued to the file system; access methods
        # that over-read (data sieving) widen it and trim in _extract.
        self.read_offset, self.read_nbytes = self.offset, self.nbytes
        self.handles = open_round_robin(ctx)
        self.fs = ctx.fileset.fs
        #: (cpi, event) of reads posted but abandoned (deadline drops).
        self._orphans: List[Tuple[int, Event]] = []
        metrics = getattr(ctx, "metrics", None)
        if metrics is not None:
            # Outstanding-prefetch depth per reading node: how far the
            # access method's read-ahead actually runs ahead of consumption.
            metrics.gauge(
                "reader_outstanding_reads",
                help="posted slab reads not yet completed nor cancelled",
                fn=self.outstanding_requests,
                **ctx.tenant_labels(task=ctx.name, node=str(ctx.local)),
            )

    def _handle(self, cpi: int):
        return self.handles[cpi % self.ctx.fileset.n_files]

    # -- the access method --------------------------------------------------
    def prefetch(self, cpi: int) -> None:
        """Post read-ahead for ``cpi`` (no-op for synchronous readers)."""

    def read(self, cpi: int):
        """Process generator: obtain the slab bytes for ``cpi``.

        With :attr:`ExecutionConfig.read_deadline` set, the wait is
        bounded: a read that misses the deadline (or fails with an
        exhausted-retries I/O fault) yields the :data:`DROPPED` sentinel
        instead of stalling — graceful degradation under server faults.
        """
        raise NotImplementedError

    def _extract(self, raw):
        """Trim a completed read down to the slab extent (identity here)."""
        return raw

    # -- deadline drops ------------------------------------------------------
    def _drop(self, cpi: int, t0: float):
        """Record the sacrificed CPI; the pipeline keeps its beat."""
        ctx = self.ctx
        ctx.record(cpi, Phase.DROPPED, t0)
        ctx.results.setdefault("dropped_cpis", []).append(
            DroppedCpi(task=ctx.name, node=ctx.local, cpi=cpi, waited=ctx.now - t0)
        )
        return DROPPED

    # -- decode --------------------------------------------------------------
    def slab_array(self, raw) -> Optional[np.ndarray]:
        """Decode file bytes into the (J, N, R') slab (compute mode).

        A dropped CPI decodes to a zero slab: downstream numerics keep
        their shapes, the sacrificed data simply contains no targets.
        """
        if raw is DROPPED:
            p = self.ctx.params
            return np.zeros(
                (p.n_channels, p.n_pulses, self.rhi - self.rlo), dtype=p.dtype
            )
        if isinstance(raw, Phantom):
            return None
        return DataCube.slab_from_file_bytes(raw, self.ctx.params, self.rlo, self.rhi)

    # -- teardown ------------------------------------------------------------
    def _inflight(self) -> List[Tuple[int, Event]]:
        """(cpi, event) of every read this reader still has in flight."""
        return list(self._orphans)

    def outstanding_requests(self) -> int:
        """In-flight reads not yet completed nor cancelled."""
        return sum(1 for _, ev in self._inflight() if not ev.triggered)

    def _drain(self) -> None:
        """Observe and cancel every in-flight read (see ``close``)."""
        for cpi, event in self._inflight():
            if event.triggered:
                continue
            # Observe the event first: a read that fails *after* being
            # cancelled (or after its deadline fired) must be swallowed,
            # not surfaced as an unobserved process failure.
            event.callbacks.append(_discard)
            if isinstance(event, Process) and event.is_alive:
                event.interrupt("reader closed")
            self.ctx.results.setdefault("cancelled_reads", []).append(
                (self.ctx.name, self.ctx.local, cpi)
            )
        self._orphans.clear()

    def close(self) -> None:
        """Drain in-flight reads, then close every data-file handle."""
        self._drain()
        for h in self.handles:
            h.close()


class SyncReader(SlabReader):
    """One blocking striped read per CPI (synchronous file systems)."""

    def read(self, cpi: int):
        if self.ctx.cfg.read_deadline is not None:
            raw = yield from self._read_with_deadline(cpi)
            return raw
        self.ctx.fileset.ensure_cpi(cpi)
        raw = yield from self.fs.read(
            self._handle(cpi), self.read_offset, self.read_nbytes
        )
        return self._extract(raw)

    def _read_with_deadline(self, cpi: int):
        """Race the slab read against the per-CPI deadline."""
        ctx = self.ctx
        kernel = ctx.kernel
        t0 = ctx.now
        ctx.fileset.ensure_cpi(cpi)
        event = kernel.process(
            self.fs.read(self._handle(cpi), self.read_offset, self.read_nbytes),
            name=f"deadline-read:{ctx.name}[{ctx.local}]@{cpi}",
        )
        try:
            fired, value = yield kernel.any_of(
                [event, kernel.timeout(ctx.cfg.read_deadline)]
            )
        except IOFaultError:
            # Retries exhausted before the deadline: same degradation.
            return self._drop(cpi, t0)
        if fired is event:
            return self._extract(value)
        self._orphans.append((cpi, event))
        return self._drop(cpi, t0)


class AsyncPrefetchReader(SlabReader):
    """A depth-``prefetch_depth`` pipeline of posted ``iread`` requests.

    Depth 1 is the paper's Paragon overlap: while CPI *k* computes, the
    read of CPI *k+1* is already in flight.  Greater depths keep more
    CPIs posted, hiding longer read latencies at the cost of buffering.
    """

    def __init__(self, ctx, rlo: int, rhi: int, prefetch_depth: int = 1) -> None:
        super().__init__(ctx, rlo, rhi)
        if prefetch_depth < 1:
            raise ConfigurationError(
                f"prefetch_depth must be >= 1, got {prefetch_depth}"
            )
        self.prefetch_depth = prefetch_depth
        self._pending: "deque[Tuple[int, Request]]" = deque()
        self._next_cpi: Optional[int] = None

    def prefetch(self, cpi: int) -> None:
        """Top up the posted-read window, starting no earlier than ``cpi``."""
        nxt = cpi if self._next_cpi is None else max(cpi, self._next_cpi)
        n_cpis = self.ctx.cfg.n_cpis
        while len(self._pending) < self.prefetch_depth and nxt < n_cpis:
            self.ctx.fileset.ensure_cpi(nxt)
            self._pending.append(
                (nxt, self.fs.iread(self._handle(nxt), self.read_offset, self.read_nbytes))
            )
            nxt += 1
        self._next_cpi = nxt

    def read(self, cpi: int):
        if self.ctx.cfg.read_deadline is not None:
            raw = yield from self._read_with_deadline(cpi)
            return raw
        if not self._pending:
            self.prefetch(cpi)
        _, req = self._pending.popleft()
        raw = yield from req.wait()
        return self._extract(raw)

    def _read_with_deadline(self, cpi: int):
        """Race the posted read against the per-CPI deadline."""
        ctx = self.ctx
        kernel = ctx.kernel
        t0 = ctx.now
        if not self._pending:
            self.prefetch(cpi)
        _, req = self._pending.popleft()
        event = req._event
        try:
            fired, value = yield kernel.any_of(
                [event, kernel.timeout(ctx.cfg.read_deadline)]
            )
        except IOFaultError:
            # Retries exhausted before the deadline: same degradation.
            return self._drop(cpi, t0)
        if fired is event:
            return self._extract(value)
        self._orphans.append((cpi, event))
        return self._drop(cpi, t0)

    def _inflight(self) -> List[Tuple[int, Event]]:
        return list(self._orphans) + [(c, r._event) for c, r in self._pending]

    def _drain(self) -> None:
        super()._drain()
        self._pending.clear()


class _SievingMixin:
    """Widen the issued extent to whole stripe units; trim on completion.

    Data sieving (Thakur et al., *Optimizing Noncontiguous Accesses in
    MPI-IO*): issue one large conforming request covering the wanted
    extent plus a "hole" of unwanted bytes, then discard the hole in
    memory.  In this reproduction's range-major layout a node's slab is
    already contiguous, so the hole is the stripe-unit alignment pad —
    the request becomes whole-unit-conforming at the cost of moving (and
    paying disk time for) the pad bytes.  See ``docs/io_strategies.md``
    for why the classic request-count reduction needs noncontiguity.
    """

    def _init_sieve(self) -> None:
        # The ``sieve_buffer_size`` hint replaces the stripe unit as the
        # alignment granularity: smaller buffers cap the pad below one
        # unit, larger buffers widen the request to bigger conforming
        # blocks (more pad, better seek amortisation).  Unset keeps the
        # classic whole-stripe-unit widening bit-identically.
        unit = self.fs.hints.get("sieve_buffer_size") or self.fs.layout.stripe_unit
        end = self.offset + self.nbytes
        lo = (self.offset // unit) * unit
        hi = min(-(-end // unit) * unit, self.ctx.params.cube_nbytes)
        self.read_offset, self.read_nbytes = lo, hi - lo

    def _extract(self, raw):
        if isinstance(raw, (bytes, bytearray, memoryview)):
            skip = self.offset - self.read_offset
            return bytes(raw[skip : skip + self.nbytes])
        return raw  # Phantom (timing mode) needs no trim


class SievingSyncReader(_SievingMixin, SyncReader):
    """Data sieving over blocking reads."""

    def __init__(self, ctx, rlo: int, rhi: int) -> None:
        super().__init__(ctx, rlo, rhi)
        self._init_sieve()


class SievingAsyncReader(_SievingMixin, AsyncPrefetchReader):
    """Data sieving over posted asynchronous reads."""

    def __init__(self, ctx, rlo: int, rhi: int, prefetch_depth: int = 1) -> None:
        super().__init__(ctx, rlo, rhi, prefetch_depth)
        self._init_sieve()


class ListIOReader(SlabReader):
    """List I/O: one batched multi-file request per directory per window.

    The round-robin fileset holds ``n_files`` distinct files, so a whole
    window of ``n_files`` consecutive CPIs touches ``n_files`` different
    slabs that can all ship to the file system in **one** access list
    (:meth:`~repro.pfs.base.ParallelFileSystem.read_list`): each stripe
    directory services the window as a single seek-amortised request
    instead of one request per CPI.  This is the Thakur et al. "list
    I/O" optimisation mapped onto this reproduction's layout — the
    noncontiguity lives *across files*, not within a slab.

    The next window is posted only once the previous window's payloads
    have been extracted: the radar overwrites the round-robin files
    (``ensure_cpi``), so a still-in-flight read of file *f* must not
    overlap re-population of file *f* with a newer CPI.
    """

    def __init__(self, ctx, rlo: int, rhi: int) -> None:
        super().__init__(ctx, rlo, rhi)
        self.window = ctx.fileset.n_files
        self._req: Optional[Tuple[int, Request]] = None
        self._results: Optional[Tuple[int, list]] = None

    def _post_window(self, base: int) -> None:
        hi = min(base + self.window, self.ctx.cfg.n_cpis)
        accesses = []
        for cpi in range(base, hi):
            self.ctx.fileset.ensure_cpi(cpi)
            accesses.append((self._handle(cpi), self.read_offset, self.read_nbytes))
        self._req = (base, self.fs.iread_list(accesses))

    def prefetch(self, cpi: int) -> None:
        """Post the access list for ``cpi``'s window, if safe to do so."""
        if cpi >= self.ctx.cfg.n_cpis or self._req is not None:
            return
        base = (cpi // self.window) * self.window
        if self._results is not None and self._results[0] == base:
            return  # window already extracted; nothing left to post
        self._post_window(base)

    def read(self, cpi: int):
        base = (cpi // self.window) * self.window
        if self._results is None or self._results[0] != base:
            if self._req is None:
                self._post_window(base)
            posted_base, req = self._req
            payloads = yield from req.wait()
            self._req = None
            self._results = (posted_base, payloads)
        return self._extract(self._results[1][cpi - base])

    def _inflight(self) -> List[Tuple[int, Event]]:
        extra = []
        if self._req is not None:
            base, req = self._req
            extra.append((base, req._event))
        return list(self._orphans) + extra

    def _drain(self) -> None:
        super()._drain()
        self._req = None


def declare_access_pattern(ctx) -> None:
    """Declare the reading task's collective access pattern (ViPIOS-style).

    Every reading node declares the *union* of all participants' slab
    extents for each round-robin file — the collective pattern, like an
    MPI-IO file view — so the declaration is identical from every node
    and :meth:`~repro.pfs.base.ParallelFileSystem.declare_access` is
    idempotent regardless of setup order.  The servers then place the
    pattern's stripe units in contiguous blocks over the directories,
    landing each node's slab on the minimal directory set.
    """
    plan = ctx.plan
    part = plan.ranges_read if ctx.name == "read" else plan.ranges_doppler
    bounds = [part.bounds(i) for i in range(part.parts) if part.size(i) > 0]
    lo = min(b[0] for b in bounds)
    hi = max(b[1] for b in bounds)
    off, nb = ctx.fileset.slab_extent(lo, hi)
    fs = ctx.fileset.fs
    for f in range(ctx.fileset.n_files):
        fs.declare_access(f"{ctx.fileset.prefix}{f}.dat", [(off, nb)])


class TwoPhaseReader(SlabReader):
    """Collective two-phase I/O across the reading task's nodes.

    Phase one: the *m* participating nodes read disjoint stripe-aligned
    contiguous chunks of the CPI file (participant *j* takes the *j*-th
    of *m* near-equal runs of whole stripe units).  Phase two: every
    node forwards each chunk piece to the node whose range slab contains
    it and assembles its own slab from the pieces it receives — fewer,
    larger, conforming disk requests traded against extra mesh traffic.

    The exchange is deadlock-free because ``isend`` is buffered (the
    request completes on delivery, never blocking the sender), so every
    node can post all its sends before receiving.  A read deadline is
    rejected at validation time: dropping one node's chunk would
    desynchronise everyone else's exchange.
    """

    def __init__(self, ctx, rlo: int, rhi: int) -> None:
        super().__init__(ctx, rlo, rhi)
        plan = ctx.plan
        part = plan.ranges_read if ctx.name == "read" else plan.ranges_doppler
        self.peer_ranks = ctx.ranks(ctx.name)
        self.participants = [i for i in range(part.parts) if part.size(i) > 0]
        #: local -> [slab_lo, slab_hi) byte extent in any CPI file.
        self._slabs = {}
        for local in self.participants:
            off, nb = ctx.fileset.slab_extent(*part.bounds(local))
            self._slabs[local] = (off, off + nb)
        # Stripe-aligned contiguous chunks: near-equal runs of whole
        # units over the phase-one aggregators.  The ``cb_nodes`` hint
        # (ROMIO's collective-buffering node count) caps how many
        # participants aggregate; the rest read nothing in phase one and
        # only receive their slab in the exchange.  Unset means every
        # participant aggregates — the classic behaviour, bit-identically.
        unit = self.fs.layout.stripe_unit
        cube = ctx.params.cube_nbytes
        units_total = -(-cube // unit)
        m = len(self.participants)
        cb = self.fs.hints.get("cb_nodes")
        n_agg = min(cb, m) if cb else m
        self._chunks = {}
        for j, local in enumerate(self.participants):
            if j < n_agg:
                lo = ((j * units_total) // n_agg) * unit
                hi = min((((j + 1) * units_total) // n_agg) * unit, cube)
            else:
                lo = hi = 0
            self._chunks[local] = (lo, max(hi, lo))
        self.chunk_off, self.chunk_end = self._chunks[ctx.local]
        self.use_async = self.fs.supports_async
        self._pending: "deque[Tuple[int, Request]]" = deque()
        self._next_cpi: Optional[int] = None

    def prefetch(self, cpi: int) -> None:
        """Post the next chunk read (async file systems only)."""
        if not self.use_async or self.chunk_end <= self.chunk_off:
            return
        nxt = cpi if self._next_cpi is None else max(cpi, self._next_cpi)
        if self._pending or nxt >= self.ctx.cfg.n_cpis:
            return
        self.ctx.fileset.ensure_cpi(nxt)
        self._pending.append(
            (nxt, self.fs.iread(self._handle(nxt), self.chunk_off, self.chunk_end - self.chunk_off))
        )
        self._next_cpi = nxt + 1

    def read(self, cpi: int):
        ctx = self.ctx
        compute = ctx.cfg.compute
        # Phase one: read my stripe-aligned chunk.
        chunk = None
        if self.chunk_end > self.chunk_off:
            if self.use_async:
                if not self._pending:
                    self.prefetch(cpi)
                _, req = self._pending.popleft()
                chunk = yield from req.wait()
            else:
                ctx.fileset.ensure_cpi(cpi)
                chunk = yield from self.fs.read(
                    self._handle(cpi), self.chunk_off, self.chunk_end - self.chunk_off
                )
        # Phase two: post every outgoing piece, then assemble my slab.
        tag = EXCHANGE_TAG_BASE + cpi
        reqs: List[Request] = []
        for local in self.participants:
            if local == ctx.local:
                continue
            s_lo, s_hi = self._slabs[local]
            lo, hi = max(s_lo, self.chunk_off), min(s_hi, self.chunk_end)
            if hi <= lo:
                continue
            piece = (
                chunk[lo - self.chunk_off : hi - self.chunk_off]
                if compute
                else None
            )
            reqs.append(
                ctx.rc.isend(
                    ctx.payload(piece, hi - lo, kind="two-phase"),
                    self.peer_ranks[local],
                    tag,
                )
            )
        buf = bytearray(self.nbytes) if compute else None
        my_end = self.offset + self.nbytes
        for local in self.participants:
            c_lo, c_hi = self._chunks[local]
            lo, hi = max(self.offset, c_lo), min(my_end, c_hi)
            if hi <= lo:
                continue
            if local == ctx.local:
                piece = (
                    chunk[lo - self.chunk_off : hi - self.chunk_off]
                    if compute
                    else None
                )
            else:
                piece = yield from ctx.rc.recv(self.peer_ranks[local], tag)
            if buf is not None:
                buf[lo - self.offset : hi - self.offset] = piece
        if reqs:
            yield from Request.wait_all(ctx.kernel, reqs)
        if compute:
            return bytes(buf)
        return Phantom(self.nbytes)

    def _inflight(self) -> List[Tuple[int, Event]]:
        return list(self._orphans) + [(c, r._event) for c, r in self._pending]

    def _drain(self) -> None:
        super()._drain()
        self._pending.clear()
