"""First-class I/O strategies: registry, readers, and built-ins.

See ``docs/io_strategies.md`` for the strategy catalogue and how to
write a custom strategy.
"""

from repro.strategies.base import (
    IOStrategy,
    get_strategy,
    register,
    strategy_for_spec,
    strategy_names,
)
from repro.strategies.readers import (
    DROPPED,
    AsyncPrefetchReader,
    ListIOReader,
    SievingAsyncReader,
    SievingSyncReader,
    SlabReader,
    SyncReader,
    TwoPhaseReader,
    declare_access_pattern,
    open_round_robin,
)

# Importing the built-ins populates the registry.
from repro.strategies import builtin as _builtin  # noqa: E402,F401
from repro.strategies.builtin import make_adaptive_reader

__all__ = [
    "IOStrategy",
    "register",
    "get_strategy",
    "strategy_names",
    "strategy_for_spec",
    "DROPPED",
    "SlabReader",
    "SyncReader",
    "AsyncPrefetchReader",
    "SievingSyncReader",
    "SievingAsyncReader",
    "ListIOReader",
    "TwoPhaseReader",
    "open_round_robin",
    "declare_access_pattern",
    "make_adaptive_reader",
]
