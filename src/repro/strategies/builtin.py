"""The registered I/O strategies.

The first four are the paper's own structures, migrated onto the
registry bit-identically (their ``build_spec`` calls the same builders
in :mod:`repro.core.pipeline`, and their readers reproduce the old
``_SlabReader`` behaviour exactly).  The rest use the strategy seam for
access methods the paper's MPI-IO lineage established later: deeper
prefetch pipelines, data sieving, and collective two-phase I/O.
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.pipeline import (
    build_embedded_pipeline,
    build_separate_io_pipeline,
    combine_pulse_cfar,
)
from repro.strategies.base import IOStrategy, register
from repro.strategies.readers import (
    AsyncPrefetchReader,
    ListIOReader,
    SievingAsyncReader,
    SievingSyncReader,
    SyncReader,
    TwoPhaseReader,
    declare_access_pattern,
)


def make_adaptive_reader(ctx, rlo: int, rhi: int, prefetch_depth: int = 1):
    """The classic access method: async 1-deep prefetch when the file
    system provides it (PFS), blocking reads otherwise (PIOFS)."""
    if ctx.fileset.fs.supports_async:
        return AsyncPrefetchReader(ctx, rlo, rhi, prefetch_depth)
    return SyncReader(ctx, rlo, rhi)


@register
class EmbeddedIO(IOStrategy):
    """Figure 3: I/O embedded in the Doppler task; independent slab reads."""

    name = "embedded-io"

    def build_spec(self, assignment):
        return build_embedded_pipeline(assignment)

    def make_reader(self, ctx, rlo, rhi):
        return make_adaptive_reader(ctx, rlo, rhi)


@register
class SeparateIO(IOStrategy):
    """Figure 4: a dedicated parallel-read task; independent slab reads."""

    name = "separate-io"

    def build_spec(self, assignment):
        return build_separate_io_pipeline(assignment)

    def make_reader(self, ctx, rlo, rhi):
        return make_adaptive_reader(ctx, rlo, rhi)


@register
class EmbeddedIOCombined(IOStrategy):
    """Embedded I/O with pulse compression + CFAR combined (paper §6)."""

    name = "embedded-io+combined"

    def build_spec(self, assignment):
        return combine_pulse_cfar(build_embedded_pipeline(assignment))

    def make_reader(self, ctx, rlo, rhi):
        return make_adaptive_reader(ctx, rlo, rhi)


@register
class SeparateIOCombined(IOStrategy):
    """Separate I/O with pulse compression + CFAR combined (paper §6)."""

    name = "separate-io+combined"

    def build_spec(self, assignment):
        return combine_pulse_cfar(build_separate_io_pipeline(assignment))

    def make_reader(self, ctx, rlo, rhi):
        return make_adaptive_reader(ctx, rlo, rhi)


@register
class EmbeddedPrefetch2(IOStrategy):
    """Embedded I/O with a 2-deep asynchronous prefetch pipeline."""

    name = "embedded-prefetch2"
    requires_async = True

    def build_spec(self, assignment):
        return replace(build_embedded_pipeline(assignment), name=self.name)

    def make_reader(self, ctx, rlo, rhi):
        return AsyncPrefetchReader(ctx, rlo, rhi, prefetch_depth=2)


@register
class CollectiveTwoPhase(IOStrategy):
    """Two-phase collective reads: aligned chunks, then a mesh exchange."""

    name = "collective-two-phase"
    #: A dropped chunk would desynchronise every peer's exchange.
    supports_read_deadline = False

    def build_spec(self, assignment):
        return replace(build_embedded_pipeline(assignment), name=self.name)

    def make_reader(self, ctx, rlo, rhi):
        return TwoPhaseReader(ctx, rlo, rhi)


@register
class DataSieving(IOStrategy):
    """Data sieving: one whole-stripe-unit read per CPI, pad discarded."""

    name = "data-sieving"

    def build_spec(self, assignment):
        return replace(build_embedded_pipeline(assignment), name=self.name)

    def make_reader(self, ctx, rlo, rhi):
        if ctx.fileset.fs.supports_async:
            return SievingAsyncReader(ctx, rlo, rhi)
        return SievingSyncReader(ctx, rlo, rhi)


@register
class ListIO(IOStrategy):
    """List I/O: a whole file window batched into one request per directory."""

    name = "list-io"
    requires_list_io = True
    #: A window's CPIs complete as one request; dropping one is undefined.
    supports_read_deadline = False

    def build_spec(self, assignment):
        return replace(build_embedded_pipeline(assignment), name=self.name)

    def make_reader(self, ctx, rlo, rhi):
        return ListIOReader(ctx, rlo, rhi)


@register
class ServerDirected(IOStrategy):
    """Server-directed placement: declared pattern reorganises the stripes."""

    name = "server-directed"

    def build_spec(self, assignment):
        return replace(build_embedded_pipeline(assignment), name=self.name)

    def make_reader(self, ctx, rlo, rhi):
        declare_access_pattern(ctx)
        return make_adaptive_reader(ctx, rlo, rhi)
