"""The I/O strategy abstraction and its registry.

The paper's whole contribution is *comparing I/O strategies* — embedded
vs. separate read tasks, synchronous vs. asynchronous file systems, task
combination — yet historically a "strategy" in this package was smeared
across pipeline builders, an ``embedded`` flag, and ``supports_async``
sniffing inside the reader.  An :class:`IOStrategy` gathers everything
one strategy owns behind a single seam:

* **spec construction** — :meth:`IOStrategy.build_spec` maps a
  :class:`~repro.core.pipeline.NodeAssignment` to the strategy's
  :class:`~repro.core.pipeline.PipelineSpec` (the spec's ``name`` is the
  strategy's registry name, which is how an executor finds its way back
  to the strategy);
* **reader construction** — :meth:`IOStrategy.make_reader` builds the
  per-node slab reader (the access method: independent sync/async reads,
  data sieving, collective two-phase, ...);
* **capability requirements** — :meth:`IOStrategy.validate` rejects a
  file system or execution config the strategy cannot run on *at build
  time* (e.g. async prefetch on PIOFS), instead of failing with an
  :class:`~repro.errors.AsyncUnsupportedError` mid-simulation;
* **a stable label** — :meth:`IOStrategy.label` for benches and the CLI.

Strategies register by name::

    @register
    class MyStrategy(IOStrategy):
        name = "my-strategy"
        ...

and are looked up with :func:`get_strategy` / enumerated with
:func:`strategy_names`.  :func:`strategy_for_spec` resolves a pipeline
spec's name back to its strategy (``None`` for hand-built specs, which
keep the legacy adaptive reader behaviour).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Type

from repro.errors import ConfigurationError, PipelineError

__all__ = [
    "IOStrategy",
    "register",
    "get_strategy",
    "strategy_names",
    "strategy_for_spec",
]


class IOStrategy:
    """One way of feeding CPI data cubes into the pipeline."""

    #: Registry name; also the ``PipelineSpec.name`` of built specs.
    name: str = ""
    #: Requires an async-capable file system (PFS yes, PIOFS no).
    requires_async: bool = False
    #: Requires a file system with a list-I/O call (``read_list``).
    requires_list_io: bool = False
    #: Whether the reader honours ``ExecutionConfig.read_deadline``.
    supports_read_deadline: bool = True

    def label(self) -> str:
        """Stable human-readable label for benches, tables, and the CLI."""
        return self.name

    def describe(self) -> str:
        """One-line summary (first docstring line by default)."""
        doc = (self.__class__.__doc__ or "").strip()
        return doc.splitlines()[0] if doc else self.label()

    # -- the strategy surface ----------------------------------------------
    def build_spec(self, assignment):
        """Build this strategy's :class:`PipelineSpec` for ``assignment``."""
        raise NotImplementedError

    def make_reader(self, ctx, rlo: int, rhi: int):
        """Build the slab reader for one reading node's range block."""
        raise NotImplementedError

    def validate(
        self,
        supports_async: bool,
        cfg,
        supports_list_io: Optional[bool] = None,
    ) -> None:
        """Reject incompatible file systems / configs at build time.

        Raises :class:`~repro.errors.PipelineError` with an actionable
        message; called by the executor before any process is spawned.
        ``supports_list_io=None`` (legacy two-argument callers) skips the
        list-I/O capability check.
        """
        if self.requires_async and not supports_async:
            raise PipelineError(
                f"I/O strategy {self.name!r} requires asynchronous reads, "
                "which this file system does not provide (the paper's PIOFS "
                "case) — use an async-capable FS (kind='pfs') or a strategy "
                "without async requirements"
            )
        if self.requires_list_io and supports_list_io is False:
            raise PipelineError(
                f"I/O strategy {self.name!r} requires a list-I/O call "
                "(read_list), which this file system does not provide "
                "(the PIOFS case) — use kind='pfs' or a strategy that "
                "issues one request per piece"
            )
        if cfg.read_deadline is not None and not self.supports_read_deadline:
            raise PipelineError(
                f"I/O strategy {self.name!r} does not support read_deadline: "
                "dropping a CPI would desynchronise its collective exchange — "
                "unset the deadline or pick an independent-read strategy"
            )


_REGISTRY: Dict[str, IOStrategy] = {}


def register(cls: Type[IOStrategy]) -> Type[IOStrategy]:
    """Class decorator: instantiate and register a strategy by its name."""
    if not cls.name:
        raise ConfigurationError(f"strategy {cls.__name__} has no name")
    if cls.name in _REGISTRY:
        raise ConfigurationError(f"duplicate strategy name {cls.name!r}")
    _REGISTRY[cls.name] = cls()
    return cls


def get_strategy(name: str) -> IOStrategy:
    """The registered strategy called ``name``."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown I/O strategy {name!r}; choose from {strategy_names()}"
        ) from None


def strategy_names() -> List[str]:
    """Registered strategy names, sorted."""
    return sorted(_REGISTRY)


def strategy_for_spec(spec_name: str) -> Optional[IOStrategy]:
    """Resolve a pipeline spec's name to its strategy, if it has one.

    Hand-built specs with non-registry names return ``None``: the
    executor then falls back to the legacy adaptive reader, so existing
    custom pipelines keep their exact behaviour.
    """
    return _REGISTRY.get(spec_name)
