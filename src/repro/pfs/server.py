"""I/O server: one stripe directory's disk on an I/O node.

Each stripe directory is hosted by an I/O node of the machine (several
directories may share one node if the machine has fewer I/O nodes than
the file system has directories).  A server owns a capacity-1 FIFO disk
resource; client requests queue on it — this queue is where the paper's
I/O bottleneck physically forms when many compute nodes read through few
stripe directories.

After disk service the data is shipped over the interconnect from the
I/O node to the requesting compute node, so drain traffic also contends
on the network like it did on the real machines.
"""

from __future__ import annotations

from repro.machine.machine import Machine
from repro.pfs.blockdev import DiskSpec
from repro.sim.resources import Resource

__all__ = ["IOServer"]


class IOServer:
    """A stripe directory's service point."""

    def __init__(self, machine: Machine, node_id: int, disk: DiskSpec, name: str = "") -> None:
        self.machine = machine
        self.kernel = machine.kernel
        self.node_id = node_id
        self.disk = disk
        self.name = name or f"ioserver@{node_id}"
        self._disk_res = Resource(self.kernel, capacity=1, name=f"{self.name}.disk")
        # Counters for reports/tests.
        self.requests_served = 0
        self.bytes_served = 0
        self.busy_time = 0.0

    @property
    def queue_length(self) -> int:
        """Requests currently waiting for the disk."""
        return self._disk_res.queue_length

    def service(self, nbytes: int, n_units: int, dest_node: int, ship: bool = True):
        """Process generator: queue on the disk, read, ship to ``dest_node``.

        Parameters
        ----------
        nbytes:
            Bytes of this (coalesced) request.
        n_units:
            Stripe units the request touches (extra seek cost).
        dest_node:
            Machine node id of the requesting client.
        ship:
            If False, skip the network shipping leg (used for writes,
            where the payload travelled client -> server beforehand).
        """
        t_service = self.disk.service_time(nbytes, n_units)
        yield self._disk_res.request()
        try:
            start = self.kernel.now
            yield self.kernel.timeout(t_service)
            self.busy_time += self.kernel.now - start
        finally:
            self._disk_res.release()
        if ship and dest_node != self.node_id:
            yield from self.machine.network.transfer(self.node_id, dest_node, nbytes)
        self.requests_served += 1
        self.bytes_served += nbytes
