"""I/O server: one stripe directory's disk on an I/O node.

Each stripe directory is hosted by an I/O node of the machine (several
directories may share one node if the machine has fewer I/O nodes than
the file system has directories).  A server owns a capacity-1 FIFO disk
resource; client requests queue on it — this queue is where the paper's
I/O bottleneck physically forms when many compute nodes read through few
stripe directories.

After disk service the data is shipped over the interconnect from the
I/O node to the requesting compute node, so drain traffic also contends
on the network like it did on the real machines.

Fault model
-----------
A server is an up/down state machine.  While down it rejects new
requests and drops in-flight ones with :class:`ServerDownError`;
:meth:`schedule_outage` scripts a deterministic crash (optionally
followed by recovery) in simulated time.  Independently,
:meth:`set_flaky` makes the disk fail a deterministic pseudo-random
fraction of requests with :class:`FlakyDiskError` — transient errors a
retrying client can absorb.  Failures are counted in
``requests_failed``; up→down transitions in ``outages``.

Accounting: ``requests_served``/``bytes_served`` are credited at *disk
completion* (the data left the platter), while ``bytes_shipped`` counts
only payloads that finished the network leg to the client — under
faults the two legitimately diverge, and conflating them skews
per-server utilisation reports.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.errors import FlakyDiskError, ServerDownError
from repro.machine.machine import Machine
from repro.pfs.blockdev import DiskSpec
from repro.sim.resources import Resource

__all__ = ["IOServer"]


class IOServer:
    """A stripe directory's service point."""

    def __init__(self, machine: Machine, node_id: int, disk: DiskSpec, name: str = "") -> None:
        self.machine = machine
        self.kernel = machine.kernel
        self.node_id = node_id
        self.disk = disk
        self.name = name or f"ioserver@{node_id}"
        self._disk_res = Resource(self.kernel, capacity=1, name=f"{self.name}.disk")
        # Counters for reports/tests.
        self.requests_served = 0
        self.bytes_served = 0
        self.bytes_shipped = 0
        self.requests_failed = 0
        self.outages = 0
        self.duplicate_ships = 0
        self.duplicate_bytes = 0
        self.busy_time = 0.0
        # Fault state.
        self._up = True
        self._error_rate = 0.0
        self._rng: Optional[random.Random] = None

    @property
    def queue_length(self) -> int:
        """Requests currently waiting for the disk."""
        return self._disk_res.queue_length

    # -- fault state machine ---------------------------------------------------
    @property
    def up(self) -> bool:
        """True while the server accepts and completes requests."""
        return self._up

    def set_down(self) -> None:
        """Take the server down; in-flight requests fail at their next step."""
        if self._up:
            self._up = False
            self.outages += 1

    def set_up(self) -> None:
        """Bring the server back up (recovered outage)."""
        self._up = True

    def schedule_outage(self, at_time: float, down_for: Optional[float] = None) -> None:
        """Script a deterministic outage at simulated ``at_time``.

        ``down_for=None`` means the server never recovers (permanent
        crash); otherwise it comes back after ``down_for`` simulated
        seconds.  ``at_time`` is absolute simulated time: arming an
        outage from a process already past ``at_time`` (e.g. re-armed
        mid-run via the service tier) crashes immediately rather than
        ``at_time`` seconds later.
        """
        def body():
            delay = at_time - self.kernel.now
            if delay > 0:
                yield self.kernel.timeout(delay)
            self.set_down()
            if down_for is not None:
                yield self.kernel.timeout(down_for)
                self.set_up()

        self.kernel.process(body(), name=f"outage:{self.name}")

    def set_flaky(self, error_rate: float, seed: int = 0) -> None:
        """Fail a pseudo-random ``error_rate`` fraction of requests.

        Draws come from a private :class:`random.Random` seeded with
        ``seed``, consumed in disk-service completion order (which the
        capacity-1 FIFO disk makes deterministic), so the same spec
        always fails the same requests.
        """
        self._error_rate = float(error_rate)
        self._rng = random.Random(seed)

    def _check_up(self) -> None:
        if not self._up:
            self.requests_failed += 1
            raise ServerDownError(f"{self.name} is down")

    def record_duplicate(self, nbytes: int) -> None:
        """Count a ship the client had already abandoned (timed-out
        attempt that later succeeded) — see ``docs/fault_model.md``."""
        self.duplicate_ships += 1
        self.duplicate_bytes += nbytes

    # -- service ---------------------------------------------------------------
    def service(self, nbytes: int, n_units: int, dest_node: int, ship: bool = True):
        """Process generator: queue on the disk, read, ship to ``dest_node``.

        Parameters
        ----------
        nbytes:
            Bytes of this (coalesced) request.
        n_units:
            Stripe units the request touches (extra seek cost).
        dest_node:
            Machine node id of the requesting client.
        ship:
            If False, skip the network shipping leg (used for writes,
            where the payload travelled client -> server beforehand).
        """
        self._check_up()
        t_service = self.disk.service_time(nbytes, n_units)
        disk_res = self._disk_res
        kernel = self.kernel
        if disk_res._in_use < disk_res.capacity and not kernel._lane and not kernel._due:
            # Disk idle and kernel quiescent: a yield on the born-fired
            # grant would chain straight back with nothing able to
            # interleave, so acquiring synchronously is order-identical
            # (see MeshNetwork.transfer for the same fast path).
            disk_res._in_use += 1
        else:
            yield disk_res.request()
        try:
            self._check_up()  # went down while we queued
            start = self.kernel.now
            yield self.kernel.timeout(t_service)
            self.busy_time += self.kernel.now - start
            self._check_up()  # went down mid-service: request dropped
            if self._error_rate > 0.0 and self._rng.random() < self._error_rate:
                self.requests_failed += 1
                raise FlakyDiskError(f"{self.name}: transient I/O error")
        finally:
            self._disk_res.release()
        # Disk work is done: credit the request now, whether or not the
        # network leg below survives (satellite fix — counting after the
        # ship leg lost every request interrupted in transit).
        self.requests_served += 1
        self.bytes_served += nbytes
        if ship:
            if dest_node != self.node_id:
                yield from self.machine.network.transfer(self.node_id, dest_node, nbytes)
            self.bytes_shipped += nbytes
