"""Intel Paragon PFS model: striped files with asynchronous reads.

Adds the NX-style asynchronous API on top of
:class:`~repro.pfs.base.ParallelFileSystem`:

* :meth:`PFS.iread` — post an asynchronous read, get a
  :class:`~repro.mpi.request.Request` back immediately;
* :meth:`PFS.iowait` — wait for a posted request (the paper's
  ``ireadoff`` completion call);
* ``iodone``-style polling via ``Request.complete``.

This is the mechanism that lets the embedded-I/O Doppler task overlap
reading CPI *k+1* with computing CPI *k* on the Paragon — the overlap
PIOFS cannot provide.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.mpi.datatypes import Phantom
from repro.mpi.request import Request
from repro.pfs.base import FileHandle, ParallelFileSystem

__all__ = ["PFS"]


class PFS(ParallelFileSystem):
    """Paragon Parallel File System (async-capable)."""

    supports_async = True
    supports_list_io = True

    def iread(self, handle: FileHandle, offset: int, nbytes: int) -> Request:
        """Post an asynchronous read; returns a request immediately.

        The striped read proceeds as a background process; the request's
        value on completion is the assembled content.
        """
        proc = self.kernel.process(
            self.read(handle, offset, nbytes),
            name=f"iread:{handle.path}@{offset}",
        )
        return Request(proc, kind="iread")

    def iread_list(self, accesses) -> Request:
        """Post an asynchronous list-I/O read; returns a request.

        ``accesses`` is a list of ``(handle, offset, nbytes)`` triples —
        see :meth:`~repro.pfs.base.ParallelFileSystem.read_list`.  The
        request's value on completion is the list of per-access contents
        in input order.
        """
        label = accesses[0][0].path if accesses else "<empty>"
        proc = self.kernel.process(
            self.read_list(accesses),
            name=f"iread_list:{label}+{len(accesses)}",
        )
        return Request(proc, kind="iread")

    def iwrite(
        self, handle: FileHandle, offset: int, data: Union[bytes, np.ndarray, Phantom]
    ) -> Request:
        """Post an asynchronous write; returns a request immediately."""
        proc = self.kernel.process(
            self.write(handle, offset, data),
            name=f"iwrite:{handle.path}@{offset}",
        )
        return Request(proc, kind="iwrite")

    @staticmethod
    def iowait(request: Request):
        """Process generator: block until an async request completes.

        Mirrors the paper's ``ireadoff`` completion subroutine; returns
        the read content (or bytes-written for iwrite).
        """
        result = yield from request.wait()
        return result
