"""Simulated parallel file systems.

Two file systems reproduce the paper's platforms:

* :class:`~repro.pfs.pfs.PFS` — Intel Paragon's Parallel File System:
  files striped over ``stripe_factor`` stripe directories in
  ``stripe_unit``-byte units; supports *asynchronous* reads
  (``iread``/``ireadoff``) so I/O overlaps computation, and ``gopen``
  with the ``M_ASYNC`` I/O mode the paper used.
* :class:`~repro.pfs.piofs.PIOFS` — IBM's Parallel I/O File System:
  same striping substrate but **synchronous read/write only** (the
  paper's explanation for the SP's inferior scaling).

Both sit on shared substrates:

* :class:`~repro.pfs.stripe.StripeLayout` — pure striping arithmetic
  (byte range -> per-stripe-directory unit runs);
* :class:`~repro.pfs.blockdev.DiskSpec` — per-request service model;
* :class:`~repro.pfs.server.IOServer` — a stripe directory's disk with a
  FIFO request queue on an I/O node;
* :class:`~repro.pfs.backing.BackingStore` — real bytes (compute mode)
  or size-only phantom files (timing mode).
"""

from repro.pfs.stripe import StripeLayout, UnitRun
from repro.pfs.blockdev import DiskSpec
from repro.pfs.backing import BackingStore
from repro.pfs.server import IOServer
from repro.pfs.base import FileHandle, ParallelFileSystem, OpenMode, RetryPolicy
from repro.pfs.pfs import PFS
from repro.pfs.piofs import PIOFS

__all__ = [
    "StripeLayout",
    "UnitRun",
    "DiskSpec",
    "BackingStore",
    "IOServer",
    "FileHandle",
    "ParallelFileSystem",
    "OpenMode",
    "RetryPolicy",
    "PFS",
    "PIOFS",
]
