"""File content storage behind the simulated file systems.

The simulation layers (striping, disk queues, network shipping) never
look at content — but the STAP numerics do, so compute-mode runs need
real bytes to flow through the file system.  :class:`BackingStore` keeps
each file as a growable ``bytearray``; *phantom* files store only a size
and serve :class:`~repro.mpi.datatypes.Phantom` reads, so 100-node
timing-mode sweeps don't allocate gigabytes.
"""

from __future__ import annotations

from typing import Dict, Union

import numpy as np

from repro.errors import NoSuchFileError
from repro.mpi.datatypes import Phantom

__all__ = ["BackingStore"]


class BackingStore:
    """Path-addressed content store shared by a file system instance."""

    def __init__(self) -> None:
        self._data: Dict[str, bytearray] = {}
        self._phantom_sizes: Dict[str, int] = {}

    # -- lifecycle -----------------------------------------------------
    def create(self, path: str, phantom: bool = False, size: int = 0) -> None:
        """Create an empty file (or a phantom of ``size`` bytes)."""
        if phantom:
            self._phantom_sizes[path] = int(size)
            self._data.pop(path, None)
        else:
            self._data[path] = bytearray(int(size))
            self._phantom_sizes.pop(path, None)

    def exists(self, path: str) -> bool:
        """True if ``path`` holds real or phantom content."""
        return path in self._data or path in self._phantom_sizes

    def is_phantom(self, path: str) -> bool:
        """True if ``path`` is a size-only phantom file."""
        return path in self._phantom_sizes

    def remove(self, path: str) -> None:
        """Delete a file; missing paths raise :class:`NoSuchFileError`."""
        if path in self._data:
            del self._data[path]
        elif path in self._phantom_sizes:
            del self._phantom_sizes[path]
        else:
            raise NoSuchFileError(path)

    def size(self, path: str) -> int:
        """Current length of the file in bytes."""
        if path in self._data:
            return len(self._data[path])
        if path in self._phantom_sizes:
            return self._phantom_sizes[path]
        raise NoSuchFileError(path)

    # -- content I/O -----------------------------------------------------
    def write(self, path: str, offset: int, data: Union[bytes, np.ndarray, Phantom]) -> int:
        """Store ``data`` at ``offset``, growing the file as needed.

        Returns the number of bytes written.  Writing to a phantom file
        (or writing Phantom data) only extends the recorded size.
        """
        if not self.exists(path):
            raise NoSuchFileError(path)
        if isinstance(data, Phantom):
            nbytes = data.nbytes
            if path in self._phantom_sizes:
                self._phantom_sizes[path] = max(self._phantom_sizes[path], offset + nbytes)
            else:  # phantom write into a real file just zero-extends it
                buf = self._data[path]
                if offset + nbytes > len(buf):
                    buf.extend(b"\0" * (offset + nbytes - len(buf)))
            return nbytes
        raw = data.tobytes() if isinstance(data, np.ndarray) else bytes(data)
        if path in self._phantom_sizes:
            self._phantom_sizes[path] = max(self._phantom_sizes[path], offset + len(raw))
            return len(raw)
        buf = self._data[path]
        end = offset + len(raw)
        if end > len(buf):
            buf.extend(b"\0" * (end - len(buf)))
        buf[offset:end] = raw
        return len(raw)

    def read(self, path: str, offset: int, nbytes: int) -> Union[bytes, Phantom]:
        """Fetch ``nbytes`` from ``offset``.

        Phantom files return a :class:`Phantom` of the requested size.
        Reads past end-of-file are short, like POSIX reads.
        """
        if path in self._phantom_sizes:
            avail = max(0, self._phantom_sizes[path] - offset)
            return Phantom(min(nbytes, avail), {"path": path, "offset": offset})
        if path not in self._data:
            raise NoSuchFileError(path)
        buf = self._data[path]
        return bytes(buf[offset : offset + nbytes])
