"""Common machinery of the simulated parallel file systems.

:class:`ParallelFileSystem` implements striped reads/writes over
:class:`~repro.pfs.server.IOServer` queues; concrete subclasses add the
platform API differences (async support, open modes).

Open modes model Intel PFS semantics the paper relies on:

* ``M_UNIX`` — shared file pointer, atomic accesses: every read/write on
  the file acquires a global file token, serialising all nodes' accesses.
* ``M_ASYNC`` — independent pointers, no atomicity: accesses from
  different nodes proceed concurrently.  The paper opens its data files
  with ``gopen(..., M_ASYNC)`` "because it offers better performance and
  causes less system overhead" — the token serialisation is exactly the
  overhead being avoided.
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Union

import numpy as np

from repro.errors import (
    ConfigurationError,
    FileExistsInFSError,
    FileNotOpenError,
    NoSuchFileError,
)
from repro.machine.machine import Machine
from repro.mpi.datatypes import Phantom, nbytes_of
from repro.pfs.backing import BackingStore
from repro.pfs.blockdev import DiskSpec
from repro.pfs.server import IOServer
from repro.pfs.stripe import StripeLayout
from repro.sim.resources import Resource

__all__ = ["OpenMode", "FileHandle", "ParallelFileSystem"]


class OpenMode(enum.Enum):
    """File I/O modes (Intel PFS nomenclature)."""

    M_UNIX = "M_UNIX"
    M_ASYNC = "M_ASYNC"


class FileHandle:
    """A node's handle on an open file."""

    __slots__ = ("fs", "path", "node_id", "mode", "closed")

    def __init__(self, fs: "ParallelFileSystem", path: str, node_id: int, mode: OpenMode) -> None:
        self.fs = fs
        self.path = path
        self.node_id = node_id
        self.mode = mode
        self.closed = False

    def _check_open(self) -> None:
        if self.closed:
            raise FileNotOpenError(f"{self.path} (handle already closed)")

    def close(self) -> None:
        """Release the handle (no simulated time cost)."""
        self.closed = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self.closed else "open"
        return f"<FileHandle {self.path!r} node={self.node_id} {self.mode.value} {state}>"


class ParallelFileSystem:
    """Striped file system over the machine's I/O nodes.

    Parameters
    ----------
    machine:
        Host machine; must have at least one I/O node.  Stripe directory
        ``d`` is hosted on I/O node ``d % machine.n_io`` (directories
        share nodes when there are more directories than I/O nodes).
    stripe_unit:
        Striping granularity in bytes (64 KiB on both of the paper's
        machines).
    stripe_factor:
        Number of stripe directories.
    disk:
        Per-directory disk service model.
    name:
        Label for reports.
    """

    #: Whether this file system supports iread/iwrite (PFS yes, PIOFS no).
    supports_async: bool = False

    def __init__(
        self,
        machine: Machine,
        stripe_unit: int,
        stripe_factor: int,
        disk: DiskSpec,
        name: str = "pfs",
    ) -> None:
        if machine.n_io < 1:
            raise ConfigurationError(
                "parallel file system needs a machine with I/O nodes"
            )
        self.machine = machine
        self.kernel = machine.kernel
        self.layout = StripeLayout(stripe_unit, stripe_factor)
        self.disk = disk
        self.name = name
        self.backing = BackingStore()
        self.servers: List[IOServer] = [
            IOServer(
                machine,
                machine.io_node_id(d % machine.n_io),
                disk,
                name=f"{name}.dir{d}",
            )
            for d in range(stripe_factor)
        ]
        # Per-path shared-file-pointer tokens for M_UNIX handles.
        self._file_tokens: Dict[str, Resource] = {}

    # -- namespace ---------------------------------------------------------
    def create(
        self,
        path: str,
        data: Optional[Union[bytes, np.ndarray]] = None,
        phantom_size: Optional[int] = None,
        exist_ok: bool = False,
    ) -> None:
        """Create a file, optionally pre-populated (no simulated time).

        Use :meth:`write` (through a handle) when the write *cost* should
        appear in the simulation; ``create`` is for initial conditions.
        """
        if self.backing.exists(path) and not exist_ok:
            raise FileExistsInFSError(path)
        if phantom_size is not None:
            self.backing.create(path, phantom=True, size=phantom_size)
        else:
            self.backing.create(path)
            if data is not None:
                self.backing.write(path, 0, data)

    def exists(self, path: str) -> bool:
        """True if the path exists in this file system."""
        return self.backing.exists(path)

    def file_size(self, path: str) -> int:
        """Size of a file in bytes."""
        return self.backing.size(path)

    # -- open/close ----------------------------------------------------------
    def open(self, path: str, node_id: int, mode: OpenMode = OpenMode.M_UNIX) -> FileHandle:
        """Open an existing file from one node."""
        if not self.backing.exists(path):
            raise NoSuchFileError(path)
        if not (0 <= node_id < self.machine.n_total):
            raise ConfigurationError(f"node {node_id} outside machine")
        return FileHandle(self, path, node_id, mode)

    def gopen(self, path: str, node_ids: List[int], mode: OpenMode = OpenMode.M_ASYNC) -> List[FileHandle]:
        """Global open: every listed node gets a handle (paper's gopen)."""
        return [self.open(path, n, mode) for n in node_ids]

    def _token(self, path: str) -> Resource:
        res = self._file_tokens.get(path)
        if res is None:
            res = Resource(self.kernel, capacity=1, name=f"{self.name}.tok:{path}")
            self._file_tokens[path] = res
        return res

    # -- data path -------------------------------------------------------------
    def read(self, handle: FileHandle, offset: int, nbytes: int):
        """Process generator: blocking striped read.

        Fans the byte range out to the touched stripe directories, waits
        for every server to service + ship its run, then returns the
        assembled content (``bytes`` or :class:`Phantom`).
        """
        handle._check_open()
        if nbytes < 0 or offset < 0:
            raise ConfigurationError("offset and nbytes must be >= 0")
        token = self._token(handle.path) if handle.mode is OpenMode.M_UNIX else None
        if token is not None:
            yield token.request()
        try:
            runs = self.layout.map_range(offset, nbytes)
            procs = [
                self.kernel.process(
                    self.servers[run.directory].service(
                        run.nbytes, run.n_units, handle.node_id
                    ),
                    name=f"read:{handle.path}@dir{run.directory}",
                )
                for run in runs
            ]
            if procs:
                yield self.kernel.all_of(procs)
        finally:
            if token is not None:
                token.release()
        return self.backing.read(handle.path, offset, nbytes)

    def write(self, handle: FileHandle, offset: int, data: Union[bytes, np.ndarray, Phantom]):
        """Process generator: blocking striped write.

        The payload is shipped client -> each touched server, queued on
        the disks, and stored.  Returns bytes written.
        """
        handle._check_open()
        total = nbytes_of(data)
        token = self._token(handle.path) if handle.mode is OpenMode.M_UNIX else None
        if token is not None:
            yield token.request()
        try:
            runs = self.layout.map_range(offset, total)
            procs = []
            for run in runs:
                procs.append(
                    self.kernel.process(
                        self._write_one_run(handle, run),
                        name=f"write:{handle.path}@dir{run.directory}",
                    )
                )
            if procs:
                yield self.kernel.all_of(procs)
        finally:
            if token is not None:
                token.release()
        self.backing.write(handle.path, offset, data)
        return total

    def _write_one_run(self, handle: FileHandle, run):
        server = self.servers[run.directory]
        if handle.node_id != server.node_id:
            yield from self.machine.network.transfer(
                handle.node_id, server.node_id, run.nbytes
            )
        yield from server.service(run.nbytes, run.n_units, handle.node_id, ship=False)

    # -- stats -------------------------------------------------------------------
    def total_bytes_served(self) -> int:
        """Bytes served across all stripe directories."""
        return sum(s.bytes_served for s in self.servers)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} {self.name!r} stripe_factor="
            f"{self.layout.stripe_factor} unit={self.layout.stripe_unit}>"
        )
