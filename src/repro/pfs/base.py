"""Common machinery of the simulated parallel file systems.

:class:`ParallelFileSystem` implements striped reads/writes over
:class:`~repro.pfs.server.IOServer` queues; concrete subclasses add the
platform API differences (async support, open modes).

Open modes model Intel PFS semantics the paper relies on:

* ``M_UNIX`` — shared file pointer, atomic accesses: every read/write on
  the file acquires a global file token, serialising all nodes' accesses.
* ``M_ASYNC`` — independent pointers, no atomicity: accesses from
  different nodes proceed concurrently.  The paper opens its data files
  with ``gopen(..., M_ASYNC)`` "because it offers better performance and
  causes less system overhead" — the token serialisation is exactly the
  overhead being avoided.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple, Union

import numpy as np

from repro.errors import (
    ConfigurationError,
    FileExistsInFSError,
    FileNotOpenError,
    IOFaultError,
    IORequestTimeoutError,
    ListIOUnsupportedError,
    NoSuchFileError,
    RetriesExhaustedError,
)
from repro.machine.machine import Machine
from repro.mpi.datatypes import Phantom, nbytes_of
from repro.pfs.backing import BackingStore
from repro.pfs.blockdev import DiskSpec
from repro.pfs.server import IOServer
from repro.pfs.stripe import StripeLayout, UnitRun
from repro.sim.resources import Resource

__all__ = ["OpenMode", "FileHandle", "RetryPolicy", "ParallelFileSystem"]


@dataclass(frozen=True)
class RetryPolicy:
    """Client-side fault handling knobs (all in simulated time).

    After every failed cycle through a request's replica set the client
    sleeps ``min(backoff_base * 2**cycle, backoff_cap)`` seconds before
    retrying, giving the classic capped exponential schedule
    0.05, 0.1, 0.2, 0.4, 0.8, 1.0, 1.0, ... — enough budget for a
    16-attempt client to ride out a transient outage of ~10 simulated
    seconds.  ``request_timeout`` bounds a single service attempt;
    ``None`` waits for the server (queueing on a busy disk is normal,
    not a fault).
    """

    max_attempts: int = 16
    backoff_base: float = 0.05
    backoff_cap: float = 1.0
    request_timeout: Optional[float] = None

    def backoff(self, cycle: int) -> float:
        """Delay after the ``cycle``-th failed pass over the replicas."""
        return min(self.backoff_base * (2 ** cycle), self.backoff_cap)


class OpenMode(enum.Enum):
    """File I/O modes (Intel PFS nomenclature)."""

    M_UNIX = "M_UNIX"
    M_ASYNC = "M_ASYNC"


class FileHandle:
    """A node's handle on an open file."""

    __slots__ = ("fs", "path", "node_id", "mode", "closed")

    def __init__(self, fs: "ParallelFileSystem", path: str, node_id: int, mode: OpenMode) -> None:
        self.fs = fs
        self.path = path
        self.node_id = node_id
        self.mode = mode
        self.closed = False

    def _check_open(self) -> None:
        if self.closed:
            raise FileNotOpenError(f"{self.path} (handle already closed)")

    def close(self) -> None:
        """Release the handle (no simulated time cost); idempotent."""
        if not self.closed:
            self.closed = True
            self.fs._open_handles -= 1

    def __enter__(self) -> "FileHandle":
        self._check_open()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self.closed else "open"
        return f"<FileHandle {self.path!r} node={self.node_id} {self.mode.value} {state}>"


class ParallelFileSystem:
    """Striped file system over the machine's I/O nodes.

    Parameters
    ----------
    machine:
        Host machine; must have at least one I/O node.  Stripe directory
        ``d`` is hosted on I/O node ``d % machine.n_io`` (directories
        share nodes when there are more directories than I/O nodes).
    stripe_unit:
        Striping granularity in bytes (64 KiB on both of the paper's
        machines).
    stripe_factor:
        Number of stripe directories.
    disk:
        Per-directory disk service model.
    name:
        Label for reports.
    replication:
        Copies of each stripe unit (chained declustering over successive
        directories).  ``replication > 1`` enables the fault-tolerant
        client path: reads fail over between replicas, writes mirror to
        every replica.
    retry:
        Client :class:`RetryPolicy`; defaults are used when omitted.
    """

    #: Whether this file system supports iread/iwrite (PFS yes, PIOFS no).
    supports_async: bool = False
    #: Whether this file system supports list I/O — batching a whole
    #: access list into one request per stripe directory (PFS yes,
    #: PIOFS no; see :meth:`read_list`).
    supports_list_io: bool = False

    def __init__(
        self,
        machine: Machine,
        stripe_unit: int,
        stripe_factor: int,
        disk: DiskSpec,
        name: str = "pfs",
        replication: int = 1,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        if machine.n_io < 1:
            raise ConfigurationError(
                "parallel file system needs a machine with I/O nodes"
            )
        self.machine = machine
        self.kernel = machine.kernel
        self.layout = StripeLayout(stripe_unit, stripe_factor, replication)
        self.disk = disk
        self.name = name
        self.backing = BackingStore()
        self.retry_policy = retry if retry is not None else RetryPolicy()
        # The fault-tolerant client path (retry loops, replica failover)
        # is byte-for-byte benign in timing but spawns differently-named
        # processes, so it stays off unless replication or a fault
        # injection asks for it — the legacy path keeps every existing
        # golden result hash intact.
        self._fault_tolerant = replication > 1
        self._open_handles = 0
        #: Client-side fault accounting: retry loop iterations that hit a
        #: fault, and reads ultimately satisfied by a non-primary replica.
        self.client_retries = 0
        self.client_failovers = 0
        self.servers: List[IOServer] = [
            IOServer(
                machine,
                machine.io_node_id(d % machine.n_io),
                disk,
                name=f"{name}.dir{d}",
            )
            for d in range(stripe_factor)
        ]
        # Per-path shared-file-pointer tokens for M_UNIX handles.
        self._file_tokens: Dict[str, Resource] = {}
        #: ROMIO-style hints (``sieve_buffer_size``, ``cb_nodes``,
        #: ``list_io_max_runs``), populated by the executor from
        #: :class:`~repro.core.executor.FSConfig`; readers and the
        #: list-I/O path consult it.  Empty = all defaults.
        self.hints: Dict[str, int] = {}
        # Server-directed placement state: per-path declared access
        # pattern and the unit -> directory remap computed from it.
        self._declared: Dict[str, Tuple[Tuple[int, int], ...]] = {}
        self._placements: Dict[str, Dict[int, int]] = {}
        #: Cumulative bytes requested per path (reads + writes), counted
        #: client-side at call time.  A plain Python tally — no kernel
        #: interaction — used for per-tenant attribution when several
        #: pipelines share one file system (ViPIOS-style awareness of
        #: *whose* accesses the servers are absorbing).
        self.bytes_by_path: Dict[str, int] = {}

    @property
    def fault_tolerant(self) -> bool:
        """True when the retry/failover client path is active."""
        return self._fault_tolerant

    def enable_fault_tolerance(self) -> None:
        """Switch clients to the retry/failover path (used by fault injection)."""
        self._fault_tolerant = True

    # -- namespace ---------------------------------------------------------
    def create(
        self,
        path: str,
        data: Optional[Union[bytes, np.ndarray]] = None,
        phantom_size: Optional[int] = None,
        exist_ok: bool = False,
    ) -> None:
        """Create a file, optionally pre-populated (no simulated time).

        Use :meth:`write` (through a handle) when the write *cost* should
        appear in the simulation; ``create`` is for initial conditions.
        """
        if self.backing.exists(path) and not exist_ok:
            raise FileExistsInFSError(path)
        if phantom_size is not None:
            self.backing.create(path, phantom=True, size=phantom_size)
        else:
            self.backing.create(path)
            if data is not None:
                self.backing.write(path, 0, data)

    def exists(self, path: str) -> bool:
        """True if the path exists in this file system."""
        return self.backing.exists(path)

    def file_size(self, path: str) -> int:
        """Size of a file in bytes."""
        return self.backing.size(path)

    # -- open/close ----------------------------------------------------------
    def open(self, path: str, node_id: int, mode: OpenMode = OpenMode.M_UNIX) -> FileHandle:
        """Open an existing file from one node."""
        if not self.backing.exists(path):
            raise NoSuchFileError(path)
        if not (0 <= node_id < self.machine.n_total):
            raise ConfigurationError(f"node {node_id} outside machine")
        self._open_handles += 1
        return FileHandle(self, path, node_id, mode)

    def close(self, handle: FileHandle) -> None:
        """Close a handle obtained from :meth:`open`; idempotent."""
        handle.close()

    @property
    def open_handle_count(self) -> int:
        """Handles opened on this FS and not yet closed (leak detector)."""
        return self._open_handles

    def gopen(self, path: str, node_ids: List[int], mode: OpenMode = OpenMode.M_ASYNC) -> List[FileHandle]:
        """Global open: every listed node gets a handle (paper's gopen)."""
        return [self.open(path, n, mode) for n in node_ids]

    def _token(self, path: str) -> Resource:
        res = self._file_tokens.get(path)
        if res is None:
            res = Resource(self.kernel, capacity=1, name=f"{self.name}.tok:{path}")
            self._file_tokens[path] = res
        return res

    # -- server-directed placement -------------------------------------------
    def declare_access(
        self, path: str, extents: Iterable[Tuple[int, int]]
    ) -> Dict[int, int]:
        """Declare ``path``'s access pattern; servers reorganise placement.

        ViPIOS-style server-directed mode: the client announces at open
        time which ``(offset, nbytes)`` extents it will access, and the
        servers remap the declared stripe units from round-robin to
        contiguous blocks over the directories (see
        :meth:`~repro.pfs.stripe.StripeLayout.placement_for_extents`).
        All subsequent reads and writes of ``path`` use the remap.

        Declarations are idempotent: re-declaring the same pattern (every
        node of a gopen declares identically) is a no-op, so declaration
        order between nodes never matters.  No simulated time is charged
        — placement is decided before the run's data is written, like the
        real system reorganising at file-creation time.
        """
        if not self.backing.exists(path):
            raise NoSuchFileError(path)
        norm = tuple(sorted((int(o), int(n)) for o, n in extents if n > 0))
        if self._declared.get(path) == norm:
            return self._placements[path]
        placement = self.layout.placement_for_extents(norm)
        self._declared[path] = norm
        self._placements[path] = placement
        return placement

    def declared_placement(self, path: str) -> Optional[Dict[int, int]]:
        """The active unit -> directory remap for ``path``, if declared."""
        return self._placements.get(path)

    def _map(self, path: str, offset: int, nbytes: int):
        """Per-directory runs of a byte range, honouring any placement."""
        return self.layout.map_range(offset, nbytes, self._placements.get(path))

    # -- data path -------------------------------------------------------------
    def read(self, handle: FileHandle, offset: int, nbytes: int):
        """Process generator: blocking striped read.

        Fans the byte range out to the touched stripe directories, waits
        for every server to service + ship its run, then returns the
        assembled content (``bytes`` or :class:`Phantom`).
        """
        handle._check_open()
        if nbytes < 0 or offset < 0:
            raise ConfigurationError("offset and nbytes must be >= 0")
        self.bytes_by_path[handle.path] = (
            self.bytes_by_path.get(handle.path, 0) + nbytes
        )
        token = self._token(handle.path) if handle.mode is OpenMode.M_UNIX else None
        if token is not None:
            yield token.request()
        try:
            runs = self._map(handle.path, offset, nbytes)
            if self._fault_tolerant:
                procs = [
                    self.kernel.process(
                        self._service_with_retry(run, handle),
                        name=f"read:{handle.path}@dir{run.directory}",
                    )
                    for run in runs
                ]
            else:
                procs = [
                    self.kernel.process(
                        self.servers[run.directory].service(
                            run.nbytes, run.n_units, handle.node_id
                        ),
                        name=f"read:{handle.path}@dir{run.directory}",
                    )
                    for run in runs
                ]
            if procs:
                yield self.kernel.all_of(procs)
        finally:
            if token is not None:
                token.release()
        return self.backing.read(handle.path, offset, nbytes)

    def read_list(self, accesses: List[Tuple[FileHandle, int, int]]):
        """Process generator: one batched striped read of a whole access list.

        List I/O (Thakur et al., *Optimizing Noncontiguous Accesses in
        MPI-IO*): the client ships its entire access list — ``(handle,
        offset, nbytes)`` triples, possibly spanning several files — to
        the file system in one call.  All pieces landing on the same
        stripe directory are served as **one** request: one disk-queue
        entry and one seek-amortised service call, instead of one request
        per contiguous piece as :meth:`read` issues per call.

        The ``list_io_max_runs`` hint caps how many contiguous pieces one
        batched request may carry; longer lists are split into ceil-sized
        batches per directory.  Returns the per-access contents in input
        order.  Raises :class:`~repro.errors.ListIOUnsupportedError` on
        file systems without a list-I/O call (PIOFS).
        """
        if not self.supports_list_io:
            raise ListIOUnsupportedError(
                f"{self.name}: no list-I/O call on this file system; "
                "issue one read() per piece instead"
            )
        for handle, offset, nbytes in accesses:
            handle._check_open()
            if nbytes < 0 or offset < 0:
                raise ConfigurationError("offset and nbytes must be >= 0")
            self.bytes_by_path[handle.path] = (
                self.bytes_by_path.get(handle.path, 0) + nbytes
            )
        # Atomic-mode handles still serialise per file; tokens are taken
        # in sorted path order so concurrent lists can never deadlock.
        token_paths = sorted(
            {h.path for h, _, _ in accesses if h.mode is OpenMode.M_UNIX}
        )
        tokens = [self._token(p) for p in token_paths]
        for tok in tokens:
            yield tok.request()
        try:
            per_dir: Dict[int, List[Tuple[UnitRun, FileHandle]]] = {}
            for handle, offset, nbytes in accesses:
                for run in self._map(handle.path, offset, nbytes):
                    per_dir.setdefault(run.directory, []).append((run, handle))
            max_runs = self.hints.get("list_io_max_runs")
            batches: List[Tuple[UnitRun, FileHandle]] = []
            for d in sorted(per_dir):
                pieces = per_dir[d]
                step = max_runs if max_runs else len(pieces)
                for i in range(0, len(pieces), step):
                    group = pieces[i : i + step]
                    batches.append(
                        (
                            UnitRun(
                                directory=d,
                                file_offset=group[0][0].file_offset,
                                nbytes=sum(r.nbytes for r, _ in group),
                                n_units=sum(r.n_units for r, _ in group),
                            ),
                            group[0][1],
                        )
                    )
            if self._fault_tolerant:
                procs = [
                    self.kernel.process(
                        self._service_with_retry(run, handle),
                        name=f"readl:{handle.path}@dir{run.directory}",
                    )
                    for run, handle in batches
                ]
            else:
                procs = [
                    self.kernel.process(
                        self.servers[run.directory].service(
                            run.nbytes, run.n_units, handle.node_id
                        ),
                        name=f"readl:{handle.path}@dir{run.directory}",
                    )
                    for run, handle in batches
                ]
            if procs:
                yield self.kernel.all_of(procs)
        finally:
            for tok in reversed(tokens):
                tok.release()
        return [
            self.backing.read(handle.path, offset, nbytes)
            for handle, offset, nbytes in accesses
        ]

    def write(self, handle: FileHandle, offset: int, data: Union[bytes, np.ndarray, Phantom]):
        """Process generator: blocking striped write.

        The payload is shipped client -> each touched server, queued on
        the disks, and stored.  Returns bytes written.
        """
        handle._check_open()
        total = nbytes_of(data)
        self.bytes_by_path[handle.path] = (
            self.bytes_by_path.get(handle.path, 0) + total
        )
        token = self._token(handle.path) if handle.mode is OpenMode.M_UNIX else None
        if token is not None:
            yield token.request()
        try:
            runs = self._map(handle.path, offset, total)
            procs = []
            for run in runs:
                procs.append(
                    self.kernel.process(
                        self._write_one_run(handle, run),
                        name=f"write:{handle.path}@dir{run.directory}",
                    )
                )
            if procs:
                yield self.kernel.all_of(procs)
        finally:
            if token is not None:
                token.release()
        self.backing.write(handle.path, offset, data)
        return total

    def _write_one_run(self, handle: FileHandle, run):
        if self._fault_tolerant:
            yield from self._write_one_run_ft(handle, run)
            return
        server = self.servers[run.directory]
        if handle.node_id != server.node_id:
            yield from self.machine.network.transfer(
                handle.node_id, server.node_id, run.nbytes
            )
        yield from server.service(run.nbytes, run.n_units, handle.node_id, ship=False)

    # -- fault-tolerant client path -----------------------------------------
    def _attempt_service(self, server: IOServer, run, handle: FileHandle):
        """One read attempt against one server, optionally deadline-bounded."""
        timeout_s = self.retry_policy.request_timeout
        if timeout_s is None:
            yield from server.service(run.nbytes, run.n_units, handle.node_id)
            return
        proc = self.kernel.process(
            server.service(run.nbytes, run.n_units, handle.node_id),
            name=f"attempt:{handle.path}@{server.name}",
        )
        fired, _ = yield self.kernel.any_of([proc, self.kernel.timeout(timeout_s)])
        if fired is not proc:
            # The attempt is abandoned but keeps running; if it fails
            # later its error is swallowed by the already-fired any_of,
            # and if it *succeeds* later the payload still crosses the
            # network to a client that no longer wants it.  Count that
            # late success as a duplicate ship so traffic reports can
            # separate real deliveries from retry double-ships.
            def _count_duplicate(ev, server=server, nbytes=run.nbytes):
                if ev._ok:
                    server.record_duplicate(nbytes)

            proc.callbacks.append(_count_duplicate)
            raise IORequestTimeoutError(
                f"{server.name}: no reply within {timeout_s}s"
            )

    def _service_with_retry(self, run, handle: FileHandle):
        """Read ``run`` with replica failover, capped exponential backoff.

        Replicas are tried primary-first; the client only backs off after
        a full pass over the replica set fails (failover itself is free —
        the data is simply requested from the mirror).
        """
        policy = self.retry_policy
        replicas = self.layout.replica_directories(run.directory)
        last_exc: Optional[IOFaultError] = None
        for attempt in range(policy.max_attempts):
            server = self.servers[replicas[attempt % len(replicas)]]
            try:
                yield from self._attempt_service(server, run, handle)
                if attempt % len(replicas) != 0:
                    self.client_failovers += 1
                return
            except IOFaultError as exc:
                last_exc = exc
                self.client_retries += 1
            cycle, pos = divmod(attempt + 1, len(replicas))
            if pos == 0:  # exhausted every replica this cycle: back off
                yield self.kernel.timeout(policy.backoff(cycle - 1))
        raise RetriesExhaustedError(
            f"read of dir {run.directory} failed after {policy.max_attempts} "
            f"attempts over replicas {replicas}"
        ) from last_exc

    def _write_replica_with_retry(self, handle: FileHandle, run, directory: int):
        """Write one replica copy, retrying transient faults with backoff."""
        policy = self.retry_policy
        server = self.servers[directory]
        last_exc: Optional[IOFaultError] = None
        for attempt in range(policy.max_attempts):
            try:
                if handle.node_id != server.node_id:
                    yield from self.machine.network.transfer(
                        handle.node_id, server.node_id, run.nbytes
                    )
                yield from server.service(
                    run.nbytes, run.n_units, handle.node_id, ship=False
                )
                return
            except IOFaultError as exc:
                last_exc = exc
                self.client_retries += 1
            yield self.kernel.timeout(policy.backoff(attempt))
        raise RetriesExhaustedError(
            f"write to dir {directory} failed after {policy.max_attempts} attempts"
        ) from last_exc

    def _write_one_run_ft(self, handle: FileHandle, run):
        """Mirror a write to every replica; fail only if all replicas fail."""
        replicas = self.layout.replica_directories(run.directory)
        errors: List[IOFaultError] = []
        for directory in replicas:
            try:
                yield from self._write_replica_with_retry(handle, run, directory)
            except IOFaultError as exc:
                errors.append(exc)
        if len(errors) == len(replicas):
            raise RetriesExhaustedError(
                f"write of dir {run.directory}: all {len(replicas)} replicas failed"
            ) from errors[-1]

    # -- stats -------------------------------------------------------------------
    def total_bytes_served(self) -> int:
        """Bytes served across all stripe directories."""
        return sum(s.bytes_served for s in self.servers)

    def bytes_for_prefix(self, prefix: str) -> int:
        """Bytes requested against paths starting with ``prefix``.

        Per-tenant disk-traffic attribution: a scenario names each
        tenant's files with a distinct prefix, so this sum is exactly
        that tenant's share of the client-side request volume.
        """
        return sum(
            n for path, n in self.bytes_by_path.items() if path.startswith(prefix)
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} {self.name!r} stripe_factor="
            f"{self.layout.stripe_factor} unit={self.layout.stripe_unit}>"
        )
