"""IBM PIOFS model: striped files, synchronous API only.

PIOFS "supports existing C read, write, open and close functions.
However, unlike the Paragon NX library, asynchronous parallel read/write
subroutines are not supported" (paper §3).  Requesting ``iread`` here
raises :class:`~repro.errors.AsyncUnsupportedError`; pipeline code
detects ``supports_async`` and falls back to blocking reads, which is
precisely what destroys I/O–compute overlap on the SP.
"""

from __future__ import annotations

from repro.errors import AsyncUnsupportedError
from repro.pfs.base import FileHandle, ParallelFileSystem

__all__ = ["PIOFS"]


class PIOFS(ParallelFileSystem):
    """IBM Parallel I/O File System (synchronous only)."""

    supports_async = False

    def iread(self, handle: FileHandle, offset: int, nbytes: int):
        """PIOFS has no asynchronous read — always raises."""
        raise AsyncUnsupportedError(
            "PIOFS does not provide asynchronous read subroutines; "
            "use the blocking read() instead"
        )

    def iwrite(self, handle: FileHandle, offset: int, data):
        """PIOFS has no asynchronous write — always raises."""
        raise AsyncUnsupportedError(
            "PIOFS does not provide asynchronous write subroutines; "
            "use the blocking write() instead"
        )
