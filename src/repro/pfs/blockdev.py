"""Disk service-time model for a stripe directory's storage device.

The model is deliberately simple and classical: each service request
costs a fixed positioning/software ``overhead`` plus media transfer at
``bandwidth``.  Multi-unit gather requests pay a (smaller) per-extra-unit
seek fraction, reflecting that round-robin units of one file land close
together on a real disk.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["DiskSpec"]


@dataclass(frozen=True)
class DiskSpec:
    """Service model of one stripe directory's disk.

    Attributes
    ----------
    bandwidth:
        Sustained media rate, bytes/s.
    overhead:
        Per-request positioning + software cost, seconds.
    extra_unit_overhead_frac:
        Fraction of ``overhead`` charged per additional stripe unit in a
        coalesced multi-unit request (default 10%).
    """

    bandwidth: float
    overhead: float
    extra_unit_overhead_frac: float = 0.1

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ConfigurationError(f"bandwidth must be > 0, got {self.bandwidth}")
        if self.overhead < 0:
            raise ConfigurationError(f"overhead must be >= 0, got {self.overhead}")
        if not (0.0 <= self.extra_unit_overhead_frac <= 1.0):
            raise ConfigurationError(
                "extra_unit_overhead_frac must be in [0, 1], got "
                f"{self.extra_unit_overhead_frac}"
            )

    def service_time(self, nbytes: int, n_units: int = 1) -> float:
        """Seconds to service a (possibly multi-unit) request."""
        if nbytes < 0:
            raise ConfigurationError(f"nbytes must be >= 0, got {nbytes}")
        if n_units < 1:
            n_units = 1
        seek = self.overhead * (1.0 + self.extra_unit_overhead_frac * (n_units - 1))
        return seek + nbytes / self.bandwidth
