"""Striping arithmetic: mapping byte ranges to stripe directories.

A striped file is laid out round-robin in ``stripe_unit``-byte units over
``stripe_factor`` stripe directories: unit ``u`` lives on directory
``u % stripe_factor``.  :meth:`StripeLayout.map_range` decomposes an
arbitrary byte range into per-directory *runs* of touched units, already
coalesced per directory, which is exactly what an I/O server services as
one request.

This module is pure arithmetic (no simulation state) and is covered by
property-based tests: runs tile the range exactly, never overlap, and
respect unit boundaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import ConfigurationError

__all__ = ["UnitRun", "StripeLayout"]


@dataclass(frozen=True)
class UnitRun:
    """A contiguous piece of a byte range that lives on one directory.

    Attributes
    ----------
    directory:
        Stripe directory index in ``[0, stripe_factor)``.
    file_offset:
        Offset of the run's first byte within the file.
    nbytes:
        Length of the run in bytes.
    n_units:
        Number of distinct stripe units the run touches on this
        directory (each unit is a separate seek in the worst case).
    """

    directory: int
    file_offset: int
    nbytes: int
    n_units: int


class StripeLayout:
    """Round-robin striping of a file over stripe directories.

    With ``replication > 1`` each stripe unit additionally has mirror
    copies placed by chained declustering: replica ``r`` of the data on
    directory ``d`` lives on directory ``(d + r) % stripe_factor``.
    Successive directories mirror each other, so losing any single
    directory leaves every unit readable from its neighbour and the
    failover load spreads round-robin instead of doubling one server.
    """

    def __init__(
        self, stripe_unit: int, stripe_factor: int, replication: int = 1
    ) -> None:
        if stripe_unit < 1:
            raise ConfigurationError(f"stripe_unit must be >= 1, got {stripe_unit}")
        if stripe_factor < 1:
            raise ConfigurationError(
                f"stripe_factor must be >= 1, got {stripe_factor}"
            )
        if not (1 <= replication <= stripe_factor):
            raise ConfigurationError(
                f"replication must be in [1, stripe_factor={stripe_factor}], "
                f"got {replication}"
            )
        self.stripe_unit = int(stripe_unit)
        self.stripe_factor = int(stripe_factor)
        self.replication = int(replication)

    def replica_directories(self, directory: int) -> Tuple[int, ...]:
        """Directories holding a copy of ``directory``'s data, primary first."""
        if not (0 <= directory < self.stripe_factor):
            raise ConfigurationError(
                f"directory must be in [0, {self.stripe_factor}), got {directory}"
            )
        return tuple(
            (directory + r) % self.stripe_factor for r in range(self.replication)
        )

    def unit_of(self, offset: int) -> int:
        """Index of the stripe unit containing byte ``offset``."""
        if offset < 0:
            raise ConfigurationError(f"offset must be >= 0, got {offset}")
        return offset // self.stripe_unit

    def directory_of(self, offset: int) -> int:
        """Stripe directory holding byte ``offset``."""
        return self.unit_of(offset) % self.stripe_factor

    def n_units(self, nbytes: int) -> int:
        """Number of stripe units an ``nbytes``-long file occupies."""
        if nbytes < 0:
            raise ConfigurationError(f"nbytes must be >= 0, got {nbytes}")
        return -(-nbytes // self.stripe_unit)  # ceil division

    def placement_for_extents(
        self, extents: Iterable[Tuple[int, int]]
    ) -> Dict[int, int]:
        """Server-directed placement for a declared access pattern.

        ViPIOS-style reorganisation: the stripe units covered by the
        declared ``(offset, nbytes)`` extents are laid out in *contiguous
        blocks* over the stripe directories — declared unit at cumulative
        position ``cu`` (of ``U`` declared units) moves to directory
        ``cu * stripe_factor // U`` instead of round-robin
        ``u % stripe_factor``.  A client whose slab covers a fraction of
        the declared pattern then touches only the matching fraction of
        the directories (the minimal set) with one long seek-amortised
        run each, instead of every directory with short runs.  Units
        outside the declared pattern keep their round-robin home.
        """
        unit = self.stripe_unit
        units = sorted(
            {
                u
                for off, nb in extents
                if nb > 0
                for u in range(off // unit, (off + nb - 1) // unit + 1)
            }
        )
        total = len(units)
        if total == 0:
            return {}
        sf = self.stripe_factor
        return {u: (cu * sf) // total for cu, u in enumerate(units)}

    def map_range(
        self,
        offset: int,
        nbytes: int,
        placement: Optional[Mapping[int, int]] = None,
    ) -> List[UnitRun]:
        """Decompose ``[offset, offset+nbytes)`` into per-directory runs.

        Each :class:`UnitRun` aggregates *all* bytes of the range on one
        directory (they are round-robin interleaved on disk, but a
        parallel FS services them as one gather request per directory).
        Runs are returned ordered by directory index; directories not
        touched by the range are absent.  ``placement`` optionally remaps
        individual units to different directories (server-directed mode,
        see :meth:`placement_for_extents`); unmapped units stay on their
        round-robin directory.
        """
        if offset < 0 or nbytes < 0:
            raise ConfigurationError("offset and nbytes must be >= 0")
        if nbytes == 0:
            return []
        per_dir: Dict[int, List[int]] = {}  # dir -> [first_offset, nbytes, n_units]
        pos = offset
        end = offset + nbytes
        while pos < end:
            unit = pos // self.stripe_unit
            unit_end = (unit + 1) * self.stripe_unit
            chunk = min(end, unit_end) - pos
            if placement:
                d = placement.get(unit, unit % self.stripe_factor)
            else:
                d = unit % self.stripe_factor
            if d in per_dir:
                acc = per_dir[d]
                acc[1] += chunk
                acc[2] += 1
            else:
                per_dir[d] = [pos, chunk, 1]
            pos += chunk
        return [
            UnitRun(directory=d, file_offset=acc[0], nbytes=acc[1], n_units=acc[2])
            for d, acc in sorted(per_dir.items())
        ]

    def directories_touched(self, offset: int, nbytes: int) -> int:
        """How many stripe directories a range is spread over."""
        return len(self.map_range(offset, nbytes))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        extra = f", replication={self.replication}" if self.replication > 1 else ""
        return (
            f"StripeLayout(stripe_unit={self.stripe_unit}, "
            f"stripe_factor={self.stripe_factor}{extra})"
        )
