"""Simulated radar writer process.

Optional substrate for studying read/write interference: a process on a
dedicated node keeps writing future CPIs into the round-robin files at a
fixed CPI period, while the pipeline reads older ones — the paper's
"radar writes ... at times that are different from the times at which
the [pipeline] reads".  Writes queue on the same stripe-directory disks
as the pipeline's reads, so turning the writer on measurably perturbs
read service times (exercised in the ablation benches).
"""

from __future__ import annotations


from repro.errors import ConfigurationError
from repro.io.fileset import CubeFileSet
from repro.mpi.datatypes import Phantom
from repro.pfs.base import OpenMode

__all__ = ["RadarWriter"]


class RadarWriter:
    """Writes CPI ``k`` into file ``k % n_files`` every ``period`` seconds."""

    def __init__(
        self,
        fileset: CubeFileSet,
        node_id: int,
        period: float,
        n_cpis: int,
        start_cpi: int = 0,
        initial_delay: float = 0.0,
    ) -> None:
        if period <= 0:
            raise ConfigurationError("writer period must be > 0")
        if n_cpis < 0:
            raise ConfigurationError("n_cpis must be >= 0")
        self.fileset = fileset
        self.node_id = node_id
        self.period = period
        self.n_cpis = n_cpis
        self.start_cpi = start_cpi
        self.initial_delay = initial_delay
        self.writes_done = 0

    def run(self, kernel):
        """Process generator: the writer's life."""
        fs = self.fileset.fs
        params = self.fileset.params
        if self.initial_delay > 0:
            yield kernel.timeout(self.initial_delay)
        for k in range(self.start_cpi, self.start_cpi + self.n_cpis):
            path = self.fileset.path(k)
            # Close even when the write dies mid-flight (e.g. an I/O
            # fault after retries) — a leaked handle per CPI otherwise.
            with fs.open(path, self.node_id, mode=OpenMode.M_ASYNC) as handle:
                if self.fileset.phantom:
                    payload = Phantom(params.cube_nbytes, {"cpi": k})
                else:
                    payload = self.fileset.source.cube(k).to_file_bytes()
                yield from fs.write(handle, 0, payload)
            self.writes_done += 1
            yield kernel.timeout(self.period)
