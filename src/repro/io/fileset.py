"""The round-robin CPI data files.

A :class:`CubeFileSet` owns ``n_files`` (default 4, the paper's count)
files in a parallel file system; CPI ``k`` lives in file ``k % n_files``
and always occupies the whole file (one CPI per file at a time — the
radar overwrites the oldest file).  Readers never need metadata: the
cube shape is fixed, so each reader node's ``(path, offset, length)``
for its range slab is computed once at initialisation, as in §4.

Content:

* **timing mode** — files are phantoms of ``cube_nbytes``; reads cost
  real simulated time but return :class:`~repro.mpi.datatypes.Phantom`;
* **compute mode** — a :class:`CubeSource` synthesises (and caches) the
  cube for any CPI; :meth:`CubeFileSet.ensure_cpi` deposits its bytes in
  the backing store before the pipeline's read is posted, standing in
  for the radar having written it earlier.  (Use
  :class:`~repro.io.writer.RadarWriter` to simulate the writes with real
  timing and FS contention instead.)
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional

from repro.errors import ConfigurationError
from repro.pfs.base import ParallelFileSystem
from repro.stap.datacube import DataCube
from repro.stap.params import STAPParams
from repro.stap.scenario import Scenario, make_cube

__all__ = ["CubeSource", "CubeFileSet"]


class CubeSource:
    """Deterministic, cached supplier of scenario cubes by CPI index."""

    def __init__(self, params: STAPParams, scenario: Scenario, cache_size: int = 8) -> None:
        if cache_size < 1:
            raise ConfigurationError("cache_size must be >= 1")
        self.params = params
        self.scenario = scenario
        self._cache: "OrderedDict[int, DataCube]" = OrderedDict()
        self._cache_size = cache_size

    def cube(self, cpi: int) -> DataCube:
        """The cube for CPI ``cpi`` (LRU-cached)."""
        if cpi in self._cache:
            self._cache.move_to_end(cpi)
            return self._cache[cpi]
        cube = make_cube(self.params, self.scenario, cpi)
        self._cache[cpi] = cube
        while len(self._cache) > self._cache_size:
            self._cache.popitem(last=False)
        return cube


class CubeFileSet:
    """The paper's four round-robin CPI files in a parallel FS."""

    def __init__(
        self,
        fs: ParallelFileSystem,
        params: STAPParams,
        source: Optional[CubeSource] = None,
        n_files: int = 4,
        prefix: str = "cpi",
    ) -> None:
        if n_files < 1:
            raise ConfigurationError("need >= 1 data file")
        self.fs = fs
        self.params = params
        self.source = source
        self.n_files = n_files
        self.prefix = prefix
        self._populated: dict = {}  # file index -> cpi currently stored

    @property
    def phantom(self) -> bool:
        """True when running without real cube content (timing mode)."""
        return self.source is None

    def path(self, cpi: int) -> str:
        """File path holding CPI ``cpi``."""
        if cpi < 0:
            raise ConfigurationError(f"cpi must be >= 0, got {cpi}")
        return f"{self.prefix}{cpi % self.n_files}.dat"

    def initialize(self) -> None:
        """Create all files (phantom-sized or with the first cubes)."""
        for f in range(self.n_files):
            path = f"{self.prefix}{f}.dat"
            if self.phantom:
                self.fs.create(path, phantom_size=self.params.cube_nbytes, exist_ok=True)
            else:
                cube = self.source.cube(f)
                self.fs.create(path, data=cube.to_file_bytes(), exist_ok=True)
                self._populated[f] = f

    def ensure_cpi(self, cpi: int) -> None:
        """Make sure file ``cpi % n_files`` holds CPI ``cpi``'s bytes.

        Host-side (no simulated time): models the radar having written
        the file before the pipeline turns to it.  No-op in timing mode.
        """
        if self.phantom:
            return
        f = cpi % self.n_files
        if self._populated.get(f) == cpi:
            return
        cube = self.source.cube(cpi)
        self.fs.backing.write(self.path(cpi), 0, cube.to_file_bytes())
        self._populated[f] = cpi

    def slab_extent(self, lo: int, hi: int):
        """(offset, nbytes) of range gates [lo, hi) in any CPI file."""
        return DataCube.file_slab_extent(self.params, lo, hi)
