"""Radar-side I/O: the data files the pipeline reads.

The paper's setup (§4): the radar writes collected CPIs into **four
files round-robin**, and the STAP pipeline reads the four files
round-robin at offset/length values fixed at initialisation, staggered
in time from the writes so read/write inconsistency is minimised.

* :class:`~repro.io.fileset.CubeFileSet` — the four files, their naming,
  per-CPI path/offset arithmetic, and content population (real cubes in
  compute mode, phantom sizes in timing mode);
* :class:`~repro.io.writer.RadarWriter` — an optional simulated writer
  process that keeps writing future CPIs into the round-robin files
  while the pipeline runs, contending for the same stripe directories.
"""

from repro.io.fileset import CubeFileSet, CubeSource
from repro.io.writer import RadarWriter

__all__ = ["CubeFileSet", "CubeSource", "RadarWriter"]
