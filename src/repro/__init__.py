"""repro — parallel pipelined STAP with simulated parallel I/O.

A production-quality reproduction of Liao, Choudhary, Weiner & Varshney,
*Design and Evaluation of I/O Strategies for Parallel Pipelined STAP
Applications* (IPPS 2000).

The package layers, bottom to top:

* :mod:`repro.sim` — deterministic discrete-event simulation kernel;
* :mod:`repro.machine` — simulated multicomputers (Paragon-like mesh,
  SP-like multistage switch) with calibrated presets;
* :mod:`repro.mpi` — MPI/NX-like message passing over the machine;
* :mod:`repro.pfs` — striped parallel file systems: async-capable PFS
  and synchronous-only PIOFS;
* :mod:`repro.stap` — the real PRI-staggered post-Doppler STAP numerics
  (Doppler filtering, adaptive weights, beamforming, pulse compression,
  CFAR) plus flop-exact cost models;
* :mod:`repro.io` — the radar's round-robin data files;
* :mod:`repro.core` — **the paper's contribution**: the parallel
  pipeline model, its two I/O strategies, the task-combination
  transform, the analytic equations (1)-(14), and the executor;
* :mod:`repro.trace` / :mod:`repro.bench` — measurement and the
  per-table/figure experiment harness;
* :mod:`repro.service` — the experiment service tier: a job/stage/task
  scheduler with persistent workers, streaming results, and a shared
  cache, serving many clients (``repro serve`` / ``repro submit``);
* :mod:`repro.analysis` — the offline analysis facade: ``load()`` any
  result artifact, ``analyze_sweep()`` a directory/cache of them into a
  bottleneck narrative, ``render()`` it as text/JSON/HTML, plus the
  live dashboard behind ``repro dash``.

Quick start — the one-call facade::

    import repro

    result = repro.run(case=1, pipeline="embedded", stripe_factor=64,
                       n_cpis=8, warmup=2)
    print(result.throughput, "CPIs/s,", result.latency, "s latency")

    # with live metrics sampled every 0.25 simulated seconds:
    result = repro.run(case=3, metrics_interval=0.25)
    print(sorted(result.metrics["gauges"]))

or the explicit layers (identical results)::

    from repro import (
        NodeAssignment, build_embedded_pipeline, PipelineExecutor,
        FSConfig, ExecutionConfig, paragon, STAPParams,
    )

    params = STAPParams()
    spec = build_embedded_pipeline(NodeAssignment.case(1, params))
    result = PipelineExecutor(
        spec, params, paragon(), FSConfig("pfs", stripe_factor=64),
        ExecutionConfig(n_cpis=8, warmup=2),
    ).run()
"""

from repro import analysis
from repro.analysis import analyze_sweep, load, render
from repro.api import run
from repro.bench.engine import ExperimentSpec, SweepRunner, run_spec
from repro.bench.store import ResultStore
from repro.core.context import ExecutionConfig
from repro.core.executor import FSConfig, PipelineExecutor, PipelineResult
from repro.core.model import CombinationAnalysis, IOModel, PipelineModel
from repro.core.pipeline import (
    NodeAssignment,
    PipelineSpec,
    build_embedded_pipeline,
    build_separate_io_pipeline,
    combine_pulse_cfar,
)
from repro.core.arrivals import ArrivalSpec
from repro.machine.presets import MachinePreset, generic_cluster, ibm_sp, paragon
from repro.obs import MetricsRegistry
from repro.scenario import (
    ScenarioResult,
    ScenarioSpec,
    TenantSpec,
    run_scenario,
)
from repro.service import ExperimentScheduler, JobHandle
from repro.stap.chain import run_cpi_stream, stap_chain
from repro.stap.params import STAPParams
from repro.stap.scenario import Jammer, Scenario, Target, make_cube

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "run",
    "analysis",
    "load",
    "analyze_sweep",
    "render",
    "MetricsRegistry",
    "ExecutionConfig",
    "ExperimentSpec",
    "SweepRunner",
    "ExperimentScheduler",
    "JobHandle",
    "ResultStore",
    "run_spec",
    "FSConfig",
    "PipelineExecutor",
    "PipelineResult",
    "ArrivalSpec",
    "ScenarioSpec",
    "TenantSpec",
    "ScenarioResult",
    "run_scenario",
    "PipelineModel",
    "IOModel",
    "CombinationAnalysis",
    "NodeAssignment",
    "PipelineSpec",
    "build_embedded_pipeline",
    "build_separate_io_pipeline",
    "combine_pulse_cfar",
    "MachinePreset",
    "paragon",
    "ibm_sp",
    "generic_cluster",
    "STAPParams",
    "Scenario",
    "Target",
    "Jammer",
    "make_cube",
    "stap_chain",
    "run_cpi_stream",
]
