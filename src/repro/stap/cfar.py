"""Cell-averaging CFAR detection (pipeline task 6).

Square-law detection along range per (Doppler bin, beam): each cell is
compared against ``alpha`` times the mean power of ``2*window`` training
cells (``window`` per side, separated from the cell under test by
``guard`` cells).  ``alpha`` is the exact CA-CFAR threshold multiplier
for exponentially distributed noise power,

.. math:: \\alpha = L\\,(P_{fa}^{-1/L} - 1), \\qquad L = 2\\,\\mathrm{window},

so the design false-alarm rate holds per cell in homogeneous noise.
Edge cells fall back to the one-sided window (with the correspondingly
recomputed ``alpha``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["Detection", "CFAR_METHODS", "cfar_threshold_factor", "go_so_false_alarm", "go_so_threshold_factor", "os_false_alarm", "os_threshold_factor", "ca_cfar"]


@dataclass(frozen=True, order=True)
class Detection:
    """One CFAR exceedance — the pipeline's final product.

    Attributes
    ----------
    doppler_bin:
        Doppler filter-bank bin of the detection.
    beam:
        Beam index.
    range_gate:
        Range gate.
    snr_db:
        Estimated SNR: cell power over local noise estimate, in dB.
    cpi_index:
        CPI the detection came from.
    """

    doppler_bin: int
    beam: int
    range_gate: int
    snr_db: float
    cpi_index: int = 0

    def to_dict(self) -> dict:
        """Lossless JSON-able form."""
        return {
            "doppler_bin": int(self.doppler_bin),
            "beam": int(self.beam),
            "range_gate": int(self.range_gate),
            "snr_db": float(self.snr_db),
            "cpi_index": int(self.cpi_index),
        }

    @staticmethod
    def from_dict(d: dict) -> "Detection":
        """Inverse of :meth:`to_dict`."""
        return Detection(**d)


#: CFAR estimator variants supported by :func:`ca_cfar`.
CFAR_METHODS = ("ca", "goca", "soca", "os")


def cfar_threshold_factor(n_train: int, pfa: float) -> float:
    """Exact CA-CFAR multiplier for ``n_train`` training cells."""
    if n_train < 1:
        raise ConfigurationError(f"n_train must be >= 1, got {n_train}")
    if not (0.0 < pfa < 1.0):
        raise ConfigurationError(f"pfa must be in (0, 1), got {pfa}")
    return n_train * (pfa ** (-1.0 / n_train) - 1.0)


def _half_window_tail(t: float, n: int) -> float:
    """``sum_{k=0}^{n-1} C(n-1+k, k) (2 + t)^-(n+k)`` — the shared term
    of the exact GO/SO false-alarm expressions (Gandhi & Kassam 1988)
    for two exponential half-window sums of ``n`` cells, threshold ``t``
    per unit of the selected *sum*."""
    base = 1.0 / (2.0 + t)
    term = base**n  # k = 0: C(n-1, 0) * base^n
    total = term
    for k in range(1, n):
        term *= base * (n - 1 + k) / k  # binomial grows by (n-1+k)/k
        total += term
    return total


def go_so_false_alarm(t: float, n_half: int, greatest: bool) -> float:
    """Exact P_fa of GO/SO-CFAR with ``n_half`` cells per side.

    Square-law (exponential) noise; the detector compares the test cell
    against ``t * max(Y1, Y2)`` (GO) or ``t * min(Y1, Y2)`` (SO), where
    ``Y`` are the half-window **sums**:

    * GO: ``P_fa = 2 (1 + t)^{-n} - 2 S(t)``
    * SO: ``P_fa = 2 S(t)``

    with ``S`` the :func:`_half_window_tail` series.
    """
    if n_half < 1:
        raise ConfigurationError(f"n_half must be >= 1, got {n_half}")
    if t < 0:
        raise ConfigurationError(f"threshold must be >= 0, got {t}")
    so = 2.0 * _half_window_tail(t, n_half)
    if not greatest:
        return min(1.0, so)
    return max(0.0, 2.0 * (1.0 + t) ** (-n_half) - so)


def go_so_threshold_factor(n_half: int, pfa: float, greatest: bool) -> float:
    """Invert :func:`go_so_false_alarm` for the per-sum threshold ``t``
    by bisection (the expression is monotone decreasing in ``t``)."""
    if not (0.0 < pfa < 1.0):
        raise ConfigurationError(f"pfa must be in (0, 1), got {pfa}")
    lo, hi = 0.0, 4.0
    while go_so_false_alarm(hi, n_half, greatest) > pfa:
        hi *= 2.0
        if hi > 1e9:  # pragma: no cover - unreachable for sane pfa
            raise ConfigurationError("threshold search diverged")
    for _ in range(100):
        mid = 0.5 * (lo + hi)
        if go_so_false_alarm(mid, n_half, greatest) > pfa:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def os_false_alarm(t: float, n: int, k: int) -> float:
    """Exact P_fa of OS-CFAR using the ``k``-th smallest of ``n`` cells.

    Rohling (1983), exponential noise:
    ``P_fa = prod_{i=0}^{k-1} (n - i) / (n - i + t)`` for threshold
    ``X > t * x_(k)``.
    """
    if not (1 <= k <= n):
        raise ConfigurationError(f"rank k must be in [1, n], got k={k}, n={n}")
    if t < 0:
        raise ConfigurationError(f"threshold must be >= 0, got {t}")
    out = 1.0
    for i in range(k):
        out *= (n - i) / (n - i + t)
    return out


def os_threshold_factor(n: int, k: int, pfa: float) -> float:
    """Invert :func:`os_false_alarm` for ``t`` by bisection."""
    if not (0.0 < pfa < 1.0):
        raise ConfigurationError(f"pfa must be in (0, 1), got {pfa}")
    lo, hi = 0.0, 4.0
    while os_false_alarm(hi, n, k) > pfa:
        hi *= 2.0
        if hi > 1e12:  # pragma: no cover - unreachable for sane pfa
            raise ConfigurationError("threshold search diverged")
    for _ in range(100):
        mid = 0.5 * (lo + hi)
        if os_false_alarm(mid, n, k) > pfa:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


#: OS-CFAR rank as a fraction of the training count — the conventional
#: 3/4 quantile balances masking robustness against CFAR loss.
OS_RANK_FRACTION = 0.75


def ca_cfar(
    beams: np.ndarray,
    bins: Sequence[int],
    window: int,
    guard: int,
    pfa: float,
    cpi_index: int = 0,
    method: str = "ca",
) -> List[Detection]:
    """Run cell-averaging-family CFAR over beamformed data.

    Parameters
    ----------
    beams:
        ``(n_bins, n_beams, n_ranges)`` complex beamformer output.
    bins:
        Doppler bin index of each row (for labelling detections).
    window / guard / pfa:
        CFAR geometry and design false-alarm probability.
    method:
        ``"ca"`` — classic cell averaging over both half-windows;
        ``"goca"`` — greatest-of: thresholds on the *larger* half-window
        sum, robust against clutter edges (a power step in one half no
        longer floods the boundary with false alarms);
        ``"soca"`` — smallest-of: thresholds on the *smaller* half,
        preserving detection of closely spaced targets at the price of
        edge robustness;
        ``"os"`` — order statistic (Rohling): thresholds on the
        ``OS_RANK_FRACTION`` quantile of the training cells, immune to a
        few interfering targets contaminating the window (target
        masking).  GO/SO/OS thresholds use their exact expressions;
        cells whose window is truncated by an array edge fall back to
        one-sided cell averaging in every method.

    Returns
    -------
    list[Detection]
        Sorted by (doppler_bin, beam, range_gate).
    """
    if beams.ndim != 3:
        raise ConfigurationError("beams must be (n_bins, n_beams, n_ranges)")
    if method not in CFAR_METHODS:
        raise ConfigurationError(
            f"unknown CFAR method {method!r}; choose from {CFAR_METHODS}"
        )
    if len(bins) != beams.shape[0]:
        raise ConfigurationError(
            f"{len(bins)} bin labels for {beams.shape[0]} rows"
        )
    n_ranges = beams.shape[-1]
    if n_ranges < 2 * (window + guard) + 1:
        raise ConfigurationError(
            f"range extent {n_ranges} too small for window={window}, guard={guard}"
        )
    power = (beams.real.astype(np.float64) ** 2 + beams.imag.astype(np.float64) ** 2)

    # Sliding sums via a zero-padded cumulative sum along range.
    csum = np.concatenate(
        [np.zeros(power.shape[:-1] + (1,)), np.cumsum(power, axis=-1)], axis=-1
    )

    def window_sum(lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        """Sum of power over gates [lo, hi) per cell (clipped)."""
        lo = np.clip(lo, 0, n_ranges)
        hi = np.clip(hi, 0, n_ranges)
        return np.take(csum, hi, axis=-1) - np.take(csum, lo, axis=-1)

    r = np.arange(n_ranges)
    lead_lo, lead_hi = r - guard - window, r - guard          # leading cells
    lag_lo, lag_hi = r + guard + 1, r + guard + 1 + window    # lagging cells
    lead_sum = window_sum(lead_lo, lead_hi)
    lag_sum = window_sum(lag_lo, lag_hi)
    lead_n = (np.clip(lead_hi, 0, n_ranges) - np.clip(lead_lo, 0, n_ranges))
    lag_n = (np.clip(lag_hi, 0, n_ranges) - np.clip(lag_lo, 0, n_ranges))
    n_train = lead_n + lag_n  # (n_ranges,) per-cell training count

    interior = (lead_n == window) & (lag_n == window)
    if method in ("ca", "os") or not interior.any():
        selected = None
    elif method == "goca":
        selected = np.maximum(lead_sum, lag_sum)
    else:  # soca
        selected = np.minimum(lead_sum, lag_sum)

    # CA statistic and per-cell threshold (edges: fewer training cells).
    ca_noise = (lead_sum + lag_sum) / np.maximum(n_train, 1)
    alpha = np.empty(n_ranges)
    for n in np.unique(n_train):
        alpha[n_train == n] = cfar_threshold_factor(int(n), pfa) if n > 0 else np.inf
    threshold = alpha[None, None, :] * ca_noise
    noise = ca_noise

    if selected is not None:
        # Interior cells use the GO/SO statistic with its exact factor;
        # truncated edge cells keep the one-sided CA fallback above.
        t_half = go_so_threshold_factor(window, pfa, greatest=(method == "goca"))
        threshold = np.where(
            interior[None, None, :], t_half * selected, threshold
        )
        noise = np.where(
            interior[None, None, :], selected / window, ca_noise
        )

    if method == "os" and interior.any():
        # Order statistic of the 2*window training cells (Rohling's
        # OS-CFAR) for interior cells; edges keep the CA fallback.
        n_tot = 2 * window
        k_rank = max(1, int(round(OS_RANK_FRACTION * n_tot)))
        t_os = os_threshold_factor(n_tot, k_rank, pfa)
        offsets = np.concatenate(
            [np.arange(-guard - window, -guard), np.arange(guard + 1, guard + 1 + window)]
        )
        r_int = np.nonzero(interior)[0]
        gather = r_int[:, None] + offsets[None, :]  # (R_int, 2w)
        # Unbias the noise estimate: E[x_(k)] = mu * sum_{i<k} 1/(n-i).
        unbias = sum(1.0 / (n_tot - i) for i in range(k_rank))
        for row in range(power.shape[0]):  # chunk by bin to bound memory
            samples = power[row][:, gather]            # (n_beams, R_int, 2w)
            xk = np.partition(samples, k_rank - 1, axis=-1)[..., k_rank - 1]
            threshold[row][:, r_int] = t_os * xk
            noise[row][:, r_int] = xk / unbias

    mask = power > threshold
    hits = np.argwhere(mask)
    out: List[Detection] = []
    for row, beam, gate in hits:
        snr = power[row, beam, gate] / max(noise[row, beam, gate], 1e-300)
        out.append(
            Detection(
                doppler_bin=int(bins[row]),
                beam=int(beam),
                range_gate=int(gate),
                snr_db=float(10.0 * np.log10(snr)),
                cpi_index=cpi_index,
            )
        )
    out.sort()
    return out
