"""STAP problem dimensions and algorithm parameters.

The defaults reproduce the paper's data scale: a 16 x 128 x 1024
complex64 CPI cube is exactly 16 MiB — the per-file size reconstructed in
DESIGN.md §4 (256 stripe units of 64 KiB).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["STAPParams"]


@dataclass(frozen=True)
class STAPParams:
    """Dimensions and knobs of the PRI-staggered post-Doppler algorithm.

    Attributes
    ----------
    n_channels:
        Array channels J (ULA elements).
    n_pulses:
        Pulses per CPI, N.  The two staggered sub-CPIs each use N-1
        pulses (pulses ``0..N-2`` and ``1..N-1``).
    n_ranges:
        Range gates per pulse, R.
    n_beams:
        Receive beams formed per Doppler bin.
    n_hard_bins:
        Doppler bins treated as *hard* (space-time adaptive, 2J DoF);
        these are the bins nearest the mainlobe clutter ridge.  The
        remaining ``n_pulses - n_hard_bins`` bins are *easy* (spatial
        adaptivity only, J DoF).
    n_training:
        Range samples used to estimate each bin's sample covariance.
    diagonal_load:
        Loading factor (times the mean diagonal) stabilising the
        covariance inversion.
    covariance_memory:
        Forgetting factor for cross-CPI covariance smoothing
        (``R_k = m R_{k-1} + (1-m) R_hat_k``); 0 (default) is the
        paper's single-CPI training.
    pulse_len:
        LFM waveform length in range samples (pulse-compression gain).
    cfar_window:
        Training cells per side for cell-averaging CFAR.
    cfar_guard:
        Guard cells per side.
    pfa:
        CFAR design false-alarm probability.
    cfar_method:
        CFAR estimator: ``"ca"`` (default), ``"goca"``, ``"soca"``, or
        ``"os"`` — see :func:`repro.stap.cfar.ca_cfar`.
    window_kind:
        Doppler filter-bank taper — see
        :func:`repro.stap.doppler.doppler_window`.
    dtype:
        Cube element type; complex64 matches the 16 MiB file size.
    """

    n_channels: int = 16
    n_pulses: int = 128
    n_ranges: int = 1024
    n_beams: int = 8
    n_hard_bins: int = 32
    n_training: int = 96
    diagonal_load: float = 0.05
    covariance_memory: float = 0.0
    pulse_len: int = 32
    cfar_window: int = 16
    cfar_guard: int = 2
    pfa: float = 1e-6
    cfar_method: str = "ca"
    window_kind: str = "hann"
    dtype: np.dtype = field(default=np.dtype(np.complex64))

    def __post_init__(self) -> None:
        if self.n_channels < 2:
            raise ConfigurationError("need >= 2 channels")
        if self.n_pulses < 4:
            raise ConfigurationError("need >= 4 pulses")
        if self.n_ranges < 8:
            raise ConfigurationError("need >= 8 range gates")
        if not (0 < self.n_hard_bins < self.n_pulses):
            raise ConfigurationError(
                f"n_hard_bins must be in (0, n_pulses), got {self.n_hard_bins}"
            )
        if self.n_beams < 1:
            raise ConfigurationError("need >= 1 beam")
        if self.n_training < 2 * self.n_channels:
            raise ConfigurationError(
                "n_training should be >= 2*n_channels for a usable covariance "
                f"(got {self.n_training} < {2 * self.n_channels})"
            )
        if self.n_training > self.n_ranges:
            raise ConfigurationError("n_training cannot exceed n_ranges")
        if not (0.0 <= self.covariance_memory < 1.0):
            raise ConfigurationError(
                f"covariance_memory must be in [0, 1), got {self.covariance_memory}"
            )
        if not (1 <= self.pulse_len <= self.n_ranges):
            raise ConfigurationError("pulse_len must be in [1, n_ranges]")
        if self.cfar_window < 1 or self.cfar_guard < 0:
            raise ConfigurationError("bad CFAR window/guard")
        if not (0.0 < self.pfa < 1.0):
            raise ConfigurationError("pfa must be in (0, 1)")
        from repro.stap.cfar import CFAR_METHODS

        if self.cfar_method not in CFAR_METHODS:
            raise ConfigurationError(
                f"cfar_method must be one of {CFAR_METHODS}, got {self.cfar_method!r}"
            )
        from repro.stap.doppler import WINDOW_KINDS

        if self.window_kind not in WINDOW_KINDS:
            raise ConfigurationError(
                f"window_kind must be one of {WINDOW_KINDS}, got {self.window_kind!r}"
            )
        if np.dtype(self.dtype).kind != "c":
            raise ConfigurationError("dtype must be complex")

    # -- derived dimensions ------------------------------------------------
    @property
    def n_doppler_bins(self) -> int:
        """Doppler bins produced by the filter bank (= n_pulses)."""
        return self.n_pulses

    @property
    def n_easy_bins(self) -> int:
        """Number of easy (spatial-only) Doppler bins."""
        return self.n_pulses - self.n_hard_bins

    @property
    def hard_bins(self) -> Tuple[int, ...]:
        """Indices of hard bins: centred on zero Doppler (the mainlobe
        clutter ridge for a sidelooking array), wrapping around DC."""
        half = self.n_hard_bins // 2
        idx = [(b - half) % self.n_pulses for b in range(self.n_hard_bins)]
        return tuple(sorted(idx))

    @property
    def easy_bins(self) -> Tuple[int, ...]:
        """Indices of easy bins (complement of :attr:`hard_bins`)."""
        hard = set(self.hard_bins)
        return tuple(b for b in range(self.n_pulses) if b not in hard)

    @property
    def easy_dof(self) -> int:
        """Adaptive degrees of freedom for easy bins (spatial only)."""
        return self.n_channels

    @property
    def hard_dof(self) -> int:
        """Adaptive DoF for hard bins (two staggered sub-apertures)."""
        return 2 * self.n_channels

    @property
    def cube_shape(self) -> Tuple[int, int, int]:
        """(channels, pulses, ranges)."""
        return (self.n_channels, self.n_pulses, self.n_ranges)

    @property
    def cube_nbytes(self) -> int:
        """Bytes of one CPI cube."""
        return int(np.prod(self.cube_shape)) * np.dtype(self.dtype).itemsize

    @property
    def beam_angles(self) -> np.ndarray:
        """Beam steering angles (radians), uniform in sin-space."""
        sines = np.linspace(-0.6, 0.6, self.n_beams)
        return np.arcsin(sines)

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> dict:
        """Lossless JSON-able form (dtype stored by name)."""
        return {
            "n_channels": self.n_channels,
            "n_pulses": self.n_pulses,
            "n_ranges": self.n_ranges,
            "n_beams": self.n_beams,
            "n_hard_bins": self.n_hard_bins,
            "n_training": self.n_training,
            "diagonal_load": self.diagonal_load,
            "covariance_memory": self.covariance_memory,
            "pulse_len": self.pulse_len,
            "cfar_window": self.cfar_window,
            "cfar_guard": self.cfar_guard,
            "pfa": self.pfa,
            "cfar_method": self.cfar_method,
            "window_kind": self.window_kind,
            "dtype": np.dtype(self.dtype).name,
        }

    @staticmethod
    def from_dict(d: dict) -> "STAPParams":
        """Inverse of :meth:`to_dict`."""
        kwargs = dict(d)
        kwargs["dtype"] = np.dtype(kwargs["dtype"])
        return STAPParams(**kwargs)

    def scaled(self, factor: float) -> "STAPParams":
        """A smaller/larger copy for tests: scales ranges and training."""
        n_ranges = max(8, 2 * self.n_channels, int(self.n_ranges * factor))
        n_training = min(max(2 * self.n_channels, int(self.n_training * factor)), n_ranges)
        return STAPParams(
            n_channels=self.n_channels,
            n_pulses=self.n_pulses,
            n_ranges=n_ranges,
            n_beams=self.n_beams,
            n_hard_bins=self.n_hard_bins,
            n_training=n_training,
            diagonal_load=self.diagonal_load,
            covariance_memory=self.covariance_memory,
            pulse_len=min(self.pulse_len, n_ranges),
            cfar_window=self.cfar_window,
            cfar_guard=self.cfar_guard,
            pfa=self.pfa,
            cfar_method=self.cfar_method,
            window_kind=self.window_kind,
            dtype=self.dtype,
        )


def tiny_params() -> STAPParams:
    """A very small parameter set for fast unit tests."""
    return STAPParams(
        n_channels=4,
        n_pulses=16,
        n_ranges=128,
        n_beams=4,
        n_hard_bins=4,
        n_training=32,
        pulse_len=8,
        cfar_window=8,
        cfar_guard=2,
    )
