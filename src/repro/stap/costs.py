"""Analytic work and data-volume models for every pipeline task.

Timing mode runs the pipeline without touching numpy data; each task
advances simulated time by ``node.compute_time(flops, bytes)`` using the
models here.  The counts follow standard conventions — complex MAC = 8
real flops, complex FFT of length M = ``5 M log2 M`` real flops,
complex Cholesky of a d x d matrix = ``(4/3) d^3`` — applied to the
actual kernels in :mod:`repro.stap` (same shapes, same algorithms), so
compute mode and timing mode charge identical simulated time.

All ``*_flops`` methods return work for the **whole CPI**; the executor
divides by the task's node count (the paper's :math:`W_i / P_i`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.stap.params import STAPParams

__all__ = ["STAPCosts"]

_CMAC = 8.0  # real flops per complex multiply-accumulate


def _fft_flops(length: int) -> float:
    """Real flops of one complex FFT of ``length`` points."""
    if length <= 1:
        return 0.0
    return 5.0 * length * math.log2(length)


@dataclass(frozen=True)
class STAPCosts:
    """Per-task cost model bound to one parameter set."""

    params: STAPParams

    # -- task work (full CPI, real flops) ---------------------------------
    def doppler_flops(self) -> float:
        """Task 0: two staggered windowed filter banks over all
        (channel, range) columns."""
        p = self.params
        n_cols = p.n_channels * p.n_ranges
        window = 2.0 * 6.0 * n_cols * (p.n_pulses - 1)  # two staggers, cmul each
        ffts = 2.0 * n_cols * _fft_flops(p.n_pulses)
        return window + ffts

    def _weight_flops(self, dof: int, n_bins: int) -> float:
        p = self.params
        L, K = p.n_training, p.n_beams
        cov = _CMAC * dof * dof * L
        chol = (4.0 / 3.0) * dof**3
        solve = _CMAC * dof * dof * K          # two triangular solves per beam
        normalise = _CMAC * dof * K
        return n_bins * (cov + chol + solve + normalise)

    def easy_weight_flops(self) -> float:
        """Task 1: MVDR over J DoF for every easy bin."""
        p = self.params
        return self._weight_flops(p.easy_dof, p.n_easy_bins)

    def hard_weight_flops(self) -> float:
        """Task 2: MVDR over 2J DoF for every hard bin."""
        p = self.params
        return self._weight_flops(p.hard_dof, p.n_hard_bins)

    def easy_beamform_flops(self) -> float:
        """Task 3: apply J-channel weights over all easy bins/ranges."""
        p = self.params
        return _CMAC * p.n_easy_bins * p.n_beams * p.easy_dof * p.n_ranges

    def hard_beamform_flops(self) -> float:
        """Task 4: apply 2J-channel weights over all hard bins/ranges."""
        p = self.params
        return _CMAC * p.n_hard_bins * p.n_beams * p.hard_dof * p.n_ranges

    def pulse_compression_flops(self) -> float:
        """Task 5: overlap-save matched filter on every (bin, beam)
        range profile (segment FFTs of :func:`segment_length` points)."""
        from repro.stap.pulse import segment_length

        p = self.params
        L = segment_length(p.pulse_len)
        step = L - p.pulse_len + 1
        n_seg = math.ceil(p.n_ranges / step)
        per_profile = n_seg * (2.0 * _fft_flops(L) + _CMAC * L)
        return p.n_doppler_bins * p.n_beams * per_profile

    def cfar_flops(self) -> float:
        """Task 6: square-law power, sliding sums and compares."""
        p = self.params
        per_cell = 12.0
        return p.n_doppler_bins * p.n_beams * p.n_ranges * per_cell

    def task_flops(self, task_index: int) -> float:
        """Work of canonical task ``0..6`` (Figure 2 numbering)."""
        table = (
            self.doppler_flops,
            self.easy_weight_flops,
            self.hard_weight_flops,
            self.easy_beamform_flops,
            self.hard_beamform_flops,
            self.pulse_compression_flops,
            self.cfar_flops,
        )
        return table[task_index]()

    # -- data volumes (bytes, full CPI) ------------------------------------
    @property
    def itemsize(self) -> int:
        return self.params.dtype.itemsize

    def cube_bytes(self) -> int:
        """Input CPI cube (what the I/O reads)."""
        return self.params.cube_nbytes

    def doppler_easy_bytes(self) -> int:
        """Easy half of the Doppler output."""
        p = self.params
        return p.n_easy_bins * p.easy_dof * p.n_ranges * self.itemsize

    def doppler_hard_bytes(self) -> int:
        """Hard half of the Doppler output."""
        p = self.params
        return p.n_hard_bins * p.hard_dof * p.n_ranges * self.itemsize

    def weights_easy_bytes(self) -> int:
        p = self.params
        return p.n_easy_bins * p.easy_dof * p.n_beams * self.itemsize

    def weights_hard_bytes(self) -> int:
        p = self.params
        return p.n_hard_bins * p.hard_dof * p.n_beams * self.itemsize

    def beams_easy_bytes(self) -> int:
        p = self.params
        return p.n_easy_bins * p.n_beams * p.n_ranges * self.itemsize

    def beams_hard_bytes(self) -> int:
        p = self.params
        return p.n_hard_bins * p.n_beams * p.n_ranges * self.itemsize

    def beams_all_bytes(self) -> int:
        return self.beams_easy_bytes() + self.beams_hard_bytes()

    def detections_bytes(self, n_detections: int = 16) -> int:
        """Nominal detection-report payload (tiny control traffic)."""
        return 32 * max(n_detections, 1)
