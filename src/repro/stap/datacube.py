"""The CPI data cube: the unit of data flowing through the pipeline.

A :class:`DataCube` wraps the 3-D complex array collected over one
Coherent Processing Interval — shape ``(channels, pulses, ranges)`` —
plus its CPI sequence number.  Cubes serialise to/from raw bytes for the
simulated file systems (C-order, fixed dtype, no header: the reader knows
the shape, exactly as the paper's fixed-offset reads assume).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple, Union

import numpy as np

from repro.errors import ConfigurationError
from repro.mpi.datatypes import Phantom
from repro.stap.params import STAPParams

__all__ = ["DataCube"]


@dataclass
class DataCube:
    """One CPI of phased-array data.

    Attributes
    ----------
    data:
        Complex array shaped ``(n_channels, n_pulses, n_ranges)``.
    cpi_index:
        Sequence number of this CPI in the radar stream.
    """

    data: np.ndarray
    cpi_index: int = 0

    def __post_init__(self) -> None:
        if self.data.ndim != 3:
            raise ConfigurationError(
                f"cube must be 3-D (channels, pulses, ranges), got {self.data.shape}"
            )
        if self.data.dtype.kind != "c":
            raise ConfigurationError(f"cube must be complex, got {self.data.dtype}")

    # -- shape sugar -----------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int, int]:
        """(channels, pulses, ranges)."""
        return self.data.shape  # type: ignore[return-value]

    @property
    def n_channels(self) -> int:
        return self.data.shape[0]

    @property
    def n_pulses(self) -> int:
        return self.data.shape[1]

    @property
    def n_ranges(self) -> int:
        return self.data.shape[2]

    @property
    def nbytes(self) -> int:
        """Bytes of the payload array."""
        return int(self.data.nbytes)

    # -- (de)serialisation ----------------------------------------------
    def to_bytes(self) -> bytes:
        """C-order raw bytes, the format stored in the simulated files."""
        return np.ascontiguousarray(self.data).tobytes()

    @classmethod
    def from_bytes(
        cls,
        raw: Union[bytes, Phantom],
        params: STAPParams,
        cpi_index: int = 0,
    ) -> "Union[DataCube, Phantom]":
        """Rebuild a cube from file bytes (phantoms pass through).

        Raises
        ------
        ConfigurationError
            If the byte count does not match ``params.cube_nbytes``.
        """
        if isinstance(raw, Phantom):
            return raw
        expected = params.cube_nbytes
        if len(raw) != expected:
            raise ConfigurationError(
                f"cube byte count {len(raw)} != expected {expected}"
            )
        arr = np.frombuffer(raw, dtype=params.dtype).reshape(params.cube_shape).copy()
        return cls(arr, cpi_index=cpi_index)

    # -- range-major file layout ------------------------------------------
    # The radar writes cubes range-major — shape (ranges, channels,
    # pulses) in C order — so that a Doppler node's range slab is ONE
    # contiguous byte extent and its read is a single call with a fixed
    # offset, exactly the access pattern the paper describes (§4).

    def to_file_bytes(self) -> bytes:
        """Serialise range-major for the simulated data files."""
        return np.ascontiguousarray(self.data.transpose(2, 0, 1)).tobytes()

    @staticmethod
    def file_slab_extent(params: STAPParams, lo: int, hi: int) -> Tuple[int, int]:
        """(byte offset, byte length) of range gates ``[lo, hi)`` in a
        range-major cube file."""
        if not (0 <= lo <= hi <= params.n_ranges):
            raise ConfigurationError(f"bad range slab [{lo}, {hi})")
        row = params.n_channels * params.n_pulses * np.dtype(params.dtype).itemsize
        return lo * row, (hi - lo) * row

    @staticmethod
    def slab_from_file_bytes(
        raw: Union[bytes, Phantom], params: STAPParams, lo: int, hi: int
    ) -> Union[np.ndarray, Phantom]:
        """Rebuild the ``(channels, pulses, hi-lo)`` slab from file bytes."""
        if isinstance(raw, Phantom):
            return raw
        n = hi - lo
        expected = n * params.n_channels * params.n_pulses * np.dtype(params.dtype).itemsize
        if len(raw) != expected:
            raise ConfigurationError(
                f"slab byte count {len(raw)} != expected {expected}"
            )
        arr = np.frombuffer(raw, dtype=params.dtype).reshape(
            n, params.n_channels, params.n_pulses
        )
        return np.ascontiguousarray(arr.transpose(1, 2, 0))

    def range_slab(self, lo: int, hi: int) -> np.ndarray:
        """View of range gates ``[lo, hi)`` — the Doppler-task partition."""
        if not (0 <= lo <= hi <= self.n_ranges):
            raise ConfigurationError(f"bad range slab [{lo}, {hi})")
        return self.data[:, :, lo:hi]
