"""Clairvoyant interference analysis: exact covariances and SINR loss.

The scenario generator draws random realisations; this module computes
the **exact** post-Doppler interference covariance those realisations
are drawn from — clutter patches, jammer, and noise propagated
analytically through the staggered, windowed filter bank.  Two uses:

* **validation** — the sample covariance of many Monte-Carlo cubes must
  converge to the clairvoyant one (tested), which pins down both the
  generator and this analysis;
* **performance analysis** — optimal (clairvoyant) weights and the
  classic *SINR-loss vs Doppler* curve: how much of the matched-filter
  SNR the environment costs at each Doppler bin.  The deep notch at the
  mainlobe-clutter Doppler is the picture behind the paper's easy/hard
  bin split.

Conventions match :mod:`repro.stap.doppler`: sub-CPI A = pulses
``0..N-2``, sub-CPI B = pulses ``1..N-1``, both windowed with the
params' taper and evaluated at bin frequency ``b/N``.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.linalg as sla

from repro.errors import ConfigurationError
from repro.stap.doppler import doppler_window
from repro.stap.params import STAPParams
from repro.stap.scenario import Scenario, spatial_steering
from repro.stap.weights import steering_matrix_easy, steering_matrix_hard

__all__ = [
    "filter_response",
    "clairvoyant_covariance",
    "optimal_weights",
    "output_sinr",
    "sinr_loss_curve",
]


def filter_response(params: STAPParams, bin_index: int, doppler: float) -> complex:
    """Sub-CPI A's filter-bank response at ``doppler`` for ``bin_index``.

    ``H_b(f) = sum_n win[n] exp(2j pi f n) exp(-2j pi b n / N)`` over the
    N-1 windowed pulses.  Sub-CPI B's response is ``exp(2j pi f) H_b(f)``
    (one PRI of advance), which is how the stagger encodes Doppler.
    """
    N = params.n_pulses
    if not (0 <= bin_index < N):
        raise ConfigurationError(f"bin {bin_index} outside [0, {N})")
    win = doppler_window(N - 1, params.window_kind).astype(np.float64)
    n = np.arange(N - 1)
    return complex(
        np.sum(win * np.exp(2j * np.pi * doppler * n - 2j * np.pi * bin_index * n / N))
    )


def _temporal_blocks(params: STAPParams, bin_index: int) -> Tuple[float, complex]:
    """Noise statistics of the two staggered filter outputs per channel.

    Returns ``(e0, c)``: ``e0 = sum win^2`` (each output's noise power
    for unit input noise) and ``c = E[xA conj(xB)] =
    exp(-2j pi b / N) * sum_n win[n] win[n-1]`` — the sub-CPIs share
    N-2 pulses, so their noise is strongly correlated.
    """
    N = params.n_pulses
    win = doppler_window(N - 1, params.window_kind).astype(np.float64)
    e0 = float(np.sum(win**2))
    overlap = float(np.sum(win[1:] * win[:-1]))
    # xA uses x[n], xB uses x[n+1]: the shared sample x[m] appears in xA
    # at index m and in xB at index m-1.
    c = np.exp(-2j * np.pi * bin_index / N) * overlap
    return e0, complex(c)


def clairvoyant_covariance(
    params: STAPParams,
    scenario: Scenario,
    bin_index: int,
    hard: bool,
) -> np.ndarray:
    """Exact interference-plus-noise covariance of one Doppler bin.

    ``(J, J)`` for easy bins (sub-CPI A only) or ``(2J, 2J)`` for hard
    bins (both staggered sub-CPIs stacked channel-wise) — the same
    snapshot convention the pipeline's weight tasks train on.
    Targets are excluded (they are the signal, not the interference).
    """
    J = params.n_channels
    e0, c = _temporal_blocks(params, bin_index)
    dof = 2 * J if hard else J
    R = np.zeros((dof, dof), dtype=np.complex128)

    def add_rank1(spatial: np.ndarray, ha: complex, phase: complex, power: float) -> None:
        """Add a coherent contributor: spatial steering x stagger pair.

        ``phase`` is the one-PRI advance ``exp(2j pi f)`` relating the
        second sub-CPI's response to the first's.
        """
        if hard:
            s = np.concatenate([ha * spatial, ha * phase * spatial])
        else:
            s = ha * spatial
        R[...] += power * np.outer(s, s.conj())

    def add_white_temporal(spatial_cov: np.ndarray, power: float) -> None:
        """Add a pulse-white contributor (jammer/noise): block structure
        [[e0, c], [conj(c), e0]] in the stagger dimension."""
        if hard:
            blk = np.array([[e0, c], [np.conj(c), e0]])
            R[...] += power * np.kron(blk, spatial_cov)
        else:
            R[...] += power * e0 * spatial_cov

    # -- clutter patches (deterministic geometry, random amplitudes) ------
    if scenario.cnr_db is not None and np.isfinite(scenario.cnr_db):
        P = scenario.n_clutter_patches
        sin_angles = np.linspace(-0.95, 0.95, P)
        patch_power = 10.0 ** (scenario.cnr_db / 10.0) / P
        for sa in sin_angles:
            f = 0.5 * scenario.clutter_beta * sa
            a = np.exp(1j * np.pi * np.arange(J) * sa)
            ha = filter_response(params, bin_index, f)
            add_rank1(a, ha, np.exp(2j * np.pi * f), patch_power)

    # -- jammers (spatially coherent, pulse-white) -------------------------
    for jam in scenario.jammers:
        a = spatial_steering(jam.angle, J).astype(np.complex128)
        add_white_temporal(np.outer(a, a.conj()), 10.0 ** (jam.jnr_db / 10.0))

    # -- thermal noise -------------------------------------------------------
    add_white_temporal(np.eye(J, dtype=np.complex128), 1.0)
    return R


def optimal_weights(R: np.ndarray, v: np.ndarray) -> np.ndarray:
    """Clairvoyant MVDR weights ``R^-1 v / (v^H R^-1 v)`` (no loading)."""
    if R.shape[0] != v.shape[0]:
        raise ConfigurationError("steering/covariance dimension mismatch")
    sol = sla.solve(R, v, assume_a="pos")
    return sol / np.vdot(v, sol)


def output_sinr(w: np.ndarray, R: np.ndarray, v: np.ndarray, signal_power: float = 1.0) -> float:
    """Output SINR of weights ``w`` against interference ``R`` for a
    target along ``v`` with element-level power ``signal_power``."""
    gain = abs(np.vdot(w, v)) ** 2
    denom = float(np.real(np.vdot(w, R @ w)))
    return signal_power * gain / max(denom, 1e-300)


def sinr_loss_curve(
    params: STAPParams,
    scenario: Scenario,
    beam: int = 0,
) -> np.ndarray:
    """SINR loss (linear, <= 1) per Doppler bin for one beam.

    Loss = optimal SINR in the interference environment over the SINR of
    the same space-time aperture in noise alone.  Easy bins use the
    J-DoF aperture, hard bins the 2J-DoF staggered aperture — exactly
    the pipeline's processing.  The curve dips where clutter Doppler
    aligns with the beam (the mainlobe-clutter notch).
    """
    if not (0 <= beam < params.n_beams):
        raise ConfigurationError(f"beam {beam} outside [0, {params.n_beams})")
    noise_only = Scenario(
        targets=(), jammers=(), cnr_db=float("-inf"),
        n_clutter_patches=scenario.n_clutter_patches, seed=scenario.seed,
    )
    hard_set = set(params.hard_bins)
    out = np.empty(params.n_doppler_bins)
    v_easy = steering_matrix_easy(params)[:, beam].astype(np.complex128)
    for b in range(params.n_doppler_bins):
        hard = b in hard_set
        v = (
            steering_matrix_hard(params, b)[:, beam].astype(np.complex128)
            if hard
            else v_easy
        )
        R = clairvoyant_covariance(params, scenario, b, hard)
        Rn = clairvoyant_covariance(params, noise_only, b, hard)
        w = optimal_weights(R, v)
        wn = optimal_weights(Rn, v)
        out[b] = output_sinr(w, R, v) / max(output_sinr(wn, Rn, v), 1e-300)
    return out
