"""Adaptive beamforming (pipeline tasks 3 and 4).

Applies a :class:`~repro.stap.weights.WeightSet` to the matching Doppler
bin group: ``y[bin, beam, range] = w[bin, :, beam]^H  x[bin, :, range]``.
The same function serves the easy task (J-channel snapshots) and the
hard task (2J space-time snapshots) — only the array widths differ.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.stap.weights import WeightSet

__all__ = ["beamform"]


def beamform(data: np.ndarray, weights: WeightSet) -> np.ndarray:
    """Form beams for a group of Doppler bins.

    Parameters
    ----------
    data:
        ``(n_bins, dof, n_ranges)`` Doppler-filtered snapshots.
    weights:
        Matching weight set, ``(n_bins, dof, n_beams)``; rows must
        correspond one-to-one with ``data`` rows.

    Returns
    -------
    np.ndarray
        ``(n_bins, n_beams, n_ranges)`` beamformed output.
    """
    w = weights.weights
    if data.ndim != 3 or w.ndim != 3:
        raise ConfigurationError("data and weights must be 3-D")
    if data.shape[0] != w.shape[0]:
        raise ConfigurationError(
            f"bin count mismatch: data {data.shape[0]} vs weights {w.shape[0]}"
        )
    if data.shape[1] != w.shape[1]:
        raise ConfigurationError(
            f"DoF mismatch: data {data.shape[1]} vs weights {w.shape[1]}"
        )
    # y[b, k, r] = sum_j conj(w[b, j, k]) x[b, j, r]
    return np.einsum("bjk,bjr->bkr", w.conj(), data).astype(np.complex64)
