"""Detection clustering: CFAR exceedances -> object reports.

A single target produces a *cluster* of CFAR exceedances — its energy
straddles neighbouring Doppler bins (filter-bank scalloping), beams
(beam-pattern overlap), and range gates (pulse sidelobes).  Operational
systems merge those cells into one report per object before tracking;
this module does the same with connected-component clustering over the
(Doppler bin, beam, range gate) lattice, Doppler wrap-around included.

``cluster_detections`` is deliberately independent of the pipeline (it
consumes plain :class:`~repro.stap.cfar.Detection` lists), so it can be
applied to the output of the serial chain, the parallel executor, or
recorded data alike.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple


from repro.errors import ConfigurationError
from repro.stap.cfar import Detection

__all__ = ["ClusteredReport", "cluster_detections"]


@dataclass(frozen=True)
class ClusteredReport:
    """One object-level report merged from a cluster of detections.

    Attributes
    ----------
    doppler_bin / beam / range_gate:
        The cluster's strongest cell (the object's best estimate).
    snr_db:
        SNR of the strongest cell.
    n_cells:
        Cluster size (number of merged CFAR exceedances).
    cpi_index:
        CPI the cluster came from.
    extent:
        ``(d_bins, d_beams, d_gates)`` bounding-box spans — a sanity
        signal: point targets are compact, clutter breakthrough smears.
    """

    doppler_bin: int
    beam: int
    range_gate: int
    snr_db: float
    n_cells: int
    cpi_index: int
    extent: Tuple[int, int, int]


class _DisjointSet:
    """Union-find over dense integer ids."""

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))

    def find(self, a: int) -> int:
        while self.parent[a] != a:
            self.parent[a] = self.parent[self.parent[a]]
            a = self.parent[a]
        return a

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self.parent[rb] = ra


def cluster_detections(
    detections: Sequence[Detection],
    n_doppler_bins: int,
    max_gap: Tuple[int, int, int] = (1, 1, 2),
) -> List[ClusteredReport]:
    """Merge detections into object reports via connected components.

    Two detections of the same CPI join a cluster when their distance is
    within ``max_gap`` along every axis simultaneously — Doppler
    distance measured with wrap-around (bin ``N-1`` neighbours bin 0).

    Parameters
    ----------
    detections:
        CFAR output (any order, any mix of CPIs).
    n_doppler_bins:
        Filter-bank size, for Doppler wrap-around.
    max_gap:
        Maximum (Doppler, beam, range) separation that still merges.

    Returns
    -------
    list[ClusteredReport]
        One report per cluster, sorted like detections.
    """
    if n_doppler_bins < 1:
        raise ConfigurationError("n_doppler_bins must be >= 1")
    if any(g < 0 for g in max_gap):
        raise ConfigurationError("max_gap entries must be >= 0")
    dets = list(detections)
    if not dets:
        return []

    dsu = _DisjointSet(len(dets))
    # Bucket by (cpi, coarse range cell) so the pairwise pass is local.
    gd, gb, gr = max_gap
    bucket: Dict[Tuple[int, int], List[int]] = {}
    stride = max(1, gr + 1)
    for i, d in enumerate(dets):
        bucket.setdefault((d.cpi_index, d.range_gate // stride), []).append(i)

    def neighbours(i: int):
        d = dets[i]
        base = d.range_gate // stride
        for cell in range(base - 1, base + 2):
            yield from bucket.get((d.cpi_index, cell), [])

    def close(a: Detection, b: Detection) -> bool:
        dd = abs(a.doppler_bin - b.doppler_bin)
        dd = min(dd, n_doppler_bins - dd)  # Doppler wraps
        return (
            dd <= gd
            and abs(a.beam - b.beam) <= gb
            and abs(a.range_gate - b.range_gate) <= gr
        )

    for i in range(len(dets)):
        for j in neighbours(i):
            if j > i and close(dets[i], dets[j]):
                dsu.union(i, j)

    groups: Dict[int, List[Detection]] = {}
    for i, d in enumerate(dets):
        groups.setdefault(dsu.find(i), []).append(d)

    out: List[ClusteredReport] = []
    for members in groups.values():
        best = max(members, key=lambda d: d.snr_db)
        bins = [m.doppler_bin for m in members]
        beams = [m.beam for m in members]
        gates = [m.range_gate for m in members]
        # Doppler extent with wrap: smallest arc covering all bins.
        span = _wrapped_span(bins, n_doppler_bins)
        out.append(
            ClusteredReport(
                doppler_bin=best.doppler_bin,
                beam=best.beam,
                range_gate=best.range_gate,
                snr_db=best.snr_db,
                n_cells=len(members),
                cpi_index=best.cpi_index,
                extent=(span, max(beams) - min(beams), max(gates) - min(gates)),
            )
        )
    out.sort(key=lambda r: (r.cpi_index, r.doppler_bin, r.beam, r.range_gate))
    return out


def _wrapped_span(bins: List[int], n: int) -> int:
    """Smallest arc length (in bins) covering all of ``bins`` modulo n."""
    uniq = sorted(set(bins))
    if len(uniq) == 1:
        return 0
    gaps = [
        (uniq[(i + 1) % len(uniq)] - uniq[i]) % n for i in range(len(uniq))
    ]
    return n - max(gaps)
