"""PRI-staggered post-Doppler STAP signal processing.

A complete, numerically real implementation of the radar processing
chain the paper parallelises (its Figure 2):

1. :mod:`~repro.stap.doppler` — Doppler filter processing with PRI
   stagger (two staggered sub-CPIs);
2. :mod:`~repro.stap.weights` — adaptive weight computation: *easy*
   (spatial-only, J degrees of freedom) and *hard* (space-time, 2J DoF)
   Doppler bins, MVDR weights from diagonally loaded sample covariance;
3. :mod:`~repro.stap.beamform` — apply weights to form beams;
4. :mod:`~repro.stap.pulse` — LFM pulse compression (matched filter);
5. :mod:`~repro.stap.cfar` — cell-averaging CFAR detection.

:mod:`~repro.stap.scenario` synthesises phased-array CPI data cubes
(targets + clutter ridge + jammer + noise) so the chain can be validated
end-to-end: injected targets must be detected at the right range/Doppler/
beam cells.  :mod:`~repro.stap.chain` is the serial golden reference the
parallel pipeline is checked against, and :mod:`~repro.stap.costs` holds
the per-task flop/byte models that drive the timing simulation.
"""

from repro.stap.params import STAPParams
from repro.stap.datacube import DataCube
from repro.stap.scenario import Scenario, Target, Jammer, make_cube
from repro.stap.doppler import doppler_process, DopplerOutput
from repro.stap.weights import compute_weights_easy, compute_weights_hard, WeightSet
from repro.stap.beamform import beamform
from repro.stap.pulse import lfm_replica, pulse_compress
from repro.stap.cfar import ca_cfar, Detection
from repro.stap.cluster import ClusteredReport, cluster_detections
from repro.stap.chain import stap_chain, ChainResult
from repro.stap.costs import STAPCosts
from repro.stap.spectrum import fourier_spectrum, mvdr_spectrum
from repro.stap.analysis import clairvoyant_covariance, optimal_weights, output_sinr, sinr_loss_curve

__all__ = [
    "STAPParams",
    "DataCube",
    "Scenario",
    "Target",
    "Jammer",
    "make_cube",
    "doppler_process",
    "DopplerOutput",
    "compute_weights_easy",
    "compute_weights_hard",
    "WeightSet",
    "beamform",
    "lfm_replica",
    "pulse_compress",
    "ca_cfar",
    "Detection",
    "ClusteredReport",
    "cluster_detections",
    "stap_chain",
    "ChainResult",
    "STAPCosts",
    "fourier_spectrum",
    "mvdr_spectrum",
    "clairvoyant_covariance",
    "optimal_weights",
    "output_sinr",
    "sinr_loss_curve",
]
