"""PRI-staggered post-Doppler STAP signal processing.

A complete, numerically real implementation of the radar processing
chain the paper parallelises (its Figure 2):

1. :mod:`~repro.stap.doppler` — Doppler filter processing with PRI
   stagger (two staggered sub-CPIs);
2. :mod:`~repro.stap.weights` — adaptive weight computation: *easy*
   (spatial-only, J degrees of freedom) and *hard* (space-time, 2J DoF)
   Doppler bins, MVDR weights from diagonally loaded sample covariance;
3. :mod:`~repro.stap.beamform` — apply weights to form beams;
4. :mod:`~repro.stap.pulse` — LFM pulse compression (matched filter);
5. :mod:`~repro.stap.cfar` — cell-averaging CFAR detection.

:mod:`~repro.stap.scenario` synthesises phased-array CPI data cubes
(targets + clutter ridge + jammer + noise) so the chain can be validated
end-to-end: injected targets must be detected at the right range/Doppler/
beam cells.  :mod:`~repro.stap.chain` is the serial golden reference the
parallel pipeline is checked against, and :mod:`~repro.stap.costs` holds
the per-task flop/byte models that drive the timing simulation.
"""

from repro.stap.params import STAPParams
from repro.stap.datacube import DataCube
from repro.stap.scenario import Scenario, Target, Jammer, make_cube
from repro.stap.doppler import (
    DopplerOutput,
    bin_frequency,
    doppler_filter_arrays,
    doppler_process,
    doppler_window,
)
from repro.stap.weights import (
    WeightSet,
    compute_weights_easy,
    compute_weights_hard,
    initial_weights,
    solve_mvdr,
    steering_matrix_easy,
    steering_matrix_hard,
    training_gates,
)
from repro.stap.beamform import beamform
from repro.stap.pulse import (
    lfm_replica,
    pulse_compress,
    pulse_compress_direct,
    segment_length,
)
from repro.stap.cfar import (
    CFAR_METHODS,
    Detection,
    ca_cfar,
    cfar_threshold_factor,
    go_so_threshold_factor,
    os_threshold_factor,
)
from repro.stap.cluster import ClusteredReport, cluster_detections
from repro.stap.chain import ChainResult, run_cpi_stream, stap_chain
from repro.stap.costs import STAPCosts
from repro.stap.spectrum import fourier_spectrum, mvdr_spectrum, space_time_snapshots
from repro.stap.analysis import clairvoyant_covariance, optimal_weights, output_sinr, sinr_loss_curve

__all__ = [
    "STAPParams",
    "DataCube",
    "Scenario",
    "Target",
    "Jammer",
    "make_cube",
    "doppler_process",
    "doppler_filter_arrays",
    "doppler_window",
    "bin_frequency",
    "DopplerOutput",
    "compute_weights_easy",
    "compute_weights_hard",
    "solve_mvdr",
    "initial_weights",
    "training_gates",
    "steering_matrix_easy",
    "steering_matrix_hard",
    "WeightSet",
    "beamform",
    "lfm_replica",
    "pulse_compress",
    "pulse_compress_direct",
    "segment_length",
    "ca_cfar",
    "Detection",
    "CFAR_METHODS",
    "cfar_threshold_factor",
    "go_so_threshold_factor",
    "os_threshold_factor",
    "ClusteredReport",
    "cluster_detections",
    "stap_chain",
    "run_cpi_stream",
    "ChainResult",
    "STAPCosts",
    "fourier_spectrum",
    "mvdr_spectrum",
    "space_time_snapshots",
    "clairvoyant_covariance",
    "optimal_weights",
    "output_sinr",
    "sinr_loss_curve",
]
