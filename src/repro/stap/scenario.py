"""Synthetic phased-array radar scenes.

The paper's input data came from a phased-array radar (or recorded files
of it).  Neither is available, so this module synthesises statistically
faithful CPI cubes for a sidelooking uniform linear array:

* **targets** — point scatterers with an angle, a normalised Doppler
  frequency, a range gate, and an element-level SNR; their fast-time
  signature is the LFM waveform (so pulse compression focuses them);
* **clutter** — a ridge of patches uniform in sin(angle), each with the
  angle-coupled Doppler ``f = 0.5 sin(theta)`` of a sidelooking array and
  i.i.d. complex amplitudes per range gate (white in fast time: the
  chirp convolution of spatially-distributed scatter is statistically
  white, so we skip the convolution for generation speed);
* **jammer** — barrage noise from a fixed angle, white in pulse and
  range;
* **noise** — unit-power complex white noise.

Patch/target geometry is fixed per :class:`Scenario`; amplitude
realisations are redrawn per CPI (seeded by ``seed + cpi_index``), which
keeps the interference *covariance* stationary across CPIs — the
property the pipeline's temporal dependency (weights from the previous
CPI) relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.stap.datacube import DataCube
from repro.stap.params import STAPParams
from repro.stap.pulse import lfm_replica

__all__ = ["Target", "Jammer", "Scenario", "make_cube", "spatial_steering", "temporal_steering"]


def spatial_steering(angle: float, n_channels: int) -> np.ndarray:
    """ULA steering vector at half-wavelength spacing (complex64)."""
    j = np.arange(n_channels)
    return np.exp(1j * np.pi * j * np.sin(angle)).astype(np.complex64)


def temporal_steering(doppler: float, n_pulses: int) -> np.ndarray:
    """Pulse-to-pulse steering at normalised Doppler ``doppler`` (cycles/PRI)."""
    n = np.arange(n_pulses)
    return np.exp(2j * np.pi * doppler * n).astype(np.complex64)


@dataclass(frozen=True)
class Target:
    """A point target.

    Attributes
    ----------
    range_gate:
        Leading-edge range gate of the (uncompressed) echo.
    doppler:
        Normalised Doppler in cycles/PRI, in ``[-0.5, 0.5)``.
    angle:
        Azimuth in radians.
    snr_db:
        Element-level SNR in dB (per channel, per pulse, per range
        sample of the chirp) relative to unit noise power.
    """

    range_gate: int
    doppler: float
    angle: float
    snr_db: float = -15.0


@dataclass(frozen=True)
class Jammer:
    """A barrage noise jammer at a fixed angle."""

    angle: float
    jnr_db: float = 30.0


@dataclass(frozen=True)
class Scenario:
    """Scene geometry: targets, clutter ridge, jammers.

    Attributes
    ----------
    targets:
        Point targets to inject.
    jammers:
        Barrage jammers.
    cnr_db:
        Total clutter-to-noise ratio (element level) in dB; ``None``
        or ``-inf`` disables clutter.
    n_clutter_patches:
        Discrete patches across the ridge.
    clutter_beta:
        Doppler/angle coupling: patch Doppler = ``0.5 * beta * sin(theta)``.
    seed:
        Base RNG seed; CPI ``k`` uses ``seed + k``.
    """

    targets: Tuple[Target, ...] = ()
    jammers: Tuple[Jammer, ...] = ()
    cnr_db: float = 30.0
    n_clutter_patches: int = 48
    clutter_beta: float = 1.0
    seed: int = 1234

    @staticmethod
    def standard(params: STAPParams, seed: int = 1234) -> "Scenario":
        """A canonical validation scene: two targets, clutter, one jammer.

        Target A sits in an *easy* Doppler bin, target B in a *hard* bin,
        so both halves of the split pipeline are exercised.
        """
        easy_bin = params.easy_bins[len(params.easy_bins) // 2]
        hard = params.hard_bins
        hard_bin = hard[len(hard) // 4] if len(hard) > 2 else hard[0]
        to_doppler = lambda b: ((b / params.n_pulses) + 0.5) % 1.0 - 0.5
        return Scenario(
            targets=(
                Target(
                    range_gate=params.n_ranges // 3,
                    doppler=to_doppler(easy_bin),
                    angle=0.25,
                    snr_db=-10.0,
                ),
                Target(
                    range_gate=(2 * params.n_ranges) // 3,
                    doppler=to_doppler(hard_bin),
                    angle=-0.35,
                    snr_db=-8.0,
                ),
            ),
            jammers=(Jammer(angle=0.7, jnr_db=30.0),),
            cnr_db=25.0,
            seed=seed,
        )


def make_cube(params: STAPParams, scenario: Scenario, cpi_index: int = 0) -> DataCube:
    """Synthesise one CPI cube for ``scenario``.

    Deterministic given (params, scenario, cpi_index).
    """
    J, N, R = params.cube_shape
    rng = np.random.default_rng(scenario.seed + cpi_index)
    cube = (
        (rng.standard_normal((J, N, R)) + 1j * rng.standard_normal((J, N, R)))
        / np.sqrt(2.0)
    ).astype(params.dtype)

    # -- clutter ridge -----------------------------------------------------
    if scenario.cnr_db is not None and np.isfinite(scenario.cnr_db):
        P = scenario.n_clutter_patches
        if P < 1:
            raise ConfigurationError("n_clutter_patches must be >= 1")
        sin_angles = np.linspace(-0.95, 0.95, P)
        patch_power = 10.0 ** (scenario.cnr_db / 10.0) / P
        A_sp = np.exp(
            1j * np.pi * np.outer(np.arange(J), sin_angles)
        )  # (J, P) spatial steering per patch
        dop = 0.5 * scenario.clutter_beta * sin_angles
        B_tm = np.exp(2j * np.pi * np.outer(np.arange(N), dop))  # (N, P)
        # Fresh patch amplitudes per range gate each CPI: (P, R).
        G = (
            rng.standard_normal((P, R)) + 1j * rng.standard_normal((P, R))
        ) * np.sqrt(patch_power / 2.0)
        # cube[j,n,r] += sum_p A_sp[j,p] B_tm[n,p] G[p,r]
        ST = (A_sp[:, None, :] * B_tm[None, :, :]).reshape(J * N, P)
        cube += (ST @ G).reshape(J, N, R).astype(np.complex64)

    # -- jammers -----------------------------------------------------------
    for jam in scenario.jammers:
        a = spatial_steering(jam.angle, J)
        power = 10.0 ** (jam.jnr_db / 10.0)
        w = (
            rng.standard_normal((N, R)) + 1j * rng.standard_normal((N, R))
        ) * np.sqrt(power / 2.0)
        cube += (a[:, None, None] * w[None, :, :]).astype(np.complex64)

    # -- targets -----------------------------------------------------------
    chirp = lfm_replica(params.pulse_len)
    for tgt in scenario.targets:
        if not (0 <= tgt.range_gate < R):
            raise ConfigurationError(
                f"target range gate {tgt.range_gate} outside [0, {R})"
            )
        amp = np.sqrt(10.0 ** (tgt.snr_db / 10.0)) * np.sqrt(params.pulse_len)
        a = spatial_steering(tgt.angle, J)
        b = temporal_steering(tgt.doppler, N)
        span = min(params.pulse_len, R - tgt.range_gate)
        sig = amp * chirp[:span]
        cube[:, :, tgt.range_gate : tgt.range_gate + span] += (
            a[:, None, None] * b[None, :, None] * sig[None, None, :]
        ).astype(np.complex64)

    assert cube.dtype == params.dtype  # in-place adds must not promote
    return DataCube(cube, cpi_index=cpi_index)
