"""Adaptive weight computation (pipeline tasks 1 and 2).

Per Doppler bin, MVDR weights are computed from a diagonally loaded
sample covariance estimated over training range gates:

.. math::

    \\hat R = \\frac{1}{L} X X^H + \\delta\\,\\overline{\\mathrm{diag}}\\,I,
    \\qquad
    w_k = \\frac{\\hat R^{-1} v_k}{v_k^H \\hat R^{-1} v_k}

for each beam steering vector :math:`v_k`.  *Easy* bins adapt over the J
spatial channels; *hard* bins adapt over the 2J stacked space-time
channels, with the second sub-aperture's steering advanced by the bin's
Doppler phase (one PRI of stagger).

In the pipeline these tasks consume the **previous** CPI's Doppler
output (temporal dependency TD): interference statistics are stationary
across CPIs, so last CPI's training data yields valid weights for the
current one — and the latency path never waits for weight computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np
import scipy.linalg as sla

from repro.errors import ConfigurationError
from repro.stap.doppler import DopplerOutput, bin_frequency
from repro.stap.params import STAPParams
from repro.stap.scenario import spatial_steering

__all__ = [
    "WeightSet",
    "training_gates",
    "steering_matrix_easy",
    "steering_matrix_hard",
    "solve_mvdr",
    "sample_covariance",
    "mvdr_from_covariance",
    "CovarianceTracker",
    "initial_weights",
    "compute_weights_easy",
    "compute_weights_hard",
]


@dataclass
class WeightSet:
    """Adaptive weights for a group of Doppler bins.

    Attributes
    ----------
    weights:
        ``(n_bins, dof, n_beams)`` complex weights.
    bins:
        Doppler bin index per row.
    from_cpi:
        CPI index of the training data (the *previous* CPI in steady
        state).
    """

    weights: np.ndarray
    bins: Tuple[int, ...]
    from_cpi: int

    @property
    def nbytes(self) -> int:
        return int(self.weights.nbytes)


def training_gates(n_ranges: int, n_training: int) -> np.ndarray:
    """Evenly spread training gate indices across the range extent.

    Spreading (rather than taking a leading block) dilutes any single
    target's contamination of the covariance estimate.
    """
    if not (1 <= n_training <= n_ranges):
        raise ConfigurationError(
            f"n_training must be in [1, {n_ranges}], got {n_training}"
        )
    return np.linspace(0, n_ranges - 1, n_training).astype(np.intp)


def steering_matrix_easy(params: STAPParams) -> np.ndarray:
    """Spatial steering vectors for all beams: ``(J, n_beams)``."""
    cols = [spatial_steering(a, params.n_channels) for a in params.beam_angles]
    return np.stack(cols, axis=1)


def steering_matrix_hard(params: STAPParams, bin_index: int) -> np.ndarray:
    """Space-time steering for a hard bin: ``(2J, n_beams)``.

    The second sub-aperture (pulses shifted by one PRI) sees the target
    advanced by ``exp(2j pi f_bin)``.
    """
    v = steering_matrix_easy(params)
    phase = np.exp(2j * np.pi * bin_frequency(bin_index, params.n_doppler_bins))
    return np.concatenate([v, phase * v], axis=0).astype(np.complex64)


def sample_covariance(snapshots: np.ndarray) -> np.ndarray:
    """Unbiased-normalised sample covariance ``X X^H / L``."""
    if snapshots.ndim != 2:
        raise ConfigurationError("snapshots must be (dof, n_training)")
    return (snapshots @ snapshots.conj().T) / snapshots.shape[1]


def mvdr_from_covariance(
    R: np.ndarray,
    steering: np.ndarray,
    diagonal_load: float,
) -> np.ndarray:
    """MVDR weights from a given covariance (diagonal loading applied).

    Returns ``(dof, n_beams)`` distortionless weights per beam.
    """
    dof = R.shape[0]
    if steering.shape[0] != dof:
        raise ConfigurationError(
            f"steering dof {steering.shape[0]} != covariance dof {dof}"
        )
    load = diagonal_load * (np.real(np.trace(R)) / dof + 1e-12)
    R = R + load * np.eye(dof, dtype=R.dtype)
    cho = sla.cho_factor(R, lower=True, check_finite=False)
    Rinv_v = sla.cho_solve(cho, steering, check_finite=False)
    denom = np.sum(steering.conj() * Rinv_v, axis=0)  # v^H R^-1 v, per beam
    return (Rinv_v / denom[None, :]).astype(np.complex64)


def solve_mvdr(
    snapshots: np.ndarray,
    steering: np.ndarray,
    diagonal_load: float,
) -> np.ndarray:
    """MVDR weights for one bin.

    Parameters
    ----------
    snapshots:
        ``(dof, n_training)`` training snapshots.
    steering:
        ``(dof, n_beams)`` steering matrix.
    diagonal_load:
        Loading as a fraction of the mean diagonal power.

    Returns
    -------
    np.ndarray
        ``(dof, n_beams)`` weights, distortionless per beam
        (``v^H w = 1``).
    """
    return mvdr_from_covariance(
        sample_covariance(snapshots), steering, diagonal_load
    )


class CovarianceTracker:
    """Exponentially smoothed covariance across CPIs (forgetting factor).

    With memory :math:`\\lambda \\in [0, 1)`, the covariance used at CPI
    *k* is

    .. math:: R_k = \\lambda R_{k-1} + (1 - \\lambda)\\,\\hat R_k,

    an exponentially weighted average over past CPIs.  Interference
    statistics are stationary across CPIs (the premise of the pipeline's
    temporal dependency), so smoothing raises the *effective* training
    count beyond one CPI's gates — sharper weights when ``n_training``
    is tight, the standard recursive estimator in operational systems.
    ``memory = 0`` reproduces the paper's single-CPI training exactly.

    State is keyed by Doppler-bin label, so a tracker can serve any
    subset of bins (each pipeline weight node tracks only its rows).
    """

    def __init__(self, memory: float) -> None:
        if not (0.0 <= memory < 1.0):
            raise ConfigurationError(
                f"covariance memory must be in [0, 1), got {memory}"
            )
        self.memory = memory
        self._state: dict = {}

    def smooth(self, bin_label: int, r_hat: np.ndarray) -> np.ndarray:
        """Blend the new estimate into the running one and return it."""
        if self.memory == 0.0:
            return r_hat
        prev = self._state.get(bin_label)
        if prev is None:
            blended = r_hat
        else:
            blended = self.memory * prev + (1.0 - self.memory) * r_hat
        self._state[bin_label] = blended
        return blended


def initial_weights(
    params: STAPParams,
    hard: bool,
    bins: Sequence[int],
) -> np.ndarray:
    """Non-adaptive bootstrap weights for the first CPI.

    Before any training data exists (CPI 0), the pipeline beamforms with
    quiescent weights ``w = v / (v^H v)`` — MVDR with an identity
    covariance.  Returns ``(len(bins), dof, n_beams)``.
    """
    out = []
    v_easy = steering_matrix_easy(params)
    for b in bins:
        v = steering_matrix_hard(params, b) if hard else v_easy
        norm = np.sum(np.abs(v) ** 2, axis=0)
        out.append((v / norm[None, :]).astype(np.complex64))
    if not out:
        dof = params.hard_dof if hard else params.easy_dof
        return np.zeros((0, dof, params.n_beams), np.complex64)
    return np.stack(out, axis=0)


def _compute_group(
    data: np.ndarray,
    bins: Sequence[int],
    params: STAPParams,
    hard: bool,
    from_cpi: int,
    bin_subset: Optional[Sequence[int]] = None,
    tracker: Optional[CovarianceTracker] = None,
) -> WeightSet:
    gates = training_gates(data.shape[-1], min(params.n_training, data.shape[-1]))
    rows = range(len(bins)) if bin_subset is None else bin_subset
    out = []
    sel_bins = []
    v_easy = steering_matrix_easy(params)
    for row in rows:
        snapshots = data[row][:, gates]
        v = steering_matrix_hard(params, bins[row]) if hard else v_easy
        r_hat = sample_covariance(snapshots)
        if tracker is not None:
            r_hat = tracker.smooth(bins[row], r_hat)
        out.append(mvdr_from_covariance(r_hat, v, params.diagonal_load))
        sel_bins.append(bins[row])
    return WeightSet(
        weights=np.stack(out, axis=0) if out else np.zeros((0, 0, 0), np.complex64),
        bins=tuple(sel_bins),
        from_cpi=from_cpi,
    )


def compute_weights_easy(
    dop: DopplerOutput,
    params: STAPParams,
    bin_subset: Optional[Sequence[int]] = None,
    tracker: Optional[CovarianceTracker] = None,
) -> WeightSet:
    """Weights for (a subset of the rows of) the easy bins.

    ``bin_subset`` selects *row indices into* ``dop.easy`` — this is how
    a pipeline node computes just its partition.  ``tracker`` enables
    cross-CPI covariance smoothing (see :class:`CovarianceTracker`).
    """
    return _compute_group(
        dop.easy, dop.easy_bins, params, hard=False, from_cpi=dop.cpi_index,
        bin_subset=bin_subset, tracker=tracker,
    )


def compute_weights_hard(
    dop: DopplerOutput,
    params: STAPParams,
    bin_subset: Optional[Sequence[int]] = None,
    tracker: Optional[CovarianceTracker] = None,
) -> WeightSet:
    """Weights for (a subset of the rows of) the hard bins."""
    return _compute_group(
        dop.hard, dop.hard_bins, params, hard=True, from_cpi=dop.cpi_index,
        bin_subset=bin_subset, tracker=tracker,
    )
