"""Doppler filter processing with PRI stagger (pipeline task 0).

The modified PRI-staggered post-Doppler algorithm forms **two staggered
sub-CPIs** from the N pulses — pulses ``0..N-2`` and ``1..N-1`` — and
runs an identical windowed Doppler filter bank (zero-padded to N bins)
over each.  Per Doppler bin the two sub-CPI outputs differ by the phase
advance of one PRI, which is what gives the *hard* bins their second set
of J adaptive degrees of freedom:

* **easy** bins keep only the first sub-CPI: a ``(J, R)`` snapshot per
  bin, adapted spatially;
* **hard** bins stack both sub-CPIs: a ``(2J, R)`` space-time snapshot
  per bin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.stap.datacube import DataCube
from repro.stap.params import STAPParams

__all__ = ["DopplerOutput", "doppler_process", "doppler_filter_arrays", "doppler_window", "bin_frequency", "WINDOW_KINDS"]


#: Doppler taper kinds supported by :func:`doppler_window`.
WINDOW_KINDS = ("hann", "hamming", "blackman", "rect")


def doppler_window(n: int, kind: str = "hann") -> np.ndarray:
    """Filter-bank taper of length ``n`` (float32).

    ``kind`` trades mainlobe width against Doppler sidelobe level:
    ``rect`` (-13 dB sidelobes), ``hamming`` (-43 dB), ``hann``
    (-31 dB, the default — the conventional STAP choice), ``blackman``
    (-58 dB).  Low sidelobes keep strong clutter from leaking into
    *easy* Doppler bins, where only spatial adaptivity is available.
    """
    if n < 1:
        raise ConfigurationError(f"window length must be >= 1, got {n}")
    if kind not in WINDOW_KINDS:
        raise ConfigurationError(
            f"unknown window kind {kind!r}; choose from {WINDOW_KINDS}"
        )
    if n == 1 or kind == "rect":
        return np.ones(n, dtype=np.float32)
    x = 2.0 * np.pi * np.arange(n) / (n - 1)
    if kind == "hann":
        w = 0.5 - 0.5 * np.cos(x)
    elif kind == "hamming":
        w = 0.54 - 0.46 * np.cos(x)
    else:  # blackman
        w = 0.42 - 0.5 * np.cos(x) + 0.08 * np.cos(2.0 * x)
    # Cosine sums can dip a hair below zero at the endpoints in float32.
    return np.maximum(w, 0.0).astype(np.float32)


def bin_frequency(bin_index: int, n_bins: int) -> float:
    """Normalised Doppler frequency (cycles/PRI) of a filter-bank bin,
    wrapped to ``[-0.5, 0.5)``."""
    f = bin_index / n_bins
    return ((f + 0.5) % 1.0) - 0.5


@dataclass
class DopplerOutput:
    """Filter-bank output split into easy/hard bin groups.

    Attributes
    ----------
    easy:
        ``(n_easy_bins, J, R)`` — first sub-CPI only.
    hard:
        ``(n_hard_bins, 2J, R)`` — both sub-CPIs stacked channel-wise.
    easy_bins / hard_bins:
        The Doppler bin index each row corresponds to.
    cpi_index:
        CPI this output came from (drives the temporal dependency).
    """

    easy: np.ndarray
    hard: np.ndarray
    easy_bins: Tuple[int, ...]
    hard_bins: Tuple[int, ...]
    cpi_index: int

    @property
    def n_ranges(self) -> int:
        return self.easy.shape[-1]

    @property
    def nbytes(self) -> int:
        """Payload bytes (drives simulated transfer costs)."""
        return int(self.easy.nbytes + self.hard.nbytes)


def doppler_filter_arrays(data: np.ndarray, params: STAPParams):
    """Filter-bank core on a (J, N, R') slab; returns ``(easy, hard)``.

    ``R'`` may be any positive width — pipeline Doppler nodes call this
    on their range slab; the full-cube :func:`doppler_process` wraps it.
    Columns are independent, so slab results equal the corresponding
    columns of the full-cube result.
    """
    J, N = params.n_channels, params.n_pulses
    if data.ndim != 3 or data.shape[0] != J or data.shape[1] != N:
        raise ConfigurationError(
            f"slab shape {data.shape} does not match (J={J}, N={N}, *)"
        )
    win = doppler_window(N - 1, getattr(params, "window_kind", "hann"))
    sub_a = data[:, : N - 1, :] * win[None, :, None]
    sub_b = data[:, 1:, :] * win[None, :, None]
    fa = np.transpose(np.fft.fft(sub_a, n=N, axis=1).astype(params.dtype), (1, 0, 2))
    fb = np.transpose(np.fft.fft(sub_b, n=N, axis=1).astype(params.dtype), (1, 0, 2))
    easy = np.ascontiguousarray(fa[list(params.easy_bins)])
    hard = np.ascontiguousarray(
        np.concatenate([fa[list(params.hard_bins)], fb[list(params.hard_bins)]], axis=1)
    )
    return easy, hard


def doppler_process(cube: DataCube, params: STAPParams) -> DopplerOutput:
    """Run the staggered Doppler filter bank over one CPI cube."""
    J, N, R = params.cube_shape
    if cube.shape != (J, N, R):
        raise ConfigurationError(
            f"cube shape {cube.shape} does not match params {params.cube_shape}"
        )
    easy, hard = doppler_filter_arrays(cube.data, params)
    return DopplerOutput(
        easy=easy,
        hard=hard,
        easy_bins=params.easy_bins,
        hard_bins=params.hard_bins,
        cpi_index=cube.cpi_index,
    )
