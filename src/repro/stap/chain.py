"""Serial golden-reference STAP chain.

Runs the full algorithm of the paper's Figure 2 in one process, with the
same temporal dependency as the pipeline: weights for CPI *k* are
trained on CPI *k-1*'s Doppler output.  The parallel pipeline executor
(compute mode) is validated against this chain — identical detection
reports, CPI for CPI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.stap.beamform import beamform
from repro.stap.cfar import Detection, ca_cfar
from repro.stap.datacube import DataCube
from repro.stap.doppler import DopplerOutput, doppler_process
from repro.stap.params import STAPParams
from repro.stap.pulse import pulse_compress
from repro.stap.weights import (
    CovarianceTracker,
    WeightSet,
    compute_weights_easy,
    compute_weights_hard,
    initial_weights,
)

__all__ = ["ChainResult", "stap_chain", "assemble_bins", "run_cpi_stream"]


@dataclass
class ChainResult:
    """Everything the serial chain produced for one CPI."""

    cpi_index: int
    doppler: DopplerOutput
    weights_easy: WeightSet
    weights_hard: WeightSet
    beams: np.ndarray          # (n_doppler_bins, n_beams, n_ranges), bin order
    compressed: np.ndarray     # same shape, after pulse compression
    detections: List[Detection]


def assemble_bins(
    easy: np.ndarray,
    hard: np.ndarray,
    easy_bins,
    hard_bins,
    n_bins: int,
) -> np.ndarray:
    """Interleave easy/hard rows back into Doppler-bin order.

    The pipeline's pulse-compression task receives the two beamforming
    streams separately; this is the merge it performs.
    """
    out = np.empty((n_bins,) + easy.shape[1:], dtype=easy.dtype)
    out[list(easy_bins)] = easy
    out[list(hard_bins)] = hard
    return out


def stap_chain(
    cube: DataCube,
    params: STAPParams,
    prev_doppler: Optional[DopplerOutput] = None,
    trackers: "Optional[tuple]" = None,
) -> ChainResult:
    """Process one CPI through the whole chain.

    Parameters
    ----------
    cube:
        The current CPI.
    params:
        Algorithm parameters.
    prev_doppler:
        Previous CPI's Doppler output for weight training.  ``None``
        uses quiescent (non-adaptive) bootstrap weights — the pipeline's
        first-dwell behaviour, so chain and pipeline stay equivalent
        CPI for CPI.
    trackers:
        Optional ``(easy, hard)`` :class:`CovarianceTracker` pair for
        cross-CPI covariance smoothing (stateful — pass the same pair
        for every CPI of a stream, as :func:`run_cpi_stream` does).
    """
    dop = doppler_process(cube, params)
    t_easy, t_hard = trackers if trackers is not None else (None, None)
    if prev_doppler is not None:
        w_easy = compute_weights_easy(prev_doppler, params, tracker=t_easy)
        w_hard = compute_weights_hard(prev_doppler, params, tracker=t_hard)
    else:
        w_easy = WeightSet(
            initial_weights(params, hard=False, bins=dop.easy_bins),
            bins=dop.easy_bins,
            from_cpi=-1,
        )
        w_hard = WeightSet(
            initial_weights(params, hard=True, bins=dop.hard_bins),
            bins=dop.hard_bins,
            from_cpi=-1,
        )
    y_easy = beamform(dop.easy, w_easy)
    y_hard = beamform(dop.hard, w_hard)
    beams = assemble_bins(
        y_easy, y_hard, dop.easy_bins, dop.hard_bins, params.n_doppler_bins
    )
    compressed = pulse_compress(beams, params.pulse_len)
    detections = ca_cfar(
        compressed,
        bins=list(range(params.n_doppler_bins)),
        window=params.cfar_window,
        guard=params.cfar_guard,
        pfa=params.pfa,
        cpi_index=cube.cpi_index,
        method=params.cfar_method,
    )
    return ChainResult(
        cpi_index=cube.cpi_index,
        doppler=dop,
        weights_easy=w_easy,
        weights_hard=w_hard,
        beams=beams,
        compressed=compressed,
        detections=detections,
    )


def run_cpi_stream(
    cubes: List[DataCube],
    params: STAPParams,
) -> List[ChainResult]:
    """Process a stream of CPIs with the steady-state temporal dependency.

    When ``params.covariance_memory > 0``, cross-CPI covariance trackers
    are threaded through the stream (the recursive estimator the
    pipeline's weight tasks also maintain).
    """
    results: List[ChainResult] = []
    prev: Optional[DopplerOutput] = None
    trackers = None
    if params.covariance_memory > 0.0:
        trackers = (
            CovarianceTracker(params.covariance_memory),
            CovarianceTracker(params.covariance_memory),
        )
    for cube in cubes:
        res = stap_chain(cube, params, prev_doppler=prev, trackers=trackers)
        results.append(res)
        prev = res.doppler
    return results
