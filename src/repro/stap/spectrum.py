"""Angle-Doppler spectrum diagnostics.

The classic STAP picture: clutter from a sidelooking array traces a
diagonal *ridge* through the angle-Doppler plane (Doppler proportional
to sin(angle)), a jammer paints a vertical *line* at its angle, and a
moving target sits at an isolated point off the ridge.  These estimators
make that picture computable from a CPI cube — for scene debugging, for
sanity-checking the synthetic scenario generator, and for the clutter-
spectrum example.

Two estimators:

* :func:`fourier_spectrum` — conventional (Bartlett) beam/Doppler scan:
  fast, sidelobe-limited;
* :func:`mvdr_spectrum` — Capon's minimum-variance estimator from the
  space-time covariance: sharper, at the cost of a (small) matrix solve
  per look direction.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
import scipy.linalg as sla

from repro.errors import ConfigurationError
from repro.stap.datacube import DataCube

__all__ = ["space_time_snapshots", "fourier_spectrum", "mvdr_spectrum"]


def space_time_snapshots(
    cube: DataCube, n_pulses_sub: int = 8
) -> np.ndarray:
    """Slide a ``(J, n_pulses_sub)`` space-time aperture over the cube.

    Returns ``(J * n_pulses_sub, n_snapshots)`` snapshots: one per
    (range gate, pulse offset), vectorised channel-major.  This is the
    standard sub-CPI smoothing that makes a full space-time covariance
    estimable from one cube.
    """
    J, N, R = cube.shape
    if not (1 <= n_pulses_sub <= N):
        raise ConfigurationError(
            f"n_pulses_sub must be in [1, {N}], got {n_pulses_sub}"
        )
    n_offsets = N - n_pulses_sub + 1
    # snapshots[j, p, o, r] = data[j, o + p, r]
    out = np.empty((J, n_pulses_sub, n_offsets, R), dtype=cube.data.dtype)
    for p in range(n_pulses_sub):
        out[:, p, :, :] = cube.data[:, p : p + n_offsets, :]
    return out.reshape(J * n_pulses_sub, n_offsets * R)


def _steering_grid(
    n_channels: int,
    n_pulses_sub: int,
    sin_angles: np.ndarray,
    dopplers: np.ndarray,
) -> np.ndarray:
    """Space-time steering vectors for a grid: ``(JP, n_ang, n_dop)``."""
    j = np.arange(n_channels)
    p = np.arange(n_pulses_sub)
    a = np.exp(1j * np.pi * np.outer(j, sin_angles))          # (J, A)
    b = np.exp(2j * np.pi * np.outer(p, dopplers))            # (P, D)
    # v[jp, angle, doppler] = a[j, angle] * b[p, doppler]
    v = a[:, None, :, None] * b[None, :, None, :]
    JP = n_channels * n_pulses_sub
    return v.reshape(JP, len(sin_angles), len(dopplers))


def fourier_spectrum(
    cube: DataCube,
    n_angles: int = 33,
    n_dopplers: int = 33,
    n_pulses_sub: int = 8,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Conventional angle-Doppler power spectrum.

    Returns ``(power, sin_angles, dopplers)`` with ``power`` shaped
    ``(n_angles, n_dopplers)`` in linear units (normalised steering).
    """
    snaps = space_time_snapshots(cube, n_pulses_sub)
    JP = snaps.shape[0]
    R = (snaps @ snaps.conj().T) / snaps.shape[1]
    sin_angles = np.linspace(-1.0, 1.0, n_angles)
    dopplers = np.linspace(-0.5, 0.5, n_dopplers)
    V = _steering_grid(cube.n_channels, n_pulses_sub, sin_angles, dopplers)
    Vf = V.reshape(JP, -1) / np.sqrt(JP)
    power = np.real(np.sum(Vf.conj() * (R @ Vf), axis=0))
    return power.reshape(n_angles, n_dopplers), sin_angles, dopplers


def mvdr_spectrum(
    cube: DataCube,
    n_angles: int = 33,
    n_dopplers: int = 33,
    n_pulses_sub: int = 8,
    diagonal_load: float = 0.01,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Capon (MVDR) angle-Doppler spectrum: ``1 / (v^H R^-1 v)``."""
    snaps = space_time_snapshots(cube, n_pulses_sub)
    JP = snaps.shape[0]
    R = (snaps @ snaps.conj().T) / snaps.shape[1]
    load = diagonal_load * (np.real(np.trace(R)) / JP + 1e-12)
    R = R + load * np.eye(JP, dtype=R.dtype)
    cho = sla.cho_factor(R, lower=True, check_finite=False)
    sin_angles = np.linspace(-1.0, 1.0, n_angles)
    dopplers = np.linspace(-0.5, 0.5, n_dopplers)
    V = _steering_grid(cube.n_channels, n_pulses_sub, sin_angles, dopplers)
    Vf = V.reshape(JP, -1)
    RinvV = sla.cho_solve(cho, Vf, check_finite=False)
    denom = np.real(np.sum(Vf.conj() * RinvV, axis=0))
    power = JP / np.maximum(denom, 1e-300)
    return power.reshape(n_angles, n_dopplers), sin_angles, dopplers
