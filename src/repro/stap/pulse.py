"""Pulse compression (matched filtering against the LFM waveform).

In the paper's pipeline this runs *after* beamforming — valid because
pulse compression is linear in fast time and commutes with the spatial/
Doppler linear operations.  Compression is implemented as FFT-based
correlation along the range axis and returns the same number of range
gates as the input (a target whose echo starts at gate ``r0`` focuses to
a peak *at* ``r0``).
"""

from __future__ import annotations

import math
from functools import lru_cache

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["lfm_replica", "pulse_compress", "pulse_compress_direct", "segment_length"]


@lru_cache(maxsize=32)
def lfm_replica(pulse_len: int) -> np.ndarray:
    """Unit-energy linear-FM (chirp) waveform of ``pulse_len`` samples.

    Phase ``pi * k^2 / L`` sweeps half the sampling band — a conventional
    discrete LFM with ~L:1 compression ratio.
    """
    if pulse_len < 1:
        raise ConfigurationError(f"pulse_len must be >= 1, got {pulse_len}")
    k = np.arange(pulse_len)
    c = np.exp(1j * np.pi * k * k / pulse_len)
    return (c / np.sqrt(pulse_len)).astype(np.complex64)


def segment_length(pulse_len: int) -> int:
    """Overlap-save FFT segment length: the power of two >= 4 * pulse_len.

    A 4x ratio keeps >=75% of each segment's outputs valid while the
    FFTs stay short — the standard efficiency sweet spot for streaming
    matched filters.
    """
    if pulse_len < 1:
        raise ConfigurationError(f"pulse_len must be >= 1, got {pulse_len}")
    return int(2 ** math.ceil(math.log2(4 * pulse_len)))


def pulse_compress(data: np.ndarray, pulse_len: int) -> np.ndarray:
    """Matched-filter ``data`` along its last axis (overlap-save).

    Parameters
    ----------
    data:
        Complex array ``(..., n_ranges)`` of beamformed fast-time samples.
    pulse_len:
        LFM length; the replica is regenerated (cached) from it.

    Returns
    -------
    np.ndarray
        Same shape as ``data``; gate ``r`` holds the correlation
        ``y[r] = sum_k conj(c[k]) x[r + k]`` — a matched echo starting at
        gate ``r0`` focuses to a peak at ``r0`` with amplitude gain
        ``sqrt(pulse_len)`` over a single echo sample (SNR gain
        ``pulse_len`` for the unit-energy replica).

    The filter runs in overlap-save segments of
    :func:`segment_length` points (step ``L - pulse_len + 1``), the
    production streaming formulation: O(R log pulse_len) instead of the
    O(R log R) of one monolithic FFT, and numerically identical to
    direct correlation.
    """
    if data.ndim < 1:
        raise ConfigurationError("data must have a range axis")
    n_ranges = data.shape[-1]
    if pulse_len > n_ranges:
        raise ConfigurationError(
            f"pulse_len {pulse_len} exceeds range extent {n_ranges}"
        )
    replica = lfm_replica(pulse_len)
    L = segment_length(pulse_len)
    step = L - pulse_len + 1
    C = np.conj(np.fft.fft(replica, n=L))
    # Zero-pad the tail so echoes near the end correlate against silence
    # (a "valid" correlation, not a circular one).
    pad = np.zeros(data.shape[:-1] + (pulse_len - 1,), dtype=data.dtype)
    x = np.concatenate([data, pad], axis=-1)
    out = np.empty(data.shape[:-1] + (n_ranges,), dtype=np.complex64)
    for s in range(0, n_ranges, step):
        seg = x[..., s : s + L]
        if seg.shape[-1] < L:
            zpad = np.zeros(data.shape[:-1] + (L - seg.shape[-1],), dtype=data.dtype)
            seg = np.concatenate([seg, zpad], axis=-1)
        y = np.fft.ifft(np.fft.fft(seg, axis=-1) * C, axis=-1)
        take = min(step, n_ranges - s)
        out[..., s : s + take] = y[..., :take]
    return out


def pulse_compress_direct(data: np.ndarray, pulse_len: int) -> np.ndarray:
    """Reference O(R * pulse_len) time-domain correlation.

    Used by tests to validate the overlap-save implementation; identical
    output (to float tolerance) to :func:`pulse_compress`.
    """
    if data.ndim < 1:
        raise ConfigurationError("data must have a range axis")
    n_ranges = data.shape[-1]
    if pulse_len > n_ranges:
        raise ConfigurationError(
            f"pulse_len {pulse_len} exceeds range extent {n_ranges}"
        )
    replica = lfm_replica(pulse_len)
    pad = np.zeros(data.shape[:-1] + (pulse_len - 1,), dtype=data.dtype)
    x = np.concatenate([data, pad], axis=-1)
    out = np.zeros(data.shape[:-1] + (n_ranges,), dtype=np.complex64)
    for k in range(pulse_len):
        out += np.conj(replica[k]) * x[..., k : k + n_ranges]
    return out
