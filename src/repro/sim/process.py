"""Generator-based simulated processes.

A :class:`Process` drives a generator: each value the generator yields
must be an :class:`~repro.sim.events.Event` (or subclass); the process
suspends until the event fires and is resumed with the event's value
(``throw``-n into if the event failed).  A Process is itself an Event that
fires when the generator returns, carrying the generator's return value —
so processes can wait on each other by yielding them.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.errors import SimulationError
from repro.sim.events import Event

__all__ = ["Process"]


class Process(Event):
    """A running simulated process; also an event firing at completion."""

    __slots__ = ("generator", "_waiting_on")

    def __init__(self, kernel: "Kernel", generator: Generator, name: str = "") -> None:  # noqa: F821
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"process body must be a generator, got {type(generator).__name__}"
            )
        super().__init__(kernel, name=name or getattr(generator, "__name__", "process"))
        self.generator = generator
        self._waiting_on: Event | None = None
        kernel._active += 1
        # First resumption happens via the queue so that process start
        # order matches spawn order deterministically.
        kernel._call_soon(self._resume, None, None)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def _resume(self, send_value: Any, throw_exc: BaseException | None) -> None:
        if self.triggered:  # interrupted/finished while a resume was queued
            return
        try:
            if throw_exc is not None:
                target = self.generator.throw(throw_exc)
            else:
                target = self.generator.send(send_value)
        except StopIteration as stop:
            self.kernel._active -= 1
            self.succeed(getattr(stop, "value", None))
            return
        except BaseException as exc:  # generator raised: fail the process
            self.kernel._active -= 1
            # If nobody is waiting on this process when it fails, surface
            # the exception through Kernel.run() rather than letting the
            # simulation deadlock silently.
            had_waiters = bool(self.callbacks)
            self.fail(exc)
            if not had_waiters:
                self.kernel._unobserved_failures.append(exc)
            return

        if not isinstance(target, Event):
            # Tell the generator it yielded garbage; this surfaces the bug
            # at the offending ``yield`` with a clear traceback.
            self.kernel._call_soon(
                self._resume,
                None,
                SimulationError(
                    f"process {self.name!r} yielded non-event {target!r}"
                ),
            )
            return

        self._waiting_on = target
        if target.triggered:
            # Already fired: resume on the next queue step with its value.
            self.kernel._call_soon(self._on_event, target)
        else:
            target.callbacks.append(self._on_event)

    def _on_event(self, event: Event) -> None:
        self._waiting_on = None
        if event.ok:
            self._resume(event.value, None)
        else:
            self._resume(None, event.value)

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` into the process at the current time."""
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        waiting = self._waiting_on
        if waiting is not None and self._on_event in waiting.callbacks:
            waiting.callbacks.remove(self._on_event)
        self._waiting_on = None
        self.kernel._call_soon(self._resume, None, Interrupt(cause))


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause
