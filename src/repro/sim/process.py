"""Generator-based simulated processes.

A :class:`Process` drives a generator: each value the generator yields
must be an :class:`~repro.sim.events.Event` (or subclass); the process
suspends until the event fires and is resumed with the event's value
(``throw``-n into if the event failed).  A Process is itself an Event that
fires when the generator returns, carrying the generator's return value —
so processes can wait on each other by yielding them.

The suspend/resume cycle is the single hottest path of the simulator
(hundreds of thousands of traversals per pipeline cell), so it is written
against kernel internals rather than the public API:

* event state is read through direct slot access, not the
  ``triggered``/``ok``/``value`` properties;
* the ``_on_event`` callback is pre-bound once per process;
* a yield on an already-fired event appends a ``_KIND_RESUME`` entry to
  the kernel's now lane directly — the kernel's dispatch loop unpacks the
  event's outcome and calls :meth:`Process._resume` with no intermediate
  ``_on_event``/``_call_soon`` frames;
* the "is it an Event?" check is EAFP — reading ``target._value`` — so
  the common case costs an attribute load instead of an ``isinstance``
  call.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.errors import SimulationError
from repro.sim.events import _KIND_RESUME, _PENDING, Event

__all__ = ["Process"]


class Process(Event):
    """A running simulated process; also an event firing at completion."""

    __slots__ = ("generator", "_waiting_on", "_on_event_cb")

    def __init__(self, kernel: "Kernel", generator: Generator, name: str = "") -> None:  # noqa: F821
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"process body must be a generator, got {type(generator).__name__}"
            )
        # Event.__init__ inlined: processes are spawned per message/request
        # in the MPI layer, so construction is itself a hot path.
        self.kernel = kernel
        self.name = name or getattr(generator, "__name__", "process")
        self._value = _PENDING
        self._ok = None
        self.callbacks = []
        self._abandoned = False
        self.generator = generator
        self._waiting_on: Event | None = None
        # One bound method for the life of the process; appended to every
        # event this process waits on.
        self._on_event_cb = self._on_event
        kernel._active += 1
        # First resumption happens via the queue so that process start
        # order matches spawn order deterministically.  ``b is None``
        # marks the initial resume in the kernel's dispatch.
        kernel._seq += 1
        kernel._lane.append((kernel._seq, _KIND_RESUME, self, None))

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is _PENDING

    def _resume(self, send_value: Any, throw_exc: BaseException | None) -> None:
        if self._value is not _PENDING:  # interrupted/finished while a resume was queued
            return
        try:
            if throw_exc is not None:
                target = self.generator.throw(throw_exc)
            else:
                target = self.generator.send(send_value)
        except StopIteration as stop:
            self.kernel._active -= 1
            self.succeed(stop.value)
            # Break the instance -> bound-method -> instance cycle so the
            # finished process is freed by reference counting instead of
            # lingering as cyclic garbage for the GC (pipeline cells shed
            # tens of thousands of processes; chasing their cycles costs
            # ~15% of wall time on full-size cells).
            self._on_event_cb = None
            return
        except BaseException as exc:  # generator raised: fail the process
            self.kernel._active -= 1
            # If nobody is waiting on this process when it fails, surface
            # the exception through Kernel.run() rather than letting the
            # simulation deadlock silently.
            had_waiters = bool(self.callbacks)
            self.fail(exc)
            self._on_event_cb = None  # break the self-cycle (see above)
            if not had_waiters:
                self.kernel._unobserved_failures.append(exc)
            return

        try:
            pending = target._value is _PENDING
        except AttributeError:
            # Not an Event.  Tell the generator it yielded garbage; this
            # surfaces the bug at the offending ``yield`` with a clear
            # traceback.
            self.kernel._call_soon(
                self._resume,
                None,
                SimulationError(
                    f"process {self.name!r} yielded non-event {target!r}"
                ),
            )
            return

        self._waiting_on = target
        if pending:
            target.callbacks.append(self._on_event_cb)
        else:
            # Already fired: resume on the next queue step with its value.
            # The kernel's _KIND_RESUME dispatch reads the outcome off the
            # event and calls _resume directly.
            k = self.kernel
            k._seq += 1
            k._lane.append((k._seq, _KIND_RESUME, self, target))

    def _on_event(self, event: Event) -> None:
        self._waiting_on = None
        if event._ok:
            self._resume(event._value, None)
        else:
            self._resume(None, event._value)

    def interrupt(self, cause: Any = None) -> None:
        """Throw an :class:`Interrupt` into the process at the current time."""
        if self._value is not _PENDING:
            raise SimulationError(f"cannot interrupt finished process {self.name!r}")
        waiting = self._waiting_on
        if waiting is not None and self._on_event_cb in waiting.callbacks:
            waiting.callbacks.remove(self._on_event_cb)
            if not waiting.callbacks:
                # Last listener gone from a still-pending event: nobody
                # will ever consume its outcome.  Resource queues skip
                # such dead waiters instead of granting them a slot.
                waiting._abandoned = True
        self._waiting_on = None
        self.kernel._call_soon(self._resume, None, Interrupt(cause))


class Interrupt(Exception):
    """Raised inside a process when another process interrupts it."""

    def __init__(self, cause: Any = None) -> None:
        super().__init__(cause)
        self.cause = cause
