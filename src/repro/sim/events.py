"""Event primitives for the discrete-event kernel.

An :class:`Event` is a one-shot waitable: it starts *pending*, is
*triggered* exactly once with an optional value, and every process waiting
on it is resumed with that value.  :class:`Timeout` is an event that the
kernel triggers after a fixed simulated delay.  :class:`AllOf` /
:class:`AnyOf` compose events.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.errors import SimulationError

__all__ = ["Event", "Timeout", "AllOf", "AnyOf"]

# Sentinel distinguishing "no value yet" from a triggered value of None.
_PENDING = object()


class Event:
    """A one-shot waitable that processes can ``yield`` on.

    Parameters
    ----------
    kernel:
        Owning kernel.  Needed so that ``succeed`` can schedule the
        callbacks at the current simulated time.
    name:
        Optional human-readable label used in ``repr`` and error messages.
    """

    __slots__ = ("kernel", "name", "_value", "_ok", "callbacks")

    def __init__(self, kernel: "Kernel", name: str = "") -> None:  # noqa: F821
        self.kernel = kernel
        self.name = name
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        # Callbacks run when the event fires; each receives this event.
        self.callbacks: List[Callable[["Event"], None]] = []

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed` or :meth:`fail` has been called."""
        return self._value is not _PENDING

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The value the event was triggered with.

        Raises
        ------
        SimulationError
            If the event has not been triggered yet.
        """
        if self._value is _PENDING:
            raise SimulationError(f"event {self!r} has no value yet")
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``.

        Waiting processes are scheduled to resume at the current simulated
        time (not synchronously), preserving run-to-yield semantics.
        """
        if self.triggered:
            raise SimulationError(f"event {self!r} already triggered")
        self._value = value
        self._ok = True
        self.kernel._schedule_event(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters get ``exception`` thrown."""
        if self.triggered:
            raise SimulationError(f"event {self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._value = exception
        self._ok = False
        self.kernel._schedule_event(self)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self.triggered:
            state = "ok" if self._ok else "failed"
        label = self.name or self.__class__.__name__
        return f"<{label} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after ``delay`` units of simulated time.

    The kernel schedules the trigger at construction; yielding a Timeout
    suspends the process for exactly ``delay``.
    """

    __slots__ = ("delay",)

    def __init__(self, kernel: "Kernel", delay: float, value: Any = None) -> None:  # noqa: F821
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        super().__init__(kernel, name=f"Timeout({delay})")
        self.delay = float(delay)
        # Stays pending until the kernel's clock reaches now + delay.
        kernel._push(self.delay, lambda: self.succeed(value))


class _Condition(Event):
    """Shared machinery for :class:`AllOf` and :class:`AnyOf`."""

    __slots__ = ("events", "_remaining")

    def __init__(self, kernel: "Kernel", events: List[Event]) -> None:  # noqa: F821
        super().__init__(kernel, name=self.__class__.__name__)
        self.events = list(events)
        self._remaining = len(self.events)
        if not self.events:
            # Degenerate condition is immediately satisfied.
            self.succeed([])
            return
        for ev in self.events:
            if ev.triggered:
                # Already-fired events count immediately via a callback
                # scheduled through the kernel to keep ordering uniform.
                self.kernel._call_soon(self._on_child, ev)
            else:
                ev.callbacks.append(self._on_child)

    def _on_child(self, ev: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires once every child event has fired; value is the list of values.

    If any child fails, the condition fails with that child's exception as
    soon as the failure is observed.
    """

    __slots__ = ()

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([e.value for e in self.events])


class AnyOf(_Condition):
    """Fires when the first child event fires; value is ``(event, value)``."""

    __slots__ = ()

    def _on_child(self, ev: Event) -> None:
        if self.triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
            return
        self.succeed((ev, ev.value))
