"""Event primitives for the discrete-event kernel.

An :class:`Event` is a one-shot waitable: it starts *pending*, is
*triggered* exactly once with an optional value, and every process waiting
on it is resumed with that value.  :class:`Timeout` is an event that the
kernel triggers after a fixed simulated delay.  :class:`AllOf` /
:class:`AnyOf` compose events.

Hot-path contract: while an event is pending, ``callbacks`` is a plain
list and waiters append to it directly.  The moment the event triggers,
the kernel captures that list for firing and replaces ``callbacks`` with
the shared :data:`_SEALED` sentinel — appending a callback to an
already-fired event raises :class:`~repro.errors.SimulationError` instead
of being silently dropped (the historical behaviour).  Check
``triggered`` first and schedule through ``Kernel._call_soon`` to react
to an event that may already have fired, as ``Process`` does.

This module also defines the tagged-entry ``kind`` codes shared with the
kernel's scheduling queues (they live here, not in ``kernel``, so that
:class:`Timeout` can enqueue itself without a circular import).
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Optional

from repro.errors import SimulationError

__all__ = ["Event", "Timeout", "AllOf", "AnyOf"]

# Sentinel distinguishing "no value yet" from a triggered value of None.
_PENDING = object()

# Scheduling-entry kinds, dispatched by Kernel.step()/run().
_KIND_RAW = 0      # a: zero-argument callable
_KIND_CALL = 1     # a: callable, b: argument tuple
_KIND_FIRE = 2     # a: triggered Event, b: its captured callback list
_KIND_TIMEOUT = 3  # a: pending Timeout, b: the value to trigger it with
_KIND_RESUME = 4   # a: Process, b: triggered Event (or None for first resume)


class _SealedCallbacks:
    """Stand-in for ``Event.callbacks`` once the event has fired.

    The original callback list is consumed at fire time, so membership
    checks and iteration report empty; a late ``append`` fails loudly.
    One shared instance (:data:`_SEALED`) serves every fired event, so
    sealing costs no allocation.
    """

    __slots__ = ()

    def append(self, cb: Callable[["Event"], None]) -> None:
        raise SimulationError(
            "callback appended to an already-fired event; check .triggered "
            "first and schedule through kernel._call_soon instead"
        )

    def __contains__(self, cb: object) -> bool:
        return False

    def __iter__(self) -> Iterator:
        return iter(())

    def __len__(self) -> int:
        return 0


_SEALED = _SealedCallbacks()


class Event:
    """A one-shot waitable that processes can ``yield`` on.

    Parameters
    ----------
    kernel:
        Owning kernel.  Needed so that ``succeed`` can schedule the
        callbacks at the current simulated time.
    name:
        Optional human-readable label used in ``repr`` and error messages.
    """

    __slots__ = ("kernel", "name", "_value", "_ok", "callbacks", "_abandoned")

    def __init__(self, kernel: "Kernel", name: str = "") -> None:  # noqa: F821
        self.kernel = kernel
        self.name = name
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        # Callbacks run when the event fires; each receives this event.
        self.callbacks: List[Callable[["Event"], None]] = []
        # Set by Process.interrupt() when the last listener detaches from
        # this still-pending event: nobody will ever consume its outcome.
        # Resource queues use it to skip dead waiters (see resources.py).
        self._abandoned = False

    # -- state ---------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once :meth:`succeed` or :meth:`fail` has been called."""
        return self._value is not _PENDING

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The value the event was triggered with.

        Raises
        ------
        SimulationError
            If the event has not been triggered yet.
        """
        if self._value is _PENDING:
            raise SimulationError(f"event {self!r} has no value yet")
        return self._value

    # -- triggering ----------------------------------------------------
    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``.

        Waiting processes are scheduled to resume at the current simulated
        time (not synchronously), preserving run-to-yield semantics.
        """
        if self._value is not _PENDING:
            raise SimulationError(f"event {self!r} already triggered")
        self._value = value
        self._ok = True
        self.kernel._schedule_fire(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event as failed; waiters get ``exception`` thrown."""
        if self._value is not _PENDING:
            raise SimulationError(f"event {self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._value = exception
        self._ok = False
        self.kernel._schedule_fire(self)
        return self

    def _succeed_fresh(self, value: Any) -> None:
        """Trigger a *freshly created* event that provably has no listeners.

        Used for grants and deposits that succeed at creation time: the
        event is born fired and sealed, costing no kernel queue entry.
        The consumer (typically ``Process._resume``) observes the
        triggered state at its ``yield`` and schedules its own
        resumption — the only entry the interaction needs.
        """
        self._value = value
        self._ok = True
        self.callbacks = _SEALED

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self._value is not _PENDING:
            state = "ok" if self._ok else "failed"
        label = self.name or self.__class__.__name__
        return f"<{label} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires after ``delay`` units of simulated time.

    The kernel schedules the trigger at construction as a tagged queue
    entry (no closure, no intermediate callable); yielding a Timeout
    suspends the process for exactly ``delay``.  Construction is fully
    inlined — pipeline cells create one Timeout per compute/transfer/disk
    interval, so this runs hundreds of thousands of times per cell.
    """

    __slots__ = ("delay",)

    def __init__(self, kernel: "Kernel", delay: float, value: Any = None) -> None:  # noqa: F821
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        self.kernel = kernel
        self.name = ""
        self._value = _PENDING
        self._ok = None
        self.callbacks = []
        self._abandoned = False
        self.delay = delay = float(delay)
        # Stays pending until the kernel's clock reaches now + delay.
        kernel._seq += 1
        if delay == 0.0:
            kernel._lane.append((kernel._seq, _KIND_TIMEOUT, self, value))
        else:
            t = kernel._now + delay
            if t > kernel._now:
                kernel._cal_insert(t, kernel._seq, _KIND_TIMEOUT, self, value)
            else:
                # Positive delay that vanishes in float addition: due at
                # the current timestamp, after everything already queued.
                kernel._due.append((kernel._seq, _KIND_TIMEOUT, self, value))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self._value is not _PENDING:
            state = "ok" if self._ok else "failed"
        return f"<Timeout({self.delay}) {state} at {id(self):#x}>"


class _Condition(Event):
    """Shared machinery for :class:`AllOf` and :class:`AnyOf`."""

    __slots__ = ("events", "_remaining")

    def __init__(self, kernel: "Kernel", events: List[Event]) -> None:  # noqa: F821
        super().__init__(kernel, name=self.__class__.__name__)
        self.events = list(events)
        self._remaining = len(self.events)
        if not self.events:
            # Degenerate condition is immediately satisfied.
            self.succeed([])
            return
        for ev in self.events:
            if ev._value is not _PENDING:
                # Already-fired events count immediately via a callback
                # scheduled through the kernel to keep ordering uniform.
                self.kernel._call_soon(self._on_child, ev)
            else:
                ev.callbacks.append(self._on_child)

    def _on_child(self, ev: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires once every child event has fired; value is the list of values.

    If any child fails, the condition fails with that child's exception as
    soon as the failure is observed.
    """

    __slots__ = ()

    def _on_child(self, ev: Event) -> None:
        if self._value is not _PENDING:
            return
        if not ev._ok:
            self.fail(ev._value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([e._value for e in self.events])


class AnyOf(_Condition):
    """Fires when the first child event fires; value is ``(event, value)``."""

    __slots__ = ()

    def _on_child(self, ev: Event) -> None:
        if self._value is not _PENDING:
            return
        if not ev._ok:
            self.fail(ev._value)
            return
        self.succeed((ev, ev._value))
