"""The discrete-event simulation kernel (event loop).

The kernel owns the simulated clock and two scheduling structures that
together behave like one priority queue ordered by ``(time, seq)``:

* a **heap** of ``(time, seq, kind, a, b)`` entries for actions with a
  positive delay, and
* a **now lane** — a plain ``deque`` of ``(seq, kind, a, b)`` entries —
  for zero-delay actions (event firings, process resumptions, chained
  callbacks), which in pipeline workloads are the majority of all
  scheduling traffic.

``seq`` is a monotone counter so that entries at equal times fire in
insertion order — this makes every simulation in the package fully
deterministic.  Lane entries always carry the *current* time, so merging
the two structures only needs a seq comparison when the heap head has
reached ``now``; the lane itself is strictly FIFO.  Zero-delay actions
therefore cost one deque append/popleft instead of a heap push/pop pair.

Entries are *tagged tuples* rather than closures: ``kind`` selects the
dispatch (resume a process, fire an event's captured callbacks, trigger a
timeout, call ``a(*b)``, or invoke a raw thunk), so the hot path
allocates no lambdas.  :meth:`Kernel.run` inlines both the pop-minimum
merge and the dispatch — one Python frame per simulated event instead of
a ``step()`` call each — while :meth:`Kernel.step` remains the
single-step API with identical semantics.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, Generator, List, Optional, Tuple

from repro.errors import DeadlockError, SimulationError
from repro.sim.events import (
    _KIND_CALL,
    _KIND_FIRE,
    _KIND_RAW,
    _KIND_RESUME,
    _KIND_TIMEOUT,
    _PENDING,
    _SEALED,
    AllOf,
    AnyOf,
    Event,
    Timeout,
)

__all__ = ["Kernel"]

_heappush = heapq.heappush
_heappop = heapq.heappop

# The overwhelmingly common event fire has exactly one listener: the
# ``_on_event`` bound method of a single waiting Process.  The fire sites
# below probe for that shape (EAFP: tuple-unpack plus two attribute
# loads, no calls) and emit a ``_KIND_RESUME`` entry instead of a generic
# ``_KIND_FIRE``, so the dispatch loop resumes the process directly
# without an ``_on_event`` frame.  Bound at the bottom of this module
# (process.py only depends on events.py, so the import is acyclic).


class Kernel:
    """Deterministic discrete-event simulator.

    Typical use::

        k = Kernel()

        def producer(k, store):
            yield k.timeout(1.0)
            yield store.put("item")

        def consumer(k, store):
            item = yield store.get()
            return item

        store = Store(k)
        k.process(producer(k, store))
        proc = k.process(consumer(k, store))
        k.run()
        assert proc.value == "item"
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._seq: int = 0
        # Heap entries: (time, seq, kind, a, b); seq is unique, so the
        # payload fields are never compared.
        self._queue: List[Tuple[float, int, int, Any, Any]] = []
        # Zero-delay entries at the current time: (seq, kind, a, b).
        # Invariant: the lane drains completely before the clock advances,
        # so every lane entry's implicit time is exactly ``self._now``.
        self._lane: Deque[Tuple[int, int, Any, Any]] = deque()
        self._active: int = 0  # live (unfinished) processes, for deadlock detection
        # Exceptions from processes that failed with nobody waiting on
        # them; run() re-raises these instead of deadlocking opaquely.
        self._unobserved_failures: List[BaseException] = []
        # Observability hook (see repro.obs.sampler): when set, called as
        # ``_monitor(now)`` right after the clock advances to a time
        # >= ``_monitor_next`` — i.e. only on heap pops, since lane
        # entries never move the clock.  The monitor must be a pure
        # observer: it maintains ``_monitor_next`` itself and must not
        # schedule, so event order is identical with or without it.
        self._monitor: Optional[Callable[[float], None]] = None
        self._monitor_next: float = float("inf")

    # -- clock -----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    # -- scheduling ------------------------------------------------------
    def _push(self, delay: float, action: Callable[[], None]) -> None:
        """Schedule a raw zero-argument callable after ``delay``."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        if delay == 0.0:
            self._lane.append((self._seq, _KIND_RAW, action, None))
        else:
            _heappush(
                self._queue, (self._now + delay, self._seq, _KIND_RAW, action, None)
            )

    def _call_soon(self, fn: Callable[..., None], *args: Any) -> None:
        """Run ``fn(*args)`` at the current simulated time, after the
        currently-executing step finishes."""
        self._seq += 1
        self._lane.append((self._seq, _KIND_CALL, fn, args))

    def _schedule_fire(self, event: Event) -> None:
        """Schedule a just-triggered event's callbacks and seal the event.

        The callback list is captured *now* (trigger time) and the event's
        ``callbacks`` attribute is replaced by the shared sealed sentinel,
        so a callback appended after triggering raises instead of being
        silently dropped.  An event nobody listens to schedules nothing at
        all — the fast path for fire-and-forget completions.
        """
        cbs = event.callbacks
        event.callbacks = _SEALED
        if cbs:
            self._seq += 1
            try:
                (cb,) = cbs
                if cb.__func__ is _PROCESS_ON_EVENT:
                    self._lane.append((self._seq, _KIND_RESUME, cb.__self__, event))
                    return
            except (ValueError, AttributeError):
                pass
            self._lane.append((self._seq, _KIND_FIRE, event, cbs))

    # -- factories -------------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh pending :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def all_of(self, events: List[Event]) -> AllOf:
        """Event that fires when all of ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: List[Event]) -> AnyOf:
        """Event that fires when the first of ``events`` fires."""
        return AnyOf(self, events)

    def process(self, generator: Generator, name: str = "") -> "Process":  # noqa: F821
        """Spawn a simulated process from a generator and return it."""
        from repro.sim.process import Process

        return Process(self, generator, name=name)

    # -- main loop -------------------------------------------------------
    def step(self) -> None:
        """Execute the next scheduled action, advancing the clock.

        The next action is the minimum of the lane head and the heap head
        under ``(time, seq)`` order.  Lane entries live at the current
        time, so the heap only wins the comparison when its head has the
        same time *and* a smaller sequence number (an entry scheduled with
        a positive delay before the lane entry was appended).
        """
        lane = self._lane
        queue = self._queue
        if lane:
            if queue and queue[0][0] <= self._now and queue[0][1] < lane[0][0]:
                t, _seq, kind, a, b = _heappop(queue)
                self._now = t
                if t >= self._monitor_next:
                    self._monitor(t)
            else:
                _seq, kind, a, b = lane.popleft()
        elif queue:
            t, _seq, kind, a, b = _heappop(queue)
            self._now = t
            if t >= self._monitor_next:
                self._monitor(t)
        else:
            raise SimulationError("step() on an empty event queue")

        if kind == _KIND_RESUME:
            if b is None:
                a._resume(None, None)
            else:
                a._waiting_on = None
                if b._ok:
                    a._resume(b._value, None)
                else:
                    a._resume(None, b._value)
        elif kind == _KIND_FIRE:
            for cb in b:
                cb(a)
        elif kind == _KIND_TIMEOUT:
            if a._value is not _PENDING:
                raise SimulationError(f"event {a!r} already triggered")
            a._value = b
            a._ok = True
            cbs = a.callbacks
            a.callbacks = _SEALED
            if cbs:
                self._seq += 1
                try:
                    (cb,) = cbs
                    if cb.__func__ is _PROCESS_ON_EVENT:
                        lane.append((self._seq, _KIND_RESUME, cb.__self__, a))
                        cbs = None
                except (ValueError, AttributeError):
                    pass
                if cbs is not None:
                    lane.append((self._seq, _KIND_FIRE, a, cbs))
        elif kind == _KIND_CALL:
            a(*b)
        else:  # _KIND_RAW
            a()

    def run(self, until: Optional[float] = None, *, check_deadlock: bool = True) -> float:
        """Run until the queue drains or the clock passes ``until``.

        Parameters
        ----------
        until:
            Stop once the next event would fire strictly after this time;
            the clock is left at ``until``.  ``None`` runs to exhaustion.
        check_deadlock:
            When running to exhaustion, raise :class:`DeadlockError` if
            live processes remain blocked after the queue drains.

        Returns
        -------
        float
            The simulated time at which the run stopped.

        Notes
        -----
        The loop body below duplicates :meth:`step`'s pop-and-dispatch
        logic on purpose: run() executes one entry per iteration with no
        intervening method call, which removes one Python frame per
        simulated event — a measurable share of total runtime at
        millions of events per pipeline cell.  Any semantic change here
        must be mirrored in :meth:`step` (and vice versa).
        """
        lane = self._lane
        queue = self._queue
        failures = self._unobserved_failures
        while lane or queue:
            if until is not None:
                t = self._now if lane else queue[0][0]
                if t > until:
                    self._now = until
                    return self._now
            # Pop the (time, seq)-minimal entry (inline of step()).
            if lane:
                if queue and queue[0][0] <= self._now and queue[0][1] < lane[0][0]:
                    t, _seq, kind, a, b = _heappop(queue)
                    self._now = t
                    if t >= self._monitor_next:
                        self._monitor(t)
                else:
                    _seq, kind, a, b = lane.popleft()
            else:
                t, _seq, kind, a, b = _heappop(queue)
                self._now = t
                if t >= self._monitor_next:
                    self._monitor(t)

            # Dispatch, most frequent kind first.
            if kind == _KIND_RESUME:
                if b is None:
                    a._resume(None, None)
                else:
                    a._waiting_on = None
                    if b._ok:
                        a._resume(b._value, None)
                    else:
                        a._resume(None, b._value)
            elif kind == _KIND_FIRE:
                for cb in b:
                    cb(a)
            elif kind == _KIND_TIMEOUT:
                if a._value is not _PENDING:
                    raise SimulationError(f"event {a!r} already triggered")
                a._value = b
                a._ok = True
                cbs = a.callbacks
                a.callbacks = _SEALED
                if cbs:
                    self._seq += 1
                    lane.append((self._seq, _KIND_FIRE, a, cbs))
            elif kind == _KIND_CALL:
                a(*b)
            else:  # _KIND_RAW
                a()

            if failures:
                raise failures[0]
        if until is not None:
            self._now = max(self._now, until)
        if check_deadlock and until is None and self._active > 0:
            raise DeadlockError(
                f"event queue drained with {self._active} process(es) still blocked"
            )
        return self._now

    def peek(self) -> Optional[float]:
        """Time of the next scheduled action, or None if queue is empty."""
        if self._lane:
            return self._now
        return self._queue[0][0] if self._queue else None


# Bottom import: the fire-site specialization above needs the identity of
# Process._on_event; process.py depends only on events.py, so this is
# acyclic (see note near the top of the module).
from repro.sim.process import Process as _Process  # noqa: E402

_PROCESS_ON_EVENT = _Process._on_event
