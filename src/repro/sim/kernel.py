"""The discrete-event simulation kernel (event loop).

The kernel owns the simulated clock and a priority queue of
``(time, seq, action)`` entries.  ``seq`` is a monotone counter so that
entries at equal times fire in insertion order — this makes every
simulation in the package fully deterministic.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.errors import DeadlockError, SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout

__all__ = ["Kernel"]


class Kernel:
    """Deterministic discrete-event simulator.

    Typical use::

        k = Kernel()

        def producer(k, store):
            yield k.timeout(1.0)
            yield store.put("item")

        def consumer(k, store):
            item = yield store.get()
            return item

        store = Store(k)
        k.process(producer(k, store))
        proc = k.process(consumer(k, store))
        k.run()
        assert proc.value == "item"
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._seq: int = 0
        # Heap entries: (time, seq, callable) — callable takes no args.
        self._queue: List[Tuple[float, int, Callable[[], None]]] = []
        self._active: int = 0  # live (unfinished) processes, for deadlock detection
        # Exceptions from processes that failed with nobody waiting on
        # them; run() re-raises these instead of deadlocking opaquely.
        self._unobserved_failures: List[BaseException] = []

    # -- clock -----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    # -- scheduling ------------------------------------------------------
    def _push(self, delay: float, action: Callable[[], None]) -> None:
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, self._seq, action))

    def _call_soon(self, fn: Callable[..., None], *args: Any) -> None:
        """Run ``fn(*args)`` at the current simulated time, after the
        currently-executing step finishes."""
        self._push(0.0, lambda: fn(*args))

    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        """Schedule a triggered event's callbacks to run after ``delay``."""
        self._push(delay, lambda: self._fire(event))

    @staticmethod
    def _fire(event: Event) -> None:
        callbacks, event.callbacks = event.callbacks, []
        for cb in callbacks:
            cb(event)

    # -- factories -------------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh pending :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def all_of(self, events: List[Event]) -> AllOf:
        """Event that fires when all of ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: List[Event]) -> AnyOf:
        """Event that fires when the first of ``events`` fires."""
        return AnyOf(self, events)

    def process(self, generator: Generator, name: str = "") -> "Process":  # noqa: F821
        """Spawn a simulated process from a generator and return it."""
        from repro.sim.process import Process

        return Process(self, generator, name=name)

    # -- main loop -------------------------------------------------------
    def step(self) -> None:
        """Execute the next scheduled action, advancing the clock."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        t, _seq, action = heapq.heappop(self._queue)
        self._now = t
        action()

    def run(self, until: Optional[float] = None, *, check_deadlock: bool = True) -> float:
        """Run until the queue drains or the clock passes ``until``.

        Parameters
        ----------
        until:
            Stop once the next event would fire strictly after this time;
            the clock is left at ``until``.  ``None`` runs to exhaustion.
        check_deadlock:
            When running to exhaustion, raise :class:`DeadlockError` if
            live processes remain blocked after the queue drains.

        Returns
        -------
        float
            The simulated time at which the run stopped.
        """
        while self._queue:
            t = self._queue[0][0]
            if until is not None and t > until:
                self._now = until
                return self._now
            self.step()
            if self._unobserved_failures:
                raise self._unobserved_failures[0]
        if until is not None:
            self._now = max(self._now, until)
        if check_deadlock and until is None and self._active > 0:
            raise DeadlockError(
                f"event queue drained with {self._active} process(es) still blocked"
            )
        return self._now

    def peek(self) -> Optional[float]:
        """Time of the next scheduled action, or None if queue is empty."""
        return self._queue[0][0] if self._queue else None
