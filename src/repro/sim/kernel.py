"""The discrete-event simulation kernel (event loop).

The kernel owns the simulated clock and three scheduling structures that
together behave like one priority queue ordered by ``(time, seq)``:

* a **calendar queue** — a power-of-two ring of buckets, each a plain
  list in insertion (= ``seq``) order — for entries with a positive
  delay.  A bucket covers one *day* of ``_cal_width`` simulated seconds;
  an entry at time ``t`` lives in bucket ``day(t) & mask`` where
  ``day(t) = floor(t / width)``.  Days beyond the ring's horizon alias
  onto the same buckets ("next year"), so scans filter by the entry's
  stored day.
* a **now lane** — a plain ``deque`` of ``(seq, kind, a, b)`` entries —
  for zero-delay actions (event firings, process resumptions, chained
  callbacks), which in pipeline workloads are the majority of all
  scheduling traffic.
* a **due batch** — a deque of entries extracted from the calendar whose
  time equals the current clock.  When the lane and the due batch drain,
  the kernel scans the ring from the current day, finds the earliest
  entry, and extracts *every* entry at that timestamp in one sweep —
  one bucket scan per clock advance instead of a heap push/pop pair per
  event.

``seq`` is a monotone counter so that entries at equal times fire in
insertion order — this makes every simulation in the package fully
deterministic.  Lane and due entries are both FIFO in ``seq``, so
merging them needs one integer comparison only while the due batch is
non-empty; the common case (due empty) pops the lane unconditionally.

The bucket width is a power of two sized from the observed gaps between
scheduled timestamps: it starts at 1.0 and is recalibrated lazily (at
power-of-two insert counts and on ring resizes), with the ring grown or
shrunk when the entry count crosses occupancy thresholds.  A scan that
finds nothing within one ring revolution falls back to a global min
scan and widens the ring's horizon after repeated fallbacks.

Entries are *tagged tuples* rather than closures: ``kind`` selects the
dispatch (resume a process, fire an event's captured callbacks, trigger
a timeout, call ``a(*b)``, or invoke a raw thunk), so the hot path
allocates no lambdas.  :meth:`Kernel.run` inlines both the pop-minimum
merge and the full process resume cycle — one generator ``send`` per
simulated resumption with no intervening Python frame — while
:meth:`Kernel.step` remains the single-step API with identical
semantics.
"""

from __future__ import annotations

from collections import deque
from math import log2 as _log2
from typing import Any, Callable, Deque, Dict, Generator, List, Optional, Tuple

from repro.errors import DeadlockError, SimulationError
from repro.sim.events import (
    _KIND_CALL,
    _KIND_FIRE,
    _KIND_RAW,
    _KIND_RESUME,
    _KIND_TIMEOUT,
    _PENDING,
    _SEALED,
    AllOf,
    AnyOf,
    Event,
    Timeout,
)

__all__ = ["Kernel"]

# Ring sizing/calibration thresholds.  The ring never shrinks below
# _CAL_MIN_BUCKETS; it grows when the entry count exceeds twice the
# bucket count and shrinks when it falls below an eighth of it.
_CAL_MIN_BUCKETS = 64
_CAL_MIN_WIDTH = 2.0 ** -40
_CAL_MAX_WIDTH = 2.0 ** 20

# The overwhelmingly common event fire has exactly one listener: the
# ``_on_event`` bound method of a single waiting Process.  The fire sites
# below probe for that shape (EAFP: tuple-unpack plus two attribute
# loads, no calls) and emit a ``_KIND_RESUME`` entry instead of a generic
# ``_KIND_FIRE``, so the dispatch loop resumes the process directly
# without an ``_on_event`` frame.  Bound at the bottom of this module
# (process.py only depends on events.py, so the import is acyclic).


class Kernel:
    """Deterministic discrete-event simulator.

    Typical use::

        k = Kernel()

        def producer(k, store):
            yield k.timeout(1.0)
            yield store.put("item")

        def consumer(k, store):
            item = yield store.get()
            return item

        store = Store(k)
        k.process(producer(k, store))
        proc = k.process(consumer(k, store))
        k.run()
        assert proc.value == "item"
    """

    def __init__(self) -> None:
        self._now: float = 0.0
        self._seq: int = 0
        # Zero-delay entries at the current time: (seq, kind, a, b).
        # Invariant: the lane drains completely before the clock advances,
        # so every lane entry's implicit time is exactly ``self._now``.
        self._lane: Deque[Tuple[int, int, Any, Any]] = deque()
        # Calendar entries already extracted at the current timestamp,
        # FIFO in seq like the lane.  Only non-empty between a clock
        # advance and the dispatch of the entries that caused it.
        self._due: Deque[Tuple[int, int, Any, Any]] = deque()
        # Calendar ring: bucket entries are (day, time, seq, kind, a, b)
        # in insertion (= seq) order.
        self._cal_buckets: List[List[Tuple[int, float, int, int, Any, Any]]] = [
            [] for _ in range(_CAL_MIN_BUCKETS)
        ]
        self._cal_mask: int = _CAL_MIN_BUCKETS - 1
        self._cal_width: float = 1.0
        self._cal_inv: float = 1.0
        self._cal_count: int = 0
        # Reservoir of recent clock-advance gaps; every 64 samples the
        # bucket width is recalibrated from their median (and the ring
        # rehashed only if the power-of-two width actually changed).
        self._cal_gaps: List[float] = []
        # Instrumentation (see queue_stats): all maintained off the lane
        # hot path — only calendar inserts and clock advances touch them.
        self._cal_inserts: int = 0
        self._cal_advances: int = 0
        self._cal_fallbacks: int = 0
        self._cal_resizes: int = 0
        self._active: int = 0  # live (unfinished) processes, for deadlock detection
        # Exceptions from processes that failed with nobody waiting on
        # them; run() re-raises these instead of deadlocking opaquely.
        self._unobserved_failures: List[BaseException] = []
        # Observability hook (see repro.obs.sampler): when set, called as
        # ``_monitor(now)`` right after the clock advances to a time
        # >= ``_monitor_next`` — i.e. only on calendar extraction, since
        # lane entries never move the clock.  The monitor must be a pure
        # observer: it maintains ``_monitor_next`` itself and must not
        # schedule, so event order is identical with or without it.
        self._monitor: Optional[Callable[[float], None]] = None
        self._monitor_next: float = float("inf")

    # -- clock -----------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    # -- calendar queue --------------------------------------------------
    def _cal_insert(self, t: float, seq: int, kind: int, a: Any, b: Any) -> None:
        """File an entry at future time ``t`` into the calendar ring."""
        day = int(t * self._cal_inv)
        self._cal_buckets[day & self._cal_mask].append((day, t, seq, kind, a, b))
        self._cal_count += 1
        self._cal_inserts += 1
        if self._cal_count > self._cal_mask + 1:
            self._cal_resize((self._cal_mask + 1) << 1)

    def _cal_entries(self) -> List[Tuple[int, float, int, int, Any, Any]]:
        """All calendar entries in global seq order."""
        entries = [e for bucket in self._cal_buckets for e in bucket]
        entries.sort(key=lambda e: e[2])
        return entries

    def _cal_rehash(self, nbuckets: int, width: float) -> None:
        """Rebuild the ring with a new geometry.

        Entries are re-filed in seq order so the per-bucket invariant
        (bucket lists are ascending in seq) survives the rebuild.
        """
        entries = self._cal_entries()
        self._cal_mask = nbuckets - 1
        self._cal_width = width
        inv = self._cal_inv = 1.0 / width
        buckets = self._cal_buckets = [[] for _ in range(nbuckets)]
        mask = self._cal_mask
        for e in entries:
            t = e[1]
            day = int(t * inv)
            buckets[day & mask].append((day, t, e[2], e[3], e[4], e[5]))
        self._cal_resizes += 1

    def _cal_resize(self, nbuckets: int) -> None:
        nbuckets = max(nbuckets, _CAL_MIN_BUCKETS)
        self._cal_rehash(nbuckets, self._cal_pick_width())

    def _cal_pick_width(self) -> float:
        """Pick a power-of-two bucket width from observed timer gaps.

        Uses the median of the recent clock-advance gaps (the observed
        timer granularity), scaled so a couple of gaps fit per bucket.
        With no samples yet (a fresh kernel), falls back to the gaps
        between the distinct timestamps currently in the ring; degenerate
        distributions keep the current width.
        """
        gaps = sorted(self._cal_gaps)
        if not gaps:
            times = sorted({e[1] for bucket in self._cal_buckets for e in bucket})
            gaps = [b - a for a, b in zip(times, times[1:]) if b > a]
            if not gaps:
                return self._cal_width
        raw = gaps[len(gaps) // 2] * 2.0
        if raw <= 0.0:
            return self._cal_width
        width = 2.0 ** round(_log2(raw))
        return min(max(width, _CAL_MIN_WIDTH), _CAL_MAX_WIDTH)

    def _advance(self, until: Optional[float]) -> bool:
        """Advance the clock to the earliest calendar timestamp.

        Extracts *all* entries at that timestamp into the due batch (in
        seq order — bucket lists are seq-ascending, so a linear filter
        preserves it), then runs the monitor hook.  Returns False
        without extracting if the timestamp lies beyond ``until``.
        Caller guarantees ``_cal_count > 0``.
        """
        inv = self._cal_inv
        mask = self._cal_mask
        buckets = self._cal_buckets
        day = int(self._now * inv)
        best_t = None
        bucket = None
        for i in range(mask + 1):
            cand = buckets[(day + i) & mask]
            if cand:
                d = day + i
                for e in cand:
                    if e[0] == d:
                        t = e[1]
                        if best_t is None or t < best_t:
                            best_t = t
                if best_t is not None:
                    bucket = cand
                    break
        if best_t is None:
            # Nothing within one ring revolution: the earliest entry is
            # more than nbuckets*width away.  Global min scan, then widen
            # the horizon if this keeps happening.
            self._cal_fallbacks += 1
            for cand in buckets:
                for e in cand:
                    t = e[1]
                    if best_t is None or t < best_t:
                        best_t = t
            bucket = buckets[int(best_t * inv) & mask]
        if until is not None and best_t > until:
            return False
        keep = []
        due_append = self._due.append
        extracted = 0
        for e in bucket:
            if e[1] == best_t:
                due_append((e[2], e[3], e[4], e[5]))
                extracted += 1
            else:
                keep.append(e)
        bucket[:] = keep
        count = self._cal_count = self._cal_count - extracted
        gap = best_t - self._now
        self._now = best_t
        self._cal_advances += 1
        if best_t >= self._monitor_next:
            self._monitor(best_t)
        if self._cal_fallbacks and self._cal_fallbacks & 31 == 0:
            # Persistent fallbacks mean the horizon is too short for the
            # gap distribution; double the width (and clear the streak by
            # counting the rehash as progress).
            self._cal_fallbacks += 1
            del self._cal_gaps[:]
            self._cal_rehash(
                self._cal_mask + 1, min(self._cal_width * 2.0, _CAL_MAX_WIDTH)
            )
        else:
            gaps = self._cal_gaps
            gaps.append(gap)
            if len(gaps) == 64:
                width = self._cal_pick_width()
                del gaps[:]
                # Hysteresis: adjacent powers of two straddling the
                # median gap would otherwise oscillate, rehashing every
                # reservoir flush.  Only a >= 4x drift re-files entries.
                if width >= self._cal_width * 4.0 or width * 4.0 <= self._cal_width:
                    self._cal_rehash(self._cal_mask + 1, width)
            if self._cal_mask + 1 > _CAL_MIN_BUCKETS and count < (self._cal_mask + 1) >> 3:
                self._cal_resize((self._cal_mask + 1) >> 1)
        return True

    def _cal_find_min(self) -> float:
        """Earliest calendar timestamp (pure; caller checks count > 0)."""
        best = None
        for bucket in self._cal_buckets:
            for e in bucket:
                if best is None or e[1] < best:
                    best = e[1]
        return best

    def queue_stats(self) -> Dict[str, Any]:
        """Snapshot of calendar-queue geometry and traffic counters.

        Exposed through ``repro profile --queue-stats``; all counters are
        cumulative over the kernel's lifetime.
        """
        total = self._seq
        cal = self._cal_inserts
        # Occupancy histogram of the live ring, bucketed by per-bucket
        # entry-count bit length (index 0 = empty buckets).
        occ_hist = [0] * 16
        for b in self._cal_buckets:
            occ_hist[min(len(b).bit_length(), 15)] += 1
        return {
            "nbuckets": self._cal_mask + 1,
            "width": self._cal_width,
            "count": self._cal_count,
            "bucket_lengths": [len(b) for b in self._cal_buckets],
            "total_entries": total,
            "calendar_entries": cal,
            "lane_entries": total - cal,
            "lane_ratio": (total - cal) / total if total else 0.0,
            "advances": self._cal_advances,
            "fallback_scans": self._cal_fallbacks,
            "resizes": self._cal_resizes,
            "occupancy_hist": occ_hist,
        }

    # -- scheduling ------------------------------------------------------
    def _push(self, delay: float, action: Callable[[], None]) -> None:
        """Schedule a raw zero-argument callable after ``delay``."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        if delay == 0.0:
            self._lane.append((self._seq, _KIND_RAW, action, None))
        else:
            t = self._now + delay
            if t > self._now:
                self._cal_insert(t, self._seq, _KIND_RAW, action, None)
            else:
                # Positive delay vanishing in float addition: the entry
                # is due at the current timestamp, after everything
                # already queued (its seq is the largest so far).
                self._due.append((self._seq, _KIND_RAW, action, None))

    def _call_soon(self, fn: Callable[..., None], *args: Any) -> None:
        """Run ``fn(*args)`` at the current simulated time, after the
        currently-executing step finishes."""
        self._seq += 1
        self._lane.append((self._seq, _KIND_CALL, fn, args))

    def _schedule_fire(self, event: Event) -> None:
        """Schedule a just-triggered event's callbacks and seal the event.

        The callback list is captured *now* (trigger time) and the event's
        ``callbacks`` attribute is replaced by the shared sealed sentinel,
        so a callback appended after triggering raises instead of being
        silently dropped.  An event nobody listens to schedules nothing at
        all — the fast path for fire-and-forget completions.
        """
        cbs = event.callbacks
        event.callbacks = _SEALED
        if cbs:
            self._seq += 1
            try:
                (cb,) = cbs
                if cb.__func__ is _PROCESS_ON_EVENT:
                    self._lane.append((self._seq, _KIND_RESUME, cb.__self__, event))
                    return
            except (ValueError, AttributeError):
                pass
            self._lane.append((self._seq, _KIND_FIRE, event, cbs))

    # -- factories -------------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a fresh pending :class:`Event`."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create a :class:`Timeout` firing ``delay`` time units from now."""
        return Timeout(self, delay, value)

    def all_of(self, events: List[Event]) -> AllOf:
        """Event that fires when all of ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: List[Event]) -> AnyOf:
        """Event that fires when the first of ``events`` fires."""
        return AnyOf(self, events)

    def process(self, generator: Generator, name: str = "") -> "Process":  # noqa: F821
        """Spawn a simulated process from a generator and return it."""
        from repro.sim.process import Process

        return Process(self, generator, name=name)

    # -- main loop -------------------------------------------------------
    def step(self) -> None:
        """Execute the next scheduled action, advancing the clock.

        The next action is the minimum of the lane head, the due-batch
        head, and the calendar minimum under ``(time, seq)`` order.  Lane
        and due entries both live at the current time, so merging them is
        a seq comparison; the calendar is consulted only when both are
        empty (a clock advance).
        """
        lane = self._lane
        due = self._due
        if due:
            if lane and lane[0][0] < due[0][0]:
                _seq, kind, a, b = lane.popleft()
            else:
                _seq, kind, a, b = due.popleft()
        elif lane:
            _seq, kind, a, b = lane.popleft()
        elif self._cal_count:
            self._advance(None)
            _seq, kind, a, b = due.popleft()
        else:
            raise SimulationError("step() on an empty event queue")

        if kind == _KIND_RESUME:
            if b is None:
                a._resume(None, None)
            else:
                a._waiting_on = None
                if b._ok:
                    a._resume(b._value, None)
                else:
                    a._resume(None, b._value)
        elif kind == _KIND_FIRE:
            for cb in b:
                cb(a)
        elif kind == _KIND_TIMEOUT:
            if a._value is not _PENDING:
                raise SimulationError(f"event {a!r} already triggered")
            a._value = b
            a._ok = True
            cbs = a.callbacks
            a.callbacks = _SEALED
            if cbs:
                self._seq += 1
                try:
                    (cb,) = cbs
                    if cb.__func__ is _PROCESS_ON_EVENT:
                        lane.append((self._seq, _KIND_RESUME, cb.__self__, a))
                        cbs = None
                except (ValueError, AttributeError):
                    pass
                if cbs is not None:
                    lane.append((self._seq, _KIND_FIRE, a, cbs))
        elif kind == _KIND_CALL:
            a(*b)
        else:  # _KIND_RAW
            a()

    def run(self, until: Optional[float] = None, *, check_deadlock: bool = True) -> float:
        """Run until the queue drains or the clock passes ``until``.

        Parameters
        ----------
        until:
            Stop once the next event would fire strictly after this time;
            the clock is left at ``until``.  ``None`` runs to exhaustion.
        check_deadlock:
            When running to exhaustion, raise :class:`DeadlockError` if
            live processes remain blocked after the queue drains.

        Returns
        -------
        float
            The simulated time at which the run stopped.

        Notes
        -----
        The loop body below duplicates :meth:`step`'s pop-and-dispatch
        logic on purpose, and additionally inlines the entire
        ``Process._resume`` cycle into the ``_KIND_RESUME`` arm: at
        hundreds of thousands of resumptions per pipeline cell, the
        eliminated Python frames are a measurable share of total
        runtime.  Any semantic change here must be mirrored in
        :meth:`step` and :meth:`Process._resume` (and vice versa).
        """
        lane = self._lane
        due = self._due
        failures = self._unobserved_failures
        pending = _PENDING
        kres = _KIND_RESUME
        kfire = _KIND_FIRE
        ktimeout = _KIND_TIMEOUT
        kcall = _KIND_CALL
        # The horizon only needs checking when the clock moves: here for
        # a clock already past ``until``, and in _advance for calendar
        # extractions.  Lane/due pops never advance the clock, so the
        # pop paths below carry no per-entry horizon test.
        if until is not None and self._now > until:
            if not lane and not due and not self._cal_count:
                return self._now
            self._now = until
            return until
        while True:
            # Pop the (time, seq)-minimal entry (inline of step()).
            if due:
                if lane and lane[0][0] < due[0][0]:
                    _seq, kind, a, b = lane.popleft()
                else:
                    _seq, kind, a, b = due.popleft()
            elif lane:
                _seq, kind, a, b = lane.popleft()
            elif self._cal_count:
                if not self._advance(until):
                    self._now = until
                    return until
                continue
            else:
                break

            # Dispatch, most frequent kind first.  The inner loop exists
            # for *resume chaining*: when a dispatch would enqueue a
            # resume entry while the lane and due batch are both empty,
            # that entry would be popped on the very next iteration — so
            # the loop continues straight into it instead (same order,
            # no queue traffic).  Chaining is only legal from a dispatch
            # that cannot have appended an unobserved failure, which
            # holds for both chain sites below.
            while True:
                if kind == kres:
                    # Inline of Process._resume (see its docstring for
                    # the semantics); the method itself still serves
                    # step(), interrupts and _call_soon re-entry.
                    if b is None:
                        value = None
                        exc = None
                    else:
                        a._waiting_on = None
                        if b._ok:
                            value = b._value
                            exc = None
                        else:
                            value = None
                            exc = b._value
                    if a._value is not pending:
                        break
                    try:
                        if exc is None:
                            target = a.generator.send(value)
                        else:
                            target = a.generator.throw(exc)
                    except StopIteration as stop:
                        self._active -= 1
                        if a._value is not pending:
                            raise SimulationError(
                                f"event {a!r} already triggered"
                            ) from None
                        a._value = stop.value
                        a._ok = True
                        cbs = a.callbacks
                        a.callbacks = _SEALED
                        a._on_event_cb = None
                        if cbs:
                            self._seq += 1
                            try:
                                (cb,) = cbs
                                if cb.__func__ is _PROCESS_ON_EVENT:
                                    lane.append((self._seq, kres, cb.__self__, a))
                                    cbs = None
                            except (ValueError, AttributeError):
                                pass
                            if cbs is not None:
                                lane.append((self._seq, kfire, a, cbs))
                        break
                    except BaseException as perr:  # generator raised: fail the process
                        self._active -= 1
                        had_waiters = bool(a.callbacks)
                        a.fail(perr)
                        a._on_event_cb = None
                        if not had_waiters:
                            failures.append(perr)
                        break
                    try:
                        target_pending = target._value is pending
                    except AttributeError:
                        # Not an Event: surface the bug at the
                        # offending yield with a clear traceback.
                        self._call_soon(
                            a._resume,
                            None,
                            SimulationError(
                                f"process {a.name!r} yielded non-event {target!r}"
                            ),
                        )
                        break
                    a._waiting_on = target
                    if target_pending:
                        target.callbacks.append(a._on_event_cb)
                        break
                    if lane or due:
                        self._seq += 1
                        lane.append((self._seq, kres, a, target))
                        break
                    b = target  # chain: resume with the fired event's outcome
                elif kind == ktimeout:
                    if a._value is not pending:
                        raise SimulationError(f"event {a!r} already triggered")
                    a._value = b
                    a._ok = True
                    cbs = a.callbacks
                    a.callbacks = _SEALED
                    if not cbs:
                        break
                    try:
                        (cb,) = cbs
                        if cb.__func__ is _PROCESS_ON_EVENT:
                            if lane or due:
                                self._seq += 1
                                lane.append((self._seq, kres, cb.__self__, a))
                                break
                            # Chain: the sole waiter's resume entry would
                            # be the only queued entry.
                            kind = kres
                            b = a
                            a = cb.__self__
                            continue
                    except (ValueError, AttributeError):
                        pass
                    self._seq += 1
                    lane.append((self._seq, kfire, a, cbs))
                    break
                elif kind == kfire:
                    for cb in b:
                        cb(a)
                    break
                elif kind == kcall:
                    a(*b)
                    break
                else:  # _KIND_RAW
                    a()
                    break

            if failures:
                raise failures[0]
        if until is not None:
            self._now = max(self._now, until)
        if check_deadlock and until is None and self._active > 0:
            raise DeadlockError(
                f"event queue drained with {self._active} process(es) still blocked"
            )
        return self._now

    def peek(self) -> Optional[float]:
        """Time of the next scheduled action, or None if queue is empty."""
        if self._lane or self._due:
            return self._now
        if self._cal_count:
            return self._cal_find_min()
        return None


# Bottom import: the fire-site specialization above needs the identity of
# Process._on_event; process.py depends only on events.py, so this is
# acyclic (see note near the top of the module).
from repro.sim.process import Process as _Process  # noqa: E402

_PROCESS_ON_EVENT = _Process._on_event
