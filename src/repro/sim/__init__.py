"""Discrete-event simulation kernel.

A small, deterministic, generator-based discrete-event simulator in the
style of SimPy.  Simulated processes are Python generators that ``yield``
*waitables* — :class:`~repro.sim.events.Event`, :class:`Timeout`, resource
acquisitions, or store gets/puts — and are resumed by the
:class:`~repro.sim.kernel.Kernel` when the waitable fires.

The kernel is the timing substrate for the whole reproduction: the
simulated multicomputer (:mod:`repro.machine`), the MPI-like message layer
(:mod:`repro.mpi`), and the parallel file systems (:mod:`repro.pfs`) are
all built from these primitives.

Determinism: events scheduled for the same simulated time fire in
insertion order (a monotone sequence number breaks ties), so repeated runs
of the same program produce identical traces.
"""

from repro.sim.events import Event, Timeout, AllOf, AnyOf
from repro.sim.kernel import Kernel
from repro.sim.process import Process
from repro.sim.resources import Resource, Store, PriorityResource

__all__ = [
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Kernel",
    "Process",
    "Resource",
    "Store",
    "PriorityResource",
]
