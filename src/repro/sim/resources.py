"""Shared resources for simulated processes.

:class:`Resource`
    A counted semaphore with FIFO queuing — models disks, network links,
    DMA engines.  ``request()``/``release()`` return events.
:class:`PriorityResource`
    Same, but waiters are served in (priority, FIFO) order.
:class:`Store`
    An unbounded FIFO buffer of items with optional filtered gets — the
    basis of MPI message mailboxes and I/O server request queues.

Grant fast path: when a request can be satisfied immediately (an idle
resource slot, a buffered store item), the returned event is *born fired*
— triggered at creation and sealed, costing no kernel queue entry.  The
consuming process observes the triggered state at its ``yield`` and
schedules one resumption through the kernel's now lane, so the resume
still lands in deterministic ``(time, seq)`` order exactly where the
pre-fast-path kernel placed it.  Resources go one step further: because a
granted event is immutable (value = the resource, state = ok, sealed),
every uncontended ``request()`` on a resource returns the *same*
pre-built event instance, so the fast path allocates nothing at all.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.events import _SEALED, Event
from repro.sim.kernel import Kernel

__all__ = ["Resource", "PriorityResource", "Store"]


class Resource:
    """Counted FIFO resource with ``capacity`` concurrent holders.

    ``request()`` returns an event that fires when a slot is granted;
    the holder must call ``release()`` exactly once.  A convenience
    generator :meth:`using` wraps request/hold/release::

        yield from resource.using(kernel, hold_time)

    Uncontended requests all return the shared ``_granted`` event (born
    fired with the resource as value); only contended requests allocate a
    fresh pending event and join the FIFO queue.
    """

    def __init__(self, kernel: Kernel, capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.kernel = kernel
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()
        # Event label shared by every request; formatting it per call is
        # measurable at hot-path request rates.
        self._req_name = f"request({name})"
        # Shared grant for every uncontended request: already fired and
        # sealed, so handing it out costs zero allocations.
        self._granted = Event(kernel, name=self._req_name)
        self._granted._succeed_fresh(self)

    @property
    def in_use(self) -> int:
        """Number of currently granted slots."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of pending requests."""
        return len(self._waiters)

    def request(self) -> Event:
        """Request a slot; the returned event fires when granted."""
        if self._in_use < self.capacity:
            self._in_use += 1
            return self._granted
        ev = Event(self.kernel, name=self._req_name)
        self._waiters.append(ev)
        return ev

    def release(self) -> None:
        """Release a previously granted slot, waking the next waiter.

        Waiters whose requesting process was interrupted while queued
        (``Process.interrupt`` marks the pending request event abandoned
        when its last listener detaches) are skipped: granting such a
        dead waiter would pin the slot forever and silently shrink
        capacity.
        """
        if self._in_use <= 0:
            raise SimulationError(f"release() of idle resource {self.name!r}")
        waiters = self._waiters
        while waiters:
            ev = waiters.popleft()
            if not ev._abandoned:
                # Hand the slot directly to this waiter: _in_use unchanged.
                ev.succeed(self)
                return
        self._in_use -= 1

    def using(self, hold_time: float):
        """Generator: acquire, hold for ``hold_time``, release.

        Use as ``yield from resource.using(t)`` inside a process body.
        """
        yield self.request()
        try:
            yield self.kernel.timeout(hold_time)
        finally:
            self.release()


class PriorityResource(Resource):
    """Resource whose waiters are served in (priority, arrival) order.

    Lower ``priority`` values are served first.
    """

    def __init__(self, kernel: Kernel, capacity: int = 1, name: str = "") -> None:
        super().__init__(kernel, capacity, name)
        self._pwaiters: List[Tuple[float, int, Event]] = []
        self._counter = 0

    def request(self, priority: float = 0.0) -> Event:  # type: ignore[override]
        if self._in_use < self.capacity:
            self._in_use += 1
            return self._granted
        ev = Event(self.kernel, name=self._req_name)
        self._counter += 1
        heapq.heappush(self._pwaiters, (priority, self._counter, ev))
        return ev

    def release(self) -> None:  # type: ignore[override]
        if self._in_use <= 0:
            raise SimulationError(f"release() of idle resource {self.name!r}")
        pwaiters = self._pwaiters
        while pwaiters:
            _, _, ev = heapq.heappop(pwaiters)
            if not ev._abandoned:
                ev.succeed(self)
                return
        self._in_use -= 1

    @property
    def queue_length(self) -> int:  # type: ignore[override]
        return len(self._pwaiters)


class Store:
    """Unbounded FIFO item buffer with optional filtered retrieval.

    ``put(item)`` returns an already-fired event (puts never block).
    ``get(filter)`` returns an event that fires with the first item
    matching ``filter`` (FIFO order among matches); with no filter, the
    head of the queue.
    """

    def __init__(self, kernel: Kernel, name: str = "") -> None:
        self.kernel = kernel
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Tuple[Event, Optional[Callable[[Any], bool]]]] = deque()
        self._put_name = f"put({name})"
        self._get_name = f"get({name})"

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> Event:
        """Deposit ``item``; wakes the first matching waiter if any."""
        # Try to satisfy a pending getter first (FIFO among getters).
        getters = self._getters
        if getters:
            for idx, (ev, flt) in enumerate(getters):
                if flt is None or flt(item):
                    del getters[idx]
                    ev.succeed(item)
                    break
            else:
                self._items.append(item)
        else:
            self._items.append(item)
        # Puts never block: the returned event is born fired (inline of
        # Event._succeed_fresh — one allocation, no extra call).
        done = Event(self.kernel, name=self._put_name)
        done._value = item
        done._ok = True
        done.callbacks = _SEALED
        return done

    def put_nowait(self, item: Any) -> None:
        """Deposit ``item`` without materialising a completion event.

        Identical to :meth:`put` for the store's state and any woken
        getter; use it when the caller discards the returned event (e.g.
        mailbox deposits), saving one event allocation per deposit.
        """
        getters = self._getters
        if getters:
            for idx, (ev, flt) in enumerate(getters):
                if flt is None or flt(item):
                    del getters[idx]
                    ev.succeed(item)
                    return
        self._items.append(item)

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> Event:
        """Event firing with the first item matching ``filter``."""
        ev = Event(self.kernel, name=self._get_name)
        items = self._items
        if items:
            if filter is None:
                # Born fired with the head item (inline _succeed_fresh).
                ev._value = items.popleft()
                ev._ok = True
                ev.callbacks = _SEALED
                return ev
            for idx, item in enumerate(items):
                if filter(item):
                    del items[idx]
                    ev._value = item
                    ev._ok = True
                    ev.callbacks = _SEALED
                    return ev
        self._getters.append((ev, filter))
        return ev

    def peek_all(self) -> List[Any]:
        """Snapshot of buffered items (for inspection/testing)."""
        return list(self._items)
