"""Shared resources for simulated processes.

:class:`Resource`
    A counted semaphore with FIFO queuing — models disks, network links,
    DMA engines.  ``request()``/``release()`` return events.
:class:`PriorityResource`
    Same, but waiters are served in (priority, FIFO) order.
:class:`Store`
    An unbounded FIFO buffer of items with optional filtered gets — the
    basis of MPI message mailboxes and I/O server request queues.
"""

from __future__ import annotations

import heapq
from collections import deque
from typing import Any, Callable, Deque, List, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.events import Event
from repro.sim.kernel import Kernel

__all__ = ["Resource", "PriorityResource", "Store"]


class Resource:
    """Counted FIFO resource with ``capacity`` concurrent holders.

    ``request()`` returns an event that fires when a slot is granted;
    the holder must call ``release()`` exactly once.  A convenience
    generator :meth:`using` wraps request/hold/release::

        yield from resource.using(kernel, hold_time)
    """

    def __init__(self, kernel: Kernel, capacity: int = 1, name: str = "") -> None:
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.kernel = kernel
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        """Number of currently granted slots."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of pending requests."""
        return len(self._waiters)

    def request(self) -> Event:
        """Request a slot; the returned event fires when granted."""
        ev = self.kernel.event(name=f"request({self.name})")
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed(self)
        else:
            self._waiters.append(ev)
        return ev

    def release(self) -> None:
        """Release a previously granted slot, waking the next waiter."""
        if self._in_use <= 0:
            raise SimulationError(f"release() of idle resource {self.name!r}")
        if self._waiters:
            # Hand the slot directly to the next waiter: _in_use unchanged.
            ev = self._waiters.popleft()
            ev.succeed(self)
        else:
            self._in_use -= 1

    def using(self, hold_time: float):
        """Generator: acquire, hold for ``hold_time``, release.

        Use as ``yield from resource.using(t)`` inside a process body.
        """
        yield self.request()
        try:
            yield self.kernel.timeout(hold_time)
        finally:
            self.release()


class PriorityResource(Resource):
    """Resource whose waiters are served in (priority, arrival) order.

    Lower ``priority`` values are served first.
    """

    def __init__(self, kernel: Kernel, capacity: int = 1, name: str = "") -> None:
        super().__init__(kernel, capacity, name)
        self._pwaiters: List[Tuple[float, int, Event]] = []
        self._counter = 0

    def request(self, priority: float = 0.0) -> Event:  # type: ignore[override]
        ev = self.kernel.event(name=f"request({self.name})")
        if self._in_use < self.capacity:
            self._in_use += 1
            ev.succeed(self)
        else:
            self._counter += 1
            heapq.heappush(self._pwaiters, (priority, self._counter, ev))
        return ev

    def release(self) -> None:  # type: ignore[override]
        if self._in_use <= 0:
            raise SimulationError(f"release() of idle resource {self.name!r}")
        if self._pwaiters:
            _, _, ev = heapq.heappop(self._pwaiters)
            ev.succeed(self)
        else:
            self._in_use -= 1

    @property
    def queue_length(self) -> int:  # type: ignore[override]
        return len(self._pwaiters)


class Store:
    """Unbounded FIFO item buffer with optional filtered retrieval.

    ``put(item)`` returns an already-fired event (puts never block).
    ``get(filter)`` returns an event that fires with the first item
    matching ``filter`` (FIFO order among matches); with no filter, the
    head of the queue.
    """

    def __init__(self, kernel: Kernel, name: str = "") -> None:
        self.kernel = kernel
        self.name = name
        self._items: Deque[Any] = deque()
        self._getters: Deque[Tuple[Event, Optional[Callable[[Any], bool]]]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> Event:
        """Deposit ``item``; wakes the first matching waiter if any."""
        # Try to satisfy a pending getter first (FIFO among getters).
        for idx, (ev, flt) in enumerate(self._getters):
            if flt is None or flt(item):
                del self._getters[idx]
                ev.succeed(item)
                done = self.kernel.event(name=f"put({self.name})")
                done.succeed(item)
                return done
        self._items.append(item)
        done = self.kernel.event(name=f"put({self.name})")
        done.succeed(item)
        return done

    def get(self, filter: Optional[Callable[[Any], bool]] = None) -> Event:
        """Event firing with the first item matching ``filter``."""
        ev = self.kernel.event(name=f"get({self.name})")
        for idx, item in enumerate(self._items):
            if filter is None or filter(item):
                del self._items[idx]
                ev.succeed(item)
                return ev
        self._getters.append((ev, filter))
        return ev

    def peek_all(self) -> List[Any]:
        """Snapshot of buffered items (for inspection/testing)."""
        return list(self._items)
