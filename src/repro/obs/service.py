"""Service-level instruments for the experiment scheduler.

The per-run instruments in :mod:`repro.obs.instrument` watch one
simulation from the inside; :class:`ServiceMetrics` watches the
*service* from the outside: how deep each client's queue is, how many
tasks are in flight on the worker pool, how often workers die and tasks
are rescheduled, and how much work the shared cache tier absorbed
(store hits and in-flight dedupe).

All instruments live in an ordinary
:class:`~repro.obs.instruments.MetricsRegistry`, so the same exporters
(`to_metrics_dict` consumers, Prometheus text) and the same get-or-create
semantics apply.  The scheduler mutates counters from its dispatcher
thread and client threads; counter increments are guarded by the
scheduler's own lock, so the registry needs none of its own.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.obs.instruments import Counter, Gauge, MetricsRegistry

__all__ = ["ServiceMetrics"]


class ServiceMetrics:
    """The scheduler's standard instrument set.

    Attributes map one-to-one onto instruments:

    * ``tasks_in_flight`` (gauge) — tasks dispatched and not yet
      reported back by the pool;
    * ``queue_depth(client)`` (gauge per client) — ready tasks waiting
      for a worker;
    * ``tasks_completed`` / ``tasks_failed`` / ``tasks_cancelled``
      (counters) — terminal task outcomes;
    * ``task_retries`` (counter) — worker-death reschedules;
    * ``worker_respawns`` (counter) — replacement workers spawned;
    * ``cache_hits`` / ``cache_misses`` (counters) — shared-store
      probes at submission;
    * ``dedupe_hits`` (counter) — submissions satisfied by subscribing
      to another job's in-flight task;
    * ``predicted`` (counter) — submissions answered by the analytic
      surrogate instead of simulation (:mod:`repro.bench.surrogate`);
    * ``jobs_submitted`` / ``jobs_completed`` / ``jobs_cancelled``
      (counters) — job lifecycle volume.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        r = self.registry
        self.tasks_in_flight: Gauge = r.gauge(
            "service_tasks_in_flight",
            help="tasks dispatched to workers and not yet resolved",
        )
        self.tasks_completed: Counter = r.counter(
            "service_tasks_completed_total", help="tasks finished successfully"
        )
        self.tasks_failed: Counter = r.counter(
            "service_tasks_failed_total", help="tasks that raised"
        )
        self.tasks_cancelled: Counter = r.counter(
            "service_tasks_cancelled_total", help="tasks cancelled"
        )
        self.task_retries: Counter = r.counter(
            "service_task_retries_total",
            help="tasks rescheduled after a worker death",
        )
        self.worker_respawns: Counter = r.counter(
            "service_worker_respawns_total",
            help="replacement workers spawned after a death",
        )
        self.cache_hits: Counter = r.counter(
            "service_cache_hits_total",
            help="submitted cells served from the shared result store",
        )
        self.cache_misses: Counter = r.counter(
            "service_cache_misses_total",
            help="submitted cells not present in the shared result store",
        )
        self.dedupe_hits: Counter = r.counter(
            "service_cache_dedupe_hits_total",
            help="submitted cells that subscribed to an in-flight task",
        )
        self.predicted: Counter = r.counter(
            "service_predicted_total",
            help="submitted cells answered by the analytic surrogate",
        )
        self.jobs_submitted: Counter = r.counter(
            "service_jobs_submitted_total", help="jobs accepted"
        )
        self.jobs_completed: Counter = r.counter(
            "service_jobs_completed_total", help="jobs that finished"
        )
        self.jobs_cancelled: Counter = r.counter(
            "service_jobs_cancelled_total", help="jobs cancelled"
        )
        self._queue_depth: Dict[str, Gauge] = {}

    def queue_depth(self, client: str) -> Gauge:
        """The named client's ready-queue depth gauge (get-or-create)."""
        g = self._queue_depth.get(client)
        if g is None:
            g = self.registry.gauge(
                "service_queue_depth",
                help="ready tasks awaiting dispatch, per client",
                client=client,
            )
            self._queue_depth[client] = g
        return g

    def snapshot(self) -> Dict[str, float]:
        """Flat ``qualified name -> value`` view (for listings/tests)."""
        out: Dict[str, float] = {}
        for inst in self.registry.instruments():
            if isinstance(inst, Counter):
                out[inst.qualified_name] = inst.value
            elif isinstance(inst, Gauge):
                out[inst.qualified_name] = inst.read()
        return out
