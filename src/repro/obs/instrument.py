"""Wiring: register pull gauges over a live pipeline's hot seams.

:func:`instrument_pipeline` walks an already-constructed
:class:`~repro.core.executor.PipelineExecutor` and registers pull gauges
over state the simulation maintains anyway:

* per-stripe-server disk queue depth, cumulative busy seconds, and
  per-directory bytes served (:class:`~repro.pfs.server.IOServer`);
* fault-layer counters (failed requests, outages, client retries and
  replica failovers) when the fault-tolerant path is active;
* per-link occupancy of the interconnect (mesh links or multistage
  injection/ejection ports), with per-link busy fractions folded into a
  summary at finalize;
* cumulative MPI message/byte totals (``Communicator.traffic``);
* reader-side state — cancelled asynchronous reads, and (registered by
  the readers themselves via ``ctx.metrics``) outstanding prefetch
  depth — plus dropped-CPI counts when a read deadline is set.

Everything here is a *read*: no callback mutates simulation state, so
event order is unchanged whether metrics are on or off.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.machine.mesh import MeshNetwork
from repro.machine.multistage import MultistageNetwork
from repro.obs.instruments import MetricsRegistry

__all__ = ["instrument_pipeline", "instrument_substrate"]


class _BusyTally:
    """Pull gauge over lazily-allocated capacity-1 resources.

    Returns the number currently held; as a side effect of each read it
    tallies per-key busy counts, so at finalize the busy *fraction* of
    every link is ``busy_reads / total_reads`` — a per-link utilization
    summary without one timeseries per link (a Paragon mesh allocates
    hundreds).
    """

    def __init__(self, groups: List[Tuple[str, Dict]]) -> None:
        self._groups = groups  # (key prefix, live {key: Resource}) pairs
        self._busy: Dict[str, int] = {}
        self._reads = 0

    def __call__(self) -> int:
        self._reads += 1
        n = 0
        for prefix, resources in self._groups:
            for key, res in resources.items():
                if res._in_use:
                    n += 1
                    label = (
                        f"{prefix}{key[0]}->{key[1]}"
                        if isinstance(key, tuple)
                        else f"{prefix}{key}"
                    )
                    self._busy[label] = self._busy.get(label, 0) + 1
        return n

    def fractions(self) -> Dict[str, float]:
        if not self._reads:
            return {}
        return {k: v / self._reads for k, v in sorted(self._busy.items())}


def _instrument_servers(registry: MetricsRegistry, fs) -> None:
    for i, server in enumerate(fs.servers):
        label = str(i)
        registry.gauge(
            "pfs_server_queue_depth",
            help="requests waiting on or holding the stripe directory's disk",
            fn=lambda s=server: s.queue_length,
            server=label,
        )
        registry.gauge(
            "pfs_server_busy_seconds_total",
            help="cumulative simulated seconds the disk spent servicing",
            fn=lambda s=server: s.busy_time,
            server=label,
        )
        registry.gauge(
            "pfs_server_bytes_served_total",
            help="cumulative bytes read off this stripe directory's disk",
            fn=lambda s=server: s.bytes_served,
            server=label,
        )
    if fs.fault_tolerant:
        servers = fs.servers
        registry.gauge(
            "pfs_requests_failed_total",
            help="server-side request failures (outages + flaky disks)",
            fn=lambda: sum(s.requests_failed for s in servers),
        )
        registry.gauge(
            "pfs_server_outages_total",
            help="server outages entered so far",
            fn=lambda: sum(s.outages for s in servers),
        )
        registry.gauge(
            "pfs_client_retries_total",
            help="client-side read/write attempts that failed and were retried",
            fn=lambda: fs.client_retries,
        )
        registry.gauge(
            "pfs_client_failovers_total",
            help="reads served by a non-primary replica",
            fn=lambda: fs.client_failovers,
        )
        registry.gauge(
            "pfs_duplicate_ships_total",
            help="timed-out attempts whose late success still shipped bytes",
            fn=lambda: sum(s.duplicate_ships for s in servers),
        )


def _instrument_network(registry: MetricsRegistry, network) -> None:
    if isinstance(network, MeshNetwork):
        tally = _BusyTally([("link", network._links)])
        kind = "mesh"
    elif isinstance(network, MultistageNetwork):
        tally = _BusyTally(
            [("inj", network._in_ports), ("ej", network._out_ports)]
        )
        kind = "multistage"
    else:  # contention-free: no shared state to watch
        return
    registry.gauge(
        "net_links_busy",
        help=f"{kind} links/ports currently held by a transfer",
        fn=tally,
    )
    registry.on_finalize(
        lambda: registry.summary("net_link_busy_fraction", tally.fractions())
    )


def instrument_pipeline(
    registry: MetricsRegistry,
    executor,
    tenant: str = "",
    include_substrate: bool = True,
) -> None:
    """Register the standard gauge set over ``executor``'s components.

    Called by :class:`~repro.core.executor.PipelineExecutor` when
    ``cfg.metrics_interval`` is set, after the machine/FS/communicator
    are built and before any process is spawned.

    Scenario hosting: a non-empty ``tenant`` adds a ``tenant`` label to
    every per-pipeline instrument (MPI traffic, reader state, drops) so
    N tenants' series split cleanly in one shared registry, and
    ``include_substrate=False`` skips the server/network gauges — the
    substrate is shared, so the scenario registers those exactly once
    (see :func:`instrument_substrate`).  Standalone runs (``tenant=""``)
    keep their exact pre-existing metric names and labels.
    """
    labels = {"tenant": tenant} if tenant else {}
    if include_substrate:
        _instrument_servers(registry, executor.fs)
        _instrument_network(registry, executor.machine.network)

    traffic = executor.comm.traffic
    registry.gauge(
        "mpi_messages_total",
        help="messages delivered over the interconnect",
        fn=lambda: sum(m for m, _ in traffic.values()),
        **labels,
    )
    registry.gauge(
        "mpi_bytes_total",
        help="payload bytes delivered over the interconnect",
        fn=lambda: sum(b for _, b in traffic.values()),
        **labels,
    )

    results = executor.results
    registry.gauge(
        "reader_cancelled_reads_total",
        help="asynchronous slab reads drained unconsumed at teardown",
        fn=lambda: len(results.get("cancelled_reads", ())),
        **labels,
    )
    if executor.cfg.read_deadline is not None:
        registry.gauge(
            "pipeline_dropped_cpis_total",
            help="CPIs skipped at the graceful-degradation read deadline",
            fn=lambda: len(results.get("dropped_cpis", ())),
            **labels,
        )


def instrument_substrate(registry: MetricsRegistry, substrate) -> None:
    """Register the *shared* gauges of a scenario substrate, once.

    The stripe servers and the interconnect belong to every tenant at
    once; per-tenant attribution of disk traffic comes from the file
    system's per-path byte accounting instead
    (``pfs_tenant_bytes_total``, registered by the scenario executor).
    """
    _instrument_servers(registry, substrate.fs)
    _instrument_network(registry, substrate.machine.network)
