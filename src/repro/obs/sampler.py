"""Kernel-driven gauge sampling at a fixed simulated-time interval.

The obvious design — a sampler *process* that loops ``yield
k.timeout(dt)`` — is wrong for this codebase: it would consume sequence
numbers, keep the deadlock detector's live-process count nonzero, and
interleave its own entries with the workload's, perturbing the event
order the perfsuite result hashes pin down.

Instead the :class:`Sampler` rides the kernel's **clock-advance hook**
(``Kernel._monitor``): the kernel's clock only moves on heap pops, and
immediately after each advance past ``_monitor_next`` it calls the
monitor with the new time.  The monitor emits one snapshot per crossed
interval boundary and never schedules anything, so:

* the event queue, lane, and sequence counter are untouched — event
  order is *structurally* identical with sampling on or off;
* a snapshot at boundary ``b`` observes the state after all events at
  times ``< t_pop`` have run, i.e. the exact DES state at any instant in
  ``(t_prev, t_pop)`` — which contains ``b``;
* when the sampling interval outpaces event density, multiple
  boundaries are emitted at one advance (each a correct snapshot: no
  events fired between them).

Snapshots are *sparse*: a gauge's point is recorded only when its value
changed, plus one forced final point at :meth:`finalize` so every
series ends at the run's end time.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError
from repro.obs.instruments import MetricsRegistry
from repro.sim.kernel import Kernel

__all__ = ["Sampler"]


class Sampler:
    """Snapshot a registry's gauges every ``interval`` simulated seconds.

    Attributes
    ----------
    samples:
        Snapshots taken so far (interval boundaries crossed, plus the
        forced final snapshot).  Tally-style gauge callbacks use this
        count as the busy-fraction denominator.
    """

    def __init__(
        self, kernel: Kernel, registry: MetricsRegistry, interval: float
    ) -> None:
        if interval <= 0:
            raise ConfigurationError(
                f"sampling interval must be > 0 seconds, got {interval}"
            )
        self.kernel = kernel
        self.registry = registry
        self.interval = interval
        self.samples = 0
        self._next_k = 0  # integer boundary index: next boundary is k*interval
        self._attached = False

    # -- lifecycle ---------------------------------------------------------
    def attach(self) -> None:
        """Install the clock-advance hook; boundary 0.0 is sampled at the
        first heap pop (after any zero-time lane events have run)."""
        if self.kernel._monitor is not None:
            raise ConfigurationError("kernel already has a monitor attached")
        self.kernel._monitor = self._on_advance
        self.kernel._monitor_next = self._next_k * self.interval
        self._attached = True

    def finalize(self, t_end: Optional[float] = None) -> None:
        """Run finalizer hooks, force one last snapshot, detach."""
        if not self._attached:
            return
        for fn in self.registry._finalizers:
            fn()
        self._sample(self.kernel.now if t_end is None else t_end, final=True)
        self.kernel._monitor = None
        self.kernel._monitor_next = float("inf")
        self._attached = False

    # -- the hook ----------------------------------------------------------
    def _on_advance(self, t: float) -> None:
        """Called by the kernel right after its clock advanced to ``t``
        (before dispatching the event that caused the advance)."""
        k, dt = self._next_k, self.interval
        boundary = k * dt
        while boundary <= t:
            self._sample(boundary, final=False)
            k += 1
            boundary = k * dt  # k * dt, not += dt: no float drift
        self._next_k = k
        self.kernel._monitor_next = boundary

    def _sample(self, t: float, final: bool) -> None:
        self.samples += 1
        for gauge in self.registry.gauges():
            value = gauge.read()
            series = gauge._ensure_series()
            if series._v and series._v[-1] == value and not final:
                continue  # sparse: unchanged values are implied
            series.record(t, value)
