"""Live metrics and time-series observability for simulated runs.

The paper's whole argument is about *where the bottleneck sits* — disk
queues vs. interconnect links vs. compute — and this package makes that
visible over simulated time instead of only post-hoc:

* :mod:`repro.obs.instruments` — typed instruments (:class:`Counter`,
  :class:`Gauge`, :class:`Histogram`, :class:`Timeseries`) in a
  :class:`MetricsRegistry`;
* :mod:`repro.obs.sampler` — the kernel-hook :class:`Sampler` that
  snapshots pull gauges at a fixed simulated interval with zero effect
  on event ordering;
* :mod:`repro.obs.instrument` — :func:`instrument_pipeline`, the
  standard gauge set over a live executor's hot seams;
* :mod:`repro.obs.report` — read-side analysis of the exported JSON
  artifact (:func:`bottleneck_profile`, summaries, sparklines);
* :mod:`repro.obs.service` — :class:`ServiceMetrics`, the experiment
  scheduler's instrument set (queue depth per client, tasks in flight,
  worker respawns, cache and dedupe hits).

Enable per run with ``ExecutionConfig(metrics_interval=0.1)`` or
``repro run --metrics``; the artifact lands on
``PipelineResult.metrics`` and exports as JSON, Prometheus text, or
chrome-trace counter tracks (see :mod:`repro.trace.export` and
``docs/observability.md``).
"""

from repro.obs.instruments import (
    METRICS_SCHEMA,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    Timeseries,
    validate_metrics_dict,
)
from repro.obs.instrument import instrument_pipeline, instrument_substrate
from repro.obs.report import (
    bottleneck_profile,
    render_metrics_summary,
    sparkline,
    time_weighted_mean,
)
from repro.obs.sampler import Sampler
from repro.obs.service import ServiceMetrics

__all__ = [
    "ServiceMetrics",
    "METRICS_SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "Timeseries",
    "MetricsRegistry",
    "Sampler",
    "instrument_pipeline",
    "instrument_substrate",
    "validate_metrics_dict",
    "bottleneck_profile",
    "render_metrics_summary",
    "sparkline",
    "time_weighted_mean",
]
