"""Read-side helpers over the JSON metrics artifact.

Everything here consumes the plain-dict artifact (``PipelineResult
.metrics`` or a loaded ``metrics_*.json`` file), so it works equally on
live results and on cache-restored ones.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "parse_qualified_name",
    "series_by_name",
    "time_weighted_mean",
    "bottleneck_profile",
    "sparkline",
    "render_metrics_summary",
]

_SPARK_CHARS = " .:-=+*#%@"


def parse_qualified_name(qname: str) -> Tuple[str, Dict[str, str]]:
    """Split ``name{k="v",...}`` into ``(name, labels)``."""
    if "{" not in qname:
        return qname, {}
    name, _, rest = qname.partition("{")
    labels: Dict[str, str] = {}
    for part in rest.rstrip("}").split(","):
        if not part:
            continue
        k, _, v = part.partition("=")
        labels[k] = v.strip('"')
    return name, labels


def series_by_name(metrics: dict, name: str) -> Dict[str, dict]:
    """All series of one base instrument name, keyed by qualified name."""
    return {
        q: s
        for q, s in metrics.get("series", {}).items()
        if parse_qualified_name(q)[0] == name
    }


def time_weighted_mean(
    t: Sequence[float], v: Sequence[float], t_end: float
) -> float:
    """Mean of a sparse last-value series over ``[t[0], t_end]``.

    Each point holds until the next point's timestamp (the sampler's
    last-value semantics), so the mean is the stepwise integral divided
    by the covered span.
    """
    if not t or t_end <= t[0]:
        return v[-1] if v else 0.0
    area = 0.0
    for i in range(len(t) - 1):
        area += v[i] * (t[i + 1] - t[i])
    area += v[-1] * (t_end - t[-1])
    return area / (t_end - t[0])


def _degraded_profile(result) -> Dict[str, object]:
    """The explicit "no metrics" profile row for un-metered results."""
    source = getattr(result, "source", "simulated") or "simulated"
    return {
        "disk_util": 0.0,
        "mean_queue_depth": 0.0,
        "compute_util": 0.0,
        "bottleneck": "unknown",
        "note": f"no metrics recorded (source={source})",
    }


def bottleneck_profile(result, *, strict: bool = True) -> Dict[str, float]:
    """Where the run's bottleneck sat: disk queues vs. compute.

    Derived entirely from the new gauges on ``result.metrics``:

    * ``disk_util`` — mean busy fraction over all stripe directories
      (final ``pfs_server_busy_seconds_total`` / elapsed);
    * ``mean_queue_depth`` — time-weighted mean disk queue depth summed
      over servers (the pressure reading: > 0 means reads are waiting);
    * ``compute_util`` — busy fraction of the busiest task's nodes,
      from the ``task_phase_seconds_total{phase=compute}`` counters.

    The disk→compute bottleneck handoff of the stripe-factor sweep shows
    up as ``disk_util``/``mean_queue_depth`` collapsing while
    ``compute_util`` saturates.

    A result without a usable metrics artifact (surrogate-predicted, or
    simulated without ``metrics_interval``) raises ``ValueError`` by
    default; with ``strict=False`` it instead returns a degraded profile
    — ``bottleneck="unknown"`` plus an explicit
    ``note="no metrics recorded (source=...)"`` — so sweep-level
    analysis over a mixed store never aborts on one un-metered cell.
    """
    metrics = result.metrics
    if metrics is None:
        if not strict:
            return _degraded_profile(result)
        raise ValueError("result has no metrics (run with metrics enabled)")
    t_end = metrics.get("t_end") or result.elapsed_sim_time
    if not t_end:
        if not strict:
            return _degraded_profile(result)
        raise ValueError("metrics artifact has no elapsed time")

    busy = [
        v
        for q, v in metrics["gauges"].items()
        if parse_qualified_name(q)[0] == "pfs_server_busy_seconds_total"
    ]
    disk_util = sum(busy) / (len(busy) * t_end) if busy else 0.0

    depth = 0.0
    for s in series_by_name(metrics, "pfs_server_queue_depth").values():
        depth += time_weighted_mean(s["t"], s["v"], t_end)

    nodes_per_task: Dict[str, int] = {}
    for task in (result.rank_task or {}).values():
        nodes_per_task[task] = nodes_per_task.get(task, 0) + 1
    compute_util = 0.0
    for q, seconds in metrics["counters"].items():
        name, labels = parse_qualified_name(q)
        if name != "task_phase_seconds_total" or labels.get("phase") != "compute":
            continue
        n = nodes_per_task.get(labels.get("task", ""), 0)
        if n:
            compute_util = max(compute_util, seconds / (n * t_end))

    return {
        "disk_util": disk_util,
        "mean_queue_depth": depth,
        "compute_util": compute_util,
        "bottleneck": "disk" if disk_util >= compute_util else "compute",
    }


def sparkline(values: Sequence[float], width: int = 40) -> str:
    """Render a series as a one-line ASCII density strip."""
    if not values:
        return ""
    vals = list(values)
    if len(vals) > width:  # downsample by striding
        step = len(vals) / width
        vals = [vals[int(i * step)] for i in range(width)]
    lo, hi = min(vals), max(vals)
    span = (hi - lo) or 1.0
    top = len(_SPARK_CHARS) - 1
    return "".join(
        _SPARK_CHARS[int(round((v - lo) / span * top))] for v in vals
    )


def render_metrics_summary(metrics: dict, top: int = 8) -> str:
    """Human-readable digest of a metrics artifact.

    Robust to partial artifacts: a dict missing ``t_end`` / ``samples``
    / ``interval`` (predicted results, hand-built fixtures) renders an
    explicit placeholder header instead of raising a format error.
    """
    lines: List[str] = []
    interval: Optional[float] = metrics.get("interval")
    t_end_raw = metrics.get("t_end")
    elapsed = (
        f"{t_end_raw:.3f}s simulated"
        if isinstance(t_end_raw, (int, float))
        else "no elapsed time recorded"
    )
    lines.append(
        f"metrics: {len(metrics.get('series', {}))} series, "
        f"{len(metrics.get('counters', {}))} counters, "
        f"{metrics.get('samples')} samples @ {interval}s over "
        f"{elapsed}"
    )
    t_end = metrics.get("t_end") or 0.0
    ranked = sorted(
        (
            (time_weighted_mean(s["t"], s["v"], t_end), q, s)
            for q, s in metrics.get("series", {}).items()
            if len(s["t"]) > 1
        ),
        reverse=True,
    )
    if ranked:
        lines.append("")
        lines.append(f"busiest series (time-weighted mean, top {top}):")
        width = max(len(q) for _, q, _ in ranked[:top])
        for mean, q, s in ranked[:top]:
            lines.append(
                f"  {q:<{width}}  {mean:12.4f}  {sparkline(s['v'])}"
            )
    for name, values in sorted(metrics.get("summaries", {}).items()):
        if not values:
            continue
        hottest = sorted(values.items(), key=lambda kv: -kv[1])[:top]
        lines.append("")
        lines.append(f"{name} (top {len(hottest)}):")
        for key, frac in hottest:
            lines.append(f"  {key:<16} {frac:8.3f}")
    return "\n".join(lines)
