"""Typed metric instruments and their registry.

Four instrument types, mirroring the usual production-metrics taxonomy:

* :class:`Counter` — monotone accumulator (``inc``); e.g. seconds spent
  in a phase, requests retried.
* :class:`Gauge` — instantaneous value, either *pushed* (``set``) or
  *pulled* through a zero-argument callback (``fn=``).  Pull gauges are
  the backbone of the sampler: they read state the simulation already
  maintains (queue lengths, byte counters, link occupancy) so enabling
  metrics adds **no** writes to any hot path.
* :class:`Histogram` — fixed-bucket distribution (``observe``), in the
  Prometheus cumulative-bucket shape.
* :class:`Timeseries` — explicit ``(t, v)`` points over *simulated*
  time.  The :class:`~repro.obs.sampler.Sampler` materializes one per
  sampled gauge; they can also be recorded directly.

All of it hangs off a :class:`MetricsRegistry`, which deduplicates
instruments by ``(name, labels)`` and serializes the whole collection
into the JSON time-series artifact stored on
``PipelineResult.metrics``.

Determinism contract: instruments are plain Python state.  Creating,
incrementing, or reading them never touches the DES kernel, so a run
with metrics enabled schedules exactly the same events in exactly the
same order as one without.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "METRICS_SCHEMA",
    "Counter",
    "Gauge",
    "Histogram",
    "Timeseries",
    "MetricsRegistry",
    "validate_metrics_dict",
]

#: Schema of the JSON metrics artifact; bump on incompatible changes.
METRICS_SCHEMA = 1

#: Default latency-histogram bucket upper bounds (simulated seconds).
DEFAULT_BUCKETS = (0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0)

LabelItems = Tuple[Tuple[str, str], ...]


def _qualify(name: str, labels: LabelItems) -> str:
    """Prometheus-style qualified name: ``name{k="v",...}``."""
    if not labels:
        return name
    inner = ",".join(f'{k}="{v}"' for k, v in labels)
    return f"{name}{{{inner}}}"


class _Instrument:
    """Common identity of every instrument: name, labels, help text."""

    kind: str = ""

    def __init__(self, name: str, labels: LabelItems, help: str = "") -> None:
        self.name = name
        self.labels = labels
        self.help = help

    @property
    def qualified_name(self) -> str:
        return _qualify(self.name, self.labels)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.qualified_name}>"


class Counter(_Instrument):
    """Monotonically increasing accumulator."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelItems, help: str = "") -> None:
        super().__init__(name, labels, help)
        self.value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.qualified_name} cannot decrease (inc {amount})"
            )
        self.value += amount


class Gauge(_Instrument):
    """Instantaneous value: pushed via :meth:`set` or pulled via ``fn``.

    A pull gauge's callback must be a pure read of simulation state —
    it runs inside the kernel's clock-advance hook, where scheduling
    anything would perturb event order.
    """

    kind = "gauge"

    def __init__(
        self,
        name: str,
        labels: LabelItems,
        help: str = "",
        fn: Optional[Callable[[], float]] = None,
    ) -> None:
        super().__init__(name, labels, help)
        self.fn = fn
        self._value: float = 0.0
        #: Filled by the sampler with this gauge's sampled points.
        self.series: Optional[Timeseries] = None

    def set(self, value: float) -> None:
        if self.fn is not None:
            raise ConfigurationError(
                f"gauge {self.qualified_name} is pull-based (fn=); set() "
                "would be overwritten at the next sample"
            )
        self._value = value

    def read(self) -> float:
        """Current value (invokes the callback for pull gauges)."""
        return self.fn() if self.fn is not None else self._value

    def _ensure_series(self) -> "Timeseries":
        if self.series is None:
            self.series = Timeseries(self.name, self.labels, self.help)
        return self.series


class Histogram(_Instrument):
    """Fixed-bucket distribution in the cumulative-bucket shape.

    ``buckets`` are ascending upper bounds; an implicit ``+inf`` bucket
    catches the tail, so ``counts`` has ``len(buckets) + 1`` entries.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: LabelItems,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
        help: str = "",
    ) -> None:
        super().__init__(name, labels, help)
        if not buckets or list(buckets) != sorted(buckets):
            raise ConfigurationError(
                f"histogram {name} needs ascending bucket bounds, got {buckets}"
            )
        self.buckets: Tuple[float, ...] = tuple(float(b) for b in buckets)
        self.counts: List[int] = [0] * (len(self.buckets) + 1)
        self.sum: float = 0.0
        self.count: int = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[i] += 1
                return
        self.counts[-1] += 1


class Timeseries(_Instrument):
    """Explicit ``(t, v)`` points over simulated time.

    Points are *sparse with last-value semantics*: the sampler records a
    point only when the value changed (plus one final point at the end
    of the run), so a consumer reconstructs the full series by holding
    each value until the next point.
    """

    kind = "timeseries"

    def __init__(self, name: str, labels: LabelItems, help: str = "") -> None:
        super().__init__(name, labels, help)
        self._t: List[float] = []
        self._v: List[float] = []

    def record(self, t: float, value: float) -> None:
        if self._t and t < self._t[-1]:
            raise ConfigurationError(
                f"timeseries {self.qualified_name}: t={t} precedes "
                f"last point at t={self._t[-1]}"
            )
        self._t.append(t)
        self._v.append(value)

    def points(self) -> List[Tuple[float, float]]:
        return list(zip(self._t, self._v))

    def __len__(self) -> int:
        return len(self._t)

    @property
    def last(self) -> Optional[float]:
        return self._v[-1] if self._v else None


class MetricsRegistry:
    """All of one run's instruments, keyed by ``(name, labels)``.

    Factory methods are get-or-create: asking twice for the same
    instrument returns the same object, so instrumentation sites can be
    written without coordination.  Re-registering a name with a
    different instrument type is a configuration error.
    """

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, LabelItems], _Instrument] = {}
        self._summaries: Dict[str, Dict[str, float]] = {}
        self._finalizers: List[Callable[[], None]] = []

    # -- factories ---------------------------------------------------------
    def _get_or_create(self, cls, name: str, labels: Dict[str, str],
                       **kwargs: Any) -> _Instrument:
        items: LabelItems = tuple(sorted((k, str(v)) for k, v in labels.items()))
        key = (name, items)
        inst = self._instruments.get(key)
        if inst is not None:
            if not isinstance(inst, cls):
                raise ConfigurationError(
                    f"instrument {_qualify(name, items)} already registered "
                    f"as {inst.kind}, not {cls.kind}"
                )
            return inst
        inst = cls(name, items, **kwargs)
        self._instruments[key] = inst
        return inst

    def counter(self, name: str, help: str = "", **labels: str) -> Counter:
        return self._get_or_create(Counter, name, labels, help=help)

    def gauge(
        self,
        name: str,
        help: str = "",
        fn: Optional[Callable[[], float]] = None,
        **labels: str,
    ) -> Gauge:
        g = self._get_or_create(Gauge, name, labels, help=help, fn=fn)
        if fn is not None and g.fn is None:
            g.fn = fn
        return g

    def histogram(
        self,
        name: str,
        buckets: Tuple[float, ...] = DEFAULT_BUCKETS,
        help: str = "",
        **labels: str,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, labels, buckets=buckets, help=help
        )

    def timeseries(self, name: str, help: str = "", **labels: str) -> Timeseries:
        return self._get_or_create(Timeseries, name, labels, help=help)

    # -- introspection -----------------------------------------------------
    def instruments(self) -> Iterator[_Instrument]:
        return iter(self._instruments.values())

    def gauges(self) -> List[Gauge]:
        return [i for i in self._instruments.values() if isinstance(i, Gauge)]

    def get(self, name: str, **labels: str) -> Optional[_Instrument]:
        items: LabelItems = tuple(sorted((k, str(v)) for k, v in labels.items()))
        return self._instruments.get((name, items))

    def __len__(self) -> int:
        return len(self._instruments)

    # -- finalize hooks ----------------------------------------------------
    def on_finalize(self, fn: Callable[[], None]) -> None:
        """Register a callback run once at sampler finalize (used to
        fold per-link tallies into summaries)."""
        self._finalizers.append(fn)

    def summary(self, name: str, values: Dict[str, float]) -> None:
        """Store a named bag of derived scalars (e.g. per-link busy
        fractions) for the exported artifact."""
        self._summaries[name] = dict(values)

    # -- serialization -----------------------------------------------------
    def to_dict(
        self,
        interval: Optional[float] = None,
        t_end: Optional[float] = None,
        samples: Optional[int] = None,
    ) -> Dict[str, Any]:
        """The JSON metrics artifact (schema :data:`METRICS_SCHEMA`)."""
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Dict[str, Any]] = {}
        series: Dict[str, Dict[str, List[float]]] = {}
        help_text: Dict[str, str] = {}
        for inst in self._instruments.values():
            if inst.help:
                help_text.setdefault(inst.name, inst.help)
            q = inst.qualified_name
            if isinstance(inst, Counter):
                counters[q] = inst.value
            elif isinstance(inst, Gauge):
                if inst.series is not None and len(inst.series):
                    gauges[q] = inst.series.last
                    series[q] = {"t": inst.series._t, "v": inst.series._v}
                else:
                    gauges[q] = inst.read()
            elif isinstance(inst, Histogram):
                histograms[q] = {
                    "buckets": list(inst.buckets),
                    "counts": list(inst.counts),
                    "sum": inst.sum,
                    "count": inst.count,
                }
            elif isinstance(inst, Timeseries):
                series[q] = {"t": inst._t, "v": inst._v}
        return {
            "schema": METRICS_SCHEMA,
            "interval": interval,
            "t_end": t_end,
            "samples": samples,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
            "series": series,
            "summaries": dict(self._summaries),
            "help": help_text,
        }


def validate_metrics_dict(data: Any) -> List[str]:
    """Schema-check a metrics artifact; returns problems (empty = valid).

    Used by the CLI, the CI ``obs-smoke`` step, and the tests — one
    shared definition of what a well-formed artifact looks like.
    """
    problems: List[str] = []
    if not isinstance(data, dict):
        return [f"artifact must be a dict, got {type(data).__name__}"]
    if data.get("schema") != METRICS_SCHEMA:
        problems.append(
            f"schema must be {METRICS_SCHEMA}, got {data.get('schema')!r}"
        )
    for key, typ in (
        ("counters", dict), ("gauges", dict), ("histograms", dict),
        ("series", dict), ("summaries", dict),
    ):
        if not isinstance(data.get(key), typ):
            problems.append(f"missing or mistyped key {key!r}")
    for q, s in (data.get("series") or {}).items():
        if not isinstance(s, dict) or "t" not in s or "v" not in s:
            problems.append(f"series {q!r} must have 't' and 'v' arrays")
            continue
        if len(s["t"]) != len(s["v"]):
            problems.append(
                f"series {q!r}: {len(s['t'])} timestamps vs "
                f"{len(s['v'])} values"
            )
        if any(b < a for a, b in zip(s["t"], s["t"][1:])):
            problems.append(f"series {q!r}: timestamps not monotone")
    for q, h in (data.get("histograms") or {}).items():
        if len(h.get("counts", [])) != len(h.get("buckets", [])) + 1:
            problems.append(
                f"histogram {q!r}: counts must have len(buckets)+1 entries"
            )
    return problems
