"""One front door for running experiments: :func:`repro.run`.

The engine's full surface — :class:`~repro.bench.engine.ExperimentSpec`,
:class:`~repro.bench.engine.SweepRunner`,
:class:`~repro.bench.store.ResultStore` — stays available for grids and
sweeps, but the common case is *one cell*: pick a node-assignment case,
a strategy, a file system, and go.  ``repro.run`` covers that in a
single call from a spec, a dict, or plain keyword arguments::

    import repro

    result = repro.run(case=3, pipeline="embedded", stripe_factor=32)
    result = repro.run(case=1, metrics_interval=0.25)   # with metrics
    result = repro.run(my_spec, jobs=1, store="results/cache")

Everything funnels through the same :class:`SweepRunner` path the
sweeps use, so caching semantics, process isolation, and result shapes
are identical whether a cell came from the facade or from a grid.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Union

from repro.bench.engine import ExperimentSpec, SweepRunner
from repro.bench.store import ResultStore
from repro.core.context import ExecutionConfig
from repro.core.executor import FSConfig, PipelineResult
from repro.core.pipeline import NodeAssignment
from repro.errors import ConfigurationError
from repro.stap.params import STAPParams

__all__ = ["run"]

#: kwargs forwarded into ExecutionConfig when no explicit cfg is given.
_CFG_KEYS = (
    "n_cpis", "warmup", "threaded", "read_deadline", "metrics_interval",
)

#: kwargs forwarded into FSConfig when no explicit fs is given.
_FS_KEYS = (
    "stripe_factor", "stripe_unit", "disk_bw", "disk_overhead", "replication",
)


def _build_spec(seed: Optional[int], kwargs: dict) -> ExperimentSpec:
    """An :class:`ExperimentSpec` from facade keyword arguments."""
    params = kwargs.pop("params", None) or STAPParams()
    assignment = kwargs.pop("assignment", None)
    case = kwargs.pop("case", None)
    if assignment is None:
        if case is None:
            raise ConfigurationError(
                "repro.run needs either assignment=NodeAssignment(...) or "
                "case=<paper case number>"
            )
        assignment = NodeAssignment.case(case, params)
    elif case is not None:
        raise ConfigurationError("pass either assignment= or case=, not both")

    cfg = kwargs.pop("cfg", None)
    cfg_kwargs = {k: kwargs.pop(k) for k in _CFG_KEYS if k in kwargs}
    if cfg is None:
        cfg = ExecutionConfig(**cfg_kwargs)
    elif cfg_kwargs:
        cfg = replace(cfg, **cfg_kwargs)

    fs = kwargs.pop("fs", None)
    fs_kwargs = {k: kwargs.pop(k) for k in _FS_KEYS if k in kwargs}
    if fs is None:
        fs = FSConfig(**fs_kwargs)
    elif isinstance(fs, str):
        fs = FSConfig(kind=fs, **fs_kwargs)
    elif fs_kwargs:
        fs = replace(fs, **fs_kwargs)

    spec_kwargs = {
        "assignment": assignment,
        "params": params,
        "cfg": cfg,
        "fs": fs,
    }
    for key in (
        "pipeline", "machine", "disk_fault", "node_fault", "writer",
        "server_crash", "flaky_disk", "screening",
    ):
        if key in kwargs:
            spec_kwargs[key] = kwargs.pop(key)
    if kwargs:
        raise ConfigurationError(
            f"repro.run got unknown arguments: {sorted(kwargs)}"
        )
    if seed is not None:
        spec_kwargs["seed"] = seed
    return ExperimentSpec(**spec_kwargs)


def run(
    spec_or_kwargs: Union[ExperimentSpec, dict, None] = None,
    *,
    jobs: int = 1,
    store: Union[ResultStore, str, None] = None,
    seed: Optional[int] = None,
    scheduler=None,
    **kwargs,
) -> PipelineResult:
    """Run one experiment cell and return its ``PipelineResult``.

    Parameters
    ----------
    spec_or_kwargs:
        A ready :class:`ExperimentSpec`, a
        :class:`~repro.scenario.ScenarioSpec` (the multi-tenant case —
        returns a :class:`~repro.scenario.ScenarioResult`), a dict of
        the keyword arguments below, or None (build the spec purely
        from ``**kwargs``).
    jobs:
        Forwarded to :class:`SweepRunner` — kept for signature symmetry
        with sweeps; a single cell always runs in one process.
    store:
        :class:`ResultStore` or a directory path for one.  With a store,
        a previously-computed identical cell is returned from disk.
    seed:
        Overrides the spec's seed (including on a ready-made spec).
    scheduler:
        A running :class:`~repro.service.ExperimentScheduler` to submit
        the cell to instead of a throwaway :class:`SweepRunner` — the
        cell shares the service's warm workers, in-flight dedupe, and
        cache tier (``jobs`` and ``store`` are then the scheduler's).
    **kwargs:
        Spec fields when building one: ``case`` *or* ``assignment``,
        ``pipeline``, ``machine``, ``params``, ``cfg`` or any of
        ``n_cpis / warmup / threaded / read_deadline /
        metrics_interval``, ``fs`` (an :class:`FSConfig` or a kind
        string) or any of ``stripe_factor / stripe_unit / disk_bw /
        disk_overhead / replication``, the fault-injection fields
        (``disk_fault``, ``node_fault``, ``writer``, ``server_crash``,
        ``flaky_disk``), and ``screening`` (``"off"`` / ``"screen"`` /
        ``"predict-all"``, see :mod:`repro.bench.surrogate`).
    """
    from repro.scenario import ScenarioSpec

    if isinstance(spec_or_kwargs, ScenarioSpec):
        if kwargs:
            raise ConfigurationError(
                "pass either a ready ScenarioSpec or keyword arguments, "
                f"not both (got spec plus {sorted(kwargs)})"
            )
        spec = spec_or_kwargs
        if seed is not None and seed != spec.seed:
            spec = replace(spec, seed=seed)
    elif isinstance(spec_or_kwargs, ExperimentSpec):
        if kwargs:
            raise ConfigurationError(
                "pass either a ready ExperimentSpec or keyword arguments, "
                f"not both (got spec plus {sorted(kwargs)})"
            )
        spec = spec_or_kwargs
        if seed is not None and seed != spec.seed:
            spec = replace(spec, seed=seed)
    elif isinstance(spec_or_kwargs, dict):
        merged = {**spec_or_kwargs, **kwargs}
        spec = _build_spec(seed, merged)
    elif spec_or_kwargs is None:
        spec = _build_spec(seed, dict(kwargs))
    else:
        raise ConfigurationError(
            "repro.run takes an ExperimentSpec, a dict, or keyword "
            f"arguments; got {type(spec_or_kwargs).__name__}"
        )
    rehydrate = getattr(type(spec), "result_from_dict", PipelineResult.from_dict)
    if scheduler is not None:
        payload = scheduler.submit([spec], client="api").wait()[0]
        return rehydrate(payload)
    if isinstance(store, str):
        store = ResultStore(store)
    with SweepRunner(jobs=jobs, store=store) as runner:
        return runner.run_one(spec)
