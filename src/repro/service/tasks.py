"""Worker-side task entry points.

Task runners are addressed by import string (``"module:function"``) so
that a :class:`~repro.service.model.TaskSpec` stays a plain data value
across process boundaries.  The production runner is
:func:`run_spec_payload`; synthetic runners for tests and drills live
in :mod:`repro.service.testing`.
"""

from __future__ import annotations

__all__ = [
    "RUN_SPEC_RUNNER",
    "RUN_SCENARIO_RUNNER",
    "run_spec_payload",
    "run_scenario_payload",
]

#: Import string of the production experiment-cell runner.
RUN_SPEC_RUNNER = "repro.service.tasks:run_spec_payload"

#: Import string of the multi-tenant scenario runner (a
#: :class:`~repro.scenario.ScenarioSpec` names it via its ``RUNNER``
#: class attribute, which the scheduler consults per spec).
RUN_SCENARIO_RUNNER = "repro.service.tasks:run_scenario_payload"


def run_spec_payload(payload: dict) -> dict:
    """Simulate one experiment cell: spec dict in, result dict out.

    Both sides of the call are JSON-able, so the same runner serves the
    inline pool, process workers, and the wire protocol.  The DES is
    deterministic and the serialization lossless, which is what makes
    results bit-identical regardless of where the cell ran.
    """
    from repro.bench.engine import ExperimentSpec, run_spec

    return run_spec(ExperimentSpec.from_dict(payload)).to_dict()


def run_scenario_payload(payload: dict) -> dict:
    """Simulate one multi-tenant scenario: spec dict in, result dict out.

    The scenario twin of :func:`run_spec_payload` — same JSON-in /
    JSON-out contract, same determinism guarantee, so scenario cells
    ride the scheduler, worker pool, cache, and TCP front end unchanged.
    """
    from repro.scenario import ScenarioSpec, run_scenario

    return run_scenario(ScenarioSpec.from_dict(payload)).to_dict()
