"""Bounded event feed over scheduler state transitions.

The :class:`~repro.service.scheduler.ExperimentScheduler` emits one
plain-dict event per job/stage/task transition and per delivered result
(see ``ExperimentScheduler.add_listener``).  :class:`EventFeed` is the
standard consumer: a bounded ring buffer that stamps each event with a
monotonically increasing sequence number and a wall-clock time, and
supports cursor-based reads (``since``) and long-polling (``wait``) —
the primitives both the TCP ``events`` op and the dashboard's SSE
stream are built from.

Producers never block: ``record`` appends under a condition variable
and returns.  A consumer that falls more than ``maxlen`` events behind
simply misses the overwritten prefix — its next read reports the gap
via the returned ``next`` cursor jumping forward, and fleet-level
consumers (the dashboard) recover by re-reading ``jobs()`` snapshots.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

__all__ = ["EventFeed"]


class EventFeed:
    """Ring buffer of scheduler events with sequence cursors."""

    def __init__(self, maxlen: int = 4096) -> None:
        self._cond = threading.Condition()
        self._events: Deque[Dict[str, Any]] = deque(maxlen=maxlen)
        self._seq = 0

    def record(self, event: Dict[str, Any]) -> None:
        """Stamp and append one event (the scheduler-listener hook).

        Safe to call from any thread, including under the scheduler's
        lock: appending to a bounded deque and notifying waiters is the
        entire critical section.
        """
        with self._cond:
            self._seq += 1
            stamped = dict(event)
            stamped["seq"] = self._seq
            stamped["time"] = time.time()
            self._events.append(stamped)
            self._cond.notify_all()

    @property
    def last_seq(self) -> int:
        with self._cond:
            return self._seq

    def since(
        self, after: int = 0, limit: Optional[int] = None
    ) -> Tuple[List[Dict[str, Any]], int]:
        """Events with ``seq > after`` (oldest first) and the new cursor.

        The cursor is the last sequence number *seen or skipped*: when
        the requested range has been overwritten, the cursor still
        advances past the gap, so a slow consumer converges instead of
        re-requesting evicted history forever.
        """
        with self._cond:
            out = [e for e in self._events if e["seq"] > after]
            if limit is not None and len(out) > limit:
                out = out[:limit]
            cursor = out[-1]["seq"] if out else max(after, self._seq)
            return out, cursor

    def wait(
        self,
        after: int = 0,
        timeout: float = 10.0,
        limit: Optional[int] = None,
    ) -> Tuple[List[Dict[str, Any]], int]:
        """Long-poll variant of :meth:`since`: block up to ``timeout``
        seconds for at least one event past the cursor."""
        deadline = time.monotonic() + timeout
        with self._cond:
            while self._seq <= after:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._cond.wait(remaining)
        return self.since(after, limit)

    def attach(self, scheduler) -> "EventFeed":
        """Subscribe this feed to a scheduler's event stream; returns
        self for chaining (``EventFeed().attach(sched)``)."""
        scheduler.add_listener(self.record)
        return self
