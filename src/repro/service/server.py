"""Line-oriented TCP front end for the experiment scheduler.

``repro serve`` wraps one :class:`~repro.service.scheduler.ExperimentScheduler`
in an :class:`ExperimentServer`; ``repro submit`` / ``repro jobs`` talk
to it with the tiny client helpers below.  The protocol is JSON objects,
one per line, UTF-8:

* request ``{"op": "submit", "specs": [<spec dict>, ...], "client": c,
  "follow": bool}`` → response ``{"ok": true, "event": "accepted",
  "job": id, "cells": n}``; with ``follow`` the connection then streams
  ``{"event": "result", "index": i, "key": h, "source": s,
  "payload": {...}}`` as cells land, terminated by ``{"event": "done",
  "counters": {...}}`` (or ``failed`` / ``cancelled``);
* ``{"op": "jobs"}`` → ``{"ok": true, "jobs": [<describe>, ...]}``;
* ``{"op": "job", "id": j}`` → ``{"ok": true, "job": <describe>}``;
* ``{"op": "cancel", "id": j}`` → ``{"ok": true, "cancelled": bool}``;
* ``{"op": "ping"}`` → ``{"ok": true, "event": "pong"}``;
* ``{"op": "events", "after": n, "timeout": t}`` → ``{"ok": true,
  "events": [...], "next": cursor}`` — cursor-paged scheduler events
  from the server's :class:`~repro.service.events.EventFeed`
  (long-polls up to ``timeout`` seconds when past the tail; requires
  the server to have been built with a feed);
* ``{"op": "stats"}`` → ``{"ok": true, "stats": {...}}`` — the
  :class:`~repro.obs.service.ServiceMetrics` snapshot plus
  ``tasks_in_flight`` and worker PIDs, the dashboard's gauge source.

Anything the server rejects answers ``{"ok": false, "error": msg}`` —
a malformed request never kills the service.  Each connection carries
one request (plus its event stream), which keeps both ends stateless.

Streaming back over TCP composes with the scheduler's dispatch-side
backpressure: the server thread consuming a job's results blocks on
``socket.send`` when the client stalls, stops draining the handle, and
the scheduler stops dispatching that job — a slow ``repro submit
--follow`` throttles only itself.
"""

from __future__ import annotations

import json
import socket
import threading
from typing import Any, Dict, Iterator, List, Optional

from repro.errors import ReproError, ServiceError

__all__ = [
    "ExperimentServer",
    "submit_batch",
    "request",
]

#: Server-side accept timeout; bounds shutdown latency.
_ACCEPT_TICK = 0.2


def _send(wfile, obj: Dict[str, Any]) -> None:
    wfile.write((json.dumps(obj) + "\n").encode("utf-8"))
    wfile.flush()


class ExperimentServer:
    """Serve one scheduler to TCP clients (one thread per connection)."""

    def __init__(self, scheduler, host: str = "127.0.0.1",
                 port: int = 0, feed=None) -> None:
        self.scheduler = scheduler
        #: Optional :class:`~repro.service.events.EventFeed` backing the
        #: ``events`` op; attach it to the scheduler before passing it
        #: in (``EventFeed().attach(scheduler)``).
        self.feed = feed
        self._sock = socket.create_server((host, port))
        self._sock.settimeout(_ACCEPT_TICK)
        self.host, self.port = self._sock.getsockname()[:2]
        self._stop = threading.Event()
        self._accept_thread: Optional[threading.Thread] = None

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def start(self) -> "ExperimentServer":
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="repro-serve-accept", daemon=True
        )
        self._accept_thread.start()
        return self

    def serve_forever(self) -> None:
        """Run the accept loop in the calling thread (the CLI path)."""
        self._accept_loop()

    def stop(self) -> None:
        self._stop.set()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)
        self._sock.close()

    def __enter__(self) -> "ExperimentServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- internals -----------------------------------------------------------
    def _accept_loop(self) -> None:
        while not self._stop.is_set():
            try:
                conn, _addr = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            threading.Thread(
                target=self._serve_connection, args=(conn,),
                name="repro-serve-conn", daemon=True,
            ).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        with conn:
            rfile = conn.makefile("rb")
            wfile = conn.makefile("wb")
            try:
                line = rfile.readline()
                if not line:
                    return
                try:
                    req = json.loads(line.decode("utf-8"))
                    if not isinstance(req, dict):
                        raise ValueError("request must be a JSON object")
                except (ValueError, UnicodeDecodeError) as exc:
                    _send(wfile, {"ok": False, "error": f"bad request: {exc}"})
                    return
                self._handle(req, wfile)
            except (BrokenPipeError, ConnectionResetError, OSError):
                pass  # client went away; nothing to clean up

    def _handle(self, req: Dict[str, Any], wfile) -> None:
        op = req.get("op")
        if op == "ping":
            _send(wfile, {"ok": True, "event": "pong"})
        elif op == "jobs":
            _send(wfile, {"ok": True, "jobs": self.scheduler.jobs()})
        elif op == "job":
            info = self.scheduler.job(str(req.get("id")))
            if info is None:
                _send(wfile, {"ok": False,
                              "error": f"no such job: {req.get('id')!r}"})
            else:
                _send(wfile, {"ok": True, "job": info})
        elif op == "cancel":
            ok = self.scheduler.cancel(str(req.get("id")))
            _send(wfile, {"ok": True, "cancelled": ok})
        elif op == "events":
            if self.feed is None:
                _send(wfile, {"ok": False,
                              "error": "server has no event feed"})
                return
            try:
                after = int(req.get("after") or 0)
                timeout = min(float(req.get("timeout") or 0.0), 30.0)
            except (TypeError, ValueError) as exc:
                _send(wfile, {"ok": False, "error": f"bad cursor: {exc}"})
                return
            if timeout > 0:
                events, cursor = self.feed.wait(after, timeout=timeout)
            else:
                events, cursor = self.feed.since(after)
            _send(wfile, {"ok": True, "events": events, "next": cursor})
        elif op == "stats":
            stats = self.scheduler.metrics.snapshot()
            stats["tasks_in_flight"] = self.scheduler.tasks_in_flight
            _send(wfile, {
                "ok": True,
                "stats": stats,
                "workers": self.scheduler.worker_pids(),
            })
        elif op == "submit":
            self._handle_submit(req, wfile)
        else:
            _send(wfile, {"ok": False, "error": f"unknown op: {op!r}"})

    def _handle_submit(self, req: Dict[str, Any], wfile) -> None:
        from repro.bench.engine import ExperimentSpec
        from repro.scenario import ScenarioSpec

        try:
            specs = [
                ScenarioSpec.from_dict(d) if d.get("kind") == "scenario"
                else ExperimentSpec.from_dict(d)
                for d in req["specs"]
            ]
            if not specs:
                raise ValueError("empty spec list")
        except (ReproError, KeyError, TypeError, ValueError) as exc:
            _send(wfile, {"ok": False, "error": f"bad specs: {exc}"})
            return
        client = str(req.get("client") or "remote")
        handle = self.scheduler.submit(specs, client=client,
                                       label=str(req.get("label") or ""))
        _send(wfile, {"ok": True, "event": "accepted", "job": handle.id,
                      "cells": handle.job.n_cells})
        if not req.get("follow"):
            # Fire-and-forget: nobody will ever drain this stream, so
            # detach the handle — otherwise `undelivered` only grows
            # until backpressure permanently pauses the job (and every
            # later job queued behind it for this client).
            handle.detach()
            return
        try:
            for cell in handle.results():
                _send(wfile, {
                    "event": "result",
                    "index": cell.index,
                    "key": cell.key,
                    "source": cell.source,
                    "payload": cell.payload,
                })
            _send(wfile, {"event": "done", "counters": handle.counters})
        except ReproError as exc:
            kind = "cancelled" if handle.job.state.value == "cancelled" \
                else "failed"
            _send(wfile, {"event": kind, "error": str(exc)})
        except Exception as exc:  # noqa: BLE001 - report, don't kill server
            _send(wfile, {"event": "failed", "error": str(exc)})


# -- client helpers ---------------------------------------------------------
def _connect(host: str, port: int, timeout) -> socket.socket:
    try:
        return socket.create_connection((host, port), timeout=timeout)
    except OSError as exc:
        raise ServiceError(
            f"cannot reach repro service at {host}:{port} ({exc}); "
            "is 'repro serve' running?"
        ) from exc


def request(host: str, port: int, req: Dict[str, Any],
            timeout: float = 10.0) -> Dict[str, Any]:
    """One request, one response (``jobs`` / ``job`` / ``cancel`` / ``ping``)."""
    with _connect(host, port, timeout) as conn:
        conn.sendall((json.dumps(req) + "\n").encode("utf-8"))
        line = conn.makefile("rb").readline()
    if not line:
        raise ServiceError(f"server at {host}:{port} closed the connection")
    resp = json.loads(line.decode("utf-8"))
    if not resp.get("ok"):
        raise ServiceError(resp.get("error", "request rejected"))
    return resp


def submit_batch(
    host: str,
    port: int,
    spec_dicts: List[dict],
    client: str = "remote",
    follow: bool = False,
    label: str = "",
    timeout: Optional[float] = None,
) -> Iterator[Dict[str, Any]]:
    """Submit a batch; yield protocol events (``accepted`` first, then —
    with ``follow`` — one ``result`` per cell and a terminal event)."""
    req = {"op": "submit", "specs": spec_dicts, "client": client,
           "follow": follow, "label": label}
    with _connect(host, port, timeout) as conn:
        conn.sendall((json.dumps(req) + "\n").encode("utf-8"))
        rfile = conn.makefile("rb")
        first = rfile.readline()
        if not first:
            raise ServiceError(
                f"server at {host}:{port} closed the connection"
            )
        resp = json.loads(first.decode("utf-8"))
        if not resp.get("ok"):
            raise ServiceError(resp.get("error", "submit rejected"))
        yield resp
        if not follow:
            return
        for line in rfile:
            event = json.loads(line.decode("utf-8"))
            yield event
            if event.get("event") in ("done", "failed", "cancelled"):
                return
