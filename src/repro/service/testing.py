"""Synthetic task runners for service tests and failure drills.

These runners let the scheduler's machinery — streaming order,
backpressure, cancellation, worker-death retry — be exercised with
controlled wall-clock behavior and cross-process observability, without
simulating real STAP cells.  They are shipped in the package (rather
than the test tree) so worker processes can import them regardless of
how the parent was started.

All coordination happens through marker files under the payload's
``dir``: workers may be separate processes, so in-memory flags cannot
be seen from the test.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

__all__ = [
    "SLEEP_RUNNER",
    "SLOW_FIRST_RUNNER",
    "FAILING_RUNNER",
    "sleep_payload",
    "slow_first_attempt_payload",
    "failing_payload",
]

SLEEP_RUNNER = "repro.service.testing:sleep_payload"
SLOW_FIRST_RUNNER = "repro.service.testing:slow_first_attempt_payload"
FAILING_RUNNER = "repro.service.testing:failing_payload"


def _touch(directory: str, name: str) -> None:
    if directory:
        Path(directory, name).touch()


def sleep_payload(payload: dict) -> dict:
    """Sleep ``duration`` seconds, then echo ``value``.

    Drops a ``started-<id>`` marker in ``dir`` before sleeping and a
    ``finished-<id>`` marker after, so tests can observe *when* a cell
    started executing relative to other deliveries (the streaming
    acceptance check) and whether a cancelled cell ever finished.
    """
    cell_id = payload.get("id", "cell")
    _touch(payload.get("dir", ""), f"started-{cell_id}")
    time.sleep(float(payload.get("duration", 0.0)))
    _touch(payload.get("dir", ""), f"finished-{cell_id}")
    return {"value": payload.get("value"), "id": cell_id, "pid": os.getpid()}


def slow_first_attempt_payload(payload: dict) -> dict:
    """Hang on the first attempt, return instantly on the retry.

    The first call creates ``attempted-<id>`` in ``dir`` and sleeps for
    ``duration`` (default 60 s) — long enough for the test to SIGKILL
    the worker mid-task.  A rescheduled attempt sees the marker and
    completes immediately, proving the task was retried rather than
    re-run from a clean slate.
    """
    cell_id = payload.get("id", "cell")
    directory = payload.get("dir", "")
    marker = Path(directory, f"attempted-{cell_id}")
    if marker.exists():
        return {"value": payload.get("value"), "id": cell_id,
                "attempt": "retry", "pid": os.getpid()}
    marker.touch()
    time.sleep(float(payload.get("duration", 60.0)))
    return {"value": payload.get("value"), "id": cell_id,
            "attempt": "first", "pid": os.getpid()}


def failing_payload(payload: dict) -> dict:
    """Raise ``ValueError(payload["message"])`` — a deterministic task
    failure (never retried; fails the job)."""
    raise ValueError(payload.get("message", "synthetic task failure"))
