"""Streaming result delivery: cells flow back as they land.

A :class:`JobHandle` is the client's view of a submitted job.  Its
:meth:`~JobHandle.results` iterator yields one :class:`CellResult` per
*distinct* cell in completion order, as the scheduler finishes them —
a client sees the first cell while later cells are still executing (or
not yet dispatched).  :meth:`~JobHandle.wait` drains the stream and
returns results ordered by submission index, duplicates aliased, which
is the sweep-shaped surface :class:`~repro.bench.engine.SweepRunner`
uses.

Backpressure is *dispatch-side*: the scheduler stops dispatching new
tasks for a job once ``undelivered`` (cells completed but not yet
consumed from the stream) reaches the scheduler's ``backpressure``
limit.  A slow consumer therefore throttles **its own** job's progress
— never the delivery of other clients' results — and the queue between
scheduler and client stays bounded without any thread ever blocking on
a ``put``.
"""

from __future__ import annotations

import queue
import threading
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

from repro.errors import JobCancelledError

from repro.service.model import Job, State

__all__ = ["CellResult", "JobHandle"]

#: Stream sentinel kinds.
_RESULT = "result"
_DONE = "done"
_FAILED = "failed"
_CANCELLED = "cancelled"


@dataclass(frozen=True)
class CellResult:
    """One completed cell, as streamed back to the client.

    ``source`` says how the cell was satisfied: ``"executed"`` (a task
    of this job simulated it), ``"cache"`` (shared-store hit at
    submission), ``"deduped"`` (subscribed to another job's
    in-flight task), or ``"predicted"`` (answered at submission by the
    analytic surrogate, :mod:`repro.bench.surrogate`, with an error
    bound in the payload).  ``index`` is the cell's position in the
    submitted batch (first occurrence for duplicates).
    """

    index: int
    key: str
    payload: Dict[str, Any]
    source: str
    stage: int = 0


class JobHandle:
    """Client-side handle: stream, wait, cancel, inspect."""

    def __init__(self, job: Job, scheduler) -> None:
        self.job = job
        self._scheduler = scheduler
        self._queue: "queue.Queue" = queue.Queue()
        #: Completed-but-unconsumed cells; the scheduler reads this to
        #: apply dispatch-side backpressure.
        self.undelivered = 0
        self._lock = threading.Lock()
        #: Fire-and-forget mode: results neither queue nor count toward
        #: backpressure (see :meth:`detach`).
        self._detached = False
        #: ``(kind, error)`` of the consumed terminal event, so a second
        #: results()/wait() call replays the outcome instead of blocking
        #: forever on the already-drained queue.
        self._terminal: Optional[tuple] = None

    # -- scheduler side ----------------------------------------------------
    def _push(self, kind: str, item: Optional[CellResult] = None,
              error: Optional[BaseException] = None) -> None:
        with self._lock:
            if kind == _RESULT:
                if self._detached:
                    # Nobody will ever drain this stream; the payload is
                    # already in job.results_by_index (and the store).
                    return
                self.undelivered += 1
        self._queue.put((kind, item, error))

    def detach(self) -> None:
        """Switch to fire-and-forget: stop queueing streamed results and
        stop counting them toward dispatch-side backpressure.

        Used for submissions nobody follows (``repro submit`` without
        ``--follow``): without this, ``undelivered`` would only grow
        until the scheduler stopped dispatching the job.  Results remain
        available through ``job.results_by_index`` / the shared store;
        terminal events still queue, so a later :meth:`wait` returns
        (or raises) correctly.  Idempotent.
        """
        with self._lock:
            if self._detached:
                return
            self._detached = True
            self.undelivered = 0
            # Drop buffered results, keeping any terminal event.
            buffered = []
            try:
                while True:
                    buffered.append(self._queue.get_nowait())
            except queue.Empty:
                pass
            for kind, item, error in buffered:
                if kind != _RESULT:
                    self._queue.put((kind, item, error))
        # The job may already be backpressure-paused; let it resume.
        self._scheduler._on_delivered()

    # -- client side -------------------------------------------------------
    @property
    def id(self) -> str:
        return self.job.id

    @property
    def state(self) -> State:
        return self.job.state

    @property
    def counters(self) -> Dict[str, int]:
        return self.job.counters.to_dict()

    def cancel(self) -> bool:
        """Cancel the job (idempotent); True if anything was cancelled."""
        return self._scheduler.cancel(self.job.id)

    def results(self, timeout: Optional[float] = None) -> Iterator[CellResult]:
        """Yield distinct cells in completion order, as they land.

        Raises the job's failure (original exception when available) or
        :class:`~repro.errors.JobCancelledError` on cancellation.  A
        ``timeout`` bounds the wait for *each* cell.

        Once the stream has been drained to its terminal event, further
        calls replay the outcome immediately (an empty iterator for a
        finished job, the same exception otherwise) rather than blocking
        on the empty queue.
        """
        with self._lock:
            terminal = self._terminal
        if terminal is not None:
            self._finish(*terminal)
            return
        while True:
            kind, item, error = self._queue.get(timeout=timeout)
            if kind == _RESULT:
                with self._lock:
                    self.undelivered -= 1
                self._scheduler._on_delivered()
                yield item
            else:
                with self._lock:
                    self._terminal = (kind, error)
                self._finish(kind, error)
                return

    def _finish(self, kind: str, error: Optional[BaseException]) -> None:
        """Raise (or return, for a clean finish) a terminal event."""
        if kind == _DONE:
            return
        if kind == _CANCELLED:
            raise JobCancelledError(f"job {self.job.id} was cancelled")
        # _FAILED
        raise error if error is not None else JobCancelledError(
            f"job {self.job.id} failed"
        )

    def wait(self, timeout: Optional[float] = None) -> List[Dict[str, Any]]:
        """Block until done; results ordered by submission index.

        Duplicate submissions alias the first occurrence's payload, so
        the returned list always has one entry per submitted cell.
        """
        for _ in self.results(timeout=timeout):
            pass
        by_index = self.job.results_by_index
        return [by_index[i] for i in range(self.job.n_cells)]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<JobHandle {self.job.id} {self.job.state.value}>"
