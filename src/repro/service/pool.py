"""Persistent worker pools for the experiment scheduler.

Two implementations of one small contract:

* :class:`InlinePool` — zero processes; tasks execute synchronously in
  the dispatcher thread.  This is the ``jobs=1`` path: same results,
  single-stepped in a debugger, no fork in sight.
* :class:`ProcessPool` — N long-lived worker processes, spawned once
  and reused across jobs (cold-start cost is paid once per service, not
  once per sweep).  Each worker is fed over its **own** duplex pipe, so
  the parent always knows exactly which task a worker held — when a
  worker dies (OOM kill, segfault, operator ``kill -9``) the pool
  reports the orphaned task for rescheduling and respawns a
  replacement.  A shared queue could not attribute the loss.

Workers resolve their entry point from an ``"module.path:function"``
import string (see :class:`~repro.service.model.TaskSpec`), so payloads
stay plain JSON-able dicts and nothing code-shaped ever crosses the
pipe.

Dispatch (:meth:`submit` / :meth:`poll`) belongs to the scheduler's
dispatcher thread alone, but cancellation arrives on client threads:
``Scheduler.cancel()`` / ``shutdown()`` call :meth:`worker_for_task` /
:meth:`kill_worker` while the dispatcher may be mid-:meth:`poll`, so the
worker table is guarded by its own lock (never held across a blocking
wait or a process join).
"""

from __future__ import annotations

import importlib
import multiprocessing
import multiprocessing.connection
import pickle
import socket
import threading
import traceback
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, ServiceError

__all__ = [
    "PoolEvent",
    "InlinePool",
    "ProcessPool",
    "default_pool",
    "resolve_runner",
]


def resolve_runner(name: str) -> Callable[[dict], dict]:
    """Import a ``"module.path:function"`` task entry point."""
    module_name, _, attr = name.partition(":")
    if not module_name or not attr:
        raise ConfigurationError(
            f"task runner must be 'module.path:function', got {name!r}"
        )
    fn = getattr(importlib.import_module(module_name), attr, None)
    if not callable(fn):
        raise ConfigurationError(
            f"task runner {name!r} does not name a callable"
        )
    return fn


@dataclass(frozen=True)
class PoolEvent:
    """One thing that happened in the pool since the last poll.

    ``kind`` is one of:

    * ``"done"`` — ``task_id`` finished; ``result`` is the payload dict;
    * ``"error"`` — the task raised; ``error`` is the (re-hydrated)
      exception, ``tb`` its formatted worker-side traceback;
    * ``"died"`` — the worker process exited without reporting;
      ``task_id`` is the task it held (reschedule it).
    """

    kind: str
    task_id: str
    worker_id: int
    result: Optional[dict] = None
    error: Optional[BaseException] = None
    tb: str = ""


class InlinePool:
    """Synchronous in-thread execution behind the pool contract."""

    size = 0

    def __init__(self) -> None:
        self._events: List[PoolEvent] = []
        self._wake = threading.Event()

    @property
    def free(self) -> int:
        # The dispatcher thread *is* the worker: accept one task, run
        # it to completion, report it at the next poll.
        return 1 if not self._events else 0

    def submit(self, task_id: str, runner: str, payload: dict) -> int:
        try:
            result = resolve_runner(runner)(payload)
        except BaseException as exc:  # noqa: BLE001 - reported, not hidden
            self._events.append(
                PoolEvent("error", task_id, worker_id=0, error=exc,
                          tb=traceback.format_exc())
            )
        else:
            self._events.append(
                PoolEvent("done", task_id, worker_id=0, result=result)
            )
        return 0

    def poll(self, timeout: float = 0.0) -> List[PoolEvent]:
        if not self._events and timeout:
            self._wake.wait(timeout)
            self._wake.clear()
        events, self._events = self._events, []
        return events

    def worker_pids(self) -> List[int]:
        return []

    def kill_worker(self, worker_id: int) -> None:  # pragma: no cover
        raise ServiceError("inline pool has no workers to kill")

    def wakeup(self) -> None:
        """Unblock a concurrent :meth:`poll` (called from any thread)."""
        self._wake.set()

    def shutdown(self) -> None:
        self._events.clear()
        self._wake.set()


def _worker_main(conn, worker_id: int) -> None:
    """Worker process loop: recv (task_id, runner, payload), send back
    (task_id, "done"|"error", result_or_pickled_exc, tb)."""
    # Workers must not inherit the parent's signal-driven shutdown: a
    # Ctrl-C against the service is handled by the scheduler, which
    # shuts workers down explicitly (or they die and are respawned).
    import signal

    signal.signal(signal.SIGINT, signal.SIG_IGN)
    while True:
        try:
            item = conn.recv()
        except (EOFError, OSError):
            break
        if item is None:
            break
        task_id, runner, payload = item
        try:
            result = resolve_runner(runner)(payload)
        except BaseException as exc:  # noqa: BLE001 - shipped to parent
            try:
                blob = pickle.dumps(exc)
            except Exception:
                blob = None
            try:
                conn.send((task_id, "error", blob, traceback.format_exc()))
            except (BrokenPipeError, OSError):
                break
        else:
            try:
                conn.send((task_id, "done", result, ""))
            except (BrokenPipeError, OSError):
                break
    conn.close()


class _Worker:
    """A live worker process plus the parent's end of its pipe."""

    def __init__(self, worker_id: int, ctx) -> None:
        self.id = worker_id
        self.conn, child_conn = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(
            target=_worker_main,
            args=(child_conn, worker_id),
            name=f"repro-worker-{worker_id}",
            daemon=True,
        )
        self.proc.start()
        child_conn.close()
        #: Task currently dispatched to this worker, if any.
        self.task_id: Optional[str] = None

    @property
    def busy(self) -> bool:
        return self.task_id is not None

    def close(self) -> None:
        try:
            self.conn.close()
        except OSError:  # pragma: no cover - already torn down
            pass


class ProcessPool:
    """``size`` persistent worker processes with death detection."""

    def __init__(self, size: int, mp_context: Optional[str] = None) -> None:
        if size < 1:
            raise ConfigurationError(f"pool size must be >= 1, got {size}")
        self.size = size
        self._ctx = multiprocessing.get_context(mp_context)
        self._next_worker_id = 0
        #: Guards ``_workers`` against the dispatcher's poll-time
        #: mutations (death del + respawn insert) racing client-thread
        #: cancellation reads (worker_for_task / kill_worker).
        self._lock = threading.RLock()
        self._workers: Dict[int, _Worker] = {}
        #: Cross-thread wakeup: ``wakeup()`` (any thread) makes a
        #: blocked :meth:`poll` return immediately.
        self._wake_recv, self._wake_send = socket.socketpair()
        self._wake_recv.setblocking(False)
        #: Total workers respawned after a death (observability).
        self.respawns = 0
        for _ in range(size):
            self._spawn()

    # -- lifecycle ---------------------------------------------------------
    def _spawn(self) -> _Worker:
        worker = _Worker(self._next_worker_id, self._ctx)
        self._next_worker_id += 1
        with self._lock:
            self._workers[worker.id] = worker
        return worker

    def shutdown(self, timeout: float = 2.0) -> None:
        """Stop every worker: polite sentinel first, then terminate."""
        with self._lock:
            workers = list(self._workers.values())
            self._workers.clear()
        for w in workers:
            try:
                w.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for w in workers:
            w.proc.join(timeout=timeout)
            if w.proc.is_alive():
                w.proc.terminate()
                w.proc.join(timeout=timeout)
            w.close()
        self._wake_recv.close()
        self._wake_send.close()

    # -- dispatch ----------------------------------------------------------
    @property
    def free(self) -> int:
        with self._lock:
            return sum(1 for w in self._workers.values() if not w.busy)

    def submit(self, task_id: str, runner: str, payload: dict) -> int:
        """Dispatch to a free worker; returns its worker id."""
        with self._lock:
            for w in self._workers.values():
                if not w.busy:
                    w.conn.send((task_id, runner, payload))
                    w.task_id = task_id
                    return w.id
        raise ServiceError("submit() with no free worker")  # scheduler bug

    def worker_pids(self) -> List[int]:
        """PIDs of live workers (test hook for kill-a-worker drills)."""
        with self._lock:
            return [w.proc.pid for w in self._workers.values() if w.proc.pid]

    def worker_for_task(self, task_id: str) -> Optional[int]:
        with self._lock:
            for w in self._workers.values():
                if w.task_id == task_id:
                    return w.id
        return None

    def kill_worker(self, worker_id: int) -> None:
        """Hard-stop one worker (cancellation of its in-flight task).

        The kill surfaces as a ``"died"`` event at the next poll; the
        scheduler decides whether the orphaned task is rescheduled
        (worker death) or dropped (it was cancelled).
        """
        with self._lock:
            w = self._workers.get(worker_id)
        if w is not None and w.proc.is_alive():
            w.proc.terminate()

    def wakeup(self) -> None:
        """Unblock a concurrent :meth:`poll` (called from any thread)."""
        try:
            self._wake_send.send(b"x")
        except OSError:  # pragma: no cover - racing shutdown
            pass

    # -- events ------------------------------------------------------------
    def poll(self, timeout: float = 0.0) -> List[PoolEvent]:
        """Collect completions and deaths, waiting up to ``timeout``."""
        events: List[PoolEvent] = []
        with self._lock:
            conns = {w.conn: w for w in self._workers.values() if w.busy}
            sentinels = {w.proc.sentinel: w for w in self._workers.values()}
        waitables: List[Any] = list(conns) + list(sentinels) + [self._wake_recv]
        ready = multiprocessing.connection.wait(waitables, timeout=timeout)
        dead: List[_Worker] = []
        for obj in ready:
            if obj is self._wake_recv:
                try:
                    while self._wake_recv.recv(4096):
                        pass
                except BlockingIOError:
                    pass
                continue
            worker = conns.get(obj)
            if worker is not None:
                try:
                    task_id, kind, blob, tb = worker.conn.recv()
                except (EOFError, OSError):
                    # Pipe broke mid-result: treat as a death below.
                    continue
                worker.task_id = None
                if kind == "done":
                    events.append(
                        PoolEvent("done", task_id, worker.id, result=blob)
                    )
                else:
                    error = None
                    if blob is not None:
                        try:
                            error = pickle.loads(blob)
                        except Exception:
                            error = None
                    if error is None:
                        error = ServiceError(
                            f"task {task_id} failed in worker "
                            f"{worker.id}:\n{tb}"
                        )
                    events.append(
                        PoolEvent("error", task_id, worker.id,
                                  error=error, tb=tb)
                    )
        # Death detection second: a worker whose result we just consumed
        # has task_id None and its exit (if any) is not a task loss.
        with self._lock:
            for sentinel, worker in sentinels.items():
                if not worker.proc.is_alive() and worker.id in self._workers:
                    dead.append(worker)
                    del self._workers[worker.id]
        for worker in dead:
            orphan = worker.task_id
            worker.proc.join(timeout=0.5)
            worker.close()
            self.respawns += 1
            self._spawn()
            if orphan is not None:
                events.append(PoolEvent("died", orphan, worker.id))
        return events


def default_pool(workers: int):
    """The right pool for a worker count: 0 → inline, N → processes."""
    if workers <= 0:
        return InlinePool()
    return ProcessPool(workers)
