"""Experiment service tier: jobs, stages, tasks, workers, streaming.

This package turns the batch-shaped :class:`~repro.bench.engine.SweepRunner`
workflow into a long-running service.  An
:class:`~repro.service.scheduler.ExperimentScheduler` accepts spec
batches from many concurrent clients, executes them over a persistent
worker pool with fair queueing, retry-on-worker-death, cancellation,
and a shared content-addressed cache, and streams results back as cells
complete.  ``repro serve`` / ``repro submit`` put the same scheduler
behind a line-oriented TCP protocol (:mod:`repro.service.server`).

See ``docs/service.md`` for the architecture tour.
"""

from repro.service.model import (
    Job,
    JobCounters,
    Lifecycle,
    Stage,
    State,
    Task,
    TaskSpec,
)
from repro.service.events import EventFeed
from repro.service.pool import InlinePool, PoolEvent, ProcessPool, default_pool
from repro.service.scheduler import ExperimentScheduler
from repro.service.streaming import CellResult, JobHandle
from repro.service.tasks import RUN_SPEC_RUNNER, run_spec_payload

__all__ = [
    "ExperimentScheduler",
    "EventFeed",
    "JobHandle",
    "CellResult",
    "Job",
    "Stage",
    "Task",
    "TaskSpec",
    "State",
    "Lifecycle",
    "JobCounters",
    "InlinePool",
    "ProcessPool",
    "PoolEvent",
    "default_pool",
    "RUN_SPEC_RUNNER",
    "run_spec_payload",
]
