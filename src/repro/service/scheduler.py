"""The experiment scheduler: many clients, one worker pool, one cache.

:class:`ExperimentScheduler` is a long-running, in-process service that
accepts :class:`~repro.bench.engine.ExperimentSpec` batches from any
number of concurrent clients and executes them as **job → stage →
task** over a persistent worker pool:

* **Eager dispatch** — a task runs as soon as a worker is free; the
  pool never drains between jobs (workers spawn once per scheduler).
* **Fair queueing** — ready tasks are drawn round-robin across clients,
  so a 1000-cell sweep cannot starve a 2-cell interactive submission.
* **Shared cache tier** — the content-addressed
  :class:`~repro.bench.store.ResultStore` is probed at submission
  (identical cells from different clients dedupe to one execution) and
  written as cells land, so partial progress survives interruption.
* **In-flight dedupe** — a submission whose cell is *currently
  executing* for another job subscribes to that task's completion
  instead of re-running it.
* **Streaming with backpressure** — results flow back through each
  job's :class:`~repro.service.streaming.JobHandle` in completion
  order; a job whose client stops consuming stops being dispatched
  (never blocking other clients' deliveries).
* **Cancellation** — job → stage → task; queued tasks never dispatch,
  in-flight process tasks are interrupted by terminating their worker
  (atomic store writes make any interruption point safe; the pool
  respawns a replacement), in-flight inline tasks stop at the next task
  boundary.  A cancelled job's tasks that other jobs subscribed to keep
  running under transferred ownership.
* **Retry on worker death** — a SIGKILLed/crashed worker fails neither
  its task nor the job: the orphaned task is rescheduled (up to
  ``max_task_retries`` times) at the front of its client's queue.

All scheduling state is owned by one dispatcher thread; client-facing
methods only enqueue work and read snapshots under ``self._lock``.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, ServiceError
from repro.obs.service import ServiceMetrics
from repro.service.model import Job, Stage, State, Task, TaskSpec
from repro.service.pool import InlinePool, PoolEvent, ProcessPool
from repro.service.streaming import CellResult, JobHandle
from repro.service.tasks import RUN_SPEC_RUNNER

__all__ = ["ExperimentScheduler"]

#: Default cap on completed-but-unconsumed cells per job before its
#: dispatch is paused (see streaming docs).
DEFAULT_BACKPRESSURE = 64

#: Default count of terminal jobs kept fully resident (handle + result
#: payloads) before the oldest are evicted down to describe() snapshots.
DEFAULT_JOB_RETENTION = 256

#: Cap on evicted-job snapshots kept for ``repro jobs list``.
_ARCHIVE_CAP = 4096


class ExperimentScheduler:
    """Job/stage/task scheduler over a persistent worker pool.

    Parameters
    ----------
    workers:
        Worker processes.  ``0`` executes tasks inline in the
        dispatcher thread (the debuggable ``jobs=1`` path); ``N >= 1``
        spawns N persistent processes reused across all jobs.
    store:
        Optional shared :class:`~repro.bench.store.ResultStore` cache
        tier: probed per distinct cell at submission, written as cells
        complete (first write wins).
    metrics:
        A :class:`~repro.obs.service.ServiceMetrics` to record into;
        one is created when omitted (exposed as :attr:`metrics`).
    backpressure:
        Per-job cap on undelivered streamed results before dispatch of
        that job pauses.
    max_task_retries:
        Worker-death reschedules allowed per task before the job fails.
    job_retention:
        Terminal jobs kept fully resident (handle, result payloads)
        before the oldest are evicted to bounded ``describe()``
        snapshots; bounds the long-running service's memory.  A client
        still holding an evicted job's :class:`JobHandle` keeps it
        usable (the handle owns the job object); only the scheduler's
        references are dropped.
    """

    def __init__(
        self,
        *,
        workers: int = 0,
        store=None,
        metrics: Optional[ServiceMetrics] = None,
        backpressure: int = DEFAULT_BACKPRESSURE,
        max_task_retries: int = 3,
        job_retention: int = DEFAULT_JOB_RETENTION,
        poll_interval: float = 0.25,
        mp_context: Optional[str] = None,
    ) -> None:
        if workers < 0:
            raise ConfigurationError(f"workers must be >= 0, got {workers}")
        if backpressure < 1:
            raise ConfigurationError(
                f"backpressure must be >= 1, got {backpressure}"
            )
        if job_retention < 0:
            raise ConfigurationError(
                f"job_retention must be >= 0, got {job_retention}"
            )
        self.workers = workers
        self.store = store
        self.metrics = metrics if metrics is not None else ServiceMetrics()
        self.backpressure = backpressure
        self.max_task_retries = max_task_retries
        self.job_retention = job_retention
        self._poll_interval = poll_interval
        self._pool = (
            InlinePool() if workers == 0 else ProcessPool(workers, mp_context)
        )
        self._pool_respawns_seen = 0

        self._lock = threading.RLock()
        #: Event listeners (see :meth:`add_listener`); no-overhead when
        #: empty — ``_emit`` short-circuits before building the event.
        self._listeners: List[Any] = []
        self._jobs: Dict[str, Job] = {}
        self._handles: Dict[str, JobHandle] = {}
        #: Terminal job ids in retirement order (eviction queue).
        self._retired: Deque[str] = deque()
        #: Evicted jobs' describe() snapshots (bounded, oldest dropped).
        self._archive: Dict[str, Dict[str, Any]] = {}
        #: key -> live (non-terminal) task computing that cell.
        self._inflight: Dict[str, Task] = {}
        #: per-client FIFO of ready tasks (fair round-robin source).
        self._ready: Dict[str, Deque[Task]] = {}
        self._clients: List[str] = []
        self._rr_index = 0
        #: task id -> dispatched task awaiting a pool event.
        self._running: Dict[str, Task] = {}

        self._stop = False
        self._closed = False
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-service-dispatch",
            daemon=True,
        )
        self._dispatcher.start()

    # -- event stream ------------------------------------------------------
    def add_listener(self, fn) -> None:
        """Call ``fn(event_dict)`` on every job/stage/task transition
        and delivered result.

        Listeners run on whichever thread drove the transition — often
        the dispatcher, often *under the scheduler lock* — so they must
        be nonblocking and must not call back into the scheduler.
        Append to a queue or an :class:`~repro.service.events.EventFeed`
        and do real work elsewhere.  Listener exceptions are swallowed:
        observability must never fail a job.
        """
        with self._lock:
            self._listeners.append(fn)

    def _emit(self, event: str, **fields: Any) -> None:
        if not self._listeners:
            return
        payload = {"event": event, **fields}
        for fn in list(self._listeners):
            try:
                fn(payload)
            except Exception:  # noqa: BLE001 - see add_listener docs
                pass

    def _emit_job_locked(self, job: Job) -> None:
        self._emit(
            "job",
            **job.describe(),
            results=len(job.results_by_index),
        )

    def _emit_result_locked(
        self, job: Job, index: int, key: str, payload: dict,
        source: str, stage_index: int,
    ) -> None:
        if not self._listeners:
            return
        meas = (
            payload.get("measurement") if isinstance(payload, dict) else None
        ) or {}
        self._emit(
            "result",
            job=job.id,
            index=index,
            key=key,
            source=source,
            stage=stage_index,
            throughput=meas.get("throughput"),
            latency=meas.get("latency"),
            result_source=(
                payload.get("source", "simulated")
                if isinstance(payload, dict)
                else "simulated"
            ),
        )

    # -- client surface ----------------------------------------------------
    def submit(
        self,
        specs: Sequence[Any],
        client: str = "default",
        label: str = "",
    ) -> JobHandle:
        """Submit one batch of spec cells as a single-stage job;
        returns its streaming :class:`JobHandle`.

        Any hashable/serializable spec value works: the runner is the
        spec type's ``RUNNER`` class attribute when it has one
        (:class:`~repro.scenario.ScenarioSpec` does), defaulting to the
        :class:`ExperimentSpec` cell runner."""
        cells = [
            TaskSpec(
                key=spec.spec_hash(),
                payload=spec.to_dict(),
                runner=getattr(spec, "RUNNER", RUN_SPEC_RUNNER),
                spec=spec,
                label=spec.label(),
            )
            for spec in specs
        ]
        return self.submit_stages([("simulate", cells)], client=client,
                                  label=label)

    def submit_stages(
        self,
        stages: Sequence[Tuple[str, Sequence[TaskSpec]]],
        client: str = "default",
        label: str = "",
    ) -> JobHandle:
        """Submit a multi-stage job: stage *N + 1* starts only after
        stage *N* completed.  Cells are indexed across the whole job in
        submission order (stage 0 first)."""
        if self._closed:
            raise ServiceError("scheduler is shut down")
        if not stages or all(not cells for _, cells in stages):
            raise ConfigurationError("a job needs at least one task")
        n_cells = sum(len(cells) for _, cells in stages)
        job = Job(client, n_cells, label=label)
        handle = JobHandle(job, self)

        # Store probes and surrogate screening happen outside the lock:
        # they are file reads and model evaluations and must not stall
        # the dispatcher or other submitters.
        index = 0
        prepared: List[
            Tuple[Stage, List[Tuple[int, TaskSpec, Optional[dict], Optional[dict]]]]
        ] = []
        for stage_idx, (stage_name, cells) in enumerate(stages):
            stage = Stage(job, stage_idx, stage_name)
            job.stages.append(stage)
            predictions = self._screen_cells(cells)
            rows: List[Tuple[int, TaskSpec, Optional[dict], Optional[dict]]] = []
            for pos, cell in enumerate(cells):
                predicted = predictions.get(pos)
                cached = None
                if (
                    predicted is None
                    and self.store is not None
                    and cell.spec is not None
                    and cell.key not in job.first_index_by_key
                ):
                    cached = self.store.get_dict(cell.spec)
                    if (
                        cached is not None
                        and cached.get("source") == "predicted"
                    ):
                        # A stored prediction never satisfies a request
                        # for a full simulation.
                        cached = None
                rows.append((index, cell, cached, predicted))
                index += 1
            prepared.append((stage, rows))

        with self._lock:
            self._jobs[job.id] = job
            self._handles[job.id] = handle
            if client not in self._ready:
                self._ready[client] = deque()
                self._clients.append(client)
            self.metrics.jobs_submitted.inc()
            for stage, rows in prepared:
                for idx, cell, cached, predicted in rows:
                    self._admit_cell(job, stage, idx, cell, cached, predicted)
            job.signal(State.RUNNING)
            self._emit_job_locked(job)
            self._advance_job_locked(job)
        self._wake()
        return handle

    def cancel(self, job_id: str) -> bool:
        """Cancel a job: pending tasks never dispatch, in-flight tasks
        are interrupted, dedupe subscribers of other jobs keep the
        shared tasks alive.  Returns False if already terminal."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None or job.state.terminal:
                return False
            self._cancel_job_locked(job)
        self._wake()
        return True

    def jobs(self) -> List[Dict[str, Any]]:
        """Snapshot of every job, newest last (for ``repro jobs list``).

        Includes evicted jobs as their frozen terminal snapshots."""
        with self._lock:
            return list(self._archive.values()) + [
                job.describe() for job in self._jobs.values()
            ]

    def job(self, job_id: str) -> Optional[Dict[str, Any]]:
        with self._lock:
            job = self._jobs.get(job_id)
            if job is not None:
                return job.describe()
            return self._archive.get(job_id)

    def handle(self, job_id: str) -> Optional[JobHandle]:
        with self._lock:
            return self._handles.get(job_id)

    def worker_pids(self) -> List[int]:
        """Live worker PIDs (empty for the inline pool)."""
        return self._pool.worker_pids()

    @property
    def tasks_in_flight(self) -> int:
        with self._lock:
            return len(self._running)

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop dispatching, cancel live jobs, and stop the workers."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            for job in list(self._jobs.values()):
                if not job.state.terminal:
                    self._cancel_job_locked(job, force=True)
            self._stop = True
        self._wake()
        self._dispatcher.join(timeout=timeout)
        self._pool.shutdown()

    def __enter__(self) -> "ExperimentScheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- submission internals ----------------------------------------------
    def _screen_cells(self, cells: Sequence[TaskSpec]) -> Dict[int, dict]:
        """Surrogate-screen one stage's cells (prepared phase, unlocked).

        Cells whose spec opted into screening (``spec.screening != "off"``)
        are planned per mode — the crossover check compares sibling
        strategies within the batch, so each mode's cells form one plan.
        Returns ``{position: predicted result dict}`` for the cells the
        screen decided to answer from the model; everything else (and
        every cell with ``screening="off"``) proceeds through the normal
        cache-probe/execute path untouched.  Predicted results are
        written to the store as ``source="predicted"`` placeholders (a
        later simulation of the same spec upgrades them).
        """
        by_mode: Dict[str, List[int]] = {}
        for pos, cell in enumerate(cells):
            mode = getattr(cell.spec, "screening", "off")
            if cell.spec is not None and mode != "off":
                by_mode.setdefault(mode, []).append(pos)
        if not by_mode:
            return {}

        from repro.bench.surrogate import SurrogateScreen, predicted_result

        screen = SurrogateScreen(self.store)
        out: Dict[int, dict] = {}
        for mode, positions in by_mode.items():
            plan = screen.plan([cells[p].spec for p in positions], mode)
            for decision in plan.decisions:
                if decision.action != "predict":
                    continue
                pos = positions[decision.index]
                spec = cells[pos].spec
                if self.store is not None:
                    cached = self.store.get_dict(spec)
                    if cached is not None and cached.get("source") != "predicted":
                        # A simulation is already cached — strictly
                        # better than any prediction; let the normal
                        # cache-probe path serve it.
                        continue
                payload = predicted_result(spec, decision.prediction).to_dict()
                out[pos] = payload
                if self.store is not None:
                    self.store.put_dict(spec, payload)
        return out

    def _admit_cell(
        self,
        job: Job,
        stage: Stage,
        index: int,
        cell: TaskSpec,
        cached: Optional[dict],
        predicted: Optional[dict] = None,
    ) -> None:
        first = job.first_index_by_key.get(cell.key)
        if first is not None:
            # Intra-job duplicate: alias the first occurrence.
            if first in job.results_by_index:
                job.results_by_index[index] = job.results_by_index[first]
            else:
                job.alias_map.setdefault(first, []).append(index)
            return
        job.first_index_by_key[cell.key] = index

        if predicted is not None:
            job.counters.predicted += 1
            self.metrics.predicted.inc()
            job.results_by_index[index] = predicted
            self._handles[job.id]._push(
                "result",
                CellResult(index, cell.key, predicted, "predicted", stage.index),
            )
            self._emit_result_locked(
                job, index, cell.key, predicted, "predicted", stage.index
            )
            return

        if cached is not None:
            job.counters.cache_hits += 1
            self.metrics.cache_hits.inc()
            job.results_by_index[index] = cached
            self._handles[job.id]._push(
                "result",
                CellResult(index, cell.key, cached, "cache", stage.index),
            )
            self._emit_result_locked(
                job, index, cell.key, cached, "cache", stage.index
            )
            return

        job.counters.cache_misses += 1
        self.metrics.cache_misses.inc()

        inflight = self._inflight.get(cell.key)
        if inflight is not None:
            # In-flight dedupe: subscribe to the existing task instead
            # of executing the same cell twice.
            inflight.subscribers.append((job, stage, index))
            stage.pending_keys[cell.key] = index
            job.counters.deduped += 1
            self.metrics.dedupe_hits.inc()
            return

        task = Task(cell, stage)
        task.subscribers.append((job, stage, index))
        stage.tasks.append(task)
        self._inflight[cell.key] = task

    # -- job advancement (locked) ------------------------------------------
    def _advance_job_locked(self, job: Job) -> None:
        """Drive stage activation / completion; finish the job when the
        last stage settles."""
        if job.state.terminal:
            return
        for stage in job.stages:
            if stage.state is State.DONE:
                continue
            if stage.state is State.PENDING:
                stage.signal(State.RUNNING)
                self._emit_stage_locked(job, stage)
                self._enqueue_stage_locked(job, stage)
            if stage.settled:
                stage.signal(State.DONE)
                self._emit_stage_locked(job, stage)
                continue
            return
        job.signal(State.DONE)
        self.metrics.jobs_completed.inc()
        self._handles[job.id]._push("done")
        self._emit_job_locked(job)
        self._retire_job_locked(job)

    def _emit_stage_locked(self, job: Job, stage: Stage) -> None:
        self._emit(
            "stage",
            job=job.id,
            stage=stage.index,
            name=stage.name,
            state=stage.state.value,
            tasks=len(stage.tasks),
        )

    def _enqueue_stage_locked(self, job: Job, stage: Stage) -> None:
        dq = self._ready[job.client]
        for task in stage.tasks:
            if task.state is State.PENDING:
                dq.append(task)
        self.metrics.queue_depth(job.client).set(len(dq))

    # -- retention (locked) -------------------------------------------------
    def _retire_job_locked(self, job: Job) -> None:
        """A job just went terminal: queue it for eviction and evict the
        oldest retirees past ``job_retention``, keeping only their
        describe() snapshots (bounds service memory — every Job retains
        its full result payloads)."""
        self._retired.append(job.id)
        while len(self._retired) > self.job_retention:
            evicted_id = self._retired.popleft()
            evicted = self._jobs.pop(evicted_id, None)
            self._handles.pop(evicted_id, None)
            if evicted is not None:
                self._archive[evicted_id] = evicted.describe()
        while len(self._archive) > _ARCHIVE_CAP:
            del self._archive[next(iter(self._archive))]

    # -- cancellation (locked) ---------------------------------------------
    def _cancel_job_locked(self, job: Job, force: bool = False) -> None:
        job.signal(State.CANCELLED)
        self.metrics.jobs_cancelled.inc()
        for stage in job.stages:
            for task in stage.tasks:
                self._release_task_locked(job, task)
            stage.signal(State.CANCELLED)
            # Drop this job's dedupe subscriptions on other jobs' tasks.
            for key in list(stage.pending_keys):
                inflight = self._inflight.get(key)
                if inflight is not None:
                    inflight.subscribers = [
                        s for s in inflight.subscribers if s[0] is not job
                    ]
            stage.pending_keys.clear()
        self._handles[job.id]._push("cancelled")
        self._emit_job_locked(job)
        self._retire_job_locked(job)

    def _release_task_locked(self, job: Job, task: Task) -> None:
        """Cancel one of ``job``'s tasks — unless another job subscribed
        to it, in which case ownership transfers and it keeps running."""
        if task.state.terminal:
            return
        external = [s for s in task.subscribers if s[0] is not job]
        if external:
            task.subscribers = external
            task.owner = None
            return
        task.signal(State.CANCELLED)
        self.metrics.tasks_cancelled.inc()
        self._inflight.pop(task.spec.key, None)
        if task.id in self._running and isinstance(self._pool, ProcessPool):
            # Interrupt in-flight work: hard-stop the worker holding
            # this task (store writes are atomic, so any interruption
            # point is safe); the pool respawns a replacement and the
            # resulting "died" event is swallowed because the task is
            # already terminal.  Inline tasks stop at the task boundary.
            worker_id = self._pool.worker_for_task(task.id)
            if worker_id is not None:
                self._pool.kill_worker(worker_id)

    # -- dispatcher thread --------------------------------------------------
    def _wake(self) -> None:
        self._pool.wakeup()

    def _on_delivered(self) -> None:
        """A client consumed a streamed result: dispatch may resume."""
        self._wake()

    def _dispatch_loop(self) -> None:
        while True:
            with self._lock:
                if self._stop:
                    break
            try:
                self._dispatch_once()
                events = self._pool.poll(timeout=self._poll_interval)
                for event in events:
                    self._handle_event(event)
                self._sync_pool_metrics()
            except Exception as exc:  # noqa: BLE001 - fail live jobs loudly
                self._crash(exc)
                break

    def _dispatch_once(self) -> None:
        """Fill every free worker from the fair queue."""
        while self._pool.free > 0:
            with self._lock:
                task = self._next_task_locked()
                if task is None:
                    return
                task.attempts += 1
                task.signal(State.RUNNING)
                self._running[task.id] = task
                self.metrics.tasks_in_flight.set(len(self._running))
                self._emit_task_locked(task)
            # Pool interaction happens unlocked: for the inline pool
            # this *is* the task execution, and a long cell must not
            # block submitters or cancellation.
            worker_id = self._pool.submit(
                task.id, task.spec.runner, task.spec.payload
            )
            with self._lock:
                task.worker_id = worker_id

    def _next_task_locked(self) -> Optional[Task]:
        n = len(self._clients)
        for offset in range(n):
            client = self._clients[(self._rr_index + offset) % n]
            dq = self._ready[client]
            while dq and dq[0].state is not State.PENDING:
                dq.popleft()   # cancelled while queued
            if not dq:
                continue
            task = dq[0]
            owner = task.owner
            if owner is not None:
                handle = self._handles.get(owner.id)
                if (
                    handle is not None
                    and handle.undelivered >= self.backpressure
                ):
                    continue   # job is backpressured; try other clients
            dq.popleft()
            self.metrics.queue_depth(client).set(len(dq))
            self._rr_index = (self._rr_index + offset + 1) % n
            return task
        return None

    def _emit_task_locked(self, task: Task) -> None:
        owner = task.owner
        self._emit(
            "task",
            job=owner.id if owner is not None else None,
            task=task.id,
            key=task.spec.key,
            label=task.spec.label,
            state=task.state.value,
            attempts=task.attempts,
            retries=task.retries,
        )

    # -- pool events ---------------------------------------------------------
    def _handle_event(self, event: PoolEvent) -> None:
        if event.kind == "done":
            self._on_task_done(event)
        elif event.kind == "error":
            self._on_task_error(event)
        else:
            self._on_worker_died(event)

    def _on_task_done(self, event: PoolEvent) -> None:
        with self._lock:
            task = self._running.pop(event.task_id, None)
            self.metrics.tasks_in_flight.set(len(self._running))
            if task is None or task.state.terminal:
                return   # cancelled while in flight: discard the result
        # Persist before delivery, outside the lock: a crash after this
        # point loses nothing, and file I/O never stalls submitters.
        if self.store is not None and task.spec.spec is not None:
            self.store.put_dict(task.spec.spec, event.result)
        with self._lock:
            if task.state.terminal:
                return
            task.result = event.result
            task.signal(State.DONE)
            self._emit_task_locked(task)
            self.metrics.tasks_completed.inc()
            self._inflight.pop(task.spec.key, None)
            touched = []
            for job, stage, index in task.subscribers:
                if job.state.terminal:
                    continue
                source = "executed" if job is task.owner else "deduped"
                if job is task.owner:
                    job.counters.executed += 1
                stage.pending_keys.pop(task.spec.key, None)
                self._deliver_locked(job, index, task.spec.key,
                                     event.result, source, stage.index)
                touched.append(job)
            for job in touched:
                self._advance_job_locked(job)

    def _deliver_locked(self, job: Job, index: int, key: str,
                        payload: dict, source: str, stage_index: int) -> None:
        job.results_by_index[index] = payload
        for dup in job.alias_map.pop(index, []):
            job.results_by_index[dup] = payload
        self._handles[job.id]._push(
            "result", CellResult(index, key, payload, source, stage_index)
        )
        self._emit_result_locked(job, index, key, payload, source, stage_index)

    def _on_task_error(self, event: PoolEvent) -> None:
        with self._lock:
            task = self._running.pop(event.task_id, None)
            self.metrics.tasks_in_flight.set(len(self._running))
            if task is None or task.state.terminal:
                return
            task.error = event.error
            task.signal(State.FAILED)
            self._emit_task_locked(task)
            self.metrics.tasks_failed.inc()
            self._inflight.pop(task.spec.key, None)
            # A deterministic task failure fails every job that wanted
            # this cell — retrying would fail identically.
            for job, _stage, _index in list(task.subscribers):
                self._fail_job_locked(job, event.error)

    def _fail_job_locked(self, job: Job, error: BaseException) -> None:
        if job.state.terminal:
            return
        job.error = error
        for stage in job.stages:
            for task in stage.tasks:
                self._release_task_locked(job, task)
            if not stage.state.terminal:
                stage.signal(State.FAILED)
            for key in list(stage.pending_keys):
                inflight = self._inflight.get(key)
                if inflight is not None:
                    inflight.subscribers = [
                        s for s in inflight.subscribers if s[0] is not job
                    ]
            stage.pending_keys.clear()
        job.signal(State.FAILED)
        self._handles[job.id]._push("failed", error=error)
        self._emit_job_locked(job)
        self._retire_job_locked(job)

    def _on_worker_died(self, event: PoolEvent) -> None:
        with self._lock:
            task = self._running.pop(event.task_id, None)
            self.metrics.tasks_in_flight.set(len(self._running))
            if task is None or task.state.terminal:
                return   # the kill was a cancellation interrupt
            task.retries += 1
            self.metrics.task_retries.inc()
            if task.owner is not None:
                task.owner.counters.retries += 1
            if task.retries > self.max_task_retries:
                error = ServiceError(
                    f"task {task.id} ({task.spec.label or task.spec.key[:12]}) "
                    f"lost {task.retries} workers; giving up"
                )
                task.error = error
                task.signal(State.FAILED)
                self._emit_task_locked(task)
                self.metrics.tasks_failed.inc()
                self._inflight.pop(task.spec.key, None)
                for job, _stage, _index in list(task.subscribers):
                    self._fail_job_locked(job, error)
                return
            # Reschedule at the front of the client's queue: the task
            # already waited its turn once.
            task.signal(State.PENDING)
            self._emit_task_locked(task)
            task.worker_id = None
            client = task.stage.job.client
            self._ready[client].appendleft(task)
            self.metrics.queue_depth(client).set(len(self._ready[client]))

    def _sync_pool_metrics(self) -> None:
        respawns = getattr(self._pool, "respawns", 0)
        if respawns > self._pool_respawns_seen:
            self.metrics.worker_respawns.inc(
                respawns - self._pool_respawns_seen
            )
            self._pool_respawns_seen = respawns

    def _crash(self, exc: Exception) -> None:
        """Dispatcher hit an internal error: fail every live job."""
        with self._lock:
            for job in list(self._jobs.values()):
                if not job.state.terminal:
                    self._fail_job_locked(
                        job, ServiceError(f"scheduler crashed: {exc!r}")
                    )
