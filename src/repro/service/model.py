"""Job → stage → task model with lifecycle signals.

The service executes work as a three-level hierarchy, the shape bndl's
scheduler popularised for bulk-synchronous engines:

* a :class:`Job` is one client submission (e.g. an experiment batch);
* a :class:`Stage` is an ordered step inside the job — stage *N + 1*
  only starts once stage *N* is done, so multi-phase workloads
  (simulate, then post-process) sequence without client round-trips;
* a :class:`Task` is one unit of schedulable work (one experiment
  cell), dispatched eagerly over the worker pool and retried on worker
  death.

Every level is a :class:`Lifecycle`: it moves through
``PENDING → RUNNING → DONE | FAILED | CANCELLED`` and notifies
listeners on each transition.  Cancellation propagates *down* the
hierarchy (job → stages → tasks) and completion aggregates *up* (all
tasks done → stage done; last stage done → job done; any task failed →
job failed).

Nothing in this module touches threads, processes, or the store — it is
pure bookkeeping the :class:`~repro.service.scheduler.ExperimentScheduler`
drives, which keeps the state machine independently testable.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

__all__ = [
    "State",
    "Lifecycle",
    "TaskSpec",
    "Task",
    "Stage",
    "Job",
    "JobCounters",
]


class State(str, enum.Enum):
    """Lifecycle state shared by jobs, stages, and tasks."""

    PENDING = "pending"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (State.DONE, State.FAILED, State.CANCELLED)


#: Legal state transitions; anything else is a scheduler bug.
#: RUNNING -> PENDING is the reschedule path: a task whose worker died
#: goes back to the ready queue for another attempt.
_TRANSITIONS = {
    State.PENDING: {State.RUNNING, State.DONE, State.FAILED, State.CANCELLED},
    State.RUNNING: {State.PENDING, State.DONE, State.FAILED, State.CANCELLED},
    State.DONE: set(),
    State.FAILED: set(),
    State.CANCELLED: set(),
}


class Lifecycle:
    """State machine with transition listeners.

    Terminal states are sticky: a second transition request against a
    terminal object is ignored (the first signal wins), which is what
    makes concurrent completion/cancellation races safe to express as
    plain calls.
    """

    def __init__(self) -> None:
        self.state = State.PENDING
        self._listeners: List[Callable[["Lifecycle"], None]] = []

    def add_listener(self, fn: Callable[["Lifecycle"], None]) -> None:
        """Call ``fn(self)`` after every subsequent state transition."""
        self._listeners.append(fn)

    def signal(self, state: State) -> bool:
        """Move to ``state``; returns False if the move was a no-op.

        Transitions out of a terminal state never happen; an illegal
        non-terminal transition raises (it means the scheduler lost
        track of this object).
        """
        if self.state is state:
            return False
        if self.state.terminal:
            return False
        if state not in _TRANSITIONS[self.state]:
            raise RuntimeError(
                f"illegal lifecycle transition {self.state.value} -> "
                f"{state.value} on {self!r}"
            )
        self.state = state
        for fn in list(self._listeners):
            fn(self)
        return True


@dataclass(frozen=True)
class TaskSpec:
    """Immutable description of one unit of work.

    ``key`` is the content address used for caching and dedupe (for
    experiment cells it is the spec hash).  ``runner`` names the worker
    entry point as ``"module.path:function"`` — an import string rather
    than a callable so the payload crosses process boundaries without
    pickling code.  ``spec`` optionally carries the originating
    :class:`~repro.bench.engine.ExperimentSpec` so results can be
    written to the shared :class:`~repro.bench.store.ResultStore`.
    """

    key: str
    payload: Dict[str, Any]
    runner: str
    spec: Optional[Any] = None
    label: str = ""


class Task(Lifecycle):
    """One schedulable attempt-tracked unit of a stage."""

    _ids = itertools.count(1)

    def __init__(self, spec: TaskSpec, stage: "Stage") -> None:
        super().__init__()
        self.id = f"t{next(self._ids)}"
        self.spec = spec
        self.stage = stage
        #: The job whose counters get "executed" credit.  Cleared when
        #: that job is cancelled but other jobs still need the result
        #: (ownership transfer keeps the task running).
        self.owner: Optional["Job"] = stage.job
        #: Dispatch attempts so far (1 on first dispatch).
        self.attempts = 0
        #: Worker-death reschedules consumed.
        self.retries = 0
        #: Worker currently (or last) executing this task.
        self.worker_id: Optional[int] = None
        #: Result payload dict once DONE.
        self.result: Optional[Dict[str, Any]] = None
        #: The exception that failed this task, once FAILED.
        self.error: Optional[BaseException] = None
        #: ``(job, stage, index)`` triples to deliver the result to.
        #: The first entry is the owning cell; extras are in-flight
        #: dedupe subscribers from other submissions.
        self.subscribers: List[Tuple["Job", "Stage", int]] = []

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<Task {self.id} {self.state.value} key={self.spec.key[:12]} "
            f"attempts={self.attempts}>"
        )


class Stage(Lifecycle):
    """An ordered step of a job: a set of tasks with a barrier after."""

    def __init__(self, job: "Job", index: int, name: str = "") -> None:
        super().__init__()
        self.job = job
        self.index = index
        self.name = name or f"stage-{index}"
        self.tasks: List[Task] = []
        #: Keys this stage subscribed to on *other jobs'* in-flight
        #: tasks and is still waiting for, mapped to the submission
        #: index they fill (in-flight dedupe).
        self.pending_keys: Dict[str, int] = {}

    @property
    def settled(self) -> bool:
        """True when every task (and dedupe subscription) has resolved."""
        return all(t.state.terminal for t in self.tasks) and not self.pending_keys

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Stage {self.job.id}/{self.index} {self.state.value}>"


@dataclass
class JobCounters:
    """Per-job accounting, mirroring ``SweepRunner``'s counters.

    ``cache_hits``/``cache_misses`` count distinct-spec store probes at
    submission; ``executed`` counts cells this job's own tasks
    simulated; ``predicted`` counts cells answered by the analytic
    surrogate instead of simulation (:mod:`repro.bench.surrogate`);
    ``deduped`` counts cells served by subscribing to another
    job's in-flight task; ``retries`` counts worker-death reschedules.
    """

    cache_hits: int = 0
    cache_misses: int = 0
    executed: int = 0
    predicted: int = 0
    deduped: int = 0
    retries: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "executed": self.executed,
            "predicted": self.predicted,
            "deduped": self.deduped,
            "retries": self.retries,
        }


class Job(Lifecycle):
    """One client submission: ordered stages over a list of cells."""

    _ids = itertools.count(1)

    def __init__(self, client: str, n_cells: int, label: str = "") -> None:
        super().__init__()
        self.id = f"j{next(self._ids)}"
        self.client = client
        self.label = label
        self.n_cells = n_cells
        self.stages: List[Stage] = []
        self.counters = JobCounters()
        #: Set by the scheduler: the first task failure, re-raised to
        #: the client from :meth:`JobHandle.wait`.
        self.error: Optional[BaseException] = None
        #: submission index -> result payload, for duplicate aliasing.
        self.results_by_index: Dict[int, Any] = {}
        #: key -> first submission index (intra-job duplicate aliasing).
        self.first_index_by_key: Dict[str, int] = {}
        #: first index -> later duplicate indices still to fill.
        self.alias_map: Dict[int, List[int]] = {}

    @property
    def tasks(self) -> List[Task]:
        return [t for s in self.stages for t in s.tasks]

    def describe(self) -> Dict[str, Any]:
        """JSON-able snapshot for ``repro jobs list|show``."""
        by_state: Dict[str, int] = {}
        for t in self.tasks:
            by_state[t.state.value] = by_state.get(t.state.value, 0) + 1
        return {
            "id": self.id,
            "client": self.client,
            "label": self.label,
            "state": self.state.value,
            "cells": self.n_cells,
            "stages": len(self.stages),
            "tasks": by_state,
            "counters": self.counters.to_dict(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Job {self.id} {self.state.value} client={self.client!r}>"
