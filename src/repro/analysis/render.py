"""Rendering of analysis dicts: text, JSON (ANALYSIS_SCHEMA=1), HTML.

:func:`render` is the one front door — ``render(analysis, fmt=...)``
over the dict :func:`~repro.analysis.sweep.analyze_sweep` produces —
and the exporters follow the symmetric :mod:`repro.trace.export`
convention: ``to_X(obj) -> data`` / ``write_X(obj, path, *, pretty)``
with atomic writes.

The HTML report is deliberately plain: one static page, inline CSS, no
external assets, so it renders from a ``file://`` URL and from the live
dashboard's ``/report`` endpoint identically.
"""

from __future__ import annotations

import html as _html
import json
from typing import Any, Dict, List

from repro.analysis.sweep import ANALYSIS_SCHEMA
from repro.errors import AnalysisError
from repro.trace.export import _atomic_write_text
from repro.trace.report import format_table

__all__ = [
    "render",
    "to_analysis_json",
    "write_analysis_json",
    "to_html_report",
    "write_html_report",
    "render_queue_stats",
]


def _check(analysis: Dict[str, Any]) -> Dict[str, Any]:
    if not isinstance(analysis, dict) or "schema" not in analysis:
        raise AnalysisError(
            "render() expects the dict produced by analyze_sweep()"
        )
    if analysis["schema"] != ANALYSIS_SCHEMA:
        raise AnalysisError(
            f"analysis dict has schema {analysis['schema']!r}; this build "
            f"renders schema {ANALYSIS_SCHEMA}"
        )
    return analysis


def _fmt(v: Any) -> str:
    if isinstance(v, float):
        return f"{v:.4g}"
    if v is None:
        return "-"
    return str(v)


def _win_loss_rows(analysis: Dict[str, Any]) -> List[List[object]]:
    rows = []
    for entry in analysis.get("win_loss", []):
        winners = ", ".join(entry["winners"])
        if entry.get("tie"):
            winners += " (tie)"
        best = max(entry["values"].values()) if entry["values"] else None
        margin = entry.get("margin")
        rows.append(
            [
                entry["group"],
                winners,
                _fmt(best) + (entry.get("unit") or ""),
                "-" if margin is None else f"+{margin:.1%}",
                entry.get("origin", ""),
            ]
        )
    return rows


def _crossover_rows(analysis: Dict[str, Any]) -> List[List[object]]:
    return [
        [x["artifact"], x["at"], f"{x['from']} → {x['to']}"]
        for x in analysis.get("crossovers", [])
    ]


def _tenant_rows(analysis: Dict[str, Any]) -> List[List[object]]:
    return [
        [
            t["tenant"],
            t.get("strategy") or "-",
            _fmt(t.get("n_tenants")),
            _fmt(t.get("throughput")),
            _fmt(t.get("dropped")),
            t.get("bottleneck") or "-",
        ]
        for t in analysis.get("tenants", [])
    ]


def render_text(analysis: Dict[str, Any]) -> str:
    """The terminal narrative: counts, win/loss, crossovers, faults."""
    counts = analysis["counts"]
    lines = [
        f"sweep analysis: {counts['cells']} cell(s) "
        f"({counts['simulated']} simulated, {counts['predicted']} "
        f"predicted), {counts['text_artifacts']} text artifact(s)",
    ]
    wl = _win_loss_rows(analysis)
    if wl:
        lines += [
            "",
            format_table(
                ["group", "winner", "best", "margin", "from"],
                wl,
                title="strategy win/loss",
            ),
        ]
    xo = _crossover_rows(analysis)
    if xo:
        lines += [
            "",
            format_table(
                ["artifact", "at", "bottleneck"],
                xo,
                title="disk→compute crossovers",
            ),
        ]
    faults = analysis.get("faults", {})
    if any(
        faults.get(k)
        for k in ("dropped_total", "failed_requests_total", "outages_total")
    ):
        lines += [
            "",
            "faults/drops: "
            f"{faults.get('dropped_total', 0)} CPI(s) dropped in "
            f"{faults.get('cells_with_drops', 0)} cell(s), "
            f"{faults.get('failed_requests_total', 0)} failed request(s), "
            f"{faults.get('outages_total', 0)} server outage(s)",
        ]
    tn = _tenant_rows(analysis)
    if tn:
        lines += [
            "",
            format_table(
                ["tenant", "strategy", "tenants", "CPIs/s", "dropped",
                 "bottleneck"],
                tn,
                title="per-tenant interference",
            ),
        ]
    for note in analysis.get("notes", []):
        lines += ["", f"note: {note}"]
    errors = analysis.get("sources", {}).get("errors", [])
    for err in errors:
        lines += [f"warning: {err}"]
    return "\n".join(lines)


# -- JSON --------------------------------------------------------------------
def to_analysis_json(analysis: Dict[str, Any]) -> Dict[str, Any]:
    """The analysis dict itself (validated); symmetric with
    :func:`repro.trace.export.to_metrics_json`."""
    return _check(analysis)


def write_analysis_json(
    analysis: Dict[str, Any], path: str, *, pretty: bool = False
) -> str:
    """Write the analysis JSON to ``path`` atomically; returns it."""
    text = json.dumps(
        to_analysis_json(analysis), indent=2 if pretty else None
    )
    return _atomic_write_text(path, text)


# -- HTML --------------------------------------------------------------------
_PAGE = """<!doctype html>
<html lang="en"><head><meta charset="utf-8">
<title>repro sweep analysis</title>
<style>
body {{ font: 14px/1.5 system-ui, sans-serif; margin: 2rem auto;
       max-width: 60rem; color: #1a1a2e; }}
h1 {{ font-size: 1.4rem; }} h2 {{ font-size: 1.1rem; margin-top: 2rem; }}
table {{ border-collapse: collapse; width: 100%; margin: .5rem 0; }}
th, td {{ border: 1px solid #cbd5e1; padding: .3rem .6rem;
          text-align: left; font-variant-numeric: tabular-nums; }}
th {{ background: #eef2f7; }}
tr.tie td {{ background: #fdf6e3; }}
.note {{ color: #64748b; font-size: .9em; }}
</style></head><body>
<h1>Sweep analysis</h1>
<p>{summary}</p>
{sections}
</body></html>
"""


def _html_table(
    headers: List[str], rows: List[List[object]], row_classes=None
) -> str:
    head = "".join(f"<th>{_html.escape(str(h))}</th>" for h in headers)
    body = []
    for i, row in enumerate(rows):
        cls = f' class="{row_classes[i]}"' if row_classes and row_classes[i] else ""
        cells = "".join(
            f"<td>{_html.escape(_fmt(c))}</td>" for c in row
        )
        body.append(f"<tr{cls}>{cells}</tr>")
    return (
        f"<table><thead><tr>{head}</tr></thead>"
        f"<tbody>{''.join(body)}</tbody></table>"
    )


def to_html_report(analysis: Dict[str, Any]) -> str:
    """Render the analysis as one self-contained static HTML page."""
    _check(analysis)
    counts = analysis["counts"]
    summary = _html.escape(
        f"{counts['cells']} cell(s) — {counts['simulated']} simulated, "
        f"{counts['predicted']} predicted — and "
        f"{counts['text_artifacts']} committed text artifact(s)."
    )
    sections: List[str] = []
    wl_entries = analysis.get("win_loss", [])
    if wl_entries:
        sections.append("<h2>Strategy win/loss</h2>")
        sections.append(
            _html_table(
                ["group", "winner", "best", "margin", "from"],
                _win_loss_rows(analysis),
                row_classes=[
                    "tie" if e.get("tie") else "" for e in wl_entries
                ],
            )
        )
    if analysis.get("crossovers"):
        sections.append("<h2>Disk→compute crossovers</h2>")
        sections.append(
            _html_table(
                ["artifact", "at", "bottleneck"],
                _crossover_rows(analysis),
            )
        )
    faults = analysis.get("faults", {})
    if any(
        faults.get(k)
        for k in ("dropped_total", "failed_requests_total", "outages_total")
    ):
        sections.append("<h2>Faults and drops</h2>")
        sections.append(
            _html_table(
                ["dropped CPIs", "cells with drops", "failed requests",
                 "server outages"],
                [[
                    faults.get("dropped_total", 0),
                    faults.get("cells_with_drops", 0),
                    faults.get("failed_requests_total", 0),
                    faults.get("outages_total", 0),
                ]],
            )
        )
    if analysis.get("tenants"):
        sections.append("<h2>Per-tenant interference</h2>")
        sections.append(
            _html_table(
                ["tenant", "strategy", "tenants", "CPIs/s", "dropped",
                 "bottleneck"],
                _tenant_rows(analysis),
            )
        )
    for note in analysis.get("notes", []):
        sections.append(f'<p class="note">{_html.escape(note)}</p>')
    for err in analysis.get("sources", {}).get("errors", []):
        sections.append(
            f'<p class="note">warning: {_html.escape(err)}</p>'
        )
    return _PAGE.format(summary=summary, sections="\n".join(sections))


def write_html_report(
    analysis: Dict[str, Any], path: str, *, pretty: bool = False
) -> str:
    """Write the HTML report to ``path`` atomically; returns it.

    ``pretty`` is accepted for signature symmetry with the other
    ``write_X`` exporters; the page has one canonical rendering.
    """
    return _atomic_write_text(path, to_html_report(analysis))


def render(analysis: Dict[str, Any], fmt: str = "text") -> str:
    """Render an analysis dict as ``"text"``, ``"json"``, or ``"html"``."""
    _check(analysis)
    if fmt == "text":
        return render_text(analysis)
    if fmt == "json":
        return json.dumps(to_analysis_json(analysis), indent=2)
    if fmt == "html":
        return to_html_report(analysis)
    raise AnalysisError(
        f"unknown render format {fmt!r}; choose text, json, or html"
    )


# -- queue stats (moved from repro.cli) --------------------------------------
def render_queue_stats(qs: dict) -> str:
    """Human-readable calendar-queue statistics (``profile --queue-stats``)."""
    total = qs["total_entries"]
    lane = qs["lane_entries"]
    cal = qs["calendar_entries"]
    lines = [
        "calendar queue statistics",
        f"  ring        : {qs['nbuckets']} buckets x {qs['width']:g} s wide, "
        f"{qs['count']} live entries",
        f"  events      : {total} scheduled — {lane} lane (zero-delay, "
        f"{qs['lane_ratio']:.1%}), {cal} calendar",
        f"  advances    : {qs['advances']} clock advances, "
        f"{qs['fallback_scans']} fallback scans, {qs['resizes']} resizes",
    ]
    occ = qs["occupancy_hist"]
    labels = ["0", "1", "2-3", "4-7", "8-15", "16-31", "32-63", "64-127"]
    cells = []
    for i, n in enumerate(occ):
        if n == 0:
            continue
        label = labels[i] if i < len(labels) else f"{1 << (i - 1)}+"
        cells.append(f"{label} entries: {n}")
    lines.append("  occupancy   : " + ("; ".join(cells) + " buckets"
                                       if cells else "empty ring"))
    return "\n".join(lines)
