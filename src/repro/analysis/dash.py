"""Live fleet dashboard: stdlib-only web view of a running service.

``repro dash`` serves a single-page view of an
:class:`~repro.service.scheduler.ExperimentScheduler` — every job's
state and progress streaming in over Server-Sent Events, service-level
gauges, and per-run sparklines read from stored metrics artifacts —
using nothing but :mod:`http.server` and vanilla JavaScript, so it runs
anywhere the simulator runs.

Two backends, one interface:

* :class:`LocalBackend` — the scheduler object lives in this process
  (``repro dash --serve`` spins up both sides at once);
* :class:`RemoteBackend` — the scheduler sits behind ``repro serve``'s
  TCP front end; the dashboard talks the line protocol (``jobs`` /
  ``events`` / ``stats`` ops) like any other client.

Endpoints (all JSON unless noted):

* ``/``                 — the dashboard page (HTML);
* ``/api/jobs``         — job snapshots;
* ``/api/events?after=N[&timeout=T]`` — cursor-paged scheduler events;
* ``/api/stats``        — service metrics snapshot + worker PIDs;
* ``/api/runs``         — stored-result summaries (the run browser);
* ``/api/run/<hash>``   — one run's bottleneck profile and gauge
  sparklines, resolved through :func:`repro.analysis.load`;
* ``/events``           — SSE bridge over ``/api/events`` (text/event-stream);
* ``/report``           — the static HTML sweep report over the store
  and any committed artifact directory (``--results``).
"""

from __future__ import annotations

import json
import threading
import urllib.parse
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import AnalysisError, ReproError

__all__ = ["LocalBackend", "RemoteBackend", "DashboardServer"]

#: Long-poll ceiling per /api/events request (seconds).
_MAX_POLL = 30.0

#: Points per sparkline series sent to the browser.
_SPARK_POINTS = 120


class LocalBackend:
    """Dashboard data straight from an in-process scheduler + feed."""

    def __init__(self, scheduler, feed) -> None:
        self.scheduler = scheduler
        self.feed = feed

    def jobs(self) -> List[Dict[str, Any]]:
        return self.scheduler.jobs()

    def events(
        self, after: int, timeout: float
    ) -> Tuple[List[Dict[str, Any]], int]:
        if timeout > 0:
            return self.feed.wait(after, timeout=timeout)
        return self.feed.since(after)

    def stats(self) -> Dict[str, Any]:
        snap = self.scheduler.metrics.snapshot()
        snap["tasks_in_flight"] = self.scheduler.tasks_in_flight
        return {"stats": snap, "workers": self.scheduler.worker_pids()}


class RemoteBackend:
    """Dashboard data over the ``repro serve`` TCP line protocol."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port

    def _request(self, req: Dict[str, Any], timeout: float = 10.0) -> dict:
        from repro.service.server import request

        return request(self.host, self.port, req, timeout=timeout)

    def jobs(self) -> List[Dict[str, Any]]:
        return self._request({"op": "jobs"}).get("jobs", [])

    def events(
        self, after: int, timeout: float
    ) -> Tuple[List[Dict[str, Any]], int]:
        resp = self._request(
            {"op": "events", "after": after, "timeout": timeout},
            timeout=timeout + 10.0,
        )
        return resp.get("events", []), int(resp.get("next", after))

    def stats(self) -> Dict[str, Any]:
        resp = self._request({"op": "stats"})
        return {
            "stats": resp.get("stats", {}),
            "workers": resp.get("workers", []),
        }


def _downsample(t: List[float], v: List[float]) -> Tuple[List[float], List[float]]:
    if len(v) <= _SPARK_POINTS:
        return t, v
    step = len(v) / _SPARK_POINTS
    idx = [int(i * step) for i in range(_SPARK_POINTS)]
    return [t[i] for i in idx], [v[i] for i in idx]


class DashboardServer:
    """Threaded HTTP server for the dashboard endpoints.

    ``backend`` supplies live job/event/stat data; ``store`` (a
    :class:`~repro.bench.store.ResultStore`) backs the run browser and
    sparklines; ``results_dir`` adds committed text artifacts to the
    ``/report`` sweep analysis.
    """

    def __init__(
        self,
        backend,
        host: str = "127.0.0.1",
        port: int = 0,
        store=None,
        results_dir: Optional[str] = None,
    ) -> None:
        self.backend = backend
        self.store = store
        self.results_dir = results_dir
        dash = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *args) -> None:  # silence stderr
                pass

            def do_GET(self) -> None:  # noqa: N802 - http.server API
                try:
                    dash._route(self)
                except (BrokenPipeError, ConnectionResetError):
                    pass
                except (ReproError, OSError, ValueError) as exc:
                    try:
                        dash._json(self, {"error": str(exc)}, status=500)
                    except OSError:
                        pass

        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "DashboardServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-dash", daemon=True
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Run in the calling thread (the ``repro dash`` CLI path)."""
        self._httpd.serve_forever()

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=2.0)

    def __enter__(self) -> "DashboardServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- responses -----------------------------------------------------------
    def _json(self, handler, payload: Any, status: int = 200) -> None:
        body = json.dumps(payload).encode("utf-8")
        handler.send_response(status)
        handler.send_header("Content-Type", "application/json")
        handler.send_header("Content-Length", str(len(body)))
        handler.end_headers()
        handler.wfile.write(body)

    def _page(self, handler, text: str, content_type: str = "text/html") -> None:
        body = text.encode("utf-8")
        handler.send_response(200)
        handler.send_header("Content-Type", f"{content_type}; charset=utf-8")
        handler.send_header("Content-Length", str(len(body)))
        handler.end_headers()
        handler.wfile.write(body)

    # -- routing -------------------------------------------------------------
    def _route(self, handler) -> None:
        parsed = urllib.parse.urlparse(handler.path)
        path = parsed.path.rstrip("/") or "/"
        query = urllib.parse.parse_qs(parsed.query)
        if path == "/":
            self._page(handler, _INDEX_HTML)
        elif path == "/api/jobs":
            self._json(handler, {"jobs": self.backend.jobs()})
        elif path == "/api/events":
            after = int(query.get("after", ["0"])[0])
            timeout = min(
                float(query.get("timeout", ["0"])[0]), _MAX_POLL
            )
            events, cursor = self.backend.events(after, timeout)
            self._json(handler, {"events": events, "next": cursor})
        elif path == "/api/stats":
            self._json(handler, self.backend.stats())
        elif path == "/api/runs":
            self._json(handler, {"runs": self._runs()})
        elif path.startswith("/api/run/"):
            self._json(handler, self._run_detail(path.rsplit("/", 1)[1]))
        elif path == "/events":
            self._sse(handler, query)
        elif path == "/report":
            self._page(handler, self._report())
        else:
            self._json(handler, {"error": f"no such path: {path}"}, 404)

    # -- data ----------------------------------------------------------------
    def _runs(self) -> List[Dict[str, Any]]:
        if self.store is None:
            return []
        return self.store.entries()

    def _run_detail(self, spec_hash: str) -> Dict[str, Any]:
        from repro.analysis import load
        from repro.obs.report import bottleneck_profile, sparkline

        if self.store is None:
            raise AnalysisError("dashboard has no result store configured")
        loaded = load(spec_hash, store=self.store)
        detail: Dict[str, Any] = {
            "hash": loaded.spec_hash or spec_hash,
            "kind": loaded.kind,
            "label": loaded.label(),
            "source": loaded.source,
            "series": {},
        }
        result = loaded.result
        if result is not None and hasattr(result, "throughput"):
            detail["throughput"] = result.throughput
            detail["latency"] = result.latency
            detail["profile"] = bottleneck_profile(result, strict=False)
        metrics = loaded.metrics or {}
        for qname, s in sorted((metrics.get("series") or {}).items()):
            t, v = _downsample(s["t"], s["v"])
            detail["series"][qname] = {
                "t": t,
                "v": v,
                "spark": sparkline(s["v"]),
            }
        return detail

    def _report(self) -> str:
        from repro.analysis import analyze_sweep, to_html_report

        sources: List[Any] = []
        if self.results_dir:
            sources.append(self.results_dir)
        if self.store is not None:
            sources.append(self.store)
        analysis = analyze_sweep(sources)
        return to_html_report(analysis)

    # -- SSE -----------------------------------------------------------------
    def _sse(self, handler, query: Dict[str, List[str]]) -> None:
        """Bridge the event feed onto one Server-Sent-Events stream."""
        after = int(query.get("after", ["0"])[0])
        handler.send_response(200)
        handler.send_header("Content-Type", "text/event-stream")
        handler.send_header("Cache-Control", "no-cache")
        handler.end_headers()
        while True:
            events, after = self.backend.events(after, timeout=10.0)
            if not events:
                handler.wfile.write(b": keepalive\n\n")
                handler.wfile.flush()
                continue
            for event in events:
                data = json.dumps(event)
                handler.wfile.write(
                    f"id: {event.get('seq', after)}\n"
                    f"data: {data}\n\n".encode("utf-8")
                )
            handler.wfile.flush()


_INDEX_HTML = """<!doctype html>
<html lang="en"><head><meta charset="utf-8">
<title>repro fleet dashboard</title>
<style>
body { font: 14px/1.5 system-ui, sans-serif; margin: 1.5rem auto;
       max-width: 70rem; color: #1a1a2e; }
h1 { font-size: 1.3rem; } h2 { font-size: 1.05rem; margin-top: 1.5rem; }
table { border-collapse: collapse; width: 100%; }
th, td { border: 1px solid #cbd5e1; padding: .25rem .55rem;
         text-align: left; font-variant-numeric: tabular-nums; }
th { background: #eef2f7; }
.state-running { color: #b45309; } .state-done { color: #15803d; }
.state-failed { color: #b91c1c; } .state-cancelled { color: #64748b; }
#stats, #feedstate { color: #64748b; font-size: .9em; }
code { background: #f1f5f9; padding: 0 .25em; }
.spark { font-family: monospace; white-space: pre; }
a { color: #1d4ed8; }
</style></head><body>
<h1>repro fleet dashboard</h1>
<p id="feedstate">connecting…</p>
<h2>Jobs</h2>
<table id="jobs"><thead><tr>
<th>id</th><th>client</th><th>label</th><th>state</th>
<th>progress</th><th>executed</th><th>cached</th><th>predicted</th>
<th>retries</th></tr></thead><tbody></tbody></table>
<p id="stats"></p>
<h2>Stored runs</h2>
<table id="runs"><thead><tr>
<th>hash</th><th>pipeline</th><th>fs</th><th>CPIs/s</th>
<th>source</th><th>gauges</th></tr></thead><tbody></tbody></table>
<p><a href="/report">full sweep report</a></p>
<script>
const esc = s => String(s ?? "").replace(/[&<>"]/g,
  c => ({"&":"&amp;","<":"&lt;",">":"&gt;",'"':"&quot;"}[c]));
const jobs = new Map();
function renderJobs() {
  const rows = [...jobs.values()].map(j => {
    const c = j.counters || {};
    const done = j.results ?? 0;
    return `<tr><td>${esc(j.id)}</td><td>${esc(j.client)}</td>
      <td>${esc(j.label)}</td>
      <td class="state-${esc(j.state)}">${esc(j.state)}</td>
      <td>${done}/${esc(j.cells)}</td><td>${c.executed ?? 0}</td>
      <td>${c.cache_hits ?? 0}</td><td>${c.predicted ?? 0}</td>
      <td>${c.retries ?? 0}</td></tr>`;
  });
  document.querySelector("#jobs tbody").innerHTML = rows.join("");
}
async function refreshJobs() {
  const r = await fetch("/api/jobs"); const data = await r.json();
  for (const j of data.jobs) jobs.set(j.id, j);
  renderJobs();
}
async function refreshStats() {
  const r = await fetch("/api/stats"); const data = await r.json();
  const s = data.stats || {};
  const bits = Object.entries(s)
    .filter(([k]) => !k.includes("{"))
    .map(([k, v]) => `${esc(k.replace("service_", ""))}=${v}`);
  document.getElementById("stats").textContent =
    `workers: ${(data.workers || []).length} · ` + bits.join(" · ");
}
async function refreshRuns() {
  const r = await fetch("/api/runs"); const data = await r.json();
  const rows = [];
  for (const run of (data.runs || []).slice(-40).reverse()) {
    rows.push(`<tr><td><code>${esc((run.hash || "").slice(0, 12))}</code></td>
      <td>${esc(run.pipeline)}</td><td>${esc(run.fs)}</td>
      <td>${run.throughput == null ? "-" : run.throughput.toFixed(4)}</td>
      <td>${esc(run.source)}</td>
      <td class="spark" data-hash="${esc(run.hash)}">…</td></tr>`);
  }
  document.querySelector("#runs tbody").innerHTML = rows.join("");
  for (const cell of document.querySelectorAll("#runs .spark")) {
    fetch(`/api/run/${cell.dataset.hash}`).then(r => r.json()).then(d => {
      const names = Object.keys(d.series || {});
      const q = names.find(n => n.includes("queue_depth")) || names[0];
      cell.textContent = q ? (d.series[q].spark || "") : "(no metrics)";
      if (d.profile) cell.title = `bottleneck: ${d.profile.bottleneck}`;
    }).catch(() => { cell.textContent = "?"; });
  }
}
function connect() {
  const es = new EventSource("/events");
  es.onopen = () => {
    document.getElementById("feedstate").textContent = "live (SSE)";
  };
  es.onmessage = m => {
    const e = JSON.parse(m.data);
    if (e.event === "job") { jobs.set(e.id, e); renderJobs(); }
    if (e.event === "result" || e.event === "job") refreshStats();
    if (e.event === "job" &&
        ["done", "failed", "cancelled"].includes(e.state)) refreshRuns();
  };
  es.onerror = () => {
    document.getElementById("feedstate").textContent =
      "feed disconnected — polling";
    es.close();
    setTimeout(connect, 2000);
  };
}
refreshJobs(); refreshStats(); refreshRuns(); connect();
setInterval(refreshJobs, 5000); setInterval(refreshStats, 5000);
</script></body></html>
"""
