"""Offline sweep analyzer: the cross-run bottleneck narrative.

Point :func:`analyze_sweep` at any mix of artifact sources — a
directory of committed artifacts (``results/``), a
:class:`~repro.bench.store.ResultStore`, individual files / hashes /
result objects — and it joins everything into one analysis dict
(``ANALYSIS_SCHEMA`` = 1) holding:

* one :class:`CellRecord` per run (per tenant for scenarios), with the
  joined :class:`~repro.bench.engine.ExperimentSpec` axes and the
  per-cell binding phase from
  :func:`repro.obs.report.bottleneck_profile`;
* **strategy win/loss tables** — within every group of cells that
  differ only in strategy, who won and by how much (near-identical
  throughputs are reported as a tie, the paper's "all strategies
  converge once compute-bound" signature);
* **disk→compute crossover points** — the first stripe factor at which
  the binding phase flips, from metered cells and from committed
  bottleneck-migration tables alike;
* **fault and drop summaries** (deadline drops, failed requests,
  server outages) and **per-tenant interference breakdowns** for
  scenario results.

Mixed stores are first-class: surrogate-predicted cells join the
win/loss tables on their predicted throughput and show up with
``source="predicted"`` and a degraded (not crashing) bottleneck row.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.bench.artifacts import (
    DiscoveredArtifacts,
    ParsedTextArtifact,
    axis_tokens,
    discover_artifacts,
)
from repro.errors import AnalysisError
from repro.analysis.loader import LoadedResult, load

__all__ = ["CellRecord", "analyze_sweep", "ANALYSIS_SCHEMA"]

#: Schema of the analysis dict produced by :func:`analyze_sweep`; bump
#: on incompatible shape changes.
ANALYSIS_SCHEMA = 1

#: Throughputs within this relative distance of the group maximum count
#: as a tie.  At 4 rendered significant figures the compute-bound
#: plateau (every strategy pinned at the same compute rate) lands within
#: 0.25% — distinguishing those is reading noise, not physics.
TIE_RTOL = 0.0025


@dataclass
class CellRecord:
    """One analyzed run (or one tenant of a scenario run)."""

    origin: str
    label: str
    source: str = "simulated"
    #: Join axes: strategy / fs / stripe_factor / machine / nodes /
    #: seed / tenant — whichever the artifact could supply.
    axes: Dict[str, Any] = field(default_factory=dict)
    throughput: Optional[float] = None
    latency: Optional[float] = None
    #: Binding-phase profile (see ``bottleneck_profile``); always
    #: present, degraded to ``bottleneck="unknown"`` when un-metered.
    profile: Dict[str, Any] = field(default_factory=dict)
    dropped: int = 0
    failed_requests: int = 0
    outages: int = 0
    spec_hash: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "origin": self.origin,
            "label": self.label,
            "source": self.source,
            "axes": self.axes,
            "throughput": self.throughput,
            "latency": self.latency,
            "profile": self.profile,
            "dropped": self.dropped,
            "failed_requests": self.failed_requests,
            "outages": self.outages,
            "spec_hash": self.spec_hash,
        }


def _axes_from_spec(spec: Optional[dict]) -> Dict[str, Any]:
    """Join axes out of an embedded ExperimentSpec/ScenarioSpec dict."""
    if not spec:
        return {}
    axes: Dict[str, Any] = {}
    if spec.get("pipeline"):
        axes["strategy"] = spec["pipeline"]
    if spec.get("machine"):
        axes["machine"] = spec["machine"]
    fs = spec.get("fs") or {}
    if fs.get("kind"):
        axes["fs"] = fs["kind"]
    if fs.get("stripe_factor") is not None:
        axes["stripe_factor"] = fs["stripe_factor"]
    if spec.get("seed") is not None:
        axes["seed"] = spec["seed"]
    cfg = spec.get("cfg") or {}
    if cfg.get("n_cpis") is not None:
        axes["n_cpis"] = cfg["n_cpis"]
    return axes


def _axes_from_fs_label(fs_label: str) -> Dict[str, Any]:
    """``"PFS sf=64"`` -> ``{"fs": "pfs", "stripe_factor": 64}``."""
    tokens = axis_tokens(fs_label.lower())
    axes: Dict[str, Any] = {}
    if "fs" in tokens:
        axes["fs"] = tokens["fs"]
    if "sf" in tokens:
        axes["stripe_factor"] = int(tokens["sf"])
    return axes


def _fault_fields(result) -> Tuple[int, int, int]:
    """(dropped, failed_requests, outages) of one pipeline result."""
    dropped = len(result.dropped_cpis or ())
    stats = result.disk_stats or {}
    failed = sum(stats.get("requests_failed_per_server") or [])
    outages = sum(stats.get("outages_per_server") or [])
    return dropped, int(failed), int(outages)


def _profile_of(result) -> Dict[str, Any]:
    from repro.obs.report import bottleneck_profile

    return bottleneck_profile(result, strict=False)


def _cells_from_loaded(loaded: LoadedResult) -> List[CellRecord]:
    """Expand one loaded artifact into cell records."""
    if loaded.kind == "pipeline":
        r = loaded.result
        axes = _axes_from_spec(loaded.spec) or _axes_from_fs_label(
            r.fs_label
        )
        axes.setdefault("machine", r.machine_name)
        dropped, failed, outages = _fault_fields(r)
        return [
            CellRecord(
                origin=loaded.origin,
                label=loaded.label(),
                source=r.source,
                axes=axes,
                throughput=r.throughput,
                latency=r.latency,
                profile=_profile_of(r),
                dropped=dropped,
                failed_requests=failed,
                outages=outages,
                spec_hash=loaded.spec_hash,
            )
        ]
    if loaded.kind == "scenario":
        sc = loaded.result
        shared_axes = _axes_from_spec(loaded.spec)
        tenant_pipeline = {
            name: t.pipeline
            for name, t in zip(sc.spec.tenant_names(), sc.spec.tenants)
        }
        cells = []
        for name, r in sc.tenants.items():
            axes = dict(shared_axes)
            axes["tenant"] = name
            axes["strategy"] = tenant_pipeline.get(name, "")
            axes["n_tenants"] = len(sc.tenants)
            dropped, failed, outages = _fault_fields(r)
            if sc.tenant_bytes:
                axes["tenant_bytes"] = sc.tenant_bytes.get(name)
            cells.append(
                CellRecord(
                    origin=loaded.origin,
                    label=f"{loaded.label()}:{name}",
                    source=sc.source,
                    axes=axes,
                    throughput=r.throughput,
                    latency=r.latency,
                    profile=_profile_of(r),
                    dropped=dropped,
                    failed_requests=failed,
                    outages=outages,
                    spec_hash=loaded.spec_hash,
                )
            )
        return cells
    # Bare metrics / trace artifacts carry no measurement to join on;
    # they contribute nothing to the sweep tables.
    return []


# -- win/loss ----------------------------------------------------------------
def _win_loss_entry(
    group: str, values: Dict[str, float], unit: str, origin: str
) -> Dict[str, Any]:
    best = max(values.values())
    winners = sorted(
        label
        for label, v in values.items()
        if best - v <= TIE_RTOL * abs(best)
    )
    losers = sorted(set(values) - set(winners))
    runner_up = max(
        (values[lb] for lb in losers), default=None
    )
    return {
        "group": group,
        "axes": axis_tokens(group),
        "unit": unit,
        "values": {k: values[k] for k in sorted(values)},
        "winners": winners,
        "tie": len(winners) > 1,
        "margin": (
            None
            if runner_up is None or not best
            else (best - runner_up) / best
        ),
        "origin": origin,
    }


def _win_loss_from_text(
    artifacts: Sequence[ParsedTextArtifact],
) -> List[Dict[str, Any]]:
    out = []
    for art in artifacts:
        for group, bars in art.groups.items():
            if len(bars) < 2:
                continue
            out.append(
                _win_loss_entry(
                    group or art.name(), bars, art.unit, art.name()
                )
            )
    return out


def _win_loss_from_cells(
    cells: Sequence[CellRecord],
) -> List[Dict[str, Any]]:
    """Group cells that differ only in strategy; compare throughput."""
    groups: Dict[Tuple, Dict[str, float]] = {}
    names: Dict[Tuple, str] = {}
    for c in cells:
        strategy = c.axes.get("strategy")
        if not strategy or c.throughput is None:
            continue
        key_axes = {
            k: v
            for k, v in sorted(c.axes.items())
            if k not in ("strategy", "tenant_bytes")
        }
        key = tuple(key_axes.items())
        groups.setdefault(key, {})[str(strategy)] = c.throughput
        names.setdefault(
            key,
            " ".join(
                f"{k}={v}" for k, v in key_axes.items()
                if k in ("fs", "stripe_factor", "tenant", "n_tenants")
            )
            or c.label,
        )
    return [
        _win_loss_entry(names[key], values, "CPIs/s", "cells")
        for key, values in groups.items()
        if len(values) >= 2
    ]


# -- crossovers --------------------------------------------------------------
def _crossovers_from_tables(
    artifacts: Sequence[ParsedTextArtifact],
) -> List[Dict[str, Any]]:
    """Bottleneck flips read out of committed migration tables."""
    out = []
    for art in artifacts:
        for table in art.tables:
            bcol = next(
                (c for c in table.columns if "bottleneck" in c.lower()),
                None,
            )
            if bcol is None or not table.rows:
                continue
            label_col = table.columns[0]
            prev = None
            for row in table.rows:
                phase = str(row.get(bcol, "")).strip()
                if prev is not None and phase and phase != prev:
                    cell = str(row.get(label_col, "")).strip()
                    out.append(
                        {
                            "artifact": art.name(),
                            "at": cell,
                            "axes": axis_tokens(cell),
                            "from": prev,
                            "to": phase,
                        }
                    )
                if phase:
                    prev = phase
    return out


def _crossovers_from_cells(
    cells: Sequence[CellRecord],
) -> List[Dict[str, Any]]:
    """Bottleneck flips along the stripe-factor axis of metered cells."""
    lanes: Dict[Tuple, List[CellRecord]] = {}
    for c in cells:
        sf = c.axes.get("stripe_factor")
        phase = c.profile.get("bottleneck")
        if sf is None or phase in (None, "unknown"):
            continue
        key = tuple(
            (k, v)
            for k, v in sorted(c.axes.items())
            if k not in ("stripe_factor", "tenant_bytes", "seed")
        )
        lanes.setdefault(key, []).append(c)
    out = []
    for key, lane in lanes.items():
        lane.sort(key=lambda c: c.axes["stripe_factor"])
        for prev, cur in zip(lane, lane[1:]):
            a, b = prev.profile["bottleneck"], cur.profile["bottleneck"]
            if a != b:
                out.append(
                    {
                        "artifact": "cells",
                        "at": f"sf={cur.axes['stripe_factor']:g}",
                        "axes": {
                            "sf": float(cur.axes["stripe_factor"]),
                            **{
                                k: v
                                for k, v in key
                                if k in ("fs", "strategy", "machine")
                            },
                        },
                        "from": a,
                        "to": b,
                    }
                )
    return out


# -- faults / tenants --------------------------------------------------------
def _fault_summary(cells: Sequence[CellRecord]) -> Dict[str, Any]:
    dropped = [(c.label, c.dropped) for c in cells if c.dropped]
    failed = [
        (c.label, c.failed_requests) for c in cells if c.failed_requests
    ]
    outages = [(c.label, c.outages) for c in cells if c.outages]
    return {
        "dropped_total": sum(n for _, n in dropped),
        "cells_with_drops": len(dropped),
        "failed_requests_total": sum(n for _, n in failed),
        "outages_total": sum(n for _, n in outages),
        "worst_drops": sorted(dropped, key=lambda kv: -kv[1])[:8],
    }


def _tenant_summary(cells: Sequence[CellRecord]) -> List[Dict[str, Any]]:
    """Per-tenant interference rows (scenario cells only)."""
    rows = []
    for c in cells:
        tenant = c.axes.get("tenant")
        if tenant is None:
            continue
        rows.append(
            {
                "scenario": c.origin,
                "tenant": tenant,
                "strategy": c.axes.get("strategy"),
                "n_tenants": c.axes.get("n_tenants"),
                "throughput": c.throughput,
                "latency": c.latency,
                "dropped": c.dropped,
                "bytes": c.axes.get("tenant_bytes"),
                "bottleneck": c.profile.get("bottleneck"),
            }
        )
    rows.sort(key=lambda r: (str(r["scenario"]), str(r["tenant"])))
    return rows


def _iter_sources(sources) -> List[Any]:
    if isinstance(sources, (list, tuple)):
        return list(sources)
    return [sources]


def analyze_sweep(
    sources,
    *,
    store=None,
    cache_dir: Optional[Union[str, Path]] = None,
) -> Dict[str, Any]:
    """Join artifacts from ``sources`` into one analysis dict.

    ``sources`` is one source or a list of sources; each may be a
    directory (scanned with
    :func:`~repro.bench.artifacts.discover_artifacts`), anything
    :func:`~repro.analysis.load` resolves (file path, store hash, dict,
    result object), or a :class:`~repro.bench.store.ResultStore`
    instance (every entry analyzed).  ``store``/``cache_dir`` configure
    hash resolution, and a passed ``store`` is *also* analyzed when the
    source list is empty.

    Unresolvable sources are collected under ``"errors"`` rather than
    aborting the whole analysis; an empty join raises
    :class:`~repro.errors.AnalysisError`.
    """
    from repro.bench.store import ResultStore

    cells: List[CellRecord] = []
    text_artifacts: List[ParsedTextArtifact] = []
    scanned_roots: List[str] = []
    errors: List[str] = []
    notes: List[str] = []

    def take_store(st) -> None:
        scanned_roots.append(f"store:{st.root}")
        for spec_hash in st.hashes():
            payload = st.load(spec_hash)
            if payload is None:
                errors.append(
                    f"store entry {spec_hash[:12]} skipped (stale/corrupt)"
                )
                continue
            try:
                cells.extend(_cells_from_loaded(load(payload)))
            except AnalysisError as exc:
                errors.append(str(exc))

    def take(source) -> None:
        if isinstance(source, ResultStore):
            take_store(source)
            return
        if isinstance(source, (str, Path)) and Path(source).is_dir():
            found: DiscoveredArtifacts = discover_artifacts(source)
            scanned_roots.append(found.root)
            text_artifacts.extend(found.text_artifacts)
            for path in found.json_paths:
                try:
                    cells.extend(
                        _cells_from_loaded(
                            load(path, store=store, cache_dir=cache_dir)
                        )
                    )
                except AnalysisError as exc:
                    errors.append(str(exc))
            return
        try:
            cells.extend(
                _cells_from_loaded(
                    load(source, store=store, cache_dir=cache_dir)
                )
            )
        except AnalysisError as exc:
            errors.append(str(exc))

    source_list = _iter_sources(sources)
    for source in source_list:
        take(source)
    if store is not None and not source_list:
        take_store(store)

    if not cells and not text_artifacts:
        raise AnalysisError(
            "nothing to analyze: no result cells or parseable text "
            f"artifacts in {scanned_roots or source_list}"
            + (f" ({'; '.join(errors)})" if errors else "")
        )

    win_loss = _win_loss_from_text(text_artifacts) + _win_loss_from_cells(
        cells
    )
    crossovers = _crossovers_from_tables(
        text_artifacts
    ) + _crossovers_from_cells(cells)
    predicted = sum(1 for c in cells if c.source == "predicted")
    unmetered = sum(
        1 for c in cells if c.profile.get("bottleneck") == "unknown"
    )
    if unmetered:
        notes.append(
            f"{unmetered} cell(s) without metrics artifacts: bottleneck "
            "reported as 'unknown' (predicted or un-metered runs)"
        )
    return {
        "schema": ANALYSIS_SCHEMA,
        "sources": {
            "scanned": scanned_roots,
            "text_artifacts": [a.name() for a in text_artifacts],
            "errors": errors,
        },
        "counts": {
            "cells": len(cells),
            "simulated": len(cells) - predicted,
            "predicted": predicted,
            "unmetered": unmetered,
            "text_artifacts": len(text_artifacts),
        },
        "cells": [c.to_dict() for c in cells],
        "win_loss": win_loss,
        "crossovers": crossovers,
        "faults": _fault_summary(cells),
        "tenants": _tenant_summary(cells),
        "notes": notes,
    }
