"""One artifact resolver for every read-side entry point.

Before this module, each consumer had its own resolution convention:
``repro metrics show`` did path-vs-hash sniffing inline, gantt rendering
wanted a live ``PipelineResult``, and the result store only answered to
exact spec hashes.  :func:`load` is the single front door — it accepts

* a :class:`~repro.core.executor.PipelineResult` or
  :class:`~repro.scenario.spec.ScenarioResult` instance,
* a raw result / store-entry / export-envelope / metrics dict,
* a path to a ``.metrics.json`` / ``.trace.json`` / result JSON file,
* a :class:`~repro.bench.store.ResultStore` hash (full or unique
  prefix),

and returns a :class:`LoadedResult` that normalizes all of them: the
rehydrated result object when one exists, the metrics artifact when one
was recorded, chrome-trace events when that is all the file holds, and
provenance (origin, source) either way.  Schema drift is an explicit
:class:`~repro.errors.AnalysisError`, never a silently-wrong answer.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, List, Optional, Union

from repro.errors import AnalysisError

__all__ = ["LoadedResult", "load"]


@dataclass
class LoadedResult:
    """A normalized view of one loaded artifact, whatever its source.

    ``kind`` says what the artifact fundamentally is:

    * ``"pipeline"`` — a single-pipeline result (``result`` is a
      :class:`~repro.core.executor.PipelineResult`);
    * ``"scenario"`` — a multi-tenant result (``result`` is a
      :class:`~repro.scenario.spec.ScenarioResult`);
    * ``"metrics"`` — a bare metrics artifact with no surrounding
      result (``metrics`` only);
    * ``"trace"`` — a chrome-trace event list (``trace_events`` only).
    """

    kind: str
    result: Optional[Any] = None
    metrics: Optional[dict] = None
    trace_events: Optional[List[dict]] = None
    #: The producing spec's dict form, when the artifact embeds one
    #: (store entries always do; bare files usually don't).
    spec: Optional[dict] = None
    spec_hash: Optional[str] = None
    #: Where this came from: a path, a store hash, or ``"<object>"`` /
    #: ``"<dict>"`` for in-memory sources.
    origin: str = "<object>"
    #: ``"simulated"`` | ``"predicted"`` | ``"unknown"``.
    source: str = "unknown"
    #: Extra notes accumulated while resolving (degraded fields, ...).
    notes: List[str] = field(default_factory=list)

    @property
    def has_metrics(self) -> bool:
        return self.metrics is not None

    def label(self) -> str:
        """Short display label for listings."""
        if self.result is not None:
            lab = getattr(self.result, "fs_label", None)
            if lab is None:
                spec = getattr(self.result, "spec", None)
                lab = getattr(spec, "label", lambda: None)()
            if lab:
                return str(lab)
        if self.spec_hash:
            return self.spec_hash[:12]
        return self.origin


def _wrap_result(result, origin: str) -> LoadedResult:
    """Wrap a live PipelineResult / ScenarioResult instance."""
    from repro.core.executor import PipelineResult
    from repro.scenario.spec import ScenarioResult

    if isinstance(result, ScenarioResult):
        return LoadedResult(
            kind="scenario",
            result=result,
            metrics=result.metrics,
            origin=origin,
            source=result.source,
            spec=result.spec.to_dict(),
            spec_hash=result.spec.spec_hash(),
        )
    if isinstance(result, PipelineResult):
        return LoadedResult(
            kind="pipeline",
            result=result,
            metrics=result.metrics,
            origin=origin,
            source=result.source,
        )
    raise AnalysisError(
        f"cannot load a {type(result).__name__}; expected PipelineResult, "
        "ScenarioResult, dict, path, or store hash"
    )


def _from_result_dict(d: dict, origin: str) -> LoadedResult:
    """Rehydrate a raw result dict (scenario or pipeline shape)."""
    from repro.core.executor import PipelineResult
    from repro.scenario.spec import ScenarioResult

    try:
        if d.get("kind") == "scenario" and "tenants" in d:
            return _wrap_result(ScenarioResult.from_dict(d), origin)
        if "measurement" in d:
            return _wrap_result(PipelineResult.from_dict(d), origin)
    except (KeyError, TypeError, ValueError) as exc:
        raise AnalysisError(
            f"unparseable result dict from {origin}: {exc}"
        ) from exc
    raise AnalysisError(
        f"dict from {origin} is not a recognized artifact (no "
        "'measurement', 'tenants', 'counters', or schema envelope)"
    )


def _from_dict(d: dict, origin: str) -> LoadedResult:
    """Dispatch a dict by shape: store entry, export envelope, bare
    metrics artifact, or raw result dict."""
    from repro.bench.store import STORE_SCHEMA
    from repro.trace.export import RESULT_SCHEMA

    if "schema" in d:
        schema = d.get("schema")
        if "result" in d and "spec_hash" in d:  # ResultStore entry
            if schema != STORE_SCHEMA:
                raise AnalysisError(
                    f"stale store entry from {origin}: schema {schema!r}, "
                    f"this build reads schema {STORE_SCHEMA} (re-run the "
                    "sweep to refresh the cache)"
                )
            loaded = _from_result_dict(d["result"], origin)
            loaded.spec = d.get("spec")
            loaded.spec_hash = d.get("spec_hash")
            return loaded
        if "data" in d and "kind" in d:  # to_result_json envelope
            if schema != RESULT_SCHEMA:
                raise AnalysisError(
                    f"stale result artifact from {origin}: schema "
                    f"{schema!r}, this build reads schema {RESULT_SCHEMA}"
                )
            data = d["data"]
            if not isinstance(data, dict):
                raise AnalysisError(
                    f"result envelope from {origin} has non-dict data"
                )
            if "counters" in data and "measurement" not in data:
                return LoadedResult(
                    kind="metrics", metrics=data, origin=origin
                )
            return _from_result_dict(data, origin)
    if "counters" in d and "measurement" not in d:  # bare metrics
        return LoadedResult(kind="metrics", metrics=d, origin=origin)
    return _from_result_dict(d, origin)


def _from_path(path: Path) -> LoadedResult:
    origin = str(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise AnalysisError(f"cannot read {origin}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise AnalysisError(f"{origin} is not valid JSON: {exc}") from exc
    if isinstance(payload, list):  # chrome-trace event array
        return LoadedResult(
            kind="trace", trace_events=payload, origin=origin
        )
    if isinstance(payload, dict):
        return _from_dict(payload, origin)
    raise AnalysisError(
        f"{origin} holds a {type(payload).__name__}, not an artifact"
    )


def _looks_like_hash(text: str) -> bool:
    return (
        4 <= len(text) <= 64
        and all(c in "0123456789abcdef" for c in text.lower())
    )


def _from_store_hash(
    text: str, store, cache_dir: Optional[Union[str, Path]]
) -> LoadedResult:
    from repro.bench.store import ResultStore

    if store is None:
        store = ResultStore(cache_dir) if cache_dir else ResultStore()
    matches = [h for h in store.hashes() if h.startswith(text.lower())]
    if not matches:
        raise AnalysisError(
            f"no cached result matches {text!r} — it is neither an "
            f"existing file nor a stored result hash (store: {store.root})"
        )
    if len(matches) > 1:
        raise AnalysisError(
            f"hash prefix {text!r} is ambiguous: "
            f"{', '.join(h[:12] for h in matches[:6])}"
        )
    payload = store.load(matches[0])
    if payload is None:
        raise AnalysisError(
            f"store entry {matches[0][:12]} is stale or corrupt "
            "(wrong schema); re-run the sweep to refresh it"
        )
    return _from_dict(payload, f"store:{matches[0][:12]}")


def load(
    source,
    *,
    store=None,
    cache_dir: Optional[Union[str, Path]] = None,
) -> LoadedResult:
    """Resolve any artifact reference to a :class:`LoadedResult`.

    ``source`` may be a result object, a dict (raw result, store entry,
    export envelope, or bare metrics artifact), a chrome-trace event
    list, a path to a JSON artifact, or a (prefix of a) result-store
    hash.  ``store`` / ``cache_dir`` configure which
    :class:`~repro.bench.store.ResultStore` hash lookups consult
    (default: the default cache directory).

    Raises :class:`~repro.errors.AnalysisError` on anything that cannot
    be resolved — unknown shape, missing file/hash, ambiguous prefix, or
    an artifact written under a different schema version.
    """
    if isinstance(source, dict):
        return _from_dict(source, "<dict>")
    if isinstance(source, list):
        return LoadedResult(
            kind="trace", trace_events=source, origin="<list>"
        )
    if isinstance(source, Path):
        if not source.exists():
            raise AnalysisError(f"no such file: {source}")
        return _from_path(source)
    if isinstance(source, str):
        path = Path(source)
        if path.exists():
            return _from_path(path)
        if _looks_like_hash(source):
            return _from_store_hash(source, store, cache_dir)
        raise AnalysisError(
            f"{source!r} is neither an existing file nor a store hash"
        )
    return _wrap_result(source, "<object>")
