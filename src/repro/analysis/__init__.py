"""The unified read side: one facade over every result artifact.

Before this package the read side had four disjoint entry points with
three artifact-resolution conventions — ``repro.obs.report`` wanted a
live result, ``trace.report``/``trace.gantt`` wanted collectors,
``repro metrics show`` did its own path-vs-hash sniffing.
``repro.analysis`` is the single front door:

* :func:`load` — resolve *anything* (ResultStore hash, artifact path,
  raw dict, result object) to one normalized :class:`LoadedResult`;
* :func:`analyze_sweep` — join many artifacts into the cross-run
  bottleneck narrative (win/loss tables, disk→compute crossovers,
  fault and tenant summaries), ``ANALYSIS_SCHEMA`` = 1;
* :func:`render` / the ``to_X``/``write_X`` exporter pairs — text,
  JSON, and static-HTML renderings of that narrative;
* :func:`gantt` — the ASCII timeline of any loadable source;
* :class:`DashboardServer` (in :mod:`repro.analysis.dash`) — the live,
  stdlib-only web view of the same data streaming out of a running
  :class:`~repro.service.ExperimentScheduler`.

The legacy entry points still work and now route through here.
"""

from __future__ import annotations

from repro.analysis.loader import LoadedResult, load
from repro.analysis.render import (
    render,
    render_queue_stats,
    to_analysis_json,
    to_html_report,
    write_analysis_json,
    write_html_report,
)
from repro.analysis.sweep import ANALYSIS_SCHEMA, CellRecord, analyze_sweep
from repro.errors import AnalysisError

__all__ = [
    "ANALYSIS_SCHEMA",
    "AnalysisError",
    "CellRecord",
    "LoadedResult",
    "analyze_sweep",
    "gantt",
    "load",
    "render",
    "render_queue_stats",
    "to_analysis_json",
    "to_html_report",
    "write_analysis_json",
    "write_html_report",
]


def gantt(source, width: int = 100, *, store=None, cache_dir=None) -> str:
    """ASCII Gantt timeline of any loadable source (see :func:`load`).

    Scenario results render every tenant's lane
    (:func:`~repro.trace.gantt.render_scenario_gantt`); artifacts with
    no trace (bare metrics, predicted cells) raise
    :class:`~repro.errors.AnalysisError`.
    """
    from repro.trace.gantt import render_gantt, render_scenario_gantt

    loaded = load(source, store=store, cache_dir=cache_dir)
    if loaded.kind == "scenario":
        return render_scenario_gantt(
            {name: r.trace for name, r in loaded.result.tenants.items()},
            width=width,
        )
    if loaded.kind == "pipeline":
        return render_gantt(loaded.result.trace, width=width)
    raise AnalysisError(
        f"{loaded.origin} is a {loaded.kind} artifact with no phase "
        "trace to render"
    )
