"""Declarative multi-tenant scenario specs.

A :class:`ScenarioSpec` is to a shared machine what an
:class:`~repro.bench.engine.ExperimentSpec` is to a dedicated one: a
pure value — hashable, serializable, sufficient to reproduce the run
bit-for-bit — describing N tenant pipelines contending for ONE parallel
file system and mesh.  Each :class:`TenantSpec` entry carries the
tenant's node assignment, pipeline/strategy, execution config (including
its CPI arrival process and read deadline), and an optional concurrent
writer load.

Scenario specs flow through the same plumbing as experiment specs: the
:class:`~repro.bench.store.ResultStore` (content-addressed on
:meth:`ScenarioSpec.spec_hash`), the
:class:`~repro.bench.engine.SweepRunner`, the service tier (the spec
names its own payload runner via :attr:`ScenarioSpec.RUNNER`), the TCP
front end (the ``"kind": "scenario"`` marker in :meth:`to_dict` routes
rehydration), and :func:`repro.run`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.bench.engine import MACHINES, PIPELINES, WriterLoad
from repro.core.context import ExecutionConfig
from repro.core.executor import FSConfig, PipelineResult
from repro.core.pipeline import NodeAssignment, PipelineSpec
from repro.core.serialize import compat_get
from repro.errors import ConfigurationError
from repro.stap.params import STAPParams

__all__ = [
    "TenantSpec",
    "ScenarioSpec",
    "ScenarioResult",
    "SCENARIO_SCHEMA",
    "RUN_SCENARIO_RUNNER",
]

#: Bump when the canonical scenario serialization changes shape.
SCENARIO_SCHEMA = 1

#: Import string of the service-tier payload runner for scenario specs
#: (see :func:`repro.service.tasks.run_scenario_payload`).
RUN_SCENARIO_RUNNER = "repro.service.tasks:run_scenario_payload"


@dataclass(frozen=True)
class TenantSpec:
    """One tenant pipeline inside a scenario.

    The tenant brings its own node assignment, pipeline (a
    :data:`~repro.bench.engine.PIPELINES` registry name), and execution
    config — n_cpis, arrival process, read deadline, threading — while
    the scenario supplies the shared machine, file system, and STAP
    parameters.
    """

    assignment: NodeAssignment
    pipeline: str = "embedded-io"
    cfg: ExecutionConfig = field(default_factory=ExecutionConfig)
    name: str = ""
    writer: Optional[WriterLoad] = None

    def __post_init__(self) -> None:
        if self.pipeline not in PIPELINES:
            raise ConfigurationError(
                f"unknown pipeline {self.pipeline!r}; "
                f"choose from {sorted(PIPELINES)}"
            )

    def build_pipeline(self) -> PipelineSpec:
        """Instantiate the named pipeline on this tenant's assignment."""
        return PIPELINES.resolve(self.pipeline)(self.assignment)

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Lossless JSON-able form (optional fields only when set)."""
        d: Dict[str, Any] = {
            "pipeline": self.pipeline,
            "assignment": self.assignment.to_dict(),
            "cfg": self.cfg.to_dict(),
        }
        if self.name:
            d["name"] = self.name
        if self.writer is not None:
            d["writer"] = self.writer.to_dict()
        return d

    @staticmethod
    def from_dict(d: Dict[str, Any]) -> "TenantSpec":
        """Inverse of :meth:`to_dict`."""
        writer = compat_get(d, "writer", None)
        return TenantSpec(
            assignment=NodeAssignment.from_dict(d["assignment"]),
            pipeline=d["pipeline"],
            cfg=ExecutionConfig.from_dict(d["cfg"]),
            name=compat_get(d, "name", ""),
            writer=WriterLoad.from_dict(writer) if writer else None,
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """N tenant pipelines on one shared machine + parallel file system."""

    tenants: Tuple[TenantSpec, ...]
    machine: str = "paragon"
    fs: FSConfig = field(default_factory=FSConfig)
    params: STAPParams = field(default_factory=STAPParams)
    seed: int = 0
    #: Scenario-level gauge-sampling interval (:mod:`repro.obs`); the
    #: one shared registry carries tenant-labeled instruments.
    metrics_interval: Optional[float] = None

    #: Service-tier payload runner (consulted by the scheduler via
    #: ``getattr(spec, "RUNNER", ...)``).
    RUNNER = RUN_SCENARIO_RUNNER

    def __post_init__(self) -> None:
        object.__setattr__(self, "tenants", tuple(self.tenants))
        if not self.tenants:
            raise ConfigurationError("a scenario needs at least one tenant")
        if self.machine not in MACHINES:
            raise ConfigurationError(
                f"unknown machine {self.machine!r}; choose from {sorted(MACHINES)}"
            )
        if self.metrics_interval is not None and self.metrics_interval <= 0:
            raise ConfigurationError("metrics_interval must be > 0 (or None)")
        names = self.tenant_names()
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"tenant names must be unique, got {names}"
            )

    # -- sugar ------------------------------------------------------------
    def tenant_names(self) -> Tuple[str, ...]:
        """Resolved tenant names (``name`` or positional ``t<i>``)."""
        return tuple(t.name or f"t{i}" for i, t in enumerate(self.tenants))

    def total_nodes(self) -> int:
        """Compute nodes the scenario occupies (sum over tenants)."""
        return sum(t.assignment.total_without_io for t in self.tenants)

    def label(self) -> str:
        """Human-readable one-liner for listings."""
        mix = "+".join(t.pipeline for t in self.tenants)
        return (
            f"scenario[{len(self.tenants)}] {mix} | {self.machine} | "
            f"{self.fs.label()} | {self.total_nodes()} nodes"
        )

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Lossless JSON-able form.

        The ``"kind": "scenario"`` marker is how generic spec consumers
        (the TCP server, archived payloads) tell a scenario dict from an
        :class:`~repro.bench.engine.ExperimentSpec` dict.
        """
        d: Dict[str, Any] = {
            "kind": "scenario",
            "tenants": [t.to_dict() for t in self.tenants],
            "machine": self.machine,
            "fs": self.fs.to_dict(),
            "params": self.params.to_dict(),
            "seed": self.seed,
        }
        if self.metrics_interval is not None:
            d["metrics_interval"] = self.metrics_interval
        return d

    @staticmethod
    def from_dict(d: Dict[str, Any]) -> "ScenarioSpec":
        """Inverse of :meth:`to_dict` (the ``kind`` marker is ignored)."""
        return ScenarioSpec(
            tenants=tuple(TenantSpec.from_dict(t) for t in d["tenants"]),
            machine=d["machine"],
            fs=FSConfig.from_dict(d["fs"]),
            params=STAPParams.from_dict(d["params"]),
            seed=compat_get(d, "seed", 0),
            metrics_interval=compat_get(d, "metrics_interval", None),
        )

    def canonical_json(self) -> str:
        """Canonical serialized form the hash is computed over."""
        return json.dumps(
            {"schema": SCENARIO_SCHEMA, **self.to_dict()},
            sort_keys=True,
            separators=(",", ":"),
        )

    def spec_hash(self) -> str:
        """Content address: SHA-256 of the canonical JSON form.

        The ``kind`` marker inside :meth:`to_dict` keeps scenario hashes
        disjoint from experiment hashes by construction, so both share
        one :class:`~repro.bench.store.ResultStore` without collisions.
        """
        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()

    def short_hash(self) -> str:
        """First 12 hex digits of :meth:`spec_hash`, for display."""
        return self.spec_hash()[:12]

    # -- service-tier hooks ------------------------------------------------
    @staticmethod
    def result_from_dict(d: Dict[str, Any]) -> "ScenarioResult":
        """Rehydrate this spec kind's result payload (SweepRunner hook)."""
        return ScenarioResult.from_dict(d)


@dataclass
class ScenarioResult:
    """Everything a scenario run produced: one result per tenant plus
    the shared-substrate statistics no single tenant owns."""

    spec: ScenarioSpec
    #: Tenant name -> that pipeline's result (no per-tenant disk_stats
    #: or metrics — the substrate is shared; see below).
    tenants: Dict[str, PipelineResult]
    elapsed_sim_time: float
    #: Shared stripe-server statistics (same shape as a standalone
    #: result's ``disk_stats``): the whole machine's disk traffic.
    disk_stats: Optional[dict] = None
    #: Tenant name -> bytes that tenant requested against its own files
    #: — the per-tenant attribution of the shared disk traffic.
    tenant_bytes: Optional[Dict[str, int]] = None
    #: Scenario-level metrics artifact (tenant-labeled instruments in
    #: one registry); None unless ``spec.metrics_interval`` was set.
    metrics: Optional[dict] = None
    source: str = "simulated"

    # -- aggregate queries -------------------------------------------------
    def throughputs(self) -> Dict[str, float]:
        """Tenant name -> steady-state throughput (CPIs/s)."""
        return {name: r.throughput for name, r in self.tenants.items()}

    def latencies(self) -> Dict[str, float]:
        """Tenant name -> mean steady-state latency (s)."""
        return {name: r.latency for name, r in self.tenants.items()}

    def drops(self) -> Dict[str, int]:
        """Tenant name -> CPIs dropped at its read deadline (0 if none
        was configured)."""
        return {
            name: len(r.dropped_cpis or ())
            for name, r in self.tenants.items()
        }

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Lossless JSON-able form (tenant order preserved)."""
        d: Dict[str, Any] = {
            "kind": "scenario",
            "spec": self.spec.to_dict(),
            "tenants": {
                name: r.to_dict() for name, r in self.tenants.items()
            },
            "tenant_order": list(self.tenants),
            "elapsed_sim_time": self.elapsed_sim_time,
            "disk_stats": self.disk_stats,
        }
        if self.tenant_bytes is not None:
            d["tenant_bytes"] = dict(self.tenant_bytes)
        if self.metrics is not None:
            d["metrics"] = self.metrics
        if self.source != "simulated":
            d["source"] = self.source
        return d

    @staticmethod
    def from_dict(d: Dict[str, Any]) -> "ScenarioResult":
        """Inverse of :meth:`to_dict`."""
        order = compat_get(d, "tenant_order", None) or list(d["tenants"])
        result = ScenarioResult(
            spec=ScenarioSpec.from_dict(d["spec"]),
            tenants={
                name: PipelineResult.from_dict(d["tenants"][name])
                for name in order
            },
            elapsed_sim_time=compat_get(d, "elapsed_sim_time"),
            disk_stats=compat_get(d, "disk_stats", None),
        )
        result.tenant_bytes = compat_get(d, "tenant_bytes", None)
        result.metrics = d.get("metrics")
        result.source = d.get("source", "simulated")
        return result
