"""The scenario executor: N tenant pipelines on one shared substrate.

:class:`ScenarioExecutor` is the top tier of the two-tier execution
architecture: it builds ONE :class:`~repro.core.executor.Substrate`
(kernel, machine sized for the sum of the tenants' nodes, one parallel
file system) and hosts a slimmed-down
:class:`~repro.core.executor.PipelineExecutor` per tenant, each of which
*receives* the substrate instead of constructing its own.  Tenants
occupy contiguous compute-node blocks, namespace their cube files with
their tenant name, and contend for the same stripe-directory disks and
mesh links — the shared-PFS interference regime the paper's strategy
comparison sharpens into.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.executor import PipelineExecutor, Substrate
from repro.obs import MetricsRegistry, Sampler, instrument_substrate
from repro.scenario.spec import ScenarioResult, ScenarioSpec
from repro.trace.gantt import render_scenario_gantt

__all__ = ["ScenarioExecutor", "run_scenario"]

# The engine's machine registry (presets by name), imported lazily to
# keep module import order flexible.


def _preset_for(name: str):
    from repro.bench.engine import MACHINES

    return MACHINES[name]()


class ScenarioExecutor:
    """Build and run one multi-tenant scenario."""

    def __init__(self, spec: ScenarioSpec) -> None:
        self.spec = spec
        self.preset = _preset_for(spec.machine)
        names = spec.tenant_names()
        pipelines = [t.build_pipeline() for t in spec.tenants]

        # ONE substrate for everyone: the machine's compute section is
        # the concatenation of the tenants' node blocks; I/O nodes and
        # the FS come from the shared FSConfig exactly as standalone.
        base_substrate = Substrate.build(
            self.preset, spec.fs, n_compute=sum(p.total_nodes for p in pipelines)
        )
        self.kernel = base_substrate.kernel
        self.machine = base_substrate.machine
        self.fs = base_substrate.fs

        # Scenario-owned observability: one registry + one sampler; the
        # shared server/network gauges are registered exactly once, and
        # each tenant's pipeline instruments carry a ``tenant`` label.
        self.metrics: Optional[MetricsRegistry] = None
        self._sampler: Optional[Sampler] = None
        if spec.metrics_interval is not None:
            self.metrics = MetricsRegistry()
            self._sampler = Sampler(self.kernel, self.metrics, spec.metrics_interval)
            instrument_substrate(self.metrics, base_substrate)

        self.tenant_names: List[str] = list(names)
        self.executors: Dict[str, PipelineExecutor] = {}
        self._prefixes: Dict[str, str] = {}
        rank_base = 0
        for name, tenant, pipeline in zip(names, spec.tenants, pipelines):
            prefix = f"{name}.cpi"
            sub = Substrate(
                kernel=self.kernel,
                machine=self.machine,
                fs=self.fs,
                rank_base=rank_base,
                tenant=name,
                file_prefix=prefix,
                metrics=self.metrics,
            )
            self.executors[name] = PipelineExecutor(
                pipeline,
                spec.params,
                self.preset,
                spec.fs,
                tenant.cfg,
                seed=spec.seed,
                substrate=sub,
            )
            self._prefixes[name] = prefix
            rank_base += pipeline.total_nodes
            if self.metrics is not None:
                # Per-tenant share of the shared disks' request volume
                # (ViPIOS-style awareness of whose accesses are served).
                self.metrics.gauge(
                    "pfs_tenant_bytes_total",
                    help="bytes this tenant requested against its own files",
                    fn=lambda p=prefix: self.fs.bytes_for_prefix(p),
                    tenant=name,
                )

    def setup_processes(self) -> None:
        """Initialise every tenant's file set and spawn its processes."""
        for name, tenant in zip(self.tenant_names, self.spec.tenants):
            ex = self.executors[name]
            ex.setup_processes()
            if tenant.writer is not None:
                self._spawn_writer(name, ex, tenant.writer)
        if self._sampler is not None:
            self._sampler.attach()

    def _spawn_writer(self, name: str, ex: PipelineExecutor, w) -> None:
        from repro.io.writer import RadarWriter

        writer = RadarWriter(
            ex.fileset,
            node_id=self.machine.io_node_id(0),
            period=w.period,
            n_cpis=w.n_cpis,
            start_cpi=w.start_cpi,
            initial_delay=w.initial_delay,
        )
        self.kernel.process(writer.run(self.kernel), name=f"{name}.radar-writer")

    def run(self) -> ScenarioResult:
        """Drive the shared kernel to completion and collect per tenant."""
        self.setup_processes()
        self.kernel.run()
        if self._sampler is not None:
            self._sampler.finalize(self.kernel.now)
        tenants = {
            name: self.executors[name].collect() for name in self.tenant_names
        }
        result = ScenarioResult(
            spec=self.spec,
            tenants=tenants,
            elapsed_sim_time=self.kernel.now,
        )
        result.disk_stats = {
            "busy_time_per_server": [s.busy_time for s in self.fs.servers],
            "requests_per_server": [s.requests_served for s in self.fs.servers],
            "bytes_served": self.fs.total_bytes_served(),
        }
        if self.fs.fault_tolerant:
            result.disk_stats["requests_failed_per_server"] = [
                s.requests_failed for s in self.fs.servers
            ]
            result.disk_stats["outages_per_server"] = [
                s.outages for s in self.fs.servers
            ]
        result.tenant_bytes = {
            name: self.fs.bytes_for_prefix(f"{name}.")
            for name in self.tenant_names
        }
        if self.metrics is not None:
            # Per-tenant cpi_latency_seconds histograms were observed by
            # each tenant's collect(); emit the one combined artifact.
            result.metrics = self.metrics.to_dict(
                interval=self.spec.metrics_interval,
                t_end=self.kernel.now,
                samples=self._sampler.samples,
            )
        return result

    def gantt(self, width: int = 100) -> str:
        """Multi-pipeline Gantt: every tenant's lanes on one time axis."""
        return render_scenario_gantt(
            {name: self.executors[name].trace for name in self.tenant_names},
            width=width,
        )


def run_scenario(spec: ScenarioSpec) -> ScenarioResult:
    """Execute one scenario.  Pure function of the spec (the DES is
    deterministic), which is what makes result caching sound."""
    return ScenarioExecutor(spec).run()
