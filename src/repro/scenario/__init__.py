"""Multi-tenant scenarios: N pipelines sharing one machine and PFS.

The scenario layer turns the executor's two-tier architecture
(:class:`~repro.core.executor.Substrate` +
:class:`~repro.core.executor.PipelineExecutor`) into a declarative
experiment surface:

* :class:`~repro.scenario.spec.TenantSpec` — one tenant pipeline
  (assignment, pipeline/strategy, execution config with its CPI arrival
  process and read deadline, optional writer load);
* :class:`~repro.scenario.spec.ScenarioSpec` — the shared machine/FS
  plus the tenant list; hashable and serializable like
  :class:`~repro.bench.engine.ExperimentSpec`, and routed through the
  result store, sweep runner, service tier, and :func:`repro.run`;
* :class:`~repro.scenario.executor.ScenarioExecutor` /
  :func:`~repro.scenario.executor.run_scenario` — build one substrate,
  host every tenant on it, drive the shared kernel once, and collect a
  :class:`~repro.scenario.spec.ScenarioResult` (per-tenant pipeline
  results + shared disk statistics + per-tenant byte attribution).

See ``docs/scenarios.md``.
"""

from repro.core.arrivals import ArrivalSpec
from repro.scenario.executor import ScenarioExecutor, run_scenario
from repro.scenario.spec import (
    RUN_SCENARIO_RUNNER,
    SCENARIO_SCHEMA,
    ScenarioResult,
    ScenarioSpec,
    TenantSpec,
)

__all__ = [
    "ArrivalSpec",
    "ScenarioSpec",
    "TenantSpec",
    "ScenarioResult",
    "ScenarioExecutor",
    "run_scenario",
    "SCENARIO_SCHEMA",
    "RUN_SCENARIO_RUNNER",
]
