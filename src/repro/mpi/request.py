"""Non-blocking operation handles, mirroring MPI's ``Request``.

A :class:`Request` wraps the DES event that completes the operation.
Inside a process generator::

    req = rc.isend(data, dest=3, tag=7)
    ... overlap computation ...
    yield from req.wait()

    req = rc.irecv(source=0, tag=7)
    msg = yield from req.wait()

``test()`` gives the non-blocking completion check.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.errors import MPIError
from repro.sim.events import Event

__all__ = ["Request"]


class Request:
    """Handle for an in-flight isend/irecv (or async file read)."""

    __slots__ = ("_event", "kind")

    def __init__(self, event: Event, kind: str) -> None:
        self._event = event
        self.kind = kind

    @property
    def complete(self) -> bool:
        """True once the operation has finished."""
        return self._event.triggered

    def test(self) -> Optional[Any]:
        """Non-blocking check: the result if complete, else ``None``.

        Note: a completed operation whose value is ``None`` (e.g. a send)
        is indistinguishable from "not done" through ``test`` alone — use
        :attr:`complete` to disambiguate, exactly like MPI's flag output.
        """
        if self._event.triggered:
            return self._event.value
        return None

    def wait(self):
        """Process generator: suspend until the operation completes.

        Returns the operation's value (received payload for irecv,
        ``None`` for isend).
        """
        result = yield self._event
        return result

    @staticmethod
    def wait_all(kernel, requests: "list[Request]"):
        """Process generator: wait for every request; returns their values."""
        for req in requests:
            if not isinstance(req, Request):
                raise MPIError(f"wait_all got non-request {req!r}")
        values = yield kernel.all_of([r._event for r in requests])
        return values
