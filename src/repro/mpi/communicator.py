"""Communicators and per-rank communication handles.

A :class:`Communicator` maps ``size`` ranks onto machine node ids and
owns one mailbox (:class:`~repro.sim.resources.Store`) per rank.  Rank
code runs as DES processes and communicates through a
:class:`RankComm` view obtained from :meth:`Communicator.view`.

Semantics (matching the subset of NX/MPL/MPI the paper's code needed):

* point-to-point is ordered per (source, dest, tag) — FIFO mailbox with
  filtered matching guarantees non-overtaking;
* ``isend`` completes when the message has been delivered into the
  destination mailbox (buffered-send semantics);
* ``recv``/``irecv`` match on (source, tag) with :data:`ANY_SOURCE` /
  :data:`ANY_TAG` wildcards;
* collectives (barrier, bcast, gather, scatter, allreduce) are built from
  point-to-point using reserved negative tags and a per-rank collective
  sequence number, so user traffic can never be confused with collective
  traffic.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, MPIError, TruncationError
from repro.machine.machine import Machine
from repro.mpi.datatypes import nbytes_of
from repro.mpi.request import Request
from repro.sim.events import _SEALED, Event
from repro.sim.process import Process

__all__ = ["ANY_SOURCE", "ANY_TAG", "Message", "Communicator", "RankComm"]

ANY_SOURCE = -1
ANY_TAG = -1

#: Base for internal collective tags; user tags must be >= 0.
_COLLECTIVE_TAG_BASE = -1000


class Message:
    """An in-flight or delivered message.

    A hand-rolled value class rather than a frozen dataclass: one is
    constructed per send, and ``object.__setattr__`` (what frozen
    dataclass ``__init__`` must use) costs ~3x a plain slot store.
    Treat instances as immutable; equality and hashing are by value,
    matching the previous frozen-dataclass behaviour.
    """

    __slots__ = ("src", "dst", "tag", "payload", "nbytes")

    def __init__(self, src: int, dst: int, tag: int, payload: Any, nbytes: int) -> None:
        self.src = src
        self.dst = dst
        self.tag = tag
        self.payload = payload
        self.nbytes = nbytes

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Message):
            return NotImplemented
        return (
            self.src == other.src
            and self.dst == other.dst
            and self.tag == other.tag
            and self.payload == other.payload
            and self.nbytes == other.nbytes
        )

    def __hash__(self) -> int:
        return hash((self.src, self.dst, self.tag, self.payload, self.nbytes))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Message(src={self.src}, dst={self.dst}, tag={self.tag}, "
            f"payload={self.payload!r}, nbytes={self.nbytes})"
        )


class _Mailbox:
    """Per-rank message buffer with inline (source, tag) matching.

    Behaviourally a :class:`~repro.sim.resources.Store` whose get-filters
    are always "src matches ``source``, tag matches ``tag``" — so the
    predicate is evaluated inline (two int compares per candidate)
    instead of through a per-receive closure.  Event creation and
    born-fired grant semantics are identical to the Store fast path, so
    kernel event order is unchanged.
    """

    __slots__ = ("kernel", "_items", "_getters", "_get_name")

    def __init__(self, kernel, name: str) -> None:
        self.kernel = kernel
        self._items: "deque[Message]" = deque()
        # Pending receivers: (event, source, tag), FIFO among matches.
        self._getters: "deque[Tuple[Event, int, int]]" = deque()
        self._get_name = f"get({name})"

    def __len__(self) -> int:
        return len(self._items)

    def put_nowait(self, msg: "Message") -> None:
        """Deposit ``msg``, waking the first matching receiver if any."""
        getters = self._getters
        if getters:
            src = msg.src
            tag = msg.tag
            for idx, (ev, source, gtag) in enumerate(getters):
                if (source == ANY_SOURCE or src == source) and (
                    gtag == ANY_TAG or tag == gtag
                ):
                    del getters[idx]
                    ev.succeed(msg)
                    return
        self._items.append(msg)

    def get_match(self, source: int, tag: int) -> Event:
        """Event firing with the first buffered message matching
        (source, tag); born fired when one is already buffered."""
        ev = Event(self.kernel, name=self._get_name)
        items = self._items
        if items:
            if source == ANY_SOURCE and tag == ANY_TAG:
                ev._value = items.popleft()
                ev._ok = True
                ev.callbacks = _SEALED
                return ev
            for idx, msg in enumerate(items):
                if (source == ANY_SOURCE or msg.src == source) and (
                    tag == ANY_TAG or msg.tag == tag
                ):
                    del items[idx]
                    ev._value = msg
                    ev._ok = True
                    ev.callbacks = _SEALED
                    return ev
        self._getters.append((ev, source, tag))
        return ev


class Communicator:
    """A group of ranks on a machine, with one mailbox per rank."""

    def __init__(self, machine: Machine, rank_to_node: Sequence[int], name: str = "comm") -> None:
        if not rank_to_node:
            raise ConfigurationError("communicator needs at least one rank")
        for node in rank_to_node:
            if not (0 <= node < machine.n_total):
                raise ConfigurationError(
                    f"rank mapped to node {node}, outside machine of {machine.n_total}"
                )
        self.machine = machine
        self.kernel = machine.kernel
        self.name = name
        self.rank_to_node: List[int] = list(rank_to_node)
        self.size = len(self.rank_to_node)
        self._mailboxes: List[_Mailbox] = [
            _Mailbox(self.kernel, f"{name}.mbox[{r}]") for r in range(self.size)
        ]
        # Traffic accounting: (src_rank, dst_rank) -> [messages, bytes].
        self.traffic: Dict[Tuple[int, int], List[int]] = {}

    @classmethod
    def world(cls, machine: Machine) -> "Communicator":
        """Communicator over all compute nodes, rank i on node i."""
        return cls(machine, list(range(machine.n_compute)), name="world")

    def view(self, rank: int) -> "RankComm":
        """Per-rank handle used inside that rank's process generator."""
        if not (0 <= rank < self.size):
            raise MPIError(f"rank {rank} outside communicator of size {self.size}")
        return RankComm(self, rank)

    def node_of(self, rank: int) -> int:
        """Machine node id a rank runs on."""
        if not (0 <= rank < self.size):
            raise MPIError(f"rank {rank} outside communicator of size {self.size}")
        return self.rank_to_node[rank]

    # -- internals ---------------------------------------------------------
    def _deliver(self, msg: Message):
        """Build the delivery process generator for ``msg``: move it
        across the network, then deposit it into the destination mailbox.

        Delegates to :meth:`Network.deliver` so mesh networks can fuse
        the deposit into the transfer body (one generator frame per
        delivery instead of two).  Kept as the spawn point so the
        traffic accounting lives with the communicator.
        """
        # Ranks were validated at isend time; index the map directly.
        r2n = self.rank_to_node
        entry = self.traffic.setdefault((msg.src, msg.dst), [0, 0])
        entry[0] += 1
        entry[1] += msg.nbytes
        # put_nowait at arrival: nobody consumes the put-completion
        # event, so the mailbox deposit materialises no event.
        return self.machine.network.deliver(
            r2n[msg.src], r2n[msg.dst], msg.nbytes, self._mailboxes[msg.dst], msg
        )

    def _match(self, rank: int, source: int, tag: int):
        """Mailbox get-event for the first message matching (source, tag)."""
        return self._mailboxes[rank].get_match(source, tag)


class RankComm:
    """Communication operations bound to one rank.

    All multi-step operations are process generators: invoke them with
    ``yield from`` inside rank code.  ``isend``/``irecv`` return
    :class:`~repro.mpi.request.Request` immediately.
    """

    def __init__(self, comm: Communicator, rank: int) -> None:
        self.comm = comm
        self.rank = rank
        self.kernel = comm.kernel
        self._coll_seq = 0  # per-rank collective sequence number
        # Labels shared by every send/recv from this rank: formatting an
        # f-string per message is measurable at hot-path message rates.
        self._isend_name = f"isend r{rank}"
        self._irecv_name = f"irecv r{rank}"

    @property
    def size(self) -> int:
        """Number of ranks in the communicator."""
        return self.comm.size

    # -- point-to-point -----------------------------------------------------
    def isend(self, payload: Any, dest: int, tag: int = 0) -> Request:
        """Non-blocking send; the request completes on delivery."""
        if tag < 0:  # inline of _check_tag (hot path)
            raise MPIError(f"user tags must be >= 0, got {tag}")
        return self._isend(payload, dest, tag)

    def _isend(self, payload: Any, dest: int, tag: int) -> Request:
        """Send without user-tag validation (collectives use negative tags)."""
        comm = self.comm
        if not (0 <= dest < comm.size):  # inline of _check_peer (hot path)
            raise MPIError(f"peer rank {dest} outside communicator of size {comm.size}")
        msg = Message(self.rank, dest, tag, payload, nbytes_of(payload))
        proc = Process(self.kernel, comm._deliver(msg), name=self._isend_name)
        return Request(proc, kind="isend")

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Non-blocking receive; the request's value is the payload."""
        if source != ANY_SOURCE:
            self._check_peer(source)
        ev = self.comm._match(self.rank, source, tag)
        # Unwrap Message -> payload through a chained event.
        out = Event(self.kernel, name=self._irecv_name)

        def _unwrap(event):
            msg = event.value
            out.succeed(msg.payload)

        if ev.triggered:
            self.kernel._call_soon(_unwrap, ev)
        else:
            ev.callbacks.append(_unwrap)
        return Request(out, kind="irecv")

    def send(self, payload: Any, dest: int, tag: int = 0):
        """Blocking send (process generator)."""
        req = self.isend(payload, dest, tag)
        yield from req.wait()

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        max_bytes: Optional[int] = None,
    ):
        """Blocking receive (process generator); returns the payload.

        ``max_bytes`` models a fixed receive buffer: a matched message
        larger than it raises :class:`~repro.errors.TruncationError`
        (MPI's ERR_TRUNCATE), surfacing under-provisioned buffers that a
        real port would hit.
        """
        if source != ANY_SOURCE:
            self._check_peer(source)
        ev = self.comm._match(self.rank, source, tag)
        kernel = self.kernel
        if ev._ok and not kernel._lane and not kernel._due:
            # Message already buffered and kernel quiescent: a yield on
            # the born-fired get event would chain straight back with
            # nothing able to interleave, so reading synchronously is
            # order-identical (see MeshNetwork.transfer).
            msg = ev._value
        else:
            msg = yield ev
        if max_bytes is not None and msg.nbytes > max_bytes:
            raise TruncationError(
                f"rank {self.rank}: message of {msg.nbytes} bytes from rank "
                f"{msg.src} (tag {msg.tag}) exceeds the {max_bytes}-byte buffer"
            )
        return msg.payload

    def recv_msg(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Blocking receive returning the full :class:`Message` envelope."""
        if source != ANY_SOURCE:
            self._check_peer(source)
        ev = self.comm._match(self.rank, source, tag)
        kernel = self.kernel
        if ev._ok and not kernel._lane and not kernel._due:
            msg = ev._value  # quiescent fast path, same argument as recv()
        else:
            msg = yield ev
        return msg

    # -- collectives ----------------------------------------------------------
    def _next_coll_tag(self) -> int:
        """Reserved tag for the next collective this rank participates in.

        Ranks call collectives in program order, so equal sequence numbers
        across ranks always refer to the same logical collective.
        """
        tag = _COLLECTIVE_TAG_BASE - self._coll_seq
        self._coll_seq += 1
        return tag

    def barrier(self):
        """Dissemination barrier: log2(P) rounds of pairwise messages."""
        tag = self._next_coll_tag()
        size, rank = self.size, self.rank
        if size == 1:
            return
        round_no = 0
        dist = 1
        while dist < size:
            dest = (rank + dist) % size
            src = (rank - dist) % size
            self._isend(("bar", round_no), dest, tag)
            yield from self._recv_internal(src, tag)
            dist <<= 1
            round_no += 1

    def bcast(self, payload: Any, root: int = 0):
        """Binomial-tree broadcast; returns the payload on every rank."""
        self._check_peer(root)
        tag = self._next_coll_tag()
        size = self.size
        if size == 1:
            return payload
        vrank = (self.rank - root) % size  # virtual rank with root at 0
        # Receive from parent (unless root).
        if vrank != 0:
            parent = (self._binomial_parent(vrank) + root) % size
            payload = yield from self._recv_internal(parent, tag)
        # Forward to children.
        for vchild in self._binomial_children(vrank, size):
            child = (vchild + root) % size
            self._isend(payload, child, tag)
        return payload

    def gather(self, payload: Any, root: int = 0):
        """Linear gather; root returns the list indexed by rank, others None."""
        self._check_peer(root)
        tag = self._next_coll_tag()
        if self.rank == root:
            out: List[Any] = [None] * self.size
            out[root] = payload
            for _ in range(self.size - 1):
                msg = yield self.comm._match(self.rank, ANY_SOURCE, tag)
                out[msg.src] = msg.payload
            return out
        req = self._isend(payload, root, tag)
        yield from req.wait()
        return None

    def scatter(self, payloads: Optional[Sequence[Any]], root: int = 0):
        """Linear scatter; every rank returns its element of ``payloads``."""
        self._check_peer(root)
        tag = self._next_coll_tag()
        if self.rank == root:
            if payloads is None or len(payloads) != self.size:
                raise MPIError(
                    f"scatter root needs exactly {self.size} payloads"
                )
            for dest in range(self.size):
                if dest != root:
                    self._isend(payloads[dest], dest, tag)
            return payloads[root]
        item = yield from self._recv_internal(root, tag)
        return item

    def allreduce(self, value: Any, op: Callable[[Any, Any], Any]):
        """Reduce-to-root then broadcast; returns the reduction everywhere."""
        gathered = yield from self.gather(value, root=0)
        if self.rank == 0:
            acc = gathered[0]
            for item in gathered[1:]:
                acc = op(acc, item)
        else:
            acc = None
        result = yield from self.bcast(acc, root=0)
        return result

    # -- helpers ---------------------------------------------------------------
    def _recv_internal(self, source: int, tag: int):
        msg = yield self.comm._match(self.rank, source, tag)
        return msg.payload

    @staticmethod
    def _binomial_parent(vrank: int) -> int:
        """Parent of ``vrank`` in a binomial broadcast tree rooted at 0."""
        # Clear the lowest set bit.
        return vrank & (vrank - 1)

    @staticmethod
    def _binomial_children(vrank: int, size: int) -> List[int]:
        """Children of ``vrank`` in a binomial tree over ``size`` ranks."""
        # Child = vrank | 2^k for every 2^k below vrank's lowest set bit
        # (all powers of two for the root), so that clearing the child's
        # lowest set bit recovers vrank — the inverse of _binomial_parent.
        lowbit = vrank & -vrank if vrank else size
        children = []
        bit = 1
        while bit < lowbit and bit < size:
            child = vrank | bit
            if child < size:
                children.append(child)
            bit <<= 1
        return children

    def _check_peer(self, rank: int) -> None:
        if not (0 <= rank < self.comm.size):
            raise MPIError(
                f"peer rank {rank} outside communicator of size {self.comm.size}"
            )

    @staticmethod
    def _check_tag(tag: int) -> None:
        if tag < 0:
            raise MPIError(f"user tags must be >= 0, got {tag}")
