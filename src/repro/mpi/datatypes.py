"""Payload size accounting and phantom (timing-only) payloads.

The simulated network charges for bytes, so every payload must expose a
byte count.  :func:`nbytes_of` handles numpy arrays, raw byte strings,
:class:`Phantom` placeholders, containers of those, and falls back to a
conservative pickle-free estimate for small control objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping, Sequence

import numpy as np

__all__ = ["Phantom", "nbytes_of"]

#: Charged for payloads whose size we cannot see (tiny control messages).
_DEFAULT_CONTROL_BYTES = 64


@dataclass(frozen=True)
class Phantom:
    """A size-only stand-in for data, used in timing mode.

    Attributes
    ----------
    nbytes:
        Number of bytes the placeholder represents on the wire/disk.
    meta:
        Free-form description (e.g. the array shape it stands for);
        carried along so downstream cost models can derive work sizes.
    """

    nbytes: int
    meta: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ValueError(f"Phantom nbytes must be >= 0, got {self.nbytes}")

    def split(self, parts: int) -> "list[Phantom]":
        """Split into ``parts`` phantoms whose sizes sum to ``nbytes``.

        The first ``nbytes % parts`` pieces get one extra byte, mirroring
        how block partitioning distributes a remainder.
        """
        if parts < 1:
            raise ValueError(f"parts must be >= 1, got {parts}")
        base, rem = divmod(self.nbytes, parts)
        return [
            Phantom(base + (1 if i < rem else 0), dict(self.meta)) for i in range(parts)
        ]


def nbytes_of(payload: Any) -> int:
    """Bytes a payload occupies for transfer/storage accounting.

    Supports numpy arrays (``.nbytes``), :class:`Phantom`, ``bytes``-like,
    ``None`` (zero), numbers (8), and (possibly nested) sequences/dicts of
    the above.  Anything else is charged a small flat control-message
    size rather than raising, because tiny coordination objects (tuples of
    ints, detection reports) flow through the same channels as bulk data.
    """
    if payload is None:
        return 0
    if isinstance(payload, Phantom):
        return payload.nbytes
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if isinstance(payload, (bool, int, float, complex, np.generic)):
        return 8
    if isinstance(payload, str):
        return len(payload.encode("utf-8"))
    if isinstance(payload, Mapping):
        return sum(nbytes_of(k) + nbytes_of(v) for k, v in payload.items())
    if isinstance(payload, Sequence):
        return sum(nbytes_of(item) for item in payload)
    inner = getattr(payload, "nbytes", None)
    if isinstance(inner, (int, np.integer)):
        return int(inner)
    return _DEFAULT_CONTROL_BYTES
