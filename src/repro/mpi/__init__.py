"""MPI-like message passing over the simulated machine.

The pipeline code in :mod:`repro.core` is written against this layer the
same way the paper's code was written against Intel NX / IBM MPL: ranks,
tags, blocking and non-blocking point-to-point, and a few collectives.

Key objects:

* :class:`~repro.mpi.communicator.Communicator` — a set of ranks mapped
  onto machine node ids, with per-rank mailboxes.
* :class:`~repro.mpi.communicator.RankComm` — the per-rank handle used
  inside process generators (``yield from rc.send(...)``, ``req =
  rc.isend(...)``, ``data = yield from rc.recv(...)``).
* :class:`~repro.mpi.request.Request` — non-blocking operation handle
  with ``wait()``/``test()`` semantics.
* :data:`~repro.mpi.communicator.ANY_SOURCE`, :data:`ANY_TAG` wildcards.

Payloads are real numpy arrays in compute mode, or
:class:`~repro.mpi.datatypes.Phantom` size-only placeholders in timing
mode; the simulated transfer time depends only on the byte count, so both
modes time identically.
"""

from repro.mpi.datatypes import Phantom, nbytes_of
from repro.mpi.request import Request
from repro.mpi.communicator import ANY_SOURCE, ANY_TAG, Communicator, RankComm

__all__ = [
    "Phantom",
    "nbytes_of",
    "Request",
    "Communicator",
    "RankComm",
    "ANY_SOURCE",
    "ANY_TAG",
]
