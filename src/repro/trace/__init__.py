"""Execution tracing and paper-style reporting.

The executor records one :class:`~repro.trace.record.PhaseRecord` per
(task, node, CPI, phase); :class:`~repro.trace.collector.TraceCollector`
stores and indexes them; :mod:`~repro.trace.gantt` renders ASCII
timelines for debugging; :mod:`~repro.trace.report` renders the paper's
table and bar-chart formats.
"""

from repro.trace.record import PhaseRecord, Phase
from repro.trace.collector import TraceCollector
from repro.trace.export import (
    to_chrome_trace,
    to_metrics_json,
    to_prometheus,
    to_result_json,
    write_chrome_trace,
    write_metrics_json,
    write_prometheus,
    write_result_json,
)
from repro.trace.gantt import render_gantt, render_scenario_gantt
from repro.trace.report import bar_chart, format_table, grouped_bar_chart, heatmap

__all__ = [
    "PhaseRecord",
    "Phase",
    "TraceCollector",
    "render_gantt",
    "render_scenario_gantt",
    "to_chrome_trace",
    "write_chrome_trace",
    "to_result_json",
    "write_result_json",
    "to_metrics_json",
    "write_metrics_json",
    "to_prometheus",
    "write_prometheus",
    "bar_chart",
    "format_table",
    "grouped_bar_chart",
    "heatmap",
]
