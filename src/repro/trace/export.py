"""Trace, result, and metrics export with a symmetric API surface.

Every exporter comes as a pair with one signature shape:

* ``to_X(obj) -> data`` — pure conversion to a JSON-able value;
* ``write_X(obj, path, *, pretty=False, **opts) -> path`` — the same
  conversion serialized to disk **atomically** (written to a temp file
  in the destination directory, then ``os.replace``'d into place, so a
  crash mid-write never leaves a truncated artifact) and returning the
  path written.

The four pairs:

* **Chrome tracing** — ``chrome://tracing`` / https://ui.perfetto.dev
  consume a JSON array of "complete" events (``ph: "X"``) with
  microsecond timestamps.  Mapping: each pipeline task becomes a
  *process* (``pid``); each task-local node becomes a *thread* (``tid``)
  within it; each phase record becomes a complete event named
  ``"<phase> cpi=<k>"``, categorised by phase so the UI can filter.
  Accepts either a bare :class:`~repro.trace.collector.TraceCollector`
  or a :class:`~repro.core.executor.PipelineResult`; given a result
  that carries a metrics artifact, each sampled gauge series is merged
  in as a counter track (``ph: "C"``) under a dedicated ``metrics``
  process, so queue depths and utilization plot directly under the
  phase timeline.
* **Structured results** — :func:`to_result_json` wraps any object
  exposing a lossless ``to_dict()`` (``PipelineResult``,
  ``ExperimentResult``, ``ExperimentSpec``, ...) in a typed envelope —
  the recomputable experiment record the text tables are rendered from.
* **Metrics JSON** — the time-series artifact from
  ``PipelineResult.metrics`` (see :mod:`repro.obs`), standalone.
* **Prometheus text** — the same artifact in the text exposition
  format (``# HELP`` / ``# TYPE`` + samples), for anyone pointing
  standard dashboards at simulation output.
"""

from __future__ import annotations

import json
import os
import tempfile
import warnings
from typing import Any, Dict, List, Optional

from repro.errors import ReproError
from repro.trace.collector import TraceCollector

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "to_result_json",
    "write_result_json",
    "to_metrics_json",
    "write_metrics_json",
    "to_prometheus",
    "write_prometheus",
]

#: Structured-result envelope schema; bump on incompatible changes.
RESULT_SCHEMA = 1


# -- the one write path ------------------------------------------------------
def _atomic_write_text(path: str, text: str) -> str:
    """Write ``text`` to ``path`` atomically; returns ``path``."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp = tempfile.mkstemp(dir=directory, prefix=".tmp-export-")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
        os.replace(tmp, path)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise
    return path


def _write_json(data: Any, path: str, pretty: bool) -> str:
    text = json.dumps(data, indent=2 if pretty else None, sort_keys=False)
    return _atomic_write_text(path, text)


def _metrics_of(obj: Any) -> Optional[dict]:
    """The metrics artifact dict carried by ``obj``, if any."""
    m = getattr(obj, "metrics", None)
    return m if isinstance(m, dict) else None


# -- chrome tracing ----------------------------------------------------------
def to_chrome_trace(obj) -> List[dict]:
    """Convert a trace — or a whole result — to Chrome tracing events.

    ``obj`` is a :class:`TraceCollector` or anything exposing a
    ``.trace`` attribute (a ``PipelineResult``).  When the object also
    carries a metrics artifact, sampled gauge series become counter
    tracks (``ph: "C"``) in a ``metrics`` process appended after the
    phase events.
    """
    trace = obj if isinstance(obj, TraceCollector) else getattr(obj, "trace", None)
    if not isinstance(trace, TraceCollector):
        raise TypeError(
            f"to_chrome_trace needs a TraceCollector or an object with a "
            f".trace, got {type(obj).__name__}"
        )
    pids: Dict[str, int] = {}
    events: List[dict] = []
    for task in trace.tasks():
        pids[task] = len(pids) + 1
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pids[task],
                "args": {"name": task},
            }
        )
    for rec in trace.records:
        events.append(
            {
                "name": f"{rec.phase.value} cpi={rec.cpi}",
                "cat": rec.phase.value,
                "ph": "X",
                "pid": pids[rec.task],
                "tid": rec.node,
                "ts": rec.t_start * 1e6,          # microseconds
                "dur": max(rec.duration, 0.0) * 1e6,
                "args": {"cpi": rec.cpi},
            }
        )
    metrics = _metrics_of(obj)
    if metrics is not None:
        events.extend(_counter_tracks(metrics, pid=len(pids) + 1))
    return events


def _counter_tracks(metrics: dict, pid: int) -> List[dict]:
    """Counter-track (``ph: "C"``) events for every sampled series."""
    events: List[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "args": {"name": "metrics"},
        }
    ]
    for qname, s in sorted((metrics.get("series") or {}).items()):
        for t, v in zip(s["t"], s["v"]):
            events.append(
                {
                    "name": qname,
                    "ph": "C",
                    "pid": pid,
                    "ts": t * 1e6,
                    "args": {"value": v},
                }
            )
    return events


def write_chrome_trace(obj, path: str, *, pretty: bool = False) -> str:
    """Write Chrome tracing JSON to ``path`` atomically; returns the path.

    (Older revisions returned the event count; every ``write_X`` now
    returns the path written.)
    """
    return _write_json(to_chrome_trace(obj), path, pretty)


# -- structured results ------------------------------------------------------
def to_result_json(result, kind: str = "") -> Dict[str, object]:
    """Wrap a result object's lossless dict form in a typed envelope.

    ``result`` is anything with a lossless ``to_dict()`` —
    ``PipelineResult``, ``ExperimentResult``, ``ExperimentSpec``, ...
    ``kind`` defaults to the object's class name.
    """
    to_dict = getattr(result, "to_dict", None)
    if to_dict is None:
        raise TypeError(
            f"{type(result).__name__} has no to_dict(); structured export "
            "needs a losslessly serializable result object"
        )
    return {
        "schema": RESULT_SCHEMA,
        "kind": kind or type(result).__name__,
        "data": to_dict(),
    }


def write_result_json(
    result,
    path: str,
    kind: str = "",
    *,
    pretty: bool = False,
    indent: Optional[int] = None,
) -> str:
    """Write a structured result JSON artifact to ``path``; returns it.

    ``pretty=True`` pretty-prints (diffable); the default compact form
    is what the result store uses.  The legacy ``indent=`` kwarg still
    works but is deprecated — it maps onto ``pretty``.
    """
    if indent is not None:
        warnings.warn(
            "write_result_json(indent=...) is deprecated; use "
            "pretty=True/False instead",
            DeprecationWarning,
            stacklevel=2,
        )
        pretty = indent > 0
    return _write_json(to_result_json(result, kind=kind), path, pretty)


# -- metrics artifact --------------------------------------------------------
def to_metrics_json(obj) -> dict:
    """The JSON metrics artifact of ``obj``.

    ``obj`` is a ``PipelineResult`` from a run with
    ``cfg.metrics_interval`` set, or the artifact dict itself (passed
    through).  Raises :class:`ReproError` when the result carries no
    metrics — re-run with ``--metrics`` / ``metrics_interval=``.
    """
    if isinstance(obj, dict) and "counters" in obj:
        return obj
    metrics = _metrics_of(obj)
    if metrics is None:
        raise ReproError(
            "result has no metrics artifact; run with metrics enabled "
            "(repro run --metrics, or ExecutionConfig(metrics_interval=...))"
        )
    return metrics


def write_metrics_json(obj, path: str, *, pretty: bool = False) -> str:
    """Write the metrics artifact to ``path`` atomically; returns it."""
    return _write_json(to_metrics_json(obj), path, pretty)


# -- Prometheus text exposition ----------------------------------------------
def to_prometheus(obj) -> str:
    """Render a metrics artifact in the Prometheus text format.

    Counters export with a ``# TYPE ... counter`` header, gauges as
    gauges (their last sampled value), histograms in the standard
    ``_bucket``/``_sum``/``_count`` shape.  Series are a simulated-time
    concept with no exposition-format equivalent and are omitted.
    """
    metrics = to_metrics_json(obj)
    help_text: Dict[str, str] = metrics.get("help") or {}
    lines: List[str] = []
    emitted_headers: set = set()

    def headers(base: str, kind: str) -> None:
        if base in emitted_headers:
            return
        emitted_headers.add(base)
        if base in help_text:
            lines.append(f"# HELP {base} {help_text[base]}")
        lines.append(f"# TYPE {base} {kind}")

    def fmt(value: float) -> str:
        if value == float("inf"):
            return "+Inf"
        return repr(float(value))

    for qname, value in sorted((metrics.get("counters") or {}).items()):
        headers(_base_name(qname), "counter")
        lines.append(f"{qname} {fmt(value)}")
    for qname, value in sorted((metrics.get("gauges") or {}).items()):
        headers(_base_name(qname), "gauge")
        lines.append(f"{qname} {fmt(value)}")
    for qname, h in sorted((metrics.get("histograms") or {}).items()):
        base, label_body = _split_qualified(qname)
        headers(base, "histogram")
        cumulative = 0
        for bound, count in zip(
            list(h["buckets"]) + [float("inf")], h["counts"]
        ):
            cumulative += count
            le = "+Inf" if bound == float("inf") else repr(float(bound))
            labels = _merge_labels(label_body, f'le="{le}"')
            lines.append(f"{base}_bucket{{{labels}}} {cumulative}")
        suffix = f"{{{label_body}}}" if label_body else ""
        lines.append(f"{base}_sum{suffix} {fmt(h['sum'])}")
        lines.append(f"{base}_count{suffix} {h['count']}")
    return "\n".join(lines) + "\n"


def _base_name(qname: str) -> str:
    return qname.split("{", 1)[0]


def _split_qualified(qname: str) -> "tuple[str, str]":
    """``name{a="b"}`` -> ``("name", 'a="b"')``; no labels -> ``("name", "")``."""
    if "{" not in qname:
        return qname, ""
    base, rest = qname.split("{", 1)
    return base, rest.rstrip("}")


def _merge_labels(existing: str, extra: str) -> str:
    return f"{existing},{extra}" if existing else extra


def write_prometheus(obj, path: str, *, pretty: bool = False) -> str:
    """Write the Prometheus text exposition to ``path``; returns it.

    ``pretty`` is accepted for signature symmetry; the text format has
    a single canonical rendering, so it is a no-op.
    """
    return _atomic_write_text(path, to_prometheus(obj))
