"""Trace export to the Chrome tracing (Perfetto) JSON format.

``chrome://tracing`` / https://ui.perfetto.dev consume a JSON array of
"complete" events (``ph: "X"``) with microsecond timestamps.  Mapping:

* each pipeline task becomes a *process* (``pid``);
* each task-local node becomes a *thread* (``tid``) within it;
* each phase record becomes a complete event named
  ``"<phase> cpi=<k>"``, categorised by phase so the UI can filter.

This turns any :class:`~repro.trace.collector.TraceCollector` into an
interactively zoomable timeline of the whole simulated machine.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.trace.collector import TraceCollector

__all__ = ["to_chrome_trace", "write_chrome_trace"]


def to_chrome_trace(trace: TraceCollector) -> List[dict]:
    """Convert a trace to a list of Chrome tracing event dicts."""
    pids: Dict[str, int] = {}
    events: List[dict] = []
    for task in trace.tasks():
        pids[task] = len(pids) + 1
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pids[task],
                "args": {"name": task},
            }
        )
    for rec in trace.records:
        events.append(
            {
                "name": f"{rec.phase.value} cpi={rec.cpi}",
                "cat": rec.phase.value,
                "ph": "X",
                "pid": pids[rec.task],
                "tid": rec.node,
                "ts": rec.t_start * 1e6,          # microseconds
                "dur": max(rec.duration, 0.0) * 1e6,
                "args": {"cpi": rec.cpi},
            }
        )
    return events


def write_chrome_trace(trace: TraceCollector, path: str) -> int:
    """Write the Chrome tracing JSON to ``path``; returns event count."""
    events = to_chrome_trace(trace)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(events, fh)
    return len(events)
