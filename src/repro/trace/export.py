"""Trace and result export: Chrome tracing JSON + structured results.

Two export paths:

* **Chrome tracing** — ``chrome://tracing`` / https://ui.perfetto.dev
  consume a JSON array of "complete" events (``ph: "X"``) with
  microsecond timestamps.  Mapping: each pipeline task becomes a
  *process* (``pid``); each task-local node becomes a *thread* (``tid``)
  within it; each phase record becomes a complete event named
  ``"<phase> cpi=<k>"``, categorised by phase so the UI can filter.
  This turns any :class:`~repro.trace.collector.TraceCollector` into an
  interactively zoomable timeline of the whole simulated machine.
* **Structured results** — :func:`write_result_json` serializes any
  result object exposing lossless ``to_dict()`` (a
  :class:`~repro.core.executor.PipelineResult`, a
  :class:`~repro.bench.experiments.ExperimentResult`, an
  :class:`~repro.bench.engine.ExperimentSpec`, ...) into a
  machine-readable, diffable JSON artifact — the recomputable experiment
  record the text tables are rendered from.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.trace.collector import TraceCollector

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "to_result_json",
    "write_result_json",
]

#: Structured-result envelope schema; bump on incompatible changes.
RESULT_SCHEMA = 1


def to_chrome_trace(trace: TraceCollector) -> List[dict]:
    """Convert a trace to a list of Chrome tracing event dicts."""
    pids: Dict[str, int] = {}
    events: List[dict] = []
    for task in trace.tasks():
        pids[task] = len(pids) + 1
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pids[task],
                "args": {"name": task},
            }
        )
    for rec in trace.records:
        events.append(
            {
                "name": f"{rec.phase.value} cpi={rec.cpi}",
                "cat": rec.phase.value,
                "ph": "X",
                "pid": pids[rec.task],
                "tid": rec.node,
                "ts": rec.t_start * 1e6,          # microseconds
                "dur": max(rec.duration, 0.0) * 1e6,
                "args": {"cpi": rec.cpi},
            }
        )
    return events


def write_chrome_trace(trace: TraceCollector, path: str) -> int:
    """Write the Chrome tracing JSON to ``path``; returns event count."""
    events = to_chrome_trace(trace)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(events, fh)
    return len(events)


def to_result_json(result, kind: str = "") -> Dict[str, object]:
    """Wrap a result object's lossless dict form in a typed envelope.

    ``result`` is anything with a lossless ``to_dict()`` —
    ``PipelineResult``, ``ExperimentResult``, ``ExperimentSpec``, ...
    ``kind`` defaults to the object's class name.
    """
    to_dict = getattr(result, "to_dict", None)
    if to_dict is None:
        raise TypeError(
            f"{type(result).__name__} has no to_dict(); structured export "
            "needs a losslessly serializable result object"
        )
    return {
        "schema": RESULT_SCHEMA,
        "kind": kind or type(result).__name__,
        "data": to_dict(),
    }


def write_result_json(result, path: str, kind: str = "", indent: int = 0) -> str:
    """Write a structured result JSON artifact to ``path``.

    Returns the path written.  ``indent > 0`` pretty-prints (diffable);
    the default compact form is what the result store uses.
    """
    payload = to_result_json(result, kind=kind)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=indent or None, sort_keys=False)
    return path
