"""ASCII Gantt timeline rendering for pipeline debugging."""

from __future__ import annotations

from typing import List, Optional

from repro.trace.collector import TraceCollector
from repro.trace.record import Phase

__all__ = ["render_gantt", "render_scenario_gantt"]

_PHASE_CHARS = {
    Phase.CREDIT: ".",
    Phase.ARRIVAL: "a",
    Phase.RECV: "r",
    Phase.COMPUTE: "C",
    Phase.SEND: "s",
    Phase.DONE: "|",
    Phase.DROPPED: "x",
}


def render_gantt(
    trace: TraceCollector,
    width: int = 100,
    tasks: Optional[List[str]] = None,
    t_max: Optional[float] = None,
) -> str:
    """Render one line per (task, node): time flows left to right.

    Characters: ``.`` credit stall, ``r`` receive/read, ``C`` compute,
    ``s`` send.  Later phases overwrite earlier ones in a cell when
    multiple fall into the same column.
    """
    if not trace.records:
        return "(empty trace)"
    names = tasks if tasks is not None else trace.tasks()
    end = t_max if t_max is not None else max(r.t_end for r in trace.records)
    if end <= 0:
        return "(zero-length trace)"
    scale = width / end
    lines = [f"time: 0 .. {end:.6f} s  ({width} cols)"]
    for name in names:
        nodes = sorted({r.node for r in trace.records if r.task == name})
        for node in nodes:
            row = [" "] * width
            for r in trace.records:
                if r.task != name or r.node != node:
                    continue
                lo = min(width - 1, int(r.t_start * scale))
                hi = min(width, max(lo + 1, int(r.t_end * scale)))
                ch = _PHASE_CHARS.get(r.phase, "?")
                for c in range(lo, hi):
                    row[c] = ch
            lines.append(f"{name[:14]:>14}[{node:>2}] {''.join(row)}")
    return "\n".join(lines)


def render_scenario_gantt(
    traces,
    width: int = 100,
    t_max: Optional[float] = None,
) -> str:
    """Render several tenants' traces as one timeline.

    ``traces`` maps tenant name -> :class:`TraceCollector`.  All lanes
    share one time axis (the max end time across tenants, unless
    ``t_max`` overrides it) so cross-tenant interference lines up
    visually; task rows are prefixed with the tenant name.
    """
    traces = dict(traces)
    ends = [
        max(r.t_end for r in t.records) for t in traces.values() if t.records
    ]
    if not ends:
        return "(empty trace)"
    end = t_max if t_max is not None else max(ends)
    lines = []
    for tenant, trace in traces.items():
        if not trace.records:
            continue
        block = render_gantt(trace, width=width, t_max=end)
        body = block.splitlines()
        if not lines:
            lines.append(body[0])  # shared time axis header
        lines.append(f"--- {tenant} ---")
        lines.extend(body[1:])
    return "\n".join(lines)
