"""Paper-style table and bar-chart rendering (plain text).

The benchmark harness prints its results through these helpers so every
table/figure of the paper has a directly comparable artifact: the tables
mirror Tables 1–4's per-task rows, and :func:`bar_chart` /
:func:`grouped_bar_chart` stand in for Figures 5–8.
"""

from __future__ import annotations

from typing import List, Mapping, Sequence

__all__ = ["format_table", "bar_chart", "grouped_bar_chart", "heatmap"]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
    float_fmt: str = "{:.4f}",
) -> str:
    """Monospace table with right-aligned numeric columns."""

    def fmt(cell: object) -> str:
        if isinstance(cell, float):
            return float_fmt.format(cell)
        return str(cell)

    cells = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    sep = "-+-".join("-" * w for w in widths)
    out: List[str] = []
    if title:
        out.append(title)
    out.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    out.append(sep)
    for row in cells:
        out.append(
            " | ".join(
                c.rjust(w) if _numericish(c) else c.ljust(w)
                for c, w in zip(row, widths)
            )
        )
    return "\n".join(out)


def _numericish(s: str) -> bool:
    try:
        float(s)
        return True
    except ValueError:
        return False


def bar_chart(
    values: Mapping[str, float],
    title: str = "",
    width: int = 50,
    unit: str = "",
) -> str:
    """Horizontal ASCII bar chart, one bar per labelled value."""
    if not values:
        return f"{title}\n(no data)"
    vmax = max(values.values())
    scale = (width / vmax) if vmax > 0 else 0.0
    label_w = max(len(k) for k in values)
    lines = [title] if title else []
    for k, v in values.items():
        bar = "#" * max(1 if v > 0 else 0, int(round(v * scale)))
        lines.append(f"{k.rjust(label_w)} | {bar} {v:.4g}{unit}")
    return "\n".join(lines)


#: Intensity ramp for :func:`heatmap`, dim to bright.
_HEAT_CHARS = " .:-=+*#%@"


def heatmap(
    values,
    title: str = "",
    row_labels=None,
    col_label: str = "",
    db_floor: float = -40.0,
) -> str:
    """ASCII intensity map of a 2-D array (rows x cols), log-scaled.

    Values are converted to dB relative to the maximum and quantised
    onto a 10-step character ramp over ``[db_floor, 0]`` — enough to see
    a clutter ridge or a jammer line in a terminal.
    """
    import numpy as _np

    arr = _np.asarray(values, dtype=float)
    if arr.ndim != 2 or arr.size == 0:
        return f"{title}\n(no data)"
    peak = arr.max()
    if peak <= 0:
        return f"{title}\n(all-zero data)"
    db = 10.0 * _np.log10(_np.maximum(arr, 1e-300) / peak)
    levels = _np.clip((db - db_floor) / -db_floor, 0.0, 1.0)
    idx = _np.minimum((levels * (len(_HEAT_CHARS) - 1)).astype(int), len(_HEAT_CHARS) - 1)
    lines = [title] if title else []
    label_w = max((len(str(l)) for l in (row_labels or [""])), default=0)
    for i, row in enumerate(idx):
        label = str(row_labels[i]).rjust(label_w) if row_labels is not None else ""
        lines.append(f"{label} |" + "".join(_HEAT_CHARS[v] for v in row) + "|")
    if col_label:
        lines.append(" " * (label_w + 2) + col_label)
    return "\n".join(lines)


def grouped_bar_chart(
    groups: Mapping[str, Mapping[str, float]],
    title: str = "",
    width: int = 40,
    unit: str = "",
) -> str:
    """Bar chart with series grouped under headings (paper Fig. 5–8 style).

    ``groups`` maps a group label (e.g. a file system) to a mapping of
    series label (e.g. node count) to value.  One global scale is used
    so bars are comparable across groups.
    """
    all_vals = [v for g in groups.values() for v in g.values()]
    if not all_vals:
        return f"{title}\n(no data)"
    vmax = max(all_vals)
    scale = (width / vmax) if vmax > 0 else 0.0
    label_w = max((len(k) for g in groups.values() for k in g), default=1)
    lines = [title] if title else []
    for gname, series in groups.items():
        lines.append(f"-- {gname}")
        for k, v in series.items():
            bar = "#" * max(1 if v > 0 else 0, int(round(v * scale)))
            lines.append(f"  {str(k).rjust(label_w)} | {bar} {v:.4g}{unit}")
    return "\n".join(lines)
