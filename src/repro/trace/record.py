"""Trace record types."""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["Phase", "PhaseRecord"]


class Phase(enum.Enum):
    """The phases a task node cycles through per CPI.

    ``RECV`` covers waiting for and transferring inputs (for I/O-bearing
    tasks this is the read phase the paper discusses); ``CREDIT`` is
    flow-control stall waiting for downstream acknowledgements — it is
    idle time, excluded from service-time metrics.
    """

    CREDIT = "credit"
    #: Waiting for a CPI's data to *arrive* (bursty/jittered arrival
    #: processes); like CREDIT it is idle time outside service metrics.
    ARRIVAL = "arrival"
    RECV = "recv"
    COMPUTE = "compute"
    SEND = "send"
    DONE = "done"
    #: A CPI abandoned at the graceful-degradation read deadline; like
    #: CREDIT it is excluded from service-time metrics.
    DROPPED = "dropped"


@dataclass(frozen=True)
class PhaseRecord:
    """One timed phase of one task node for one CPI."""

    task: str
    node: int       # task-local node index
    cpi: int
    phase: Phase
    t_start: float
    t_end: float

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    def __post_init__(self) -> None:
        if self.t_end < self.t_start:
            raise ValueError(
                f"phase record ends before it starts: {self.t_start} > {self.t_end}"
            )
