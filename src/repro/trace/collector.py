"""Trace storage and aggregation queries."""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from repro.trace.record import Phase, PhaseRecord

__all__ = ["TraceCollector"]


class TraceCollector:
    """Accumulates phase records and answers aggregate queries."""

    def __init__(self) -> None:
        self.records: List[PhaseRecord] = []
        # (task, cpi) -> list of records, for fast per-CPI queries.
        self._by_task_cpi: Dict[Tuple[str, int], List[PhaseRecord]] = defaultdict(list)

    def add(
        self,
        task: str,
        node: int,
        cpi: int,
        phase: Phase,
        t_start: float,
        t_end: float,
    ) -> None:
        """Record one phase interval."""
        rec = PhaseRecord(task, node, cpi, phase, t_start, t_end)
        self.records.append(rec)
        self._by_task_cpi[(task, cpi)].append(rec)

    def __len__(self) -> int:
        return len(self.records)

    # -- serialization -----------------------------------------------------
    def to_dict(self) -> Dict[str, list]:
        """Lossless JSON-able form: one row per phase record."""
        return {
            "records": [
                [r.task, r.node, r.cpi, r.phase.value, r.t_start, r.t_end]
                for r in self.records
            ]
        }

    @staticmethod
    def from_dict(d: Dict[str, list]) -> "TraceCollector":
        """Inverse of :meth:`to_dict`."""
        out = TraceCollector()
        for task, node, cpi, phase, t_start, t_end in d["records"]:
            out.add(task, node, cpi, Phase(phase), t_start, t_end)
        return out

    # -- queries ---------------------------------------------------------
    def tasks(self) -> List[str]:
        """Task names seen, in first-seen order."""
        seen: List[str] = []
        for r in self.records:
            if r.task not in seen:
                seen.append(r.task)
        return seen

    def cpis(self, task: Optional[str] = None) -> List[int]:
        """Sorted CPI indices seen (optionally for one task)."""
        vals = {
            r.cpi
            for r in self.records
            if (task is None or r.task == task) and r.cpi >= 0
        }
        return sorted(vals)

    def for_task_cpi(self, task: str, cpi: int) -> List[PhaseRecord]:
        """All records of a task for one CPI."""
        return list(self._by_task_cpi.get((task, cpi), []))

    def phase_time(
        self, task: str, cpi: int, phase: Phase, agg: str = "max"
    ) -> float:
        """Aggregate a phase's duration over the task's nodes for a CPI.

        ``agg``: ``"max"`` (slowest node — determines the pipeline beat)
        or ``"mean"``.
        """
        per_node: Dict[int, float] = defaultdict(float)
        for r in self._by_task_cpi.get((task, cpi), []):
            if r.phase == phase:
                per_node[r.node] += r.duration
        if not per_node:
            return 0.0
        vals = list(per_node.values())
        return max(vals) if agg == "max" else sum(vals) / len(vals)

    def service_time(self, task: str, cpi: int, agg: str = "max") -> float:
        """Per-CPI task service time: recv + compute + send (no CREDIT).

        This is the paper's :math:`T_i` — the work a CPI occupies the
        task for, excluding flow-control idle.
        """
        per_node: Dict[int, float] = defaultdict(float)
        for r in self._by_task_cpi.get((task, cpi), []):
            if r.phase in (Phase.RECV, Phase.COMPUTE, Phase.SEND):
                per_node[r.node] += r.duration
        if not per_node:
            return 0.0
        vals = list(per_node.values())
        return max(vals) if agg == "max" else sum(vals) / len(vals)

    def completion_time(self, task: str, cpi: int) -> float:
        """Time the last node of ``task`` finished CPI ``cpi``."""
        recs = self._by_task_cpi.get((task, cpi), [])
        if not recs:
            raise KeyError(f"no records for ({task}, {cpi})")
        return max(r.t_end for r in recs)

    def start_time(self, task: str, cpi: int) -> float:
        """Time the first node of ``task`` started CPI ``cpi``
        (excluding flow-control stall)."""
        recs = [
            r
            for r in self._by_task_cpi.get((task, cpi), [])
            if r.phase not in (Phase.CREDIT, Phase.ARRIVAL)
        ]
        if not recs:
            raise KeyError(f"no records for ({task}, {cpi})")
        return min(r.t_start for r in recs)
