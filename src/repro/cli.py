"""Command-line interface: run pipelines and experiments from a shell.

Examples::

    python -m repro info
    python -m repro run --case 3 --fs pfs --stripe-factor 16
    python -m repro run --pipeline separate --machine sp --fs piofs
    python -m repro run --strategy collective-two-phase --fs pfs
    python -m repro run --case 3 --metrics --metrics-interval 0.25
    python -m repro metrics show <hash-prefix>
    python -m repro strategies list
    python -m repro strategies smoke
    python -m repro table 1
    python -m repro table 4 --jobs 4
    python -m repro profile --case 3 --cpis 4 --output cell.pstats
    python -m repro detect --cpis 4
    python -m repro sweep-stripe --factors 4,8,16,32,64
    python -m repro reproduce --jobs 4
    python -m repro results list --sort size
    python -m repro results show <hash-prefix>
    python -m repro results clear
    python -m repro serve --workers 4
    python -m repro submit --case 1,2,3 --stripe-factor 16,64 --follow
    python -m repro jobs list
    python -m repro analyze results/ --format text
    python -m repro analyze results/ .cache/experiments --format html --out report.html
    python -m repro dash --service-port 7077 --results results/

Sweep commands run their cells through the declarative experiment
engine: ``--jobs N`` simulates cells in N worker processes, and results
are cached content-addressed under ``--cache-dir`` (default
``.cache/experiments``) so re-runs and derived tables reuse identical
cells; ``--no-cache`` opts out.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Dict, List, Optional

from repro.bench.engine import ExperimentSpec, FlakyDisk, ServerCrash, SweepRunner
from repro.strategies import get_strategy, strategy_names
from repro.bench.experiments import (
    run_ablation_stripe_sweep,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
)
from repro.bench.store import DEFAULT_CACHE_DIR, ResultStore
from repro.core.context import ExecutionConfig
from repro.errors import ReproError
from repro.core.executor import FSConfig, PipelineExecutor
from repro.core.pipeline import NodeAssignment, build_embedded_pipeline
from repro.machine.presets import paragon
from repro.stap.costs import STAPCosts
from repro.stap.params import STAPParams
from repro.stap.scenario import Scenario
from repro.trace.report import bar_chart, format_table

__all__ = ["main", "build_parser"]

_PIPELINE_CHOICES = ("combined", "embedded", "separate")
_MACHINE_CHOICES = ("paragon", "sp")


def _add_engine_opts(p: argparse.ArgumentParser) -> None:
    """Experiment-engine knobs shared by run/table/reproduce/sweep-stripe."""
    p.add_argument("--jobs", type=int, default=1,
                   help="worker processes for simulation cells (default 1)")
    p.add_argument("--cache-dir", default=str(DEFAULT_CACHE_DIR),
                   help="content-addressed result cache directory")
    p.add_argument("--no-cache", action="store_true",
                   help="neither read nor write the result cache")


def _make_runner(args) -> SweepRunner:
    """A SweepRunner configured from the engine CLI options."""
    store = None if args.no_cache else ResultStore(args.cache_dir)
    return SweepRunner(jobs=args.jobs, store=store)


def build_parser() -> argparse.ArgumentParser:
    """The repro command-line argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel pipelined STAP with simulated parallel I/O "
        "(reproduction of Liao et al., IPPS 2000).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one pipeline configuration")
    p_run.add_argument("--pipeline", choices=_PIPELINE_CHOICES, default="embedded")
    p_run.add_argument("--strategy", choices=strategy_names(), default=None,
                       help="registered I/O strategy; overrides --pipeline "
                       "(see 'repro strategies list')")
    p_run.add_argument("--case", type=int, choices=(1, 2, 3), default=1,
                       help="paper node-assignment case (25/50/100 nodes)")
    p_run.add_argument("--machine", choices=_MACHINE_CHOICES, default="paragon")
    p_run.add_argument("--fs", choices=("pfs", "piofs"), default="pfs")
    p_run.add_argument("--stripe-factor", type=int, default=64)
    p_run.add_argument("--cpis", type=int, default=8)
    p_run.add_argument("--warmup", type=int, default=2)
    p_run.add_argument("--replication", type=int, default=1,
                       help="stripe-unit mirror copies (chained declustering); "
                       ">1 enables fault-tolerant reads/writes")
    p_run.add_argument("--hint", action="append", default=[], metavar="K=V",
                       help="ROMIO-style file-system hint (repeatable): "
                       "sieve_buffer_size, cb_nodes, or list_io_max_runs")
    p_run.add_argument("--read-deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="per-CPI read deadline; late CPIs are dropped "
                       "instead of stalling the pipeline")
    p_run.add_argument("--crash-server", type=int, default=None, metavar="N",
                       help="inject an outage on stripe server N")
    p_run.add_argument("--crash-at", type=float, default=0.0, metavar="T",
                       help="simulated time of the outage (default 0)")
    p_run.add_argument("--crash-down", type=float, default=None, metavar="D",
                       help="outage duration; omit for a permanent crash")
    p_run.add_argument("--flaky-server", type=int, default=None, metavar="N",
                       help="stripe server N fails a fraction of requests")
    p_run.add_argument("--flaky-rate", type=float, default=0.1, metavar="P",
                       help="per-request error probability (default 0.1)")
    p_run.add_argument("--flaky-seed", type=int, default=0,
                       help="seed of the flaky-disk error stream")
    p_run.add_argument("--screening", choices=("off", "screen", "predict-all"),
                       default="off",
                       help="surrogate screening: 'screen' answers cells the "
                            "calibrated analytic model can decide without "
                            "simulating (see repro.bench.surrogate); "
                            "'predict-all' never simulates")
    p_run.add_argument("--seed", type=int, default=0,
                       help="experiment seed (part of the cache key)")
    p_run.add_argument("--threaded", action="store_true",
                       help="SMP phase-threaded nodes (IPPS'99 design)")
    p_run.add_argument("--metrics", action="store_true",
                       help="sample live metrics during the run and write "
                       "the time-series artifacts (see docs/observability.md)")
    p_run.add_argument("--metrics-interval", type=float, default=None,
                       metavar="SECONDS",
                       help="simulated-time sampling interval "
                       "(implies --metrics; default 0.1)")
    p_run.add_argument("--metrics-dir", default="results/metrics",
                       help="directory for the metrics artifacts "
                       "(default results/metrics)")
    _add_engine_opts(p_run)

    p_table = sub.add_parser("table", help="regenerate a paper table (1-4)")
    p_table.add_argument("number", type=int, choices=(1, 2, 3, 4))
    p_table.add_argument("--cpis", type=int, default=8)
    p_table.add_argument("--warmup", type=int, default=2)
    _add_engine_opts(p_table)

    p_prof = sub.add_parser(
        "profile",
        help="profile one pipeline configuration under cProfile",
    )
    p_prof.add_argument("--pipeline", choices=_PIPELINE_CHOICES, default="embedded")
    p_prof.add_argument("--case", type=int, choices=(1, 2, 3), default=1,
                        help="paper node-assignment case (25/50/100 nodes)")
    p_prof.add_argument("--machine", choices=_MACHINE_CHOICES, default="paragon")
    p_prof.add_argument("--fs", choices=("pfs", "piofs"), default="pfs")
    p_prof.add_argument("--stripe-factor", type=int, default=64)
    p_prof.add_argument("--cpis", type=int, default=8)
    p_prof.add_argument("--warmup", type=int, default=2)
    p_prof.add_argument("--seed", type=int, default=0)
    p_prof.add_argument("--lines", type=int, default=25,
                        help="rows of the profile to print (default 25)")
    p_prof.add_argument("--sort", choices=("tottime", "cumtime", "ncalls"),
                        default="tottime", help="profile sort key")
    p_prof.add_argument("--queue-stats", action="store_true",
                        help="after the profile table, print the kernel's "
                             "calendar-queue statistics (bucket occupancy, "
                             "lane/calendar split, resizes)")
    p_prof.add_argument("--output", default=None, metavar="FILE",
                        help="also dump raw pstats data to FILE "
                        "(inspect with python -m pstats)")

    p_det = sub.add_parser("detect", help="compute-mode detection demo")
    p_det.add_argument("--cpis", type=int, default=3)
    p_det.add_argument("--seed", type=int, default=7)
    p_det.add_argument("--nodes", type=int, default=20)

    p_sw = sub.add_parser("sweep-stripe", help="stripe-factor throughput sweep")
    p_sw.add_argument("--factors", default="4,8,16,32,64,128",
                      help="comma-separated stripe factors")
    p_sw.add_argument("--case", type=int, choices=(1, 2, 3), default=3)
    p_sw.add_argument("--cpis", type=int, default=8)
    p_sw.add_argument("--screening", choices=("off", "screen", "predict-all"),
                      default="off",
                      help="let the calibrated surrogate answer cells the "
                           "analytic model can decide (repro.bench.surrogate)")
    _add_engine_opts(p_sw)

    p_rep = sub.add_parser(
        "reproduce",
        help="regenerate every paper table/figure artifact into a directory",
    )
    p_rep.add_argument("--out", default="results", help="output directory")
    p_rep.add_argument("--cpis", type=int, default=8)
    p_rep.add_argument("--warmup", type=int, default=2)
    _add_engine_opts(p_rep)

    p_res = sub.add_parser(
        "results", help="list/inspect/clear the cached experiment results"
    )
    p_res.add_argument("action", choices=("list", "show", "clear"))
    p_res.add_argument("hash", nargs="?", default=None,
                       help="spec hash (any unique prefix) for 'show'")
    p_res.add_argument("--cache-dir", default=str(DEFAULT_CACHE_DIR),
                       help="content-addressed result cache directory")
    p_res.add_argument("--sort", choices=("size", "age"), default=None,
                       help="order 'list' by entry size or by recency "
                       "(default: spec hash)")

    p_met = sub.add_parser(
        "metrics", help="inspect the metrics artifact of a cached or saved run"
    )
    p_met.add_argument("action", choices=("show",))
    p_met.add_argument("target",
                       help="spec hash (any unique prefix) from the result "
                       "cache, or a path to a metrics/result JSON file")
    p_met.add_argument("--cache-dir", default=str(DEFAULT_CACHE_DIR),
                       help="content-addressed result cache directory")
    p_met.add_argument("--top", type=int, default=8,
                       help="series rows in the summary (default 8)")

    p_sp = sub.add_parser(
        "spectrum", help="render the angle-Doppler spectrum of a synthetic scene"
    )
    p_sp.add_argument("--seed", type=int, default=3)
    p_sp.add_argument("--estimator", choices=("mvdr", "fourier"), default="mvdr")
    p_sp.add_argument("--cnr-db", type=float, default=30.0)
    p_sp.add_argument("--jnr-db", type=float, default=30.0)

    p_strat = sub.add_parser(
        "strategies", help="list registered I/O strategies or smoke-test them"
    )
    p_strat.add_argument("action", choices=("list", "smoke"))
    p_strat.add_argument("--fs", choices=("pfs", "piofs"), default="pfs",
                         help="file system for 'smoke' (default pfs)")
    p_strat.add_argument("--stripe-factor", type=int, default=8)

    p_srv = sub.add_parser(
        "serve", help="run the experiment service (scheduler behind TCP)"
    )
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument("--port", type=int, default=7077,
                       help="TCP port (0 picks a free one; default 7077)")
    p_srv.add_argument("--workers", type=int, default=0,
                       help="persistent worker processes (0 = in-process)")
    p_srv.add_argument("--backpressure", type=int, default=64,
                       help="max undelivered cells per job before its "
                       "dispatch pauses (default 64)")
    p_srv.add_argument("--job-retention", type=int, default=256,
                       help="finished jobs kept fully resident before the "
                       "oldest are evicted to summaries (default 256)")
    p_srv.add_argument("--cache-dir", default=str(DEFAULT_CACHE_DIR),
                       help="shared content-addressed result cache")
    p_srv.add_argument("--no-cache", action="store_true",
                       help="run the service without the shared cache")

    p_sub = sub.add_parser(
        "submit", help="submit an experiment batch to a running service"
    )
    p_sub.add_argument("--host", default="127.0.0.1")
    p_sub.add_argument("--port", type=int, default=7077)
    p_sub.add_argument("--client", default=None,
                       help="client name for fair queueing "
                       "(default: the OS user name)")
    p_sub.add_argument("--label", default="",
                       help="free-form job label shown in 'repro jobs list'")
    p_sub.add_argument("--follow", action="store_true",
                       help="stream results back as cells complete")
    p_sub.add_argument("--pipeline", choices=_PIPELINE_CHOICES,
                       default="embedded")
    p_sub.add_argument("--case", default="1",
                       help="comma-separated paper cases, e.g. 1,2,3")
    p_sub.add_argument("--machine", choices=_MACHINE_CHOICES, default="paragon")
    p_sub.add_argument("--fs", choices=("pfs", "piofs"), default="pfs")
    p_sub.add_argument("--stripe-factor", default="64",
                       help="comma-separated stripe factors, e.g. 16,32,64")
    p_sub.add_argument("--cpis", type=int, default=8)
    p_sub.add_argument("--warmup", type=int, default=2)
    p_sub.add_argument("--seed", type=int, default=0)

    p_jobs = sub.add_parser(
        "jobs", help="list/inspect/cancel jobs on a running service"
    )
    p_jobs.add_argument("action", choices=("list", "show", "cancel"))
    p_jobs.add_argument("id", nargs="?", default=None,
                        help="job id for 'show'/'cancel'")
    p_jobs.add_argument("--host", default="127.0.0.1")
    p_jobs.add_argument("--port", type=int, default=7077)

    p_scn = sub.add_parser(
        "scenario",
        help="run a multi-tenant scenario (N pipelines on one shared PFS)",
    )
    p_scn.add_argument("action", choices=("run",))
    p_scn.add_argument("--spec", default=None, metavar="FILE",
                       help="JSON ScenarioSpec file ('-' for stdin); "
                       "overrides the tenant/arrival flags below")
    p_scn.add_argument("--tenant", action="append", default=[],
                       metavar="PIPELINE[:CASE]", dest="tenants",
                       help="add one tenant (repeatable): a PIPELINES "
                       "registry name, optionally with a paper case, e.g. "
                       "embedded-io or separate-io:2 "
                       "(default: two embedded-io case-1 tenants)")
    p_scn.add_argument("--machine", choices=_MACHINE_CHOICES, default="paragon")
    p_scn.add_argument("--fs", choices=("pfs", "piofs"), default="pfs")
    p_scn.add_argument("--stripe-factor", type=int, default=8)
    p_scn.add_argument("--cpis", type=int, default=8)
    p_scn.add_argument("--warmup", type=int, default=2)
    p_scn.add_argument("--seed", type=int, default=0)
    p_scn.add_argument("--arrival", choices=("fixed", "poisson", "jittered",
                                             "burst"), default="fixed",
                       help="CPI arrival process for every tenant "
                       "(default fixed: back-to-back, as standalone runs)")
    p_scn.add_argument("--period", type=float, default=0.0,
                       help="mean inter-arrival period in simulated seconds "
                       "(0 with --arrival fixed means no gating)")
    p_scn.add_argument("--offset", type=float, default=0.0,
                       help="arrival time of CPI 0 (fixed/burst trains)")
    p_scn.add_argument("--jitter", type=float, default=0.0,
                       help="uniform +/- jitter for --arrival jittered")
    p_scn.add_argument("--burst-size", type=int, default=1,
                       help="CPIs per burst for --arrival burst")
    p_scn.add_argument("--burst-gap", type=float, default=0.0,
                       help="intra-burst spacing for --arrival burst")
    p_scn.add_argument("--arrival-seed", type=int, default=0,
                       help="seed of the stochastic arrival stream")
    p_scn.add_argument("--read-deadline", type=float, default=None,
                       metavar="SECONDS",
                       help="per-CPI read deadline for every tenant; late "
                       "CPIs are dropped instead of stalling the pipeline")
    p_scn.add_argument("--metrics-interval", type=float, default=None,
                       metavar="SECONDS",
                       help="sample tenant-labelled metrics at this "
                       "simulated-time interval")
    p_scn.add_argument("--gantt", action="store_true",
                       help="render the multi-pipeline Gantt chart")
    p_scn.add_argument("--json", default=None, metavar="FILE",
                       help="also write the full ScenarioResult JSON")

    p_an = sub.add_parser(
        "analyze",
        help="offline sweep analysis over result artifacts and caches",
    )
    p_an.add_argument("sources", nargs="+", metavar="SOURCE",
                      help="artifact directory, result/metrics JSON file, or "
                      "cached-result hash prefix (repeatable; directories "
                      "pick up *.json artifacts and ablation *.txt tables)")
    p_an.add_argument("--format", choices=("text", "json", "html"),
                      default="text", dest="fmt",
                      help="output rendering (default text)")
    p_an.add_argument("--out", default=None, metavar="FILE",
                      help="write the rendering to FILE instead of stdout")
    p_an.add_argument("--cache-dir", default=str(DEFAULT_CACHE_DIR),
                      help="result cache used to resolve hash sources")
    p_an.add_argument("--store", action="store_true",
                      help="also join every entry of --cache-dir into the "
                      "analysis (zero new simulations)")

    p_dash = sub.add_parser(
        "dash", help="serve the live dashboard for a running service"
    )
    p_dash.add_argument("--host", default="127.0.0.1",
                        help="dashboard bind address (default 127.0.0.1)")
    p_dash.add_argument("--port", type=int, default=7078,
                        help="dashboard HTTP port (0 picks a free one; "
                        "default 7078)")
    p_dash.add_argument("--service-host", default="127.0.0.1",
                        help="host of the repro service to watch")
    p_dash.add_argument("--service-port", type=int, default=7077,
                        help="TCP port of 'repro serve' (default 7077)")
    p_dash.add_argument("--cache-dir", default=str(DEFAULT_CACHE_DIR),
                        help="result cache backing the run browser")
    p_dash.add_argument("--no-cache", action="store_true",
                        help="serve without the stored-run browser")
    p_dash.add_argument("--results", default=None, metavar="DIR",
                        help="artifact directory joined into /report "
                        "(e.g. results/)")

    sub.add_parser("info", help="show dimensions, costs, and node assignments")
    return parser


def _parse_hints(pairs: List[str]) -> Dict[str, int]:
    """Parse repeated ``--hint k=v`` options into FSConfig hint kwargs."""
    hints: Dict[str, int] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        key = key.strip()
        if not sep or key not in FSConfig.HINT_FIELDS:
            raise ReproError(
                f"unknown hint {pair!r}; use k=v with k in "
                f"{', '.join(FSConfig.HINT_FIELDS)}"
            )
        try:
            hints[key] = int(value)
        except ValueError:
            raise ReproError(
                f"hint {key} needs an integer value, got {value!r}"
            ) from None
    return hints


def _cmd_run(args) -> int:
    params = STAPParams()
    if args.read_deadline is not None and args.read_deadline <= 0:
        raise ReproError(
            f"--read-deadline must be > 0 seconds, got {args.read_deadline}"
        )
    metrics_on = args.metrics or args.metrics_interval is not None
    if metrics_on and args.jobs > 1:
        raise ReproError(
            "--metrics runs in-process (the sampler hooks the live kernel); "
            "drop --jobs or run without metrics"
        )
    metrics_interval = None
    if metrics_on:
        metrics_interval = (
            args.metrics_interval if args.metrics_interval is not None else 0.1
        )
    cfg = ExecutionConfig(
        n_cpis=args.cpis, warmup=args.warmup, threaded=args.threaded,
        read_deadline=args.read_deadline, metrics_interval=metrics_interval,
    )
    server_crash = None
    if args.crash_server is not None:
        server_crash = ServerCrash(
            server=args.crash_server, at_time=args.crash_at,
            down_for=args.crash_down,
        )
    flaky_disk = None
    if args.flaky_server is not None:
        flaky_disk = FlakyDisk(
            server=args.flaky_server, error_rate=args.flaky_rate,
            seed=args.flaky_seed,
        )
    exp = ExperimentSpec(
        assignment=NodeAssignment.case(args.case, params),
        pipeline=args.strategy if args.strategy else args.pipeline,
        machine=args.machine,
        fs=FSConfig(
            kind=args.fs, stripe_factor=args.stripe_factor,
            replication=args.replication,
            **_parse_hints(args.hint),
        ),
        params=params,
        cfg=cfg,
        seed=args.seed,
        server_crash=server_crash,
        flaky_disk=flaky_disk,
        screening=args.screening,
    )
    runner = _make_runner(args)
    result = runner.run_one(exp)
    spec = result.spec
    m = result.measurement
    rows = [
        (name, s.recv, s.compute, s.send, s.total)
        for name, s in m.task_stats.items()
    ]
    print(
        format_table(
            ["task", "recv (s)", "compute (s)", "send (s)", "T_i (s)"],
            rows,
            title=(
                f"{result.machine_name}, {result.fs_label}, {spec.name}, "
                f"case {args.case} ({spec.total_nodes} nodes)"
                + (", SMP-threaded" if args.threaded else "")
            ),
        )
    )
    print(f"\nthroughput : {result.throughput:.4f} CPIs/s")
    print(f"latency    : {result.latency:.4f} s")
    print(f"bottleneck : {m.bottleneck_task}")
    if result.source == "predicted":
        bound = result.prediction_bound
        print(
            "surrogate  : predicted by the analytic model, not simulated"
            + (f" (error bound ±{bound:.0%})" if bound is not None else "")
        )
    if result.dropped_cpis is not None:
        print(f"dropped    : {len(result.dropped_cpis)} CPI reads past deadline")
    if result.disk_stats and "requests_failed_per_server" in result.disk_stats:
        failed = result.disk_stats["requests_failed_per_server"]
        outages = result.disk_stats["outages_per_server"]
        print(
            f"faults     : {sum(failed)} failed requests, "
            f"{sum(outages)} server outage(s)"
        )
    if metrics_on:
        _emit_metrics_artifacts(result, exp, args.metrics_dir)
    if runner.cache_hits:
        print(f"(cell {exp.short_hash()} served from cache)")
    return 0


def _emit_metrics_artifacts(result, exp, metrics_dir: str) -> None:
    """Write the run's metrics artifacts and print the live summary."""
    import pathlib

    from repro.obs import render_metrics_summary
    from repro.trace.export import (
        write_chrome_trace,
        write_metrics_json,
        write_prometheus,
    )

    out = pathlib.Path(metrics_dir)
    out.mkdir(parents=True, exist_ok=True)
    stem = exp.short_hash()
    paths = [
        write_metrics_json(result, str(out / f"{stem}.metrics.json"), pretty=True),
        write_prometheus(result, str(out / f"{stem}.prom")),
        write_chrome_trace(result, str(out / f"{stem}.trace.json")),
    ]
    print()
    print(render_metrics_summary(result.metrics))
    for p in paths:
        print(f"wrote {p}")


def _cmd_metrics(args) -> int:
    """Render the metrics artifact of a cached result or a JSON file."""
    from repro.analysis import load
    from repro.obs import render_metrics_summary, validate_metrics_dict

    # One resolver for every artifact shape: a file path (bare metrics,
    # structured-result envelope, raw result dict) or a cache hash prefix.
    loaded = load(args.target, cache_dir=args.cache_dir)
    metrics = loaded.metrics
    if metrics is None:
        print(
            "error: this result carries no metrics artifact; re-run the "
            "cell with 'repro run --metrics' (or metrics_interval= in "
            "ExecutionConfig)",
            file=sys.stderr,
        )
        return 2
    problems = validate_metrics_dict(metrics)
    if problems:
        print("error: malformed metrics artifact:", file=sys.stderr)
        for p in problems:
            print(f"  - {p}", file=sys.stderr)
        return 2
    print(render_metrics_summary(metrics, top=args.top))
    return 0


def _cmd_table(args) -> int:
    cfg = ExecutionConfig(n_cpis=args.cpis, warmup=args.warmup)
    runner = _make_runner(args)
    if args.number == 1:
        print(run_table1(cfg=cfg, runner=runner).render())
    elif args.number == 2:
        print(run_table2(cfg=cfg, runner=runner).render())
    elif args.number == 3:
        print(run_table3(cfg=cfg, runner=runner).render())
    else:
        print(run_table4(cfg=cfg, runner=runner).render())
    return 0


def _cmd_profile(args) -> int:
    """Simulate one cell under cProfile and print the hottest functions.

    The cell always executes (no result cache involved), so the profile
    reflects the simulation itself rather than cache I/O.
    """
    import cProfile
    import pstats

    from repro.bench.engine import build_executor

    params = STAPParams()
    spec = ExperimentSpec(
        assignment=NodeAssignment.case(args.case, params),
        pipeline=args.pipeline,
        machine=args.machine,
        fs=FSConfig(kind=args.fs, stripe_factor=args.stripe_factor),
        params=params,
        cfg=ExecutionConfig(n_cpis=args.cpis, warmup=args.warmup),
        seed=args.seed,
    )
    # Build outside the profile so only the simulation itself is timed;
    # keeping the executor also keeps its kernel for --queue-stats.
    ex = build_executor(spec)
    profiler = cProfile.Profile()
    profiler.enable()
    result = ex.run()
    profiler.disable()

    stats = pstats.Stats(profiler, stream=sys.stdout)
    print(
        f"profiled {args.pipeline}, case {args.case} on {args.machine}/{args.fs} "
        f"sf={args.stripe_factor}: {stats.total_calls} function calls, "
        f"throughput {result.throughput:.4f} CPIs/s"
    )
    stats.sort_stats(args.sort).print_stats(args.lines)
    if args.queue_stats:
        from repro.analysis import render_queue_stats as _render_qs

        print(_render_qs(ex.kernel.queue_stats()))
    if args.output:
        stats.dump_stats(args.output)
        print(f"raw pstats data written to {args.output}")
    return 0


def render_queue_stats(qs: dict) -> str:
    """Deprecated alias; use :func:`repro.analysis.render_queue_stats`."""
    import warnings

    from repro.analysis import render_queue_stats as _render_qs

    warnings.warn(
        "repro.cli.render_queue_stats moved to "
        "repro.analysis.render_queue_stats",
        DeprecationWarning, stacklevel=2,
    )
    return _render_qs(qs)


def _cmd_detect(args) -> int:
    import numpy as np

    params = STAPParams(
        n_channels=8, n_pulses=32, n_ranges=256, n_beams=6, n_hard_bins=8,
        n_training=64, pulse_len=16, cfar_window=12, cfar_guard=3, pfa=1e-6,
    )
    scenario = Scenario.standard(params, seed=args.seed)
    print("ground truth:")
    for t in scenario.targets:
        b = round(t.doppler * params.n_pulses) % params.n_pulses
        beam = int(np.argmin(np.abs(params.beam_angles - t.angle)))
        print(f"  gate {t.range_gate}, bin {b}, beam {beam}, {t.snr_db:+.0f} dB element SNR")
    result = PipelineExecutor(
        build_embedded_pipeline(NodeAssignment.balanced(params, args.nodes)),
        params,
        paragon(),
        FSConfig("pfs", stripe_factor=8),
        ExecutionConfig(n_cpis=args.cpis, warmup=min(1, args.cpis - 1), compute=True),
        scenario=scenario,
    ).run()
    print(f"\ndetections ({len(result.detections)}):")
    for d in result.detections:
        print(
            f"  CPI {d.cpi_index}  bin {d.doppler_bin:3d}  beam {d.beam}  "
            f"gate {d.range_gate:4d}  {d.snr_db:5.1f} dB"
        )
    return 0


def _cmd_sweep_stripe(args) -> int:
    try:
        factors = tuple(int(x) for x in args.factors.split(",") if x.strip())
    except ValueError:
        print(f"error: bad --factors value {args.factors!r}", file=sys.stderr)
        return 2
    if not factors or any(f < 1 for f in factors):
        print("error: factors must be positive integers", file=sys.stderr)
        return 2
    runner = _make_runner(args)
    out = run_ablation_stripe_sweep(
        stripe_factors=factors,
        case_number=args.case,
        cfg=ExecutionConfig(n_cpis=args.cpis, warmup=2),
        runner=runner,
        screening=args.screening,
    )
    print(
        bar_chart(
            {f"sf={sf}": r.throughput for sf, r in out.items()},
            title=f"case {args.case} throughput (CPIs/s) vs stripe factor",
        )
    )
    predicted = sum(1 for r in out.values() if r.source == "predicted")
    if predicted:
        print(
            f"({predicted}/{len(out)} cells answered by the analytic "
            f"surrogate; {runner.executed} simulated)"
        )
    return 0


def _cmd_spectrum(args) -> int:
    """Render the clutter-ridge/jammer picture as an ASCII heatmap."""
    import numpy as np

    from repro.stap.scenario import Jammer, Target, make_cube
    from repro.stap.spectrum import fourier_spectrum, mvdr_spectrum
    from repro.trace.report import heatmap

    params = STAPParams(
        n_channels=8, n_pulses=32, n_ranges=256, n_beams=6, n_hard_bins=8,
        n_training=64, pulse_len=16, cfar_window=12, cfar_guard=3,
    )
    scenario = Scenario(
        targets=(Target(range_gate=80, doppler=0.30, angle=-0.4, snr_db=5.0),),
        jammers=(Jammer(angle=0.7, jnr_db=args.jnr_db),),
        cnr_db=args.cnr_db,
        seed=args.seed,
    )
    cube = make_cube(params, scenario, 0)
    fn = mvdr_spectrum if args.estimator == "mvdr" else fourier_spectrum
    power, sin_angles, _ = fn(cube, n_angles=25, n_dopplers=49)
    print(
        heatmap(
            power,
            title=f"{args.estimator} angle-Doppler spectrum "
            "(rows: sin(angle) -1..1; cols: Doppler -0.5..0.5)",
            row_labels=[f"{v:+.2f}" for v in sin_angles],
            col_label="Doppler ->",
        )
    )
    print(
        f"\nclutter ridge: diagonal; jammer line at sin(angle)="
        f"{np.sin(scenario.jammers[0].angle):+.2f}; target near "
        f"sin(angle)={np.sin(-0.4):+.2f}, Doppler +0.30"
    )
    return 0


def _cmd_reproduce(args) -> int:
    """Regenerate the core paper artifacts (tables 1-4, figures 5-8)."""
    import pathlib

    from repro.bench.experiments import run_fig8

    out_dir = pathlib.Path(args.out)
    out_dir.mkdir(parents=True, exist_ok=True)
    cfg = ExecutionConfig(n_cpis=args.cpis, warmup=args.warmup)
    runner = _make_runner(args)

    def save(name: str, text: str) -> None:
        path = out_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"wrote {path}")

    print("running Table 1 (embedded I/O) ...")
    t1 = run_table1(cfg=cfg, runner=runner)
    save("table1_embedded_io", t1.render())
    save("fig5_embedded_charts", t1.render_charts())

    print("running Table 2 (separate I/O task) ...")
    t2 = run_table2(cfg=cfg, runner=runner)
    save("table2_separate_io", t2.render())
    save("fig6_separate_charts", t2.render_charts())

    print("running Table 3 (PC+CFAR combined) ...")
    t3 = run_table3(cfg=cfg, runner=runner)
    save("table3_task_combination", t3.render())
    save("fig7_combined_charts", t3.render_charts())

    t4 = run_table4(table1=t1, table3=t3, runner=runner)
    save("table4_latency_improvement", t4.render())
    f8 = run_fig8(table1=t1, table3=t3, runner=runner)
    save("fig8_combination_comparison", f8.render())
    print(
        f"engine: {runner.executed} cells simulated, "
        f"{runner.cache_hits} served from cache"
        + ("" if args.no_cache else f" ({args.cache_dir})")
    )
    print("done — compare against EXPERIMENTS.md")
    return 0


def _cmd_results(args) -> int:
    """List, inspect, or clear the content-addressed result cache."""
    import json

    store = ResultStore(args.cache_dir)
    if args.action == "clear":
        removed = store.clear()
        print(f"removed {removed} cached result(s) from {store.root}")
        return 0
    if args.action == "list":
        entries = store.entries()
        if not entries:
            print(f"no cached results in {store.root}")
            return 0
        if args.sort == "size":
            entries.sort(key=lambda e: e["size_bytes"], reverse=True)
        elif args.sort == "age":
            entries.sort(key=lambda e: e["mtime"], reverse=True)
        rows = [
            [e["hash"][:12], e["pipeline"], e["machine"], e["fs"],
             e["nodes"], e["n_cpis"], e["throughput"], e["latency"],
             f"{e['size_bytes'] / 1024:.1f}"]
            for e in entries
        ]
        print(
            format_table(
                ["hash", "pipeline", "machine", "file system",
                 "nodes", "CPIs", "throughput", "latency (s)", "KiB"],
                rows,
                title=f"{len(entries)} cached cell(s) in {store.root}",
            )
        )
        s = store.summary()
        predicted = sum(1 for e in entries if e.get("source") == "predicted")
        simulated = len(entries) - predicted
        counts = f"{s['entries']} entries"
        if predicted:
            counts = (
                f"{s['entries']} entries ({simulated} simulated, "
                f"{predicted} surrogate-predicted)"
            )
        print(
            f"{counts}, {s['total_bytes']} bytes total, "
            f"store schema v{s['schema']}"
        )
        return 0
    # show
    if not args.hash:
        print("error: 'results show' needs a spec hash (see 'results list')",
              file=sys.stderr)
        return 2
    matches = [h for h in store.hashes() if h.startswith(args.hash)]
    if len(matches) != 1:
        what = "no" if not matches else f"{len(matches)} ambiguous"
        print(f"error: {what} cached result(s) match {args.hash!r}",
              file=sys.stderr)
        return 2
    payload = store.load(matches[0])
    if payload is None:
        print(f"error: entry {matches[0]} is unreadable", file=sys.stderr)
        return 2
    meas = payload["result"]["measurement"]
    print(f"hash      : {payload['spec_hash']}")
    print(f"file      : {store.path_for(matches[0])}")
    print(f"spec      : {json.dumps(payload['spec'], indent=2, sort_keys=True)}")
    print(f"throughput: {meas['throughput']:.4f} CPIs/s")
    print(f"latency   : {meas['latency']:.4f} s")
    per_task = {s["task"]: s["recv"] + s["compute"] + s["send"]
                for s in meas["task_stats"]}
    bottleneck = max(per_task, key=per_task.get)
    print(f"bottleneck: {bottleneck} ({per_task[bottleneck]:.4f} s)")
    return 0


def _cmd_strategies(args) -> int:
    """List the I/O strategy registry, or run one tiny cell per strategy."""
    if args.action == "list":
        rows = []
        for name in strategy_names():
            s = get_strategy(name)
            rows.append([
                name,
                "yes" if s.requires_async else "no",
                "yes" if s.requires_list_io else "no",
                "yes" if s.supports_read_deadline else "no",
                s.describe(),
            ])
        print(
            format_table(
                ["strategy", "needs async", "needs list-io", "read deadline",
                 "description"],
                rows,
                title=f"{len(rows)} registered I/O strategies",
            )
        )
        return 0

    # smoke: one tiny end-to-end cell per registered strategy.
    from repro.bench.engine import run_spec

    params = STAPParams(
        n_channels=8, n_pulses=32, n_ranges=256, n_beams=6, n_hard_bins=8,
        n_training=64, pulse_len=16, cfar_window=12, cfar_guard=3, pfa=1e-6,
    )
    assignment = NodeAssignment.balanced(params, 14)
    cfg = ExecutionConfig(n_cpis=2, warmup=0)
    supports_async = args.fs != "piofs"
    supports_list_io = args.fs != "piofs"
    failures = 0
    for name in strategy_names():
        strat = get_strategy(name)
        if strat.requires_async and not supports_async:
            print(f"{name:24s} SKIP (requires async reads; {args.fs} has none)")
            continue
        if strat.requires_list_io and not supports_list_io:
            print(f"{name:24s} SKIP (requires list I/O; {args.fs} has none)")
            continue
        spec = ExperimentSpec(
            assignment=assignment, pipeline=name, machine="paragon",
            fs=FSConfig(kind=args.fs, stripe_factor=args.stripe_factor),
            params=params, cfg=cfg,
        )
        try:
            result = run_spec(spec)
        except ReproError as exc:
            print(f"{name:24s} FAIL {exc}")
            failures += 1
            continue
        print(f"{name:24s} ok   throughput {result.throughput:.4f} CPIs/s")
    if failures:
        print(f"{failures} strategy smoke failure(s)", file=sys.stderr)
        return 1
    print("all strategies passed")
    return 0


def _cmd_serve(args) -> int:
    """Run the experiment service until interrupted."""
    from repro.service.events import EventFeed
    from repro.service.scheduler import ExperimentScheduler
    from repro.service.server import ExperimentServer

    store = None if args.no_cache else ResultStore(args.cache_dir)
    scheduler = ExperimentScheduler(
        workers=args.workers, store=store, backpressure=args.backpressure,
        job_retention=args.job_retention,
    )
    feed = EventFeed().attach(scheduler)
    server = ExperimentServer(scheduler, host=args.host, port=args.port,
                              feed=feed)
    pool = (f"{args.workers} worker process(es)" if args.workers
            else "in-process execution")
    cache = "no cache" if args.no_cache else f"cache {args.cache_dir}"
    print(f"repro service on {server.address} — {pool}, {cache}")
    print("submit with: repro submit --port "
          f"{server.port} --follow  (Ctrl-C stops the service)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.stop()
        scheduler.shutdown()
    return 0


def _parse_int_list(text: str, flag: str) -> List[int]:
    try:
        values = [int(v) for v in str(text).split(",") if v.strip()]
    except ValueError:
        raise ReproError(f"{flag} wants comma-separated integers, got {text!r}")
    if not values:
        raise ReproError(f"{flag} got an empty list")
    return values


def _cmd_submit(args) -> int:
    """Submit a batch (cases x stripe factors) to a running service."""
    import getpass

    from repro.service.server import submit_batch

    params = STAPParams()
    cfg = ExecutionConfig(n_cpis=args.cpis, warmup=args.warmup)
    cases = _parse_int_list(args.case, "--case")
    factors = _parse_int_list(args.stripe_factor, "--stripe-factor")
    specs = [
        ExperimentSpec(
            assignment=NodeAssignment.case(case, params),
            pipeline=args.pipeline,
            machine=args.machine,
            fs=FSConfig(kind=args.fs, stripe_factor=factor),
            params=params,
            cfg=cfg,
            seed=args.seed,
        ).to_dict()
        for case in cases
        for factor in factors
    ]
    client = args.client or getpass.getuser()
    events = submit_batch(
        args.host, args.port, specs,
        client=client, follow=args.follow, label=args.label,
    )
    accepted = next(events)
    print(f"job {accepted['job']} accepted: {accepted['cells']} cell(s) "
          f"as client {client!r}")
    if not args.follow:
        print(f"follow with: repro jobs show {accepted['job']} "
              f"--port {args.port}")
        return 0
    for event in events:
        kind = event.get("event")
        if kind == "result":
            meas = event["payload"]["measurement"]
            print(f"  [{event['index']:>3}] {event['source']:>8}  "
                  f"throughput {meas['throughput']:.4f} CPIs/s  "
                  f"latency {meas['latency']:.4f} s")
        elif kind == "done":
            c = event["counters"]
            print(f"job done: {c['executed']} executed, "
                  f"{c['cache_hits']} from cache, {c['deduped']} deduped, "
                  f"{c['retries']} retried")
            return 0
        else:
            print(f"job {kind}: {event.get('error', '')}", file=sys.stderr)
            return 1
    print("error: server stream ended unexpectedly", file=sys.stderr)
    return 1


def _cmd_jobs(args) -> int:
    """List, inspect, or cancel jobs on a running service."""
    import json

    from repro.service.server import request

    if args.action == "list":
        jobs = request(args.host, args.port, {"op": "jobs"})["jobs"]
        if not jobs:
            print("no jobs")
            return 0
        rows = [
            [j["id"], j["client"], j["state"], j["cells"],
             j["counters"]["executed"], j["counters"]["cache_hits"],
             j["counters"].get("predicted", 0), j["label"]]
            for j in jobs
        ]
        print(format_table(
            ["job", "client", "state", "cells", "executed", "cached",
             "predicted", "label"],
            rows, title=f"{len(jobs)} job(s)",
        ))
        return 0
    if not args.id:
        print(f"error: 'jobs {args.action}' needs a job id", file=sys.stderr)
        return 2
    if args.action == "show":
        info = request(args.host, args.port, {"op": "job", "id": args.id})
        c = info["job"].get("counters", {})
        print(f"counters: {c.get('executed', 0)} executed, "
              f"{c.get('cache_hits', 0)} cache hits, "
              f"{c.get('cache_misses', 0)} cache misses, "
              f"{c.get('predicted', 0)} predicted (surrogate-screened)")
        print(json.dumps(info["job"], indent=2, sort_keys=True))
        return 0
    resp = request(args.host, args.port, {"op": "cancel", "id": args.id})
    print(f"job {args.id} "
          + ("cancelled" if resp["cancelled"] else "already finished"))
    return 0


def _cmd_scenario(args) -> int:
    """Run one multi-tenant scenario and print per-tenant results."""
    import json

    from repro.core.arrivals import ArrivalSpec
    from repro.scenario import ScenarioExecutor, ScenarioSpec, TenantSpec

    if args.spec:
        if args.spec == "-":
            text = sys.stdin.read()
        else:
            with open(args.spec, "r", encoding="utf-8") as fh:
                text = fh.read()
        spec = ScenarioSpec.from_dict(json.loads(text))
    else:
        params = STAPParams()
        arrival = None
        if args.arrival != "fixed" or args.period or args.offset:
            arrival = ArrivalSpec(
                kind=args.arrival, period=args.period, offset=args.offset,
                jitter=args.jitter, burst_size=args.burst_size,
                burst_gap=args.burst_gap, seed=args.arrival_seed,
            )
        cfg = ExecutionConfig(
            n_cpis=args.cpis, warmup=args.warmup,
            read_deadline=args.read_deadline, arrival=arrival,
        )
        tenants = []
        for desc in (args.tenants or ["embedded-io", "embedded-io"]):
            pipeline, _, case_text = desc.partition(":")
            try:
                case = int(case_text) if case_text else 1
            except ValueError:
                raise ReproError(
                    f"--tenant wants PIPELINE[:CASE], got {desc!r}"
                )
            tenants.append(TenantSpec(
                assignment=NodeAssignment.case(case, params),
                pipeline=pipeline, cfg=cfg,
            ))
        spec = ScenarioSpec(
            tenants=tuple(tenants),
            machine=args.machine,
            fs=FSConfig(kind=args.fs, stripe_factor=args.stripe_factor),
            params=params,
            seed=args.seed,
            metrics_interval=args.metrics_interval,
        )

    executor = ScenarioExecutor(spec)
    result = executor.run()

    print(spec.label())
    print(f"spec hash : {spec.short_hash()}")
    print(f"elapsed   : {result.elapsed_sim_time:.4f} s on the shared kernel")
    rows = []
    for name, tenant in zip(spec.tenant_names(), spec.tenants):
        r = result.tenants[name]
        mib = (result.tenant_bytes or {}).get(name, 0) / 2**20
        rows.append([
            name, tenant.pipeline, tenant.build_pipeline().total_nodes,
            f"{r.measurement.throughput:.4f}",
            f"{r.measurement.latency:.4f}",
            len(r.dropped_cpis or []), f"{mib:.1f}",
        ])
    print(format_table(
        ["tenant", "pipeline", "nodes", "CPIs/s", "latency(s)",
         "dropped", "MiB"],
        rows, title="\nper-tenant results",
    ))
    if result.disk_stats is not None:
        served = result.disk_stats["bytes_served"] / 2**20
        print(f"\nshared PFS: {served:.1f} MiB served by "
              f"{len(result.disk_stats['requests_per_server'])} server(s)")
    if args.gantt:
        print()
        print(executor.gantt())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(result.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nwrote {args.json}")
    return 0


def _cmd_analyze(args) -> int:
    """Offline sweep analysis: join artifacts, write the narrative."""
    from repro.analysis import analyze_sweep, render

    sources: List[object] = list(args.sources)
    if args.store:
        sources.append(ResultStore(args.cache_dir))
    analysis = analyze_sweep(sources, cache_dir=args.cache_dir)
    text = render(analysis, fmt=args.fmt)
    if args.out:
        from repro.trace.export import _atomic_write_text

        if not text.endswith("\n"):
            text += "\n"
        _atomic_write_text(args.out, text)
        print(f"wrote {args.out}")
    else:
        print(text)
    for err in analysis["sources"]["errors"]:
        print(f"warning: {err}", file=sys.stderr)
    return 0


def _cmd_dash(args) -> int:
    """Serve the live dashboard against a running repro service."""
    from repro.analysis.dash import DashboardServer, RemoteBackend

    backend = RemoteBackend(args.service_host, args.service_port)
    store = None if args.no_cache else ResultStore(args.cache_dir)
    server = DashboardServer(
        backend, host=args.host, port=args.port,
        store=store, results_dir=args.results,
    )
    print(f"repro dashboard on {server.address} — watching service at "
          f"{args.service_host}:{args.service_port}")
    print("Ctrl-C stops the dashboard (the service keeps running)")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.stop()
    return 0


def _cmd_info(_args) -> int:
    params = STAPParams()
    costs = STAPCosts(params)
    print(f"CPI cube    : {params.cube_shape} {params.dtype} "
          f"= {params.cube_nbytes / 2**20:.0f} MiB")
    print(f"Doppler bins: {params.n_doppler_bins} "
          f"({params.n_easy_bins} easy / {params.n_hard_bins} hard)")
    print(f"beams       : {params.n_beams}, training gates: {params.n_training}")
    names = ["doppler", "easy_weight", "hard_weight", "easy_bf", "hard_bf",
             "pulse_compr", "cfar"]
    rows = [[n, costs.task_flops(i) / 1e6] for i, n in enumerate(names)]
    print(format_table(["task", "Mflop/CPI"], rows, title="\nper-task work",
                       float_fmt="{:.1f}"))
    print()
    for case in (1, 2, 3):
        a = NodeAssignment.case(case, params)
        counts = [a.doppler, a.easy_weight, a.hard_weight, a.easy_bf,
                  a.hard_bf, a.pulse_compr, a.cfar]
        print(f"case {case}: {dict(zip(names, counts))} "
              f"(total {a.total_without_io}, read task {a.io_nodes})")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "table": _cmd_table,
        "profile": _cmd_profile,
        "detect": _cmd_detect,
        "sweep-stripe": _cmd_sweep_stripe,
        "reproduce": _cmd_reproduce,
        "results": _cmd_results,
        "metrics": _cmd_metrics,
        "spectrum": _cmd_spectrum,
        "strategies": _cmd_strategies,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "jobs": _cmd_jobs,
        "scenario": _cmd_scenario,
        "analyze": _cmd_analyze,
        "dash": _cmd_dash,
        "info": _cmd_info,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Downstream pager/head closed stdout mid-print; the Unix
        # convention is to die quietly with SIGPIPE's exit code.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 141


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
