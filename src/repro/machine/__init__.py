"""Simulated multicomputer models.

A :class:`~repro.machine.machine.Machine` bundles compute nodes, I/O
server nodes, and an interconnect model on top of one DES kernel.  Two
machine presets reproduce the paper's platforms:

* :func:`~repro.machine.presets.paragon` — Intel Paragon XP/S-class:
  i860 compute nodes on a 2-D mesh with XY wormhole routing and per-link
  contention (:class:`~repro.machine.mesh.MeshNetwork`).
* :func:`~repro.machine.presets.ibm_sp` — IBM SP-class: faster P2SC
  compute nodes on a multistage switch
  (:class:`~repro.machine.multistage.MultistageNetwork`).

Networks expose a single operation — ``transfer(src, dst, nbytes)`` as a
process generator — which the MPI layer drives.
"""

from repro.machine.node import NodeSpec, Node
from repro.machine.network import Network, ContentionFreeNetwork
from repro.machine.mesh import MeshNetwork
from repro.machine.multistage import MultistageNetwork
from repro.machine.machine import Machine
from repro.machine.presets import paragon, ibm_sp, generic_cluster, MachinePreset

__all__ = [
    "NodeSpec",
    "Node",
    "Network",
    "ContentionFreeNetwork",
    "MeshNetwork",
    "MultistageNetwork",
    "Machine",
    "paragon",
    "ibm_sp",
    "generic_cluster",
    "MachinePreset",
]
