"""Machine presets calibrated to the paper's platforms.

Calibration targets (DESIGN.md §4): CPI-scale pipeline throughput of a
few CPIs/s and sub-second latency on the 25/50/100-node cases — the same
order of magnitude the paper reports.  Absolute 1999 microseconds are not
reproducible (nor required); the *ratios* that drive the paper's
conclusions are what the presets encode:

* SP compute nodes are ~7-8x faster than Paragon nodes (P2SC vs i860 XP),
  which is why the paper remarks the SP "has faster CPUs" yet scales
  worse once synchronous I/O is in the loop.
* disk service (5.5 MB/s media + 20 ms effective per-request overhead
  — positioning plus server software on 1999-class storage) is slow vs
  the network, so the number of stripe directories controls aggregate
  read bandwidth — the paper's central knob.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.machine.machine import Machine
from repro.machine.mesh import MeshNetwork
from repro.machine.multistage import MultistageNetwork
from repro.machine.network import ContentionFreeNetwork
from repro.machine.node import NodeSpec
from repro.sim.kernel import Kernel

__all__ = ["MachinePreset", "paragon", "ibm_sp", "generic_cluster"]

#: Sustained i860 XP rate on STAP kernels (peak 75 MFLOP/s; hand-tuned
#: FFT/solve kernels sustained roughly a third of peak).
_PARAGON_FLOPS = 25e6
#: Paragon mesh: 175 MB/s physical links; NX software latency ~60 us.
_PARAGON_LINK_BW = 175e6
_PARAGON_LATENCY = 60e-6
_PARAGON_MEM_BW = 300e6

#: Sustained P2SC rate (peak 480 MFLOP/s; strong FFT performance).
_SP_FLOPS = 150e6
#: SP switch: ~110 MB/s per port, MPL latency ~40 us.
_SP_PORT_BW = 110e6
_SP_LATENCY = 40e-6
_SP_MEM_BW = 1.2e9

#: Disk behind each stripe directory: sustained media rate + per-request
#: positioning/software overhead.
DISK_BW = 5.5e6
DISK_OVERHEAD = 20e-3


@dataclass(frozen=True)
class MachinePreset:
    """A reusable recipe for building :class:`Machine` instances.

    ``build(kernel, n_compute, n_io)`` instantiates the machine; presets
    are immutable so benchmark sweeps can share them safely.
    """

    name: str
    node_spec: NodeSpec
    network_kind: str  # "mesh" | "multistage" | "ideal"
    latency: float
    bandwidth: float
    disk_bw: float = DISK_BW
    disk_overhead: float = DISK_OVERHEAD
    extras: dict = field(default_factory=dict)

    def build(self, kernel: Kernel, n_compute: int, n_io: int = 0) -> Machine:
        """Instantiate a machine with this preset's characteristics."""
        total = n_compute + n_io
        if self.network_kind == "mesh":
            net = MeshNetwork(kernel, total, self.latency, self.bandwidth)
        elif self.network_kind == "multistage":
            net = MultistageNetwork(kernel, total, self.latency, self.bandwidth)
        elif self.network_kind == "ideal":
            net = ContentionFreeNetwork(kernel, total, self.latency, self.bandwidth)
        else:
            raise ConfigurationError(f"unknown network kind {self.network_kind!r}")
        return Machine(
            kernel,
            n_compute=n_compute,
            node_spec=self.node_spec,
            network=net,
            n_io=n_io,
            name=self.name,
        )


def paragon() -> MachinePreset:
    """Intel Paragon XP/S-class preset (Caltech machine of the paper)."""
    return MachinePreset(
        name="Intel Paragon",
        node_spec=NodeSpec(flops=_PARAGON_FLOPS, mem_bw=_PARAGON_MEM_BW, name="i860XP"),
        network_kind="mesh",
        latency=_PARAGON_LATENCY,
        bandwidth=_PARAGON_LINK_BW,
    )


def ibm_sp() -> MachinePreset:
    """IBM SP-class preset (ANL machine of the paper)."""
    return MachinePreset(
        name="IBM SP",
        node_spec=NodeSpec(flops=_SP_FLOPS, mem_bw=_SP_MEM_BW, name="P2SC"),
        network_kind="multistage",
        latency=_SP_LATENCY,
        bandwidth=_SP_PORT_BW,
    )


def generic_cluster(
    flops: float = 50e6,
    latency: float = 50e-6,
    bandwidth: float = 125e6,
) -> MachinePreset:
    """Contention-free preset for unit tests and analytic comparisons."""
    return MachinePreset(
        name="generic cluster",
        node_spec=NodeSpec(flops=flops, mem_bw=10 * bandwidth, name="generic"),
        network_kind="ideal",
        latency=latency,
        bandwidth=bandwidth,
    )
