"""Multistage switch interconnect (IBM SP style).

The SP's High-Performance Switch is a multistage network built from 8-way
crossbars; to first order every node sees a dedicated injection port and
a dedicated ejection port of fixed bandwidth, and the switch core has
enough bisection that port contention — not internal links — is the
dominant queueing effect for the traffic patterns here (many senders to
one receiver, or one reader draining many I/O servers).

We therefore model one capacity-1 resource per node *injection* port and
one per node *ejection* port; a transfer holds both (injection first) for
the wire time.  That reproduces the essential contrast with the mesh: no
path-dependent interference, but strict per-port serialisation.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import ConfigurationError
from repro.machine.network import Network
from repro.sim.kernel import Kernel
from repro.sim.resources import Resource

__all__ = ["MultistageNetwork"]


class MultistageNetwork(Network):
    """Port-contention switch model: per-node in/out ports, full bisection."""

    def __init__(
        self, kernel: Kernel, n_nodes: int, latency: float, bandwidth: float
    ) -> None:
        super().__init__(kernel, latency, bandwidth)
        if n_nodes < 1:
            raise ConfigurationError(f"n_nodes must be >= 1, got {n_nodes}")
        self.n_nodes = n_nodes
        self._in_ports: Dict[int, Resource] = {}
        self._out_ports: Dict[int, Resource] = {}

    def _port(self, table: Dict[int, Resource], node: int, kind: str) -> Resource:
        res = table.get(node)
        if res is None:
            res = Resource(self.kernel, capacity=1, name=f"{kind}{node}")
            table[node] = res
        return res

    def transfer(self, src: int, dst: int, nbytes: int):
        """Hold src injection port then dst ejection port for the wire time.

        The fixed acquisition order (injection before ejection) cannot
        deadlock because every holder of an ejection port already owns its
        injection port and will release both after a finite timeout.
        """
        self._validate(src, dst, nbytes, self.n_nodes)
        if src == dst:
            yield self.kernel.timeout(self.latency * 0.5)
            return
        inj = self._port(self._in_ports, src, "inj")
        ej = self._port(self._out_ports, dst, "ej")
        yield inj.request()
        try:
            yield ej.request()
            try:
                yield self.kernel.timeout(self.pure_transfer_time(nbytes))
            finally:
                ej.release()
        finally:
            inj.release()
