"""The Machine: nodes + interconnect + I/O servers on one kernel.

Node numbering convention (used throughout the package):

* ranks ``0 .. n_compute-1`` are compute nodes;
* ranks ``n_compute .. n_compute+n_io-1`` are I/O server nodes (they host
  the parallel file system stripe directories and are reachable through
  the same interconnect).

The pipeline code only ever addresses compute ranks; the file-system
layer addresses I/O ranks when shipping stripe units.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ConfigurationError
from repro.machine.network import Network
from repro.machine.node import Node, NodeSpec
from repro.sim.kernel import Kernel

__all__ = ["Machine"]


class Machine:
    """A simulated multicomputer.

    Parameters
    ----------
    kernel:
        DES kernel everything runs on.
    n_compute:
        Number of compute nodes.
    node_spec:
        Performance spec shared by all compute nodes.
    network:
        Interconnect covering ``n_compute + n_io`` endpoints.
    n_io:
        Number of I/O server nodes (stripe directories map onto these).
    io_node_spec:
        Spec for I/O nodes; defaults to ``node_spec``.
    name:
        Machine label for reports (e.g. ``"Intel Paragon"``).
    """

    def __init__(
        self,
        kernel: Kernel,
        n_compute: int,
        node_spec: NodeSpec,
        network: Network,
        n_io: int = 0,
        io_node_spec: Optional[NodeSpec] = None,
        name: str = "machine",
    ) -> None:
        if n_compute < 1:
            raise ConfigurationError(f"need >= 1 compute node, got {n_compute}")
        if n_io < 0:
            raise ConfigurationError(f"n_io must be >= 0, got {n_io}")
        total = n_compute + n_io
        net_nodes = getattr(network, "n_nodes", total)
        if net_nodes < total:
            raise ConfigurationError(
                f"network covers {net_nodes} endpoints but machine has {total}"
            )
        self.kernel = kernel
        self.network = network
        self.name = name
        self.n_compute = n_compute
        self.n_io = n_io
        io_spec = io_node_spec or node_spec
        self.nodes: List[Node] = [Node(i, node_spec) for i in range(n_compute)]
        self.nodes += [Node(n_compute + j, io_spec) for j in range(n_io)]

    # -- addressing -------------------------------------------------------
    @property
    def n_total(self) -> int:
        """Total endpoints (compute + I/O)."""
        return self.n_compute + self.n_io

    def node(self, node_id: int) -> Node:
        """Node object for a global node id."""
        if not (0 <= node_id < self.n_total):
            raise ConfigurationError(
                f"node id {node_id} outside machine of {self.n_total}"
            )
        return self.nodes[node_id]

    def io_node_id(self, io_index: int) -> int:
        """Global node id of the ``io_index``-th I/O server."""
        if not (0 <= io_index < self.n_io):
            raise ConfigurationError(
                f"io index {io_index} outside {self.n_io} I/O nodes"
            )
        return self.n_compute + io_index

    def is_io_node(self, node_id: int) -> bool:
        """True if ``node_id`` addresses an I/O server node."""
        return self.n_compute <= node_id < self.n_total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Machine {self.name!r}: {self.n_compute} compute + "
            f"{self.n_io} I/O nodes, net={type(self.network).__name__}>"
        )
