"""Compute node model.

A node is characterised by a sustained floating-point rate and a memory
copy bandwidth.  Task kernels report their work as (flops, bytes touched)
via the cost models in :mod:`repro.stap.costs`; the node converts that to
simulated seconds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["NodeSpec", "Node"]


@dataclass(frozen=True)
class NodeSpec:
    """Static performance characteristics of one compute node.

    Attributes
    ----------
    flops:
        Sustained floating-point rate in FLOP/s on STAP-style kernels
        (well below peak; see DESIGN.md calibration notes).
    mem_bw:
        Memory copy bandwidth in bytes/s, used for pack/unpack costs.
    name:
        Label for traces (e.g. ``"i860XP"``).
    """

    flops: float
    mem_bw: float
    name: str = "node"

    def __post_init__(self) -> None:
        if self.flops <= 0:
            raise ConfigurationError(f"node flops must be positive, got {self.flops}")
        if self.mem_bw <= 0:
            raise ConfigurationError(f"node mem_bw must be positive, got {self.mem_bw}")

    def compute_time(self, flops: float, bytes_touched: float = 0.0) -> float:
        """Seconds to execute ``flops`` floating ops touching ``bytes_touched``.

        The model is a simple roofline-style max of compute time and
        memory traffic time: STAP kernels are mostly FFTs and small dense
        solves, so compute usually dominates, but the memory term prevents
        absurd results for copy-heavy phases.
        """
        if flops < 0 or bytes_touched < 0:
            raise ConfigurationError("work amounts must be non-negative")
        return max(flops / self.flops, bytes_touched / self.mem_bw)

    def copy_time(self, nbytes: float) -> float:
        """Seconds to memcpy ``nbytes`` (message pack/unpack)."""
        if nbytes < 0:
            raise ConfigurationError("nbytes must be non-negative")
        return nbytes / self.mem_bw


class Node:
    """A compute node instance: a spec plus an identity in the machine."""

    __slots__ = ("node_id", "spec")

    def __init__(self, node_id: int, spec: NodeSpec) -> None:
        self.node_id = node_id
        self.spec = spec

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.node_id} ({self.spec.name})>"
