"""2-D mesh interconnect with XY wormhole routing (Intel Paragon style).

The Paragon's backplane is a 2-D mesh of bidirectional links with
dimension-ordered (XY) wormhole routing: a message first travels along X
to the destination column, then along Y.  Under wormhole switching a
message holds its whole path for its duration, so we model each
*directed* link as a capacity-1 FIFO resource and have a transfer acquire
the links of its route **in path order**, hold them for the transfer
time, then release.  Acquiring in path order under XY routing is
deadlock-free (the classic dimension-order argument: the link acquisition
order induces no cycles), which keeps the DES live under arbitrary
traffic.

The model captures the two phenomena the paper's results depend on:

* many-to-few traffic (compute nodes draining I/O nodes) serialises on
  the links near the hot spot;
* neighbouring pipeline tasks laid out in adjacent mesh columns barely
  interfere with each other.
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.errors import ConfigurationError
from repro.machine.network import Network
from repro.sim.events import Timeout
from repro.sim.kernel import Kernel
from repro.sim.resources import Resource

__all__ = ["MeshNetwork"]


class MeshNetwork(Network):
    """2-D mesh with per-link contention and XY wormhole routing.

    Parameters
    ----------
    kernel:
        Owning DES kernel.
    n_nodes:
        Total node count; nodes are laid out row-major on a
        ``rows x cols`` grid.  If ``cols`` is not given, the grid is the
        most square factorisation with ``cols >= rows``.
    latency:
        Per-message startup (software overhead dominates: ~tens of µs).
    bandwidth:
        Per-link bandwidth, bytes/s.
    cols:
        Optional explicit column count.
    """

    def __init__(
        self,
        kernel: Kernel,
        n_nodes: int,
        latency: float,
        bandwidth: float,
        cols: int | None = None,
    ) -> None:
        super().__init__(kernel, latency, bandwidth)
        if n_nodes < 1:
            raise ConfigurationError(f"n_nodes must be >= 1, got {n_nodes}")
        self.n_nodes = n_nodes
        if cols is None:
            cols = self._square_cols(n_nodes)
        if cols < 1:
            raise ConfigurationError(f"cols must be >= 1, got {cols}")
        self.cols = cols
        self.rows = math.ceil(n_nodes / cols)
        # Directed links created lazily: (from_node, to_node) -> Resource.
        self._links: Dict[Tuple[int, int], Resource] = {}
        # The topology is immutable after construction, so XY routes and
        # their resolved link-resource runs are memoized per (src, dst).
        self._routes: Dict[Tuple[int, int], List[Tuple[int, int]]] = {}
        self._link_runs: Dict[Tuple[int, int], List[Resource]] = {}

    @staticmethod
    def _square_cols(n: int) -> int:
        """Most square grid: smallest cols >= sqrt(n) with rows*cols >= n."""
        c = math.ceil(math.sqrt(n))
        return c

    # -- topology helpers ------------------------------------------------
    def coords(self, node: int) -> Tuple[int, int]:
        """(row, col) of ``node`` in the row-major layout."""
        if not (0 <= node < self.n_nodes):
            raise ConfigurationError(f"node {node} outside mesh of {self.n_nodes}")
        return divmod(node, self.cols)

    def node_at(self, row: int, col: int) -> int:
        """Inverse of :meth:`coords`."""
        node = row * self.cols + col
        if not (0 <= row < self.rows and 0 <= col < self.cols and node < self.n_nodes):
            raise ConfigurationError(f"({row}, {col}) outside mesh")
        return node

    def route(self, src: int, dst: int) -> List[Tuple[int, int]]:
        """Directed links of the XY route from ``src`` to ``dst``.

        X (column) movement first, then Y (row) movement; each hop is one
        directed link ``(a, b)`` between grid-adjacent positions.  Hops
        through positions beyond ``n_nodes`` on a ragged last row are
        still valid link segments (the physical mesh is full).
        """
        cached = self._routes.get((src, dst))
        if cached is None:
            (sr, sc), (dr, dc) = self.coords(src), self.coords(dst)
            hops: List[Tuple[int, int]] = []
            r, c = sr, sc
            step = 1 if dc > c else -1
            while c != dc:
                a, b = r * self.cols + c, r * self.cols + (c + step)
                hops.append((a, b))
                c += step
            step = 1 if dr > r else -1
            while r != dr:
                a, b = r * self.cols + c, (r + step) * self.cols + c
                hops.append((a, b))
                r += step
            cached = self._routes[(src, dst)] = hops
        # Callers get a copy: the memoized list must stay pristine.
        return list(cached)

    def _link(self, a: int, b: int) -> Resource:
        key = (a, b)
        res = self._links.get(key)
        if res is None:
            res = Resource(self.kernel, capacity=1, name=f"link{a}->{b}")
            self._links[key] = res
        return res

    # -- transfer ---------------------------------------------------------
    def transfer(self, src: int, dst: int, nbytes: int):
        """Wormhole transfer: hold the whole XY path for the wire time."""
        self._validate(src, dst, nbytes, self.n_nodes)
        if src == dst:
            yield Timeout(self.kernel, self.latency * 0.5)
            return
        links = self._link_runs.get((src, dst))
        if links is None:
            links = [self._link(a, b) for a, b in self.route(src, dst)]
            self._link_runs[(src, dst)] = links
        # Acquire in path order (deadlock-free under XY routing).  Links
        # are capacity-1, so the idle test and grant are inlined here
        # (equivalent to link.request(), minus the call per hop — this
        # loop runs once per hop of every message in the simulation).
        kernel = self.kernel
        for link in links:
            if link._in_use:
                yield link.request()
            elif kernel._lane or kernel._due:
                link._in_use = 1
                yield link._granted
            else:
                # Kernel quiescent: a yield on this born-fired grant would
                # chain straight back here with nothing able to interleave,
                # so taking the free link synchronously is order-identical
                # and skips one full dispatch round for this hop.  Checked
                # per hop — a wait on a busy link earlier in the path often
                # resumes into a quiescent kernel again.
                link._in_use = 1
        try:
            # Wormhole: pipelined flits => duration ~ startup + size/bw,
            # essentially independent of hop count once the worm is set up.
            yield Timeout(self.kernel, self.latency + nbytes / self.bandwidth)
        finally:
            # Inline of link.release() for held capacity-1 links.
            for link in reversed(links):
                if link._waiters:
                    link._waiters.popleft().succeed(link)
                else:
                    link._in_use = 0

    def deliver(self, src: int, dst: int, nbytes: int, mailbox, msg):
        """Wormhole transfer fused with the mailbox deposit.

        Body kept in lockstep with :meth:`transfer` — inlined rather than
        delegated because every ``yield`` in a ``yield from`` chain also
        resumes the delegating frame, and deliveries account for most of
        the yields in a message-heavy simulation.
        """
        self._validate(src, dst, nbytes, self.n_nodes)
        if src == dst:
            yield Timeout(self.kernel, self.latency * 0.5)
            mailbox.put_nowait(msg)
            return
        links = self._link_runs.get((src, dst))
        if links is None:
            links = [self._link(a, b) for a, b in self.route(src, dst)]
            self._link_runs[(src, dst)] = links
        kernel = self.kernel
        for link in links:
            if link._in_use:
                yield link.request()
            elif kernel._lane or kernel._due:
                link._in_use = 1
                yield link._granted
            else:
                link._in_use = 1
        try:
            yield Timeout(self.kernel, self.latency + nbytes / self.bandwidth)
        finally:
            for link in reversed(links):
                if link._waiters:
                    link._waiters.popleft().succeed(link)
                else:
                    link._in_use = 0
        mailbox.put_nowait(msg)

    # -- introspection -----------------------------------------------------
    @property
    def allocated_links(self) -> int:
        """Number of links that have carried at least one message."""
        return len(self._links)
