"""Interconnect base classes.

A network's single job is to model the time a message of ``nbytes`` takes
from node ``src`` to node ``dst``, including contention with concurrent
traffic.  The operation is exposed as a *process generator* —
``yield from net.transfer(src, dst, nbytes)`` — so implementations can
acquire link resources, wait, and release.

:class:`ContentionFreeNetwork` is the analytic baseline
(``latency + nbytes / bandwidth``), useful for tests and for isolating
contention effects in ablations.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.errors import ConfigurationError
from repro.sim.kernel import Kernel

__all__ = ["Network", "ContentionFreeNetwork"]


class Network(ABC):
    """Abstract interconnect attached to a DES kernel.

    Attributes
    ----------
    kernel:
        The owning simulation kernel.
    latency:
        Fixed per-message software + hardware startup cost in seconds
        (the alpha of the alpha-beta model).
    bandwidth:
        Per-link (or per-port) bandwidth in bytes/s (1/beta).
    """

    def __init__(self, kernel: Kernel, latency: float, bandwidth: float) -> None:
        if latency < 0:
            raise ConfigurationError(f"latency must be >= 0, got {latency}")
        if bandwidth <= 0:
            raise ConfigurationError(f"bandwidth must be > 0, got {bandwidth}")
        self.kernel = kernel
        self.latency = float(latency)
        self.bandwidth = float(bandwidth)

    @abstractmethod
    def transfer(self, src: int, dst: int, nbytes: int):
        """Process generator that completes when the message has arrived.

        Implementations must accept ``src == dst`` and model it as a local
        memcpy-speed operation (no network involvement).
        """

    def deliver(self, src: int, dst: int, nbytes: int, mailbox, msg):
        """Process generator: transfer, then ``mailbox.put_nowait(msg)``.

        The message-delivery process the MPI layer spawns per ``isend``.
        Implementations may override to fuse the deposit into the
        transfer body: delegating through ``yield from`` costs one extra
        frame resume per yield, and delivery dominates yield volume.
        """
        yield from self.transfer(src, dst, nbytes)
        mailbox.put_nowait(msg)

    def _validate(self, src: int, dst: int, nbytes: int, n_nodes: int) -> None:
        if not (0 <= src < n_nodes) or not (0 <= dst < n_nodes):
            raise ConfigurationError(
                f"transfer endpoints ({src}, {dst}) outside machine of {n_nodes} nodes"
            )
        if nbytes < 0:
            raise ConfigurationError(f"message size must be >= 0, got {nbytes}")

    def pure_transfer_time(self, nbytes: int) -> float:
        """Uncontended alpha-beta time for a message of ``nbytes``."""
        return self.latency + nbytes / self.bandwidth


class ContentionFreeNetwork(Network):
    """Ideal network: every transfer takes ``latency + nbytes/bandwidth``.

    Any number of messages proceed concurrently without interference.
    ``n_nodes`` bounds valid endpoints; local transfers (``src == dst``)
    cost half the latency (no wire time).
    """

    def __init__(
        self, kernel: Kernel, n_nodes: int, latency: float, bandwidth: float
    ) -> None:
        super().__init__(kernel, latency, bandwidth)
        if n_nodes < 1:
            raise ConfigurationError(f"n_nodes must be >= 1, got {n_nodes}")
        self.n_nodes = n_nodes

    def transfer(self, src: int, dst: int, nbytes: int):
        self._validate(src, dst, nbytes, self.n_nodes)
        if src == dst:
            yield self.kernel.timeout(self.latency * 0.5)
            return
        yield self.kernel.timeout(self.pure_transfer_time(nbytes))
