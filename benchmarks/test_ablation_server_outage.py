"""Ablation: one stripe server crashes mid-run (fault-tolerance sweep).

With few stripe directories every slab read touches every server, so an
outage of directory 0 holds the whole read phase hostage.  The sweep
crosses outage duration with the replication degree: unreplicated
clients can only back off / drop CPIs at the read deadline until the
server returns, while chained-declustered mirrors (``replication=2``)
fail reads over to the neighbour directory and keep the pipeline moving.
"""

from benchmarks.conftest import BENCH_CFG
from repro.bench.experiments import run_ablation_server_outage
from repro.trace.report import format_table


FOREVER = float("inf")


def test_ablation_server_outage(benchmark, emit, engine_runner):
    out = benchmark.pedantic(
        lambda: run_ablation_server_outage(
            outage_durations=(2.0, FOREVER),
            replications=(1, 2),
            cfg=BENCH_CFG,
            runner=engine_runner,
        ),
        rounds=1,
        iterations=1,
    )

    def outage_label(dur):
        if dur == 0:
            return "none"
        return "permanent" if dur == FOREVER else f"{dur:g}s"

    rows = [
        [f"rep={rep}", outage_label(dur),
         r.throughput, r.latency,
         len(r.dropped_cpis or [])]
        for (rep, dur), r in sorted(out.items())
    ]
    emit(
        "ablation_server_outage",
        format_table(
            ["replication", "outage", "throughput", "latency (s)", "dropped"],
            rows,
            title="Server 0 outage at 30% of run, PFS sf=4, case 1",
        ),
    )
    base1, crash1 = out[(1, 0.0)], out[(1, FOREVER)]
    base2, crash2 = out[(2, 0.0)], out[(2, FOREVER)]
    # Mirroring is free while nothing fails (reads go primary-first).
    assert base2.throughput == base1.throughput
    # Without replication, losing a server for good collapses throughput:
    # every remaining CPI read waits out its whole deadline and drops.
    assert crash1.throughput < 0.5 * base1.throughput
    assert len(crash1.dropped_cpis) >= 1
    # With mirrors the same crash is a dent, not a collapse: reads fail
    # over and no CPI misses its deadline.
    assert crash2.throughput > crash1.throughput
    assert crash2.throughput > 0.5 * base2.throughput
    assert len(crash2.dropped_cpis) == 0
    # A transient 2 s outage hurts less than a permanent one.
    assert out[(1, 2.0)].throughput > crash1.throughput


def test_read_deadline_bounds_outage_stall(benchmark, emit, engine_runner):
    """Degradation beats stalling: dropping late CPIs bounds completion."""
    def sweep():
        # Deadline (1 s) shorter than the outage (3 s): the bounded
        # client sheds CPIs, the deadline-free client stalls through it.
        bounded = run_ablation_server_outage(
            outage_durations=(3.0,), replications=(1,),
            read_deadline=1.0, cfg=BENCH_CFG, runner=engine_runner,
        )
        stalled = run_ablation_server_outage(
            outage_durations=(3.0,), replications=(1,),
            read_deadline=None, cfg=BENCH_CFG, runner=engine_runner,
        )
        return bounded[(1, 3.0)], stalled[(1, 3.0)]

    bounded, stalled = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        "ablation_outage_deadline",
        format_table(
            ["policy", "elapsed (s)", "latency (s)", "dropped"],
            [
                ["drop at deadline", bounded.elapsed_sim_time,
                 bounded.latency, len(bounded.dropped_cpis or [])],
                ["stall and retry", stalled.elapsed_sim_time,
                 stalled.latency, len(stalled.dropped_cpis or [])],
            ],
            title="3 s outage, no replication: deadline vs stall",
        ),
    )
    # The stalling client rides out the outage with backoff/retry: it
    # finishes (no data loss) but pays for it in completion time and
    # per-CPI latency.  The deadline client sheds load instead.
    assert not stalled.dropped_cpis  # None: no deadline was configured
    assert len(bounded.dropped_cpis) >= 1
    assert bounded.elapsed_sim_time < stalled.elapsed_sim_time
    assert bounded.latency < stalled.latency
