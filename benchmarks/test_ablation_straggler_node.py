"""Ablation: one degraded compute node in the Doppler task.

The dual of the straggler-disk fault: a data-parallel task finishes when
its slowest node does, so a single slow node drags its task's time and
(Eq. 1) the whole pipeline's throughput — regardless of how many healthy
nodes the task has.  Unlike the I/O straggler, latency degrades too:
the slow node sits on the latency path.
"""

from benchmarks.conftest import BENCH_CFG
from repro.bench.experiments import run_ablation_straggler_node
from repro.trace.report import format_table


def test_ablation_straggler_node(benchmark, emit):
    out = benchmark.pedantic(
        lambda: run_ablation_straggler_node(
            slow_factors=(1.0, 2.0, 4.0), cfg=BENCH_CFG
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        [f"x{slow:g}", r.throughput, r.latency,
         r.measurement.task_stats["doppler"].total]
        for slow, r in out.items()
    ]
    emit(
        "ablation_straggler_node",
        format_table(
            ["doppler-node slowdown", "throughput", "latency (s)", "T_doppler (s)"],
            rows,
            title="One straggler compute node of 8 in the Doppler task, case 1",
        ),
    )
    # Throughput tracks the straggler (halves per slowdown doubling)...
    assert out[2.0].throughput < 0.6 * out[1.0].throughput
    assert out[4.0].throughput < 0.6 * out[2.0].throughput
    # ...and latency degrades too (the slow node is on the latency path).
    assert out[2.0].latency > 1.5 * out[1.0].latency
