"""Benchmark: Table 1 — I/O embedded in the Doppler task.

Regenerates the paper's Table 1: per-task receive/compute/send times,
throughput, and latency for the three node-assignment cases on Paragon
PFS (stripe factors 16 and 64) and SP PIOFS (stripe factor 80).

Paper findings checked here (see also tests/test_integration_paper.py):
stripe factor 16 throughput degrades at 100 nodes while 64 scales; the
first two cases are stripe-factor-insensitive; PIOFS scales worst.
"""

from benchmarks.conftest import BENCH_CFG
from repro.bench.experiments import run_table1


def test_table1_embedded_io(benchmark, emit, sweep_cache):
    result = benchmark.pedantic(
        lambda: run_table1(cfg=BENCH_CFG), rounds=1, iterations=1
    )
    sweep_cache["t1"] = result
    emit("table1_embedded_io", result.render())

    # Shape assertions mirroring §5.1.
    thr = {
        (fs, c): result.cell(fs, c).throughput
        for fs in result.fs_labels()
        for c in (1, 2, 3)
    }
    # sf=16 loses to sf=64 at case 3 only.
    assert thr[("PFS sf=16", 3)] < 0.75 * thr[("PFS sf=64", 3)]
    assert abs(thr[("PFS sf=16", 1)] - thr[("PFS sf=64", 1)]) < 0.05 * thr[("PFS sf=64", 1)]
    assert abs(thr[("PFS sf=16", 2)] - thr[("PFS sf=64", 2)]) < 0.05 * thr[("PFS sf=64", 2)]
    # sf=64 scales nearly linearly over the 4x node range.
    assert thr[("PFS sf=64", 3)] > 3.0 * thr[("PFS sf=64", 1)]
    # PIOFS (sync reads) scales sublinearly despite faster CPUs.
    assert thr[("PIOFS sf=80", 3)] < 2.5 * thr[("PIOFS sf=80", 1)]
