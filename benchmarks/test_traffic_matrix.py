"""Measurement: the inter-task communication matrix (the paper's C_i).

The paper's analysis manipulates per-task communication terms C_i
symbolically; this bench *measures* them: total messages and bytes
between every task pair over a run, for the 7-task pipeline and the
6-task combined pipeline side by side.  The visible effect of §6's
combination is the disappearance of the pulse_compr -> cfar stream
(the paper's Eq. 10 argument: the internal transfer simply no longer
exists).
"""

from benchmarks.conftest import BENCH_CFG
from repro.core.executor import FSConfig, PipelineExecutor
from repro.core.pipeline import (
    NodeAssignment,
    build_embedded_pipeline,
    combine_pulse_cfar,
)
from repro.machine.presets import paragon
from repro.stap.params import STAPParams
from repro.trace.report import format_table

PARAMS = STAPParams()


def _run_pair():
    a = NodeAssignment.case(1, PARAMS)
    out = {}
    for label, spec in (
        ("7 tasks", build_embedded_pipeline(a)),
        ("6 tasks", combine_pulse_cfar(build_embedded_pipeline(a))),
    ):
        out[label] = PipelineExecutor(
            spec, PARAMS, paragon(), FSConfig("pfs", 64), BENCH_CFG
        ).run()
    return out


def test_traffic_matrix(benchmark, emit):
    out = benchmark.pedantic(_run_pair, rounds=1, iterations=1)
    blocks = []
    for label, res in out.items():
        tt = res.task_traffic()
        rows = [
            [f"{src} -> {dst}", msgs, nbytes / 2**20]
            for (src, dst), (msgs, nbytes) in sorted(
                tt.items(), key=lambda kv: -kv[1][1]
            )
            if nbytes > 1024  # hide pure-ack back-channels
        ]
        blocks.append(
            format_table(
                ["stream", "messages", "MiB total"],
                rows,
                title=f"\n{label} — inter-task traffic over "
                f"{res.cfg.n_cpis} CPIs (data streams > 1 KiB)",
                float_fmt="{:.2f}",
            )
        )
    emit("traffic_matrix", "\n".join(blocks))

    tt7 = out["7 tasks"].task_traffic()
    tt6 = out["6 tasks"].task_traffic()
    # The combined pipeline has no PC->CFAR stream at all (Eq. 10).
    assert ("pulse_compr", "cfar") in tt7
    assert not any("pulse_compr" in k or k[1] == "cfar" for k in tt6)
    # Total data volume strictly drops by (at least) that stream's bytes.
    vol7 = sum(b for _, b in tt7.values())
    vol6 = sum(b for _, b in tt6.values())
    assert vol6 <= vol7 - tt7[("pulse_compr", "cfar")][1] * 0.9
