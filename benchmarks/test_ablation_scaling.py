"""Ablation: scaling beyond the paper's 100-node ceiling.

The paper stops at 100 nodes; this sweep continues to 200 with
workload-balanced assignments, derives speedup/efficiency/Karp-Flatt
serial fraction, and locates where pipeline scaling saturates (the
stripe-directory service floor at sf=64).
"""

from repro.core.context import ExecutionConfig
from repro.core.scaling import run_scaling_study
from repro.trace.report import format_table


def test_ablation_scaling(benchmark, emit):
    study = benchmark.pedantic(
        lambda: run_scaling_study(
            node_counts=(25, 50, 100, 150, 200),
            cfg=ExecutionConfig(n_cpis=8, warmup=2),
        ),
        rounds=1,
        iterations=1,
    )
    eff = study.efficiencies()
    rows = [
        [p.nodes, p.throughput, p.latency, study.speedups()[p.nodes], eff[p.nodes]]
        for p in study.points
    ]
    emit(
        "ablation_scaling",
        format_table(
            ["nodes", "throughput", "latency (s)", "speedup", "efficiency"],
            rows,
            title="Scaling beyond the paper (embedded I/O, PFS sf=64)",
        )
        + f"\nKarp-Flatt serial fraction @200 nodes: {study.serial_fraction(200):.4f}"
        + f"\nsaturation point: {study.saturation_nodes()} nodes",
    )
    # Near-linear through the paper's range...
    assert eff[100] > 0.85
    # ...but a real saturation appears within 2x beyond it.
    assert study.saturation_nodes() is not None
