"""Benchmark: Figure 5 — bar charts of the embedded-I/O results.

Renders the throughput/latency bar charts corresponding to Table 1, in
the paper's grouped format (one group per file system, one bar per node
count).
"""


def test_fig5_embedded_charts(benchmark, emit, table1):
    chart = benchmark.pedantic(table1.render_charts, rounds=1, iterations=1)
    emit("fig5_embedded_charts", chart)
    assert "throughput" in chart and "latency" in chart
