"""Ablation: stripe-factor sweep at the 100-node case.

Beyond the paper's two stripe factors, sweep sf in {4..128} to locate
the knee where the read phase stops throttling the pipeline.  The paper
predicts monotone non-decreasing throughput with diminishing returns
once the read is fully hidden behind computation.
"""

from benchmarks.conftest import BENCH_CFG
from repro.bench.experiments import run_ablation_stripe_sweep
from repro.trace.report import bar_chart


def test_ablation_stripe_factor(benchmark, emit):
    out = benchmark.pedantic(
        lambda: run_ablation_stripe_sweep(
            stripe_factors=(4, 8, 16, 32, 64, 128), cfg=BENCH_CFG
        ),
        rounds=1,
        iterations=1,
    )
    thr = {f"sf={sf}": r.throughput for sf, r in out.items()}
    emit(
        "ablation_stripe_factor",
        bar_chart(thr, title="Case 3 (100 nodes) throughput vs stripe factor"),
    )
    values = [out[sf].throughput for sf in sorted(out)]
    # Monotone non-decreasing (2% tolerance for simulation noise)...
    assert all(values[i] <= values[i + 1] * 1.02 for i in range(len(values) - 1))
    # ...with a real knee: sf=4 is I/O-starved, sf=128 is compute-bound.
    assert values[-1] > 1.5 * values[0]
    assert out[128].throughput < 1.05 * out[64].throughput  # saturated
