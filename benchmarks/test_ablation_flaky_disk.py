"""Ablation: one stripe directory fails requests at random (flaky disk).

Transient errors force the client into its retry path.  Without
replication every retry re-queues on the *same* flaky disk after a
backoff; with chained-declustered mirrors the first retry goes to the
neighbour directory instead, absorbing the error at roughly the cost of
one extra hop.
"""

from benchmarks.conftest import BENCH_CFG
from repro.bench.experiments import run_ablation_flaky_disk
from repro.trace.report import format_table


def _failed(result):
    return sum(result.disk_stats.get("requests_failed_per_server", [0]))


def test_ablation_flaky_disk(benchmark, emit, engine_runner):
    out = benchmark.pedantic(
        lambda: run_ablation_flaky_disk(
            error_rates=(0.0, 0.05, 0.2),
            replications=(1, 2),
            cfg=BENCH_CFG,
            runner=engine_runner,
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        [f"rep={rep}", f"{rate:g}", r.throughput, r.latency, _failed(r)]
        for (rep, rate), r in sorted(out.items())
    ]
    emit(
        "ablation_flaky_disk",
        format_table(
            ["replication", "error rate", "throughput", "latency (s)",
             "failed reqs"],
            rows,
            title="Flaky stripe directory 0, PFS sf=4, case 1",
        ),
    )
    # Error injection is live and scales with the configured rate.
    assert _failed(out[(1, 0.2)]) > _failed(out[(1, 0.05)]) > 0
    # Fault-free cells are unaffected by mirroring (primary-first reads).
    assert out[(2, 0.0)].throughput == out[(1, 0.0)].throughput
    # Every cell still completes all CPIs — transient errors are absorbed
    # by retries (rep=1) or failover (rep=2), never lost.
    for r in out.values():
        assert r.dropped_cpis is None  # no deadline: nothing dropped
        assert r.throughput > 0
    # Determinism: same spec, same faults, same result.
    again = run_ablation_flaky_disk(
        error_rates=(0.2,), replications=(1,),
        cfg=BENCH_CFG, runner=engine_runner,
    )
    assert again[(1, 0.2)].to_dict() == out[(1, 0.2)].to_dict()
