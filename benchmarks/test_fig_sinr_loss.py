"""Artifact: the classic STAP figure — SINR loss vs Doppler.

Computed from the clairvoyant covariance analysis (validated against
Monte-Carlo sample covariances in tests/test_stap_analysis.py): the
optimal achievable SINR at each Doppler bin relative to the noise-only
bound, for a broadside beam and an off-broadside beam.  The deep notch
where clutter Doppler aligns with the beam is the physical reason the
paper's algorithm splits Doppler bins into easy and hard.
"""

import numpy as np

from repro.stap.analysis import sinr_loss_curve
from repro.stap.params import STAPParams
from repro.stap.scenario import Jammer, Scenario
from repro.trace.report import bar_chart

PARAMS = STAPParams(
    n_channels=8, n_pulses=32, n_ranges=256, n_beams=6, n_hard_bins=8,
    n_training=64, pulse_len=16, cfar_window=12, cfar_guard=3,
)
SCENE = Scenario(targets=(), jammers=(Jammer(0.7, 30.0),), cnr_db=30.0, seed=3)


def test_fig_sinr_loss(benchmark, emit):
    curves = benchmark.pedantic(
        lambda: {
            beam: sinr_loss_curve(PARAMS, SCENE, beam=beam)
            for beam in (PARAMS.n_beams // 2, 0)
        },
        rounds=1,
        iterations=1,
    )
    blocks = []
    for beam, loss in curves.items():
        loss_db = 10 * np.log10(loss)
        angle = np.degrees(PARAMS.beam_angles[beam])
        # Negate so deeper loss = longer bar (bar charts want positives).
        blocks.append(
            bar_chart(
                {f"bin {b:3d}": float(-loss_db[b]) for b in range(PARAMS.n_doppler_bins)},
                title=f"\nSINR loss (dB below noise-limited) — beam {beam} "
                f"({angle:+.0f} deg)",
                width=40,
            )
        )
    emit("fig_sinr_loss", "\n".join(blocks))

    for beam, loss in curves.items():
        loss_db = 10 * np.log10(loss)
        # A real notch exists and sits at the beam-aligned clutter Doppler.
        f_c = 0.5 * np.sin(PARAMS.beam_angles[beam])
        expect = round(f_c * PARAMS.n_pulses) % PARAMS.n_pulses
        worst = int(np.argmin(loss_db))
        wrap = min(abs(worst - expect), PARAMS.n_pulses - abs(worst - expect))
        assert wrap <= 1
        assert loss_db.min() < -10
        # Most bins lose little — the easy/hard economics of the paper.
        assert np.median(loss_db) > -5
