"""Benchmark: Figure 8 — pipeline with vs without task combining.

The paper's Figure 8 plots throughput and latency of the 7-task and
6-task pipelines side by side for every file system; the visible shape
is equal throughput bars and uniformly shorter latency bars for the
6-task variant.
"""

from repro.bench.experiments import run_fig8


def test_fig8_combination_comparison(benchmark, emit, table1, table3):
    result = benchmark.pedantic(
        lambda: run_fig8(table1=table1, table3=table3), rounds=1, iterations=1
    )
    emit("fig8_combination_comparison", result.render())

    for fs in result.fs_labels:
        lat7 = result.series["latency"][f"{fs}|7 tasks"]
        lat6 = result.series["latency"][f"{fs}|6 tasks"]
        assert all(lat6[c] < lat7[c] for c in lat7)
