"""Benchmark: Table 2 — a separate parallel-read task (Figure 4).

Regenerates the paper's Table 2 and checks §5.2's comparison against
Table 1: throughput approximately unchanged (on the Paragon PFS
configurations), latency strictly worse — the 8-task latency equation
has one more additive term (Eq. 4 vs Eq. 2).
"""

from benchmarks.conftest import BENCH_CFG
from repro.bench.experiments import run_table2


def test_table2_separate_io(benchmark, emit, sweep_cache, table1):
    result = benchmark.pedantic(
        lambda: run_table2(cfg=BENCH_CFG), rounds=1, iterations=1
    )
    sweep_cache["t2"] = result
    emit("table2_separate_io", result.render())

    for fs in ("PFS sf=16", "PFS sf=64"):
        for case in (1, 2, 3):
            r7 = table1.cell(fs, case)
            r8 = result.cell(fs, case)
            # §5.2: "the throughput results are approximately the same".
            assert abs(r8.throughput - r7.throughput) < 0.05 * r7.throughput
            # §5.2: "the latency results for the separate I/O task design
            # are worse than the embedded one".
            assert r8.latency > r7.latency

    # PIOFS: latency is worse there too.
    for case in (1, 2, 3):
        assert result.cell("PIOFS sf=80", case).latency > table1.cell(
            "PIOFS sf=80", case
        ).latency
