"""Ablation: the noncontiguous-access family against the PR-4 matrix.

Crosses list I/O and server-directed placement with the established
independent/sieving/two-phase trio on both file systems and three
stripe factors (case 3, 100 nodes).  The headline results:

* **Disk-bound regimes win big.**  At sf=4 and sf=16 both new
  strategies beat collective-two-phase outright: list I/O collapses a
  whole 4-file window into one request per stripe directory (4x fewer
  requests, amortising per-request disk overhead), and server-directed
  placement lays each node's declared slab on a minimal contiguous
  directory block (one long seek-amortised run per directory).
* **Compute-bound regimes wash out.**  At sf=64 on PFS every strategy
  converges to the same throughput — the read hides behind computation
  and request-count savings buy nothing (server-directed still shaves
  latency).
* **Honest negatives.**  List I/O's window batching raises per-CPI
  latency in the disk-bound regime (a CPI waits for its whole window).
  And on PIOFS at sf=64, server-directed *loses* to independent reads:
  concentrating a slab on fewer directories costs intra-read
  parallelism, which synchronous reads cannot hide.
"""

from benchmarks.conftest import BENCH_CFG
from repro.bench.experiments import run_ablation_noncontiguous
from repro.trace.report import grouped_bar_chart

STRATEGIES = (
    "embedded-io", "data-sieving", "collective-two-phase",
    "list-io", "server-directed",
)
FACTORS = (4, 16, 64)


def test_ablation_noncontiguous(benchmark, emit):
    out = benchmark.pedantic(
        lambda: run_ablation_noncontiguous(
            strategies=STRATEGIES, stripe_factors=FACTORS, cfg=BENCH_CFG
        ),
        rounds=1,
        iterations=1,
    )

    groups = {}
    for kind in ("pfs", "piofs"):
        for sf in FACTORS:
            groups[f"{kind} sf={sf}"] = {
                s: out[(s, kind, sf)].throughput
                for s in STRATEGIES
                if (s, kind, sf) in out
            }
    emit(
        "ablation_noncontiguous",
        grouped_bar_chart(
            groups,
            title="Case 3 (100 nodes) throughput: noncontiguous-access "
            "strategies by file system and stripe factor",
            unit="CPIs/s",
        ),
    )

    # List I/O needs the read_list call PIOFS lacks: those cells are
    # skipped by capability, not failed.
    assert not any(s == "list-io" and k == "piofs" for s, k, _ in out)

    for kind in ("pfs", "piofs"):
        for sf in FACTORS:
            base = out[("embedded-io", kind, sf)].disk_stats
            # Sieving pads to alignment; everyone else reads exact bytes.
            assert (out[("data-sieving", kind, sf)].disk_stats["bytes_served"]
                    > base["bytes_served"])
            for s in ("collective-two-phase", "server-directed"):
                assert (out[(s, kind, sf)].disk_stats["bytes_served"]
                        == base["bytes_served"])

    # One batched request per directory per 4-file window: exactly a 4x
    # request reduction over one independent read per CPI.
    for sf in FACTORS:
        base_reqs = sum(
            out[("embedded-io", "pfs", sf)].disk_stats["requests_per_server"]
        )
        list_reqs = sum(
            out[("list-io", "pfs", sf)].disk_stats["requests_per_server"]
        )
        assert list_reqs * 4 == base_reqs
        assert (out[("list-io", "pfs", sf)].disk_stats["bytes_served"]
                == out[("embedded-io", "pfs", sf)].disk_stats["bytes_served"])

    # Disk-bound regimes: both new strategies beat collective-two-phase.
    for sf in (4, 16):
        two_phase = out[("collective-two-phase", "pfs", sf)].throughput
        assert out[("list-io", "pfs", sf)].throughput > 1.2 * two_phase
        assert out[("server-directed", "pfs", sf)].throughput > 1.2 * two_phase

    # ... at a latency price for list I/O: a CPI waits for its window.
    assert (out[("list-io", "pfs", 4)].latency
            > out[("embedded-io", "pfs", 4)].latency)

    # Compute-bound regime: the read hides, strategies converge on PFS.
    thr64 = [
        out[(s, "pfs", 64)].throughput
        for s in STRATEGIES
        if (s, "pfs", 64) in out
    ]
    assert max(thr64) < 1.05 * min(thr64)
    # Server-directed still shaves latency (fewer seeks on the critical
    # path) even when throughput has saturated.
    assert (out[("server-directed", "pfs", 64)].latency
            < out[("embedded-io", "pfs", 64)].latency)

    # Negative result, recorded on purpose: on PIOFS at sf=64 the
    # server-directed remap loses — concentrating each slab on fewer
    # directories costs intra-read parallelism that synchronous reads
    # cannot hide behind computation.
    assert (out[("server-directed", "piofs", 64)].throughput
            < out[("embedded-io", "piofs", 64)].throughput)
