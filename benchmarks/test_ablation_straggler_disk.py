"""Ablation: a single degraded stripe directory (tail-latency fault).

Striping spreads every read over many directories, so each read
completes only when its *slowest* run does — one straggler disk
throttles the entire pipeline.  This sweep degrades directory 0 of 64 by
increasing factors at the otherwise healthy 100-node configuration.
"""

from benchmarks.conftest import BENCH_CFG
from repro.bench.experiments import run_ablation_straggler_disk
from repro.trace.report import format_table


def test_ablation_straggler_disk(benchmark, emit):
    out = benchmark.pedantic(
        lambda: run_ablation_straggler_disk(
            slow_factors=(1.0, 2.0, 4.0, 8.0), cfg=BENCH_CFG
        ),
        rounds=1,
        iterations=1,
    )
    rows = [
        [f"x{slow:g}", r.throughput, r.latency,
         r.measurement.task_stats["doppler"].recv]
        for slow, r in out.items()
    ]
    emit(
        "ablation_straggler_disk",
        format_table(
            ["dir-0 slowdown", "throughput", "latency (s)", "read phase (s)"],
            rows,
            title="One straggler stripe directory of 64, case 3 (100 nodes)",
        ),
    )
    values = [out[s].throughput for s in sorted(out)]
    # Monotone non-increasing with degradation...
    assert all(values[i + 1] <= values[i] * 1.02 for i in range(len(values) - 1))
    # ...and a single 8x-slow disk of 64 costs most of the throughput.
    assert out[8.0].throughput < 0.4 * out[1.0].throughput
    # Once the straggler dominates, throughput ~ halves per doubling.
    assert out[8.0].throughput < 0.6 * out[4.0].throughput
